//! Shared harness utilities for the experiment benches.
//!
//! Every `exp_*` bench target regenerates one of the paper's claims (the
//! "tables and figures" of this theory paper — see EXPERIMENTS.md for the
//! index) and prints a self-describing table: the paper's claim, the
//! measured series, and the shape diagnostics (log-log slopes, ratios).
//!
//! Sizing: experiment benches honour the `RTF_BENCH_TRIALS` environment
//! variable (default per-bench) so CI can shrink or enlarge them without
//! code changes.

#![warn(missing_docs)]
#![warn(clippy::all)]

use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_sim::runner::{run_trials, TrialPlan, TrialResults};
use rtf_streams::generator::StreamGenerator;
use rtf_streams::population::Population;

/// Reads the trial count from `RTF_BENCH_TRIALS`, defaulting to
/// `default`.
pub fn trials_from_env(default: usize) -> usize {
    std::env::var("RTF_BENCH_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(2)
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("\n================================================================================");
    println!("{id}: {title}");
    println!("paper claim: {claim}");
    println!("================================================================================");
}

/// The ℓ∞-error metric used by all accuracy experiments.
pub fn linf_metric(outcome: &ProtocolOutcome, population: &Population) -> f64 {
    rtf_analysis::metrics::linf_error(outcome.estimates(), population.true_counts())
}

/// Repeated-trial measurement of a protocol's mean ℓ∞ error (and its
/// sample std) on freshly generated populations.
pub fn measure_linf<G, E>(
    params: ProtocolParams,
    generator: &G,
    trials: usize,
    master_seed: u64,
    execute: E,
) -> TrialResults
where
    G: StreamGenerator + Sync,
    E: Fn(&ProtocolParams, &Population, u64) -> ProtocolOutcome + Sync,
{
    let plan = TrialPlan::new(params, trials, master_seed);
    run_trials(&plan, generator, execute, linf_metric)
}

/// Least-squares slope of `ln y` against `ln x` — the shape diagnostic
/// ("error ∝ k^slope").
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points for a slope");
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let mx = lx.iter().sum::<f64>() / lx.len() as f64;
    let my = ly.iter().sum::<f64>() / ly.len() as f64;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    cov / var
}

/// A fixed-width row printer for experiment tables.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table and prints its header.
    pub fn new(columns: &[(&str, usize)]) -> Self {
        let mut header = String::new();
        for (name, w) in columns {
            header.push_str(&format!("{name:>w$} ", w = *w));
        }
        println!("{header}");
        println!("{}", "-".repeat(header.len()));
        Table {
            widths: columns.iter().map(|(_, w)| *w).collect(),
        }
    }

    /// Prints one row of already-formatted cells.
    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len(), "column count mismatch");
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{cell:>w$} ", w = *w));
        }
        println!("{line}");
    }
}

/// Formats a float with magnitude-appropriate precision.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 10_000.0 {
        format!("{v:.0}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_recovers_power_laws() {
        let xs = [1.0f64, 2.0, 4.0, 8.0, 16.0];
        let sqrt: Vec<f64> = xs.iter().map(|x| 3.0 * x.sqrt()).collect();
        let lin: Vec<f64> = xs.iter().map(|x| 0.5 * x).collect();
        assert!((loglog_slope(&xs, &sqrt) - 0.5).abs() < 1e-12);
        assert!((loglog_slope(&xs, &lin) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fmt_magnitudes() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123456.0), "123456");
        assert_eq!(fmt(123.456), "123.5");
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(0.012345), "0.01235");
    }

    #[test]
    fn trials_env_default() {
        assert!(trials_from_env(10) >= 2);
    }
}
