//! T10 — the local-vs-central gap.
//!
//! Paper context (Section 6): in the central model the binary-tree
//! mechanism achieves per-time error `O((1/ε)(log d)^{1.5})`,
//! *independent of n*; every local protocol pays `Ω(√n)`. The ratio
//! local/central therefore grows as `√n` — the price of not trusting the
//! curator.
//!
//! Run with `cargo bench --bench exp_central_gap`.

use rtf_baselines::central::run_central_tree;
use rtf_bench::{banner, fmt, loglog_slope, measure_linf, trials_from_env, Table};
use rtf_core::params::ProtocolParams;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_streams::generator::UniformChanges;

fn main() {
    let d = 256u64;
    let k = 8usize;
    let eps = 1.0;
    let trials = trials_from_env(8);

    banner(
        "T10",
        &format!("local vs central error gap   (d={d}, k={k}, eps={eps}, {trials} trials)"),
        "central tree error is n-free; local/central ratio grows like sqrt(n)",
    );

    let ns = [4_000usize, 16_000, 64_000, 256_000];
    let table = Table::new(&[
        ("n", 9),
        ("local (ours)", 13),
        ("central tree", 13),
        ("ratio", 9),
        ("sqrt(n)", 9),
    ]);

    let mut xs = Vec::new();
    let mut ratios = Vec::new();
    let mut central_series = Vec::new();
    for &n in &ns {
        let params = ProtocolParams::new(n, d, k, eps, 0.05).unwrap();
        let gen = UniformChanges::new(d, k, 1.0);
        let local = measure_linf(
            params,
            &gen,
            trials,
            0x31 + n as u64,
            run_future_rand_aggregate,
        );
        let central = measure_linf(params, &gen, trials, 0x41 + n as u64, run_central_tree);
        let ratio = local.mean() / central.mean();
        xs.push(n as f64);
        ratios.push(ratio);
        central_series.push(central.mean());
        table.row(&[
            n.to_string(),
            fmt(local.mean()),
            fmt(central.mean()),
            format!("{ratio:.1}"),
            format!("{:.1}", (n as f64).sqrt()),
        ]);
    }

    let slope = loglog_slope(&xs, &ratios);
    let central_slope = loglog_slope(&xs, &central_series);
    println!("\nshape: (local/central) ∝ n^slope");
    println!("  measured ratio slope    = {slope:.3}   (theory: 0.5)");
    println!("  central-error slope in n = {central_slope:.3}   (theory: 0 — n-free)");
    let pass = (0.35..=0.65).contains(&slope) && central_slope.abs() < 0.2;
    println!(
        "\nresult: {}",
        if pass {
            "gap shape reproduced. PASS"
        } else {
            "UNEXPECTED SHAPE — see numbers above"
        }
    );
}
