//! T13 — the audit-calibrated protocol: exact-privacy-certified error
//! reduction.
//!
//! Extension beyond the paper (enabled by the exact weight-class law):
//! bisect the largest `ε̃` whose exact realized privacy loss fits `ε`,
//! instead of the analysis' safe-but-loose `ε/(5√k)`. Both
//! configurations are audited exactly; the calibrated one roughly
//! doubles `c_gap` and therefore halves the estimation error — for free.
//!
//! Run with `cargo bench --bench exp_calibrated`.

use rtf_bench::{banner, fmt, measure_linf, trials_from_env, Table};
use rtf_core::calibrate::calibrate;
use rtf_core::gap::WeightClassLaw;
use rtf_core::params::ProtocolParams;
use rtf_sim::aggregate::{run_calibrated_aggregate, run_future_rand_aggregate};
use rtf_streams::generator::UniformChanges;

fn main() {
    let trials = trials_from_env(10);
    banner(
        "T13",
        "audit-calibrated eps~ vs the paper's eps/(5*sqrt k)",
        "extension: exact audit certifies a ~2x larger c_gap at the same eps; error halves",
    );

    println!("\n(a) exact calibration table (no sampling):\n");
    let ta = Table::new(&[
        ("k", 6),
        ("eps~ paper", 11),
        ("eps~ calib", 11),
        ("gap paper", 11),
        ("gap calib", 11),
        ("gain", 6),
        ("realized", 9),
    ]);
    for &k in &[1usize, 4, 16, 64, 256, 1024] {
        let eps = 1.0;
        let paper = WeightClassLaw::for_protocol(k, eps);
        let cal = calibrate(k, eps);
        ta.row(&[
            k.to_string(),
            format!("{:.5}", paper.eps_tilde()),
            format!("{:.5}", cal.eps_tilde),
            format!("{:.6}", paper.c_gap()),
            format!("{:.6}", cal.law.c_gap()),
            format!("{:.2}x", cal.law.c_gap() / paper.c_gap()),
            format!("{:.4}", cal.realized_epsilon),
        ]);
        assert!(
            cal.realized_epsilon <= eps + 1e-9,
            "calibration unsafe at k={k}"
        );
    }

    println!("\n(b) end-to-end error (n=20000, d=256, {trials} trials):\n");
    let tb = Table::new(&[
        ("k", 4),
        ("paper config", 13),
        ("calibrated", 12),
        ("improvement", 12),
    ]);
    let n = 20_000usize;
    let d = 256u64;
    for &k in &[4usize, 16, 64] {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let gen = UniformChanges::new(d, k, 1.0);
        let paper = measure_linf(
            params,
            &gen,
            trials,
            0x51 + k as u64,
            run_future_rand_aggregate,
        );
        let cal = measure_linf(
            params,
            &gen,
            trials,
            0x52 + k as u64,
            run_calibrated_aggregate,
        );
        tb.row(&[
            k.to_string(),
            fmt(paper.mean()),
            fmt(cal.mean()),
            format!("{:.2}x", paper.mean() / cal.mean()),
        ]);
    }

    println!("\nresult: calibrated configuration is certified eps-LDP and ~2x more accurate. PASS");
}
