//! T4 — ℓ∞ error versus the privacy budget `ε`.
//!
//! Paper claim (Theorem 4.1): error scales as `1/ε` for both this
//! protocol and Erlingsson et al. (the paper's improvement is in `k`,
//! not in `ε`).
//!
//! Run with `cargo bench --bench exp_error_vs_eps`.

use rtf_baselines::erlingsson::run_erlingsson;
use rtf_bench::{banner, fmt, loglog_slope, measure_linf, trials_from_env, Table};
use rtf_core::params::ProtocolParams;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_streams::generator::UniformChanges;

fn main() {
    let n = 20_000usize;
    let d = 256u64;
    let k = 8usize;
    let beta = 0.05;
    let trials = trials_from_env(10);

    banner(
        "T4",
        &format!("linf error vs eps   (n={n}, d={d}, k={k}, {trials} trials)"),
        "error ∝ 1/eps for both protocols",
    );

    let epss = [0.125f64, 0.25, 0.5, 1.0];
    let table = Table::new(&[
        ("eps", 7),
        ("future-rand", 12),
        ("err*eps", 10),
        ("erlingsson", 12),
        ("erl/ours", 9),
    ]);

    let mut xs = Vec::new();
    let (mut ours_series, mut erl_series) = (Vec::new(), Vec::new());
    for &eps in &epss {
        let params = ProtocolParams::new(n, d, k, eps, beta).unwrap();
        let gen = UniformChanges::new(d, k, 1.0);
        let ours = measure_linf(
            params,
            &gen,
            trials,
            0x11 + (eps * 1000.0) as u64,
            run_future_rand_aggregate,
        );
        let erl = measure_linf(
            params,
            &gen,
            trials,
            0x21 + (eps * 1000.0) as u64,
            run_erlingsson,
        );
        xs.push(eps);
        ours_series.push(ours.mean());
        erl_series.push(erl.mean());
        table.row(&[
            format!("{eps}"),
            fmt(ours.mean()),
            fmt(ours.mean() * eps),
            fmt(erl.mean()),
            format!("{:.2}", erl.mean() / ours.mean()),
        ]);
    }

    let s_ours = loglog_slope(&xs, &ours_series);
    let s_erl = loglog_slope(&xs, &erl_series);
    println!("\nshape: error ∝ eps^slope");
    println!("  future-rand slope = {s_ours:.3}   (paper: -1)");
    println!("  erlingsson  slope = {s_erl:.3}   (paper: -1)");
    let pass = (-1.2..=-0.8).contains(&s_ours) && (-1.2..=-0.8).contains(&s_erl);
    println!(
        "\nresult: {}",
        if pass {
            "shape reproduced. PASS"
        } else {
            "UNEXPECTED SHAPE — see numbers above"
        }
    );
}
