//! T6 — exact privacy audits against Lemma 5.2 and Theorem 4.5.
//!
//! Paper claims:
//!   * Lemma 5.2 — `R̃`'s per-string output probabilities span at most a
//!     factor `e^ε` (with `ε̃ = ε/(5√k)`);
//!   * Theorem 4.5 — the full client `Aclt` is `ε`-LDP.
//!
//! The audit computes the *exact* realized LDP parameter of the
//! implemented code: weight-class ratios for `R̃` (any `k`), and full
//! brute-force enumeration of the online client for small `(L, k)`.
//!
//! Run with `cargo bench --bench exp_privacy_audit`.

use rtf_analysis::audit::{
    erlingsson_sequence_audit, futurerand_sequence_audit, independent_sequence_audit,
};
use rtf_baselines::bun::BunRandomizer;
use rtf_bench::{banner, Table};
use rtf_core::gap::WeightClassLaw;

fn main() {
    banner(
        "T6",
        "exact realized privacy loss vs nominal budget",
        "Lemma 5.2 / Theorem 4.5: realized <= eps always; audits are exact, not sampled",
    );

    println!("\n(a) composed randomizer R~, protocol parameterisation eps~ = eps/(5 sqrt k):\n");
    let table = Table::new(&[
        ("k", 6),
        ("eps", 6),
        ("realized", 10),
        ("ratio", 7),
        ("annulus", 12),
        ("verdict", 8),
    ]);
    let mut all_pass = true;
    for &eps in &[0.125f64, 0.25, 0.5, 1.0] {
        for &k in &[1usize, 4, 16, 64, 256, 1024, 4096] {
            let law = WeightClassLaw::for_protocol(k, eps);
            let realized = law.realized_epsilon();
            let ok = realized <= eps + 1e-9;
            all_pass &= ok;
            table.row(&[
                k.to_string(),
                format!("{eps}"),
                format!("{realized:.4}"),
                format!("{:.3}", realized / eps),
                format!("[{},{}]", law.annulus().lb(), law.annulus().ub()),
                if ok { "ok".into() } else { "VIOLATION".into() },
            ]);
        }
    }

    println!("\n(b) end-to-end online client, brute force over all inputs and outputs:\n");
    let t2 = Table::new(&[
        ("client", 22),
        ("L", 4),
        ("k", 4),
        ("realized", 10),
        ("nominal", 8),
        ("verdict", 8),
    ]);
    for (l, k) in [(4usize, 1usize), (4, 2), (6, 2), (6, 3), (8, 2)] {
        let a = futurerand_sequence_audit(l, k, 1.0);
        let ok = a.realized_epsilon <= 1.0 + 1e-9;
        all_pass &= ok;
        t2.row(&[
            "future-rand".into(),
            l.to_string(),
            k.to_string(),
            format!("{:.4}", a.realized_epsilon),
            "1.0".into(),
            if ok { "ok".into() } else { "VIOLATION".into() },
        ]);
    }
    for (l, k) in [(4usize, 2usize), (6, 3)] {
        let a = independent_sequence_audit(l, k, 1.0);
        let ok = a.realized_epsilon <= 1.0 + 1e-9;
        all_pass &= ok;
        t2.row(&[
            "independent (Ex 4.2)".into(),
            l.to_string(),
            k.to_string(),
            format!("{:.4}", a.realized_epsilon),
            "1.0".into(),
            if ok { "ok".into() } else { "VIOLATION".into() },
        ]);
    }
    for l in [4usize, 8] {
        let a = erlingsson_sequence_audit(l, 1.0);
        let ok = a.realized_epsilon <= 1.0 + 1e-9;
        all_pass &= ok;
        t2.row(&[
            "erlingsson20".into(),
            l.to_string(),
            "1".into(),
            format!("{:.4}", a.realized_epsilon),
            "1.0".into(),
            if ok { "ok".into() } else { "VIOLATION".into() },
        ]);
    }

    println!("\n(c) Bun et al. parameterisation (Fact A.6):\n");
    let t3 = Table::new(&[("k", 6), ("lambda", 10), ("realized", 10), ("verdict", 8)]);
    for &k in &[64usize, 256, 1024] {
        if let Some(b) = BunRandomizer::solve(k, 1.0) {
            let realized = b.law().realized_epsilon();
            let ok = realized <= 1.0 + 1e-9;
            all_pass &= ok;
            t3.row(&[
                k.to_string(),
                format!("{:.2e}", b.lambda()),
                format!("{realized:.4}"),
                if ok { "ok".into() } else { "VIOLATION".into() },
            ]);
        }
    }

    println!("\nobservations:");
    println!("  * FutureRand realizes ~0.2-0.5x of the nominal budget (analysis slack ~2x);");
    println!("  * the independent randomizer saturates eps exactly;");
    println!("  * Erlingsson (as restated in Section 6) realizes exactly eps/2.");
    println!(
        "\nresult: {}",
        if all_pass {
            "no privacy violations anywhere. PASS"
        } else {
            "PRIVACY VIOLATION FOUND — investigate!"
        }
    );
    assert!(all_pass);
}
