//! T19 — estimation error under fault-injected longitudinal workloads.
//!
//! The paper's guarantee assumes lossless, honest delivery. This
//! experiment measures how the ℓ∞ error degrades when the wire schedule
//! is perturbed by the `rtf-scenarios` fault layer: dropout, permanent
//! churn, stragglers (classified late and discarded), and a Byzantine
//! client fraction. Duplicates are included as a control — dedupe makes
//! them free.
//!
//! Expected shape: the duplicate row is *exactly* the honest error
//! (dedupe is lossless), and every other scenario moves the error by at
//! most a modest factor — in this noise-dominated regime lost reports
//! remove noise and signal together, so dropout can even shrink the
//! error slightly, while Byzantine forgeries add to it. The interesting
//! output is the delivery accounting: every lost, late, duplicated, or
//! forged frame is visible in the server's per-period stats.
//!
//! Trials fan out over the deterministic worker pool (`RTF_WORKERS`
//! workers, default: available parallelism); per-trial rows are folded
//! in trial order, so the table is bit-identical to a sequential run —
//! asserted below on the honest scenario before anything is printed.
//!
//! Run with `cargo bench --bench exp_faults`.

use rtf_analysis::metrics::linf_error;
use rtf_bench::{banner, trials_from_env, Table};
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_runtime::{ExecMode, WorkerPool};
use rtf_scenarios::{run_scenario_with, Scenario};
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

/// One trial's measurements: (ℓ∞ error, on-time fraction, late, dup,
/// byzantine messages).
type TrialRow = (f64, f64, u64, u64, u64);

/// Runs `trials` seeded executions of `scenario` over `pool`, returning
/// per-trial rows **in trial order** — the fold over them cannot depend
/// on scheduling. The inner engine runs `Parallel(1)`: the batched
/// pipeline without nested threading (trials are the outer parallelism).
fn run_rows(
    pool: &WorkerPool,
    params: &ProtocolParams,
    gen: &UniformChanges,
    scenario: &Scenario,
    trials: usize,
) -> Vec<TrialRow> {
    pool.map_indexed(trials, |s| {
        let mut rng = SeedSequence::new(1_900 + s as u64).rng();
        let pop = Population::generate(gen, params.n(), &mut rng);
        let out = run_scenario_with(
            params,
            &pop,
            2_000 + s as u64,
            scenario,
            ExecMode::Parallel(1),
        );
        (
            linf_error(&out.estimates, pop.true_counts()),
            out.accepted_fraction(),
            out.delivery.iter().map(|r| r.late).sum::<u64>(),
            out.delivery.iter().map(|r| r.duplicate).sum::<u64>(),
            out.faults.byzantine_messages,
        )
    })
}

fn main() {
    let n = 3_000usize;
    let d = 64u64;
    let k = 4usize;
    let trials = trials_from_env(5).min(12);
    let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
    let gen = UniformChanges::new(d, k, 0.8);

    banner(
        "T19",
        &format!("error under faulty deployments (n={n}, d={d}, k={k}, {trials} trials)"),
        "graceful degradation: duplicates are exactly free, faults shift error by modest factors",
    );

    let scenarios: Vec<(&str, Scenario)> = vec![
        ("honest", Scenario::honest()),
        ("dup 20%", Scenario::honest().with_duplicates(0.2)),
        ("drop 1%", Scenario::honest().with_dropout(0.01)),
        ("drop 5%", Scenario::honest().with_dropout(0.05)),
        ("drop 20%", Scenario::honest().with_dropout(0.2)),
        ("straggle 10%", Scenario::honest().with_stragglers(0.1, 3)),
        ("churn 0.5%/t", Scenario::honest().with_churn(0.005)),
        ("byzantine 5%", Scenario::honest().with_byzantine(0.05)),
        (
            "storm",
            Scenario::honest()
                .with_dropout(0.03)
                .with_stragglers(0.05, 3)
                .with_churn(0.002)
                .with_duplicates(0.03)
                .with_byzantine(0.02),
        ),
    ];

    let table = Table::new(&[
        ("scenario", 14),
        ("linf err", 10),
        ("vs honest", 10),
        ("on-time %", 10),
        ("late", 7),
        ("dup", 7),
        ("byz msgs", 9),
    ]);

    let workers = ExecMode::from_env_or_parallel().workers();
    let pool = WorkerPool::new(workers);

    // Determinism gate: the pooled fan-out must reproduce the
    // single-worker rows bit-for-bit at the fixed seeds. The pooled
    // honest rows are reused as the table's honest row below.
    let honest_rows = run_rows(&pool, &params, &gen, &scenarios[0].1, trials);
    {
        let sequential = run_rows(&WorkerPool::new(1), &params, &gen, &scenarios[0].1, trials);
        assert!(
            honest_rows
                .iter()
                .zip(&sequential)
                .all(|(a, b)| a.0.to_bits() == b.0.to_bits() && a == b),
            "pooled trials diverged from sequential"
        );
    }

    let mut honest_err = 0.0f64;
    for (name, scenario) in &scenarios {
        let rows = if *name == "honest" {
            honest_rows.clone()
        } else {
            run_rows(&pool, &params, &gen, scenario, trials)
        };
        let mut err = 0.0;
        let mut ontime = 0.0;
        let (mut late, mut dup, mut byz) = (0u64, 0u64, 0u64);
        for (e, o, l, du, b) in &rows {
            err += e / trials as f64;
            ontime += o / trials as f64;
            late += l;
            dup += du;
            byz += b;
        }
        if *name == "honest" {
            honest_err = err;
        }
        table.row(&[
            (*name).to_string(),
            format!("{err:.1}"),
            format!("{:.2}x", err / honest_err),
            format!("{:.1}", 100.0 * ontime),
            format!("{}", late / trials as u64),
            format!("{}", dup / trials as u64),
            format!("{}", byz / trials as u64),
        ]);
    }

    println!(
        "\nresult: the server survives every scenario ({workers}-worker pool, bit-identical to \
         sequential), duplicates are exactly free, and every perturbed frame is accounted for in \
         the delivery stats. PASS"
    );
}
