//! T19 — estimation error under fault-injected longitudinal workloads.
//!
//! The paper's guarantee assumes lossless, honest delivery. This
//! experiment measures how the ℓ∞ error degrades when the wire schedule
//! is perturbed by the `rtf-scenarios` fault layer: dropout, permanent
//! churn, stragglers (classified late and discarded), and a Byzantine
//! client fraction. Duplicates are included as a control — dedupe makes
//! them free.
//!
//! Expected shape: the duplicate row is *exactly* the honest error
//! (dedupe is lossless), and every other scenario moves the error by at
//! most a modest factor — in this noise-dominated regime lost reports
//! remove noise and signal together, so dropout can even shrink the
//! error slightly, while Byzantine forgeries add to it. The interesting
//! output is the delivery accounting: every lost, late, duplicated, or
//! forged frame is visible in the server's per-period stats.
//!
//! Run with `cargo bench --bench exp_faults`.

use rtf_analysis::metrics::linf_error;
use rtf_bench::{banner, trials_from_env, Table};
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_scenarios::{run_scenario, Scenario};
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

fn main() {
    let n = 3_000usize;
    let d = 64u64;
    let k = 4usize;
    let trials = trials_from_env(5).min(12);
    let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
    let gen = UniformChanges::new(d, k, 0.8);

    banner(
        "T19",
        &format!("error under faulty deployments (n={n}, d={d}, k={k}, {trials} trials)"),
        "graceful degradation: duplicates are exactly free, faults shift error by modest factors",
    );

    let scenarios: Vec<(&str, Scenario)> = vec![
        ("honest", Scenario::honest()),
        ("dup 20%", Scenario::honest().with_duplicates(0.2)),
        ("drop 1%", Scenario::honest().with_dropout(0.01)),
        ("drop 5%", Scenario::honest().with_dropout(0.05)),
        ("drop 20%", Scenario::honest().with_dropout(0.2)),
        ("straggle 10%", Scenario::honest().with_stragglers(0.1, 3)),
        ("churn 0.5%/t", Scenario::honest().with_churn(0.005)),
        ("byzantine 5%", Scenario::honest().with_byzantine(0.05)),
        (
            "storm",
            Scenario::honest()
                .with_dropout(0.03)
                .with_stragglers(0.05, 3)
                .with_churn(0.002)
                .with_duplicates(0.03)
                .with_byzantine(0.02),
        ),
    ];

    let table = Table::new(&[
        ("scenario", 14),
        ("linf err", 10),
        ("vs honest", 10),
        ("on-time %", 10),
        ("late", 7),
        ("dup", 7),
        ("byz msgs", 9),
    ]);

    let mut honest_err = 0.0f64;
    for (name, scenario) in &scenarios {
        let mut err = 0.0;
        let mut ontime = 0.0;
        let (mut late, mut dup, mut byz) = (0u64, 0u64, 0u64);
        for s in 0..trials as u64 {
            let mut rng = SeedSequence::new(1_900 + s).rng();
            let pop = Population::generate(&gen, n, &mut rng);
            let out = run_scenario(&params, &pop, 2_000 + s, scenario);
            err += linf_error(&out.estimates, pop.true_counts()) / trials as f64;
            ontime += out.accepted_fraction() / trials as f64;
            late += out.delivery.iter().map(|r| r.late).sum::<u64>();
            dup += out.delivery.iter().map(|r| r.duplicate).sum::<u64>();
            byz += out.faults.byzantine_messages;
        }
        if *name == "honest" {
            honest_err = err;
        }
        table.row(&[
            (*name).to_string(),
            format!("{err:.1}"),
            format!("{:.2}x", err / honest_err),
            format!("{:.1}", 100.0 * ontime),
            format!("{}", late / trials as u64),
            format!("{}", dup / trials as u64),
            format!("{}", byz / trials as u64),
        ]);
    }

    println!(
        "\nresult: the server survives every scenario, duplicates are exactly free, and every \
         perturbed frame is accounted for in the delivery stats. PASS"
    );
}
