//! T5 — the preservation gap `c_gap` of the three randomizers, exactly.
//!
//! Paper claims:
//!   * Theorem 4.4 / Lemma 5.3 — FutureRand's composed randomizer has
//!     `c_gap ∈ Ω(ε/√k)`;
//!   * Example 4.2 — the naive independent randomizer has
//!     `c_gap = (e^{ε/k}−1)/(e^{ε/k}+1) ∈ Θ(ε/k)`;
//!   * Appendix A.2 / Theorem A.8 — the Bun et al. composed randomizer
//!     only reaches `O(ε/√(k·ln(k/ε)))`.
//!
//! Everything below is computed exactly (no sampling): the output law
//! depends on inputs only through Hamming-weight classes.
//!
//! Run with `cargo bench --bench exp_cgap`.

use rtf_baselines::bun::BunRandomizer;
use rtf_bench::{banner, loglog_slope, Table};
use rtf_core::gap::WeightClassLaw;

fn main() {
    banner(
        "T5",
        "exact c_gap comparison (no sampling)",
        "ours Omega(eps/sqrt k); naive Theta(eps/k); Bun et al. O(eps/sqrt(k ln(k/eps)))",
    );

    for &eps in &[0.25f64, 1.0] {
        println!("\n--- eps = {eps} ---");
        let table = Table::new(&[
            ("k", 6),
            ("ours", 11),
            ("naive", 11),
            ("bun", 11),
            ("ours/naive", 11),
            ("ours/bun", 9),
            ("ours*sqrt(k)/eps", 16),
        ]);
        let ks = [4usize, 16, 64, 256, 1024, 4096];
        let mut xs = Vec::new();
        let mut ours_series = Vec::new();
        for &k in &ks {
            let ours = WeightClassLaw::for_protocol(k, eps).c_gap();
            let naive = (eps / k as f64 / 2.0).tanh();
            let bun = BunRandomizer::solve(k, eps).map(|b| b.law().c_gap());
            xs.push(k as f64);
            ours_series.push(ours);
            table.row(&[
                k.to_string(),
                format!("{ours:.6}"),
                format!("{naive:.6}"),
                bun.map_or("n/a".into(), |b| format!("{b:.6}")),
                format!("{:.2}", ours / naive),
                bun.map_or("n/a".into(), |b| format!("{:.2}", ours / b)),
                format!("{:.4}", ours * (k as f64).sqrt() / eps),
            ]);
        }
        let slope = loglog_slope(&xs, &ours_series);
        println!("  c_gap ∝ k^slope: measured {slope:.3} (paper: -0.5)");
        assert!(
            (-0.6..=-0.4).contains(&slope),
            "c_gap slope {slope} outside the sqrt(k) band"
        );
    }

    println!("\ncrossover diagnostics (eps = 1):");
    let mut crossover = None;
    for k in 1..=128usize {
        let ours = WeightClassLaw::for_protocol(k, 1.0).c_gap();
        let naive = (1.0 / k as f64 / 2.0).tanh();
        if ours > naive && crossover.is_none() {
            crossover = Some(k);
        }
    }
    println!(
        "  composed beats naive independent from k = {} onward",
        crossover.map_or("n/a".into(), |k| k.to_string())
    );
    println!("  (asymptotically sqrt(k); constants put the crossover around k ≈ 40 at eps=1)");

    println!("\nresult: c_gap scaling Ω(eps/sqrt k) reproduced exactly. PASS");
}
