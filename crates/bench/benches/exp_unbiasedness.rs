//! T8 — unbiasedness of the server's estimator.
//!
//! Paper claims (Observation 4.3, Equation 12): `E[c_gap^{-1}·M(v)] = v`
//! for every input value, hence `E[Ŝ(I)] = S(I)` and `E[â[t]] = a[t]`.
//! Measured by averaging over many protocol runs on one fixed population
//! and comparing the bias against its Monte-Carlo confidence radius.
//!
//! Run with `cargo bench --bench exp_unbiasedness`.

use rtf_baselines::erlingsson::run_erlingsson;
use rtf_baselines::independent::run_independent;
use rtf_bench::{banner, trials_from_env, Table};
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_primitives::seeding::SeedSequence;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

fn mean_bias_and_sigma<F>(
    params: &ProtocolParams,
    pop: &Population,
    trials: u64,
    run: F,
) -> (f64, f64)
where
    F: Fn(&ProtocolParams, &Population, u64) -> ProtocolOutcome,
{
    let d = params.d() as usize;
    let mut mean = vec![0.0; d];
    let mut m2 = vec![0.0; d];
    for s in 0..trials {
        let o = run(params, pop, 40_000 + s);
        for (t, &e) in o.estimates().iter().enumerate() {
            mean[t] += e;
            m2[t] += e * e;
        }
    }
    // Worst absolute bias across periods, and its largest per-period
    // standard error (for the CI check).
    let mut worst_bias = 0.0f64;
    let mut worst_sigma = 0.0f64;
    for t in 0..d {
        let m = mean[t] / trials as f64;
        let var = (m2[t] / trials as f64 - m * m).max(0.0);
        let se = (var / trials as f64).sqrt();
        let bias = (m - pop.true_counts()[t]).abs();
        if bias > worst_bias {
            worst_bias = bias;
            worst_sigma = se;
        }
        worst_sigma = worst_sigma.max(se);
    }
    (worst_bias, worst_sigma)
}

fn main() {
    let trials = trials_from_env(10) as u64 * 60;
    let n = 600usize;
    let d = 16u64;
    let k = 3usize;
    let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
    let mut rng = SeedSequence::new(808).rng();
    let pop = Population::generate(&UniformChanges::new(d, k, 1.0), n, &mut rng);

    banner(
        "T8",
        &format!("estimator unbiasedness   (n={n}, d={d}, k={k}, {trials} runs per protocol)"),
        "Obs. 4.3 / Eq. 12: E[a^[t]] = a[t] for every t (exact c_gap on the server)",
    );

    let table = Table::new(&[
        ("protocol", 14),
        ("max |bias|", 12),
        ("5*std-err", 12),
        ("verdict", 10),
    ]);
    let mut all_pass = true;
    type Runner = Box<dyn Fn(&ProtocolParams, &Population, u64) -> ProtocolOutcome>;
    let cases: Vec<(&str, Runner)> = vec![
        ("future-rand", Box::new(run_future_rand_aggregate)),
        ("erlingsson20", Box::new(run_erlingsson)),
        ("independent", Box::new(run_independent)),
    ];
    for (name, run) in cases {
        let (bias, sigma) = mean_bias_and_sigma(&params, &pop, trials, run);
        // The worst of d periods: use a 5-sigma radius (Bonferroni-ish).
        let ok = bias <= 5.0 * sigma;
        all_pass &= ok;
        table.row(&[
            name.into(),
            format!("{bias:.2}"),
            format!("{:.2}", 5.0 * sigma),
            if ok {
                "unbiased".into()
            } else {
                "BIASED".into()
            },
        ]);
    }

    println!(
        "\nresult: {}",
        if all_pass {
            "all estimators are unbiased within Monte-Carlo resolution. PASS"
        } else {
            "BIAS DETECTED — investigate!"
        }
    );
    assert!(all_pass);
}
