//! P4 — cost of the exact log-domain mathematics.
//!
//! The server needs `c_gap` (and the audits need the full weight-class
//! law) once per `(k, ε)`; both are `O(k)` log-domain sweeps. This bench
//! tracks that cost up to `k = 2^20` to show the exact computation is
//! never a bottleneck.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtf_core::gap::WeightClassLaw;
use std::hint::black_box;

fn bench_exact_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_math");
    group.sample_size(15);
    for &k in &[1_000usize, 10_000, 100_000, 1_048_576] {
        group.bench_with_input(BenchmarkId::new("weight_class_law", k), &k, |b, &k| {
            b.iter(|| black_box(WeightClassLaw::for_protocol(black_box(k), 1.0)));
        });
        let law = WeightClassLaw::for_protocol(k, 1.0);
        group.bench_with_input(BenchmarkId::new("realized_epsilon", k), &k, |b, _| {
            b.iter(|| black_box(law.realized_epsilon()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_math);
criterion_main!(benches);
