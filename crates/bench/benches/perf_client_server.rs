//! P2 — client and server hot paths.
//!
//! * client: one `observe` step (per-period work on every device);
//! * server: one `ingest` (per report) and one `end_of_period`
//!   (per period, includes finalising completed intervals and the
//!   frontier prefix query).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rtf_core::client::Client;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::params::ProtocolParams;
use rtf_core::randomizer::FutureRand;
use rtf_core::server::Server;
use rtf_primitives::sign::{Sign, Ternary};
use std::hint::black_box;

fn bench_client(c: &mut Criterion) {
    let mut group = c.benchmark_group("client");
    group.sample_size(30);
    let d = 1024u64;
    let params = ProtocolParams::new(1000, d, 8, 1.0, 0.05).unwrap();
    let composed = ComposedRandomizer::for_protocol(8, 1.0);
    group.bench_function("observe_full_horizon_order0", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| {
            let m = FutureRand::init(d as usize, &composed, &mut rng);
            let mut client = Client::new(&params, 0, m);
            let mut acc = 0i64;
            for t in 1..=d {
                // All-zero derivative: every period emits a uniform bit.
                if let Some(r) = client.observe(t, Ternary::Zero, &mut rng) {
                    acc += i64::from(r.bit.value());
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.sample_size(30);
    let d = 1024u64;
    let params = ProtocolParams::new(100_000, d, 8, 1.0, 0.05).unwrap();
    group.bench_function("ingest_100k_reports", |b| {
        b.iter(|| {
            let mut server = Server::for_future_rand(params);
            for _ in 0..100_000u32 {
                server.ingest(0, Sign::Plus);
            }
            black_box(server.reports_ingested())
        });
    });
    group.bench_function("full_horizon_periods", |b| {
        b.iter(|| {
            let mut server = Server::for_future_rand(params);
            let mut last = 0.0;
            for t in 1..=d {
                server.ingest(0, Sign::Minus);
                last = server.end_of_period(t);
            }
            black_box(last)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_client, bench_server);
criterion_main!(benches);
