//! T1 — ℓ∞ error versus the change bound `k`.
//!
//! Paper claim (Theorem 4.1 vs Section 1): this paper's error scales as
//! `√k`, Erlingsson et al.'s as `k` — so the ratio grows as `√k` and
//! FutureRand eventually wins. The framework + Example 4.2 randomizer
//! ("independent") also scales as `k`, isolating the composed
//! randomizer's contribution.
//!
//! Run with `cargo bench --bench exp_error_vs_k`.

use rtf_baselines::erlingsson::run_erlingsson;
use rtf_baselines::independent::run_independent;
use rtf_bench::{banner, fmt, loglog_slope, measure_linf, trials_from_env, Table};
use rtf_core::bounds;
use rtf_core::params::ProtocolParams;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_streams::generator::UniformChanges;

fn main() {
    let n = 20_000usize;
    let d = 256u64;
    let eps = 1.0;
    let beta = 0.05;
    let trials = trials_from_env(10);

    banner(
        "T1",
        &format!("linf error vs k   (n={n}, d={d}, eps={eps}, {trials} trials)"),
        "ours O((log d/eps)*sqrt(k n ln(d/beta))) vs Erlingsson O((1/eps)(log d)^1.5 k sqrt(n log(d/beta)))",
    );

    let ks = [1usize, 2, 4, 8, 16, 32, 64];
    let table = Table::new(&[
        ("k", 4),
        ("future-rand", 12),
        ("(std)", 9),
        ("erlingsson", 12),
        ("independent", 12),
        ("erl/ours", 9),
        ("sqrt(k)", 8),
        ("bound-ratio", 11),
    ]);

    let mut xs = Vec::new();
    let (mut ours_series, mut erl_series, mut ind_series) = (Vec::new(), Vec::new(), Vec::new());
    for &k in &ks {
        let params = ProtocolParams::new(n, d, k, eps, beta).unwrap();
        let gen = UniformChanges::new(d, k, 1.0);
        let ours = measure_linf(
            params,
            &gen,
            trials,
            0xA1 + k as u64,
            run_future_rand_aggregate,
        );
        let erl = measure_linf(params, &gen, trials, 0xB1 + k as u64, run_erlingsson);
        let ind = measure_linf(params, &gen, trials, 0xC1 + k as u64, run_independent);
        xs.push(k as f64);
        ours_series.push(ours.mean());
        erl_series.push(erl.mean());
        ind_series.push(ind.mean());
        table.row(&[
            k.to_string(),
            fmt(ours.mean()),
            fmt(ours.std()),
            fmt(erl.mean()),
            fmt(ind.mean()),
            format!("{:.2}", erl.mean() / ours.mean()),
            format!("{:.2}", (k as f64).sqrt()),
            format!(
                "{:.2}",
                ours.mean() / bounds::future_rand_bound(n, d, k, eps, beta)
            ),
        ]);
    }

    let s_ours = loglog_slope(&xs, &ours_series);
    let s_erl = loglog_slope(&xs, &erl_series);
    let s_ind = loglog_slope(&xs, &ind_series);
    println!("\nshape: error ∝ k^slope");
    println!("  future-rand slope = {s_ours:.3}   (paper: 0.5)");
    println!("  erlingsson  slope = {s_erl:.3}   (paper: 1.0)");
    println!("  independent slope = {s_ind:.3}   (paper: ~1.0, Example 4.2)");
    let crossover = xs
        .iter()
        .zip(ours_series.iter().zip(&erl_series))
        .find(|(_, (o, e))| e > o)
        .map(|(k, _)| *k);
    println!(
        "  FutureRand overtakes Erlingsson at k ≈ {}",
        crossover.map_or("<not in sweep>".into(), |k| format!("{k}")),
    );

    let pass = (0.3..=0.7).contains(&s_ours) && s_erl > 0.75;
    println!(
        "\nresult: {}",
        if pass {
            "shape reproduced. PASS"
        } else {
            "UNEXPECTED SHAPE — see numbers above"
        }
    );
}
