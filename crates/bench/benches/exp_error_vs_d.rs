//! T2 — ℓ∞ error versus the horizon `d`.
//!
//! Paper claim (Theorem 4.1): error grows polylogarithmically in `d`
//! (`∝ log d` for ours, `∝ (log d)^{3/2}` for Erlingsson et al.), in
//! contrast with the naive `ε/d` split whose error grows linearly in `d`.
//!
//! Run with `cargo bench --bench exp_error_vs_d`.

use rtf_baselines::erlingsson::run_erlingsson;
use rtf_baselines::naive::run_naive_split;
use rtf_bench::{banner, fmt, loglog_slope, measure_linf, trials_from_env, Table};
use rtf_core::params::ProtocolParams;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_streams::generator::UniformChanges;

fn main() {
    let n = 20_000usize;
    let k = 8usize;
    let eps = 1.0;
    let beta = 0.05;
    let trials = trials_from_env(8);

    banner(
        "T2",
        &format!("linf error vs d   (n={n}, k={k}, eps={eps}, {trials} trials)"),
        "ours ∝ log d; Erlingsson ∝ (log d)^1.5; naive eps/d split ∝ d",
    );

    let ds = [16u64, 64, 256, 1024, 4096];
    let table = Table::new(&[
        ("d", 6),
        ("log2 d", 7),
        ("future-rand", 12),
        ("erlingsson", 12),
        ("naive-split", 12),
        ("ours/log d", 11),
        ("naive/ours", 11),
    ]);

    let mut log_ds = Vec::new();
    let mut ds_f = Vec::new();
    let (mut ours_series, mut erl_series, mut naive_series) = (Vec::new(), Vec::new(), Vec::new());
    for &d in &ds {
        let params = ProtocolParams::new(n, d, k, eps, beta).unwrap();
        let gen = UniformChanges::new(d, k, 1.0);
        let ours = measure_linf(params, &gen, trials, 0xD1 + d, run_future_rand_aggregate);
        let erl = measure_linf(params, &gen, trials, 0xE1 + d, run_erlingsson);
        let naive = measure_linf(params, &gen, trials, 0xF1 + d, run_naive_split);
        let log_d = (d as f64).log2();
        log_ds.push(log_d);
        ds_f.push(d as f64);
        ours_series.push(ours.mean());
        erl_series.push(erl.mean());
        naive_series.push(naive.mean());
        table.row(&[
            d.to_string(),
            format!("{log_d:.0}"),
            fmt(ours.mean()),
            fmt(erl.mean()),
            fmt(naive.mean()),
            fmt(ours.mean() / log_d),
            format!("{:.2}", naive.mean() / ours.mean()),
        ]);
    }

    // Shape in log d: ours should be ≈ linear in log d (slope ≈ 1 in
    // ln(log d)); Erlingsson ≈ 1.5; naive ≈ linear in d (slope 1 in ln d).
    let s_ours = loglog_slope(&log_ds, &ours_series);
    let s_erl = loglog_slope(&log_ds, &erl_series);
    let s_naive_in_d = loglog_slope(&ds_f, &naive_series);
    println!("\nshape: error ∝ (log d)^slope   [naive measured against d itself]");
    println!("  future-rand slope in log d = {s_ours:.3}   (paper: ~1, plus the sqrt(ln(d/beta)) factor)");
    println!("  erlingsson  slope in log d = {s_erl:.3}   (paper: ~1.5, plus the same factor)");
    println!("  naive-split slope in d     = {s_naive_in_d:.3}   (theory: ~1)");
    // The √ln(d/β) factor inflates both polylog slopes a little; accept a
    // generous band and require the separations.
    let pass = s_ours < s_erl && s_naive_in_d > 0.7 && (0.6..=2.0).contains(&s_ours);
    println!(
        "\nresult: {}",
        if pass {
            "shape reproduced. PASS"
        } else {
            "UNEXPECTED SHAPE — see numbers above"
        }
    );
}
