//! T7 — the pre-computation trick: online FutureRand ≡ offline `R̃`.
//!
//! Paper claim (Sections 5.3–5.4): drawing `b̃ = R̃(1^k)` ahead of time
//! and emitting `v_j · b̃_nnz` online yields *exactly* the law of the
//! offline composed randomizer applied to the non-zero coordinates —
//! including when the input has fewer than `k` non-zeros.
//!
//! Checks here:
//!   1. exact output pmf of the online algorithm (closed form) vs Monte
//!      Carlo of the real implementation (chi-square);
//!   2. the two sampling paths of `R̃` (literal per-coordinate vs
//!      weight-class) agree (chi-square on weight histograms);
//!   3. per-coordinate marginals: gap `c_gap` on support, exactly `½` off
//!      support.
//!
//! Run with `cargo bench --bench exp_online_offline`.

use rand::SeedableRng;
use rtf_analysis::distribution::futurerand_output_pmf;
use rtf_analysis::stats::{chi_square_critical_999, chi_square_stat, tv_distance};
use rtf_bench::{banner, trials_from_env, Table};
use rtf_core::composed::ComposedRandomizer;
use rtf_core::gap::WeightClassLaw;
use rtf_core::randomizer::{FutureRand, LocalRandomizer};
use rtf_primitives::sign::{Sign, Ternary};

fn main() {
    let draws = trials_from_env(10) * 20_000;
    banner(
        "T7",
        &format!("online FutureRand ≡ offline composed randomizer ({draws} draws per case)"),
        "Sections 5.3-5.4: the pre-computed b~ makes the online law identical to the offline one",
    );

    println!("\n(1) online implementation vs exact offline pmf (chi-square / TV):\n");
    let table = Table::new(&[
        ("L", 4),
        ("k", 4),
        ("|supp|", 7),
        ("chi2", 10),
        ("crit(99.9%)", 12),
        ("TV", 9),
        ("verdict", 8),
    ]);
    let cases: Vec<(usize, usize, Vec<Ternary>)> = vec![
        (
            4,
            2,
            vec![Ternary::Plus, Ternary::Zero, Ternary::Minus, Ternary::Zero],
        ),
        (
            4,
            2,
            vec![Ternary::Zero, Ternary::Plus, Ternary::Zero, Ternary::Zero],
        ), // |supp| < k
        (4, 2, vec![Ternary::Zero; 4]), // |supp| = 0
        (
            6,
            3,
            vec![
                Ternary::Minus,
                Ternary::Zero,
                Ternary::Plus,
                Ternary::Zero,
                Ternary::Minus,
                Ternary::Zero,
            ],
        ),
    ];
    let mut all_pass = true;
    for (case_idx, (l, k, v)) in cases.into_iter().enumerate() {
        let exact = futurerand_output_pmf(l, k, 1.0, &v);
        let composed = ComposedRandomizer::for_protocol(k, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(900 + case_idx as u64);
        let mut counts = vec![0u64; 1 << l];
        for _ in 0..draws {
            let mut m = FutureRand::init(l, &composed, &mut rng);
            let mut omega = 0usize;
            for (j, &vj) in v.iter().enumerate() {
                if m.next(vj, &mut rng) == Sign::Plus {
                    omega |= 1 << j;
                }
            }
            counts[omega] += 1;
        }
        let expected: Vec<f64> = exact.iter().map(|p| p * draws as f64).collect();
        let (chi2, dof) = chi_square_stat(&counts, &expected, 5.0);
        let crit = chi_square_critical_999(dof);
        let empirical: Vec<f64> = counts.iter().map(|&c| c as f64 / draws as f64).collect();
        let tv = tv_distance(&empirical, &exact);
        let ok = chi2 < crit;
        all_pass &= ok;
        table.row(&[
            l.to_string(),
            k.to_string(),
            v.iter().filter(|t| t.is_nonzero()).count().to_string(),
            format!("{chi2:.1}"),
            format!("{crit:.1}"),
            format!("{tv:.4}"),
            if ok { "ok".into() } else { "MISMATCH".into() },
        ]);
    }

    println!("\n(2) literal per-coordinate path vs weight-class path of R~:\n");
    let t2 = Table::new(&[("k", 4), ("chi2", 10), ("crit(99.9%)", 12), ("verdict", 8)]);
    for &k in &[6usize, 12] {
        let r = ComposedRandomizer::for_protocol(k, 0.8);
        let b = vec![Sign::Minus; k];
        let mut rng = rand::rngs::StdRng::seed_from_u64(77 + k as u64);
        let mut literal = vec![0u64; k + 1];
        let mut by_class = vec![0u64; k + 1];
        for _ in 0..draws {
            let hamming = |out: &[Sign]| out.iter().zip(&b).filter(|(x, y)| x != y).count();
            literal[hamming(&r.randomize(&b, &mut rng))] += 1;
            by_class[hamming(&r.randomize_weight_class(&b, &mut rng))] += 1;
        }
        // Compare the literal path against the exact law.
        let expected: Vec<f64> = (0..=k)
            .map(|w| r.law().class_prob(w) * draws as f64)
            .collect();
        let (chi_a, dof_a) = chi_square_stat(&literal, &expected, 5.0);
        let (chi_b, dof_b) = chi_square_stat(&by_class, &expected, 5.0);
        let (crit_a, crit_b) = (
            chi_square_critical_999(dof_a),
            chi_square_critical_999(dof_b),
        );
        let ok = chi_a < crit_a && chi_b < crit_b;
        all_pass &= ok;
        t2.row(&[
            k.to_string(),
            format!("{chi_a:.1}/{chi_b:.1}"),
            format!("{crit_a:.1}"),
            if ok { "ok".into() } else { "MISMATCH".into() },
        ]);
    }

    println!("\n(3) per-coordinate marginals of the online randomizer:\n");
    let t3 = Table::new(&[
        ("k", 4),
        ("measured gap", 13),
        ("exact c_gap", 12),
        ("zero-slot bias", 15),
        ("verdict", 8),
    ]);
    for &k in &[2usize, 5] {
        let composed = ComposedRandomizer::for_protocol(k, 1.0);
        let exact = WeightClassLaw::for_protocol(k, 1.0).c_gap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(55 + k as u64);
        let mut gap_acc = 0i64;
        let mut zero_acc = 0i64;
        for _ in 0..draws {
            let mut m = FutureRand::init(3, &composed, &mut rng);
            let out_nz = m.next(Ternary::Minus, &mut rng);
            let out_zero = m.next(Ternary::Zero, &mut rng);
            gap_acc += if out_nz == Sign::Minus { 1 } else { -1 };
            zero_acc += if out_zero == Sign::Plus { 1 } else { -1 };
        }
        let gap = gap_acc as f64 / draws as f64;
        let zero_bias = zero_acc as f64 / draws as f64;
        let tol = 6.0 / (draws as f64).sqrt();
        let ok = (gap - exact).abs() < tol && zero_bias.abs() < tol;
        all_pass &= ok;
        t3.row(&[
            k.to_string(),
            format!("{gap:.5}"),
            format!("{exact:.5}"),
            format!("{zero_bias:.5}"),
            if ok { "ok".into() } else { "MISMATCH".into() },
        ]);
    }

    println!(
        "\nresult: {}",
        if all_pass {
            "online and offline laws agree everywhere. PASS"
        } else {
            "DISTRIBUTION MISMATCH — investigate!"
        }
    );
    assert!(all_pass);
}
