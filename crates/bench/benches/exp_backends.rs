//! T21 — the accumulator storage-engine trade-off surface.
//!
//! The server of Algorithm 2 is a running ±1 sum per open dyadic
//! interval; *how those sums are laid out in memory* is a free design
//! axis the paper never pins down. This experiment measures every
//! backend behind the `rtf_core::accumulator` seam — dense `f64`,
//! fixed-point `i64`, compressed sparse, SoA count lanes — over an
//! `(n, d)` grid that includes a large-`log d` regime (the
//! Bassily–Smith succinct-histogram setting), recording wall time and
//! the resident bytes of the pipeline's accumulation state.
//!
//! Every timed run is asserted **value-for-value identical** to the
//! dense baseline before its numbers are accepted: all four layouts
//! store integer-valued sums exactly, so agreement is exact equality,
//! never tolerance.
//!
//! The run also measures the **sparse batched folds** optimisation
//! (`ReportBatch::fold_into` pre-aggregates rows into a per-order
//! scratch and issues one `record_batch` per touched order, instead of
//! one binary-searching `record` per row): the before/after timing on
//! the sparse backend is recorded in the JSON's `fold` section, with
//! the two paths asserted bit-identical first. The **bit-packed
//! sign-lane fold** (word-at-a-time popcounts over `SignLane` vs one
//! decoded sign per row) is measured the same way on the SoA count
//! lanes and recorded under `fold_packed`.
//!
//! Machine-readable output: `BENCH_backends.json` at the repository
//! root (validated by the CI smoke step and enforced as a baseline by
//! the CI perf-regression gate, `scripts/perf_gate.py`), including the
//! headline check that the sparse backend beats dense on memory once
//! `log d` is large.
//!
//! Run with `cargo bench --bench exp_backends` (full) or
//! `cargo bench --bench exp_backends -- --smoke` (same grid — the grid
//! is already CI-sized — so every smoke row is directly comparable
//! against the committed baseline; only the fold micro-bench shrinks).

use rtf_bench::{banner, Table};
use rtf_core::accumulator::Accumulator;
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_primitives::sign::Sign;
use rtf_runtime::{ExecMode, ReportBatch, SignLane};
use rtf_sim::engine::{run_event_driven_with_backend, EventDrivenOutcome};
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;
use std::time::Instant;

#[derive(Clone)]
struct Row {
    backend: AccumulatorKind,
    n: usize,
    d: u64,
    elapsed_s: f64,
    reports: u64,
    reports_per_s: f64,
    acc_bytes: u64,
}

fn measure(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    backend: AccumulatorKind,
) -> (Row, EventDrivenOutcome) {
    // Parallel(1): the batched pipeline on one worker — the per-period
    // shard accumulators whose layout the backends differ on, with no
    // threading noise (the bench box is single-core; any win must be
    // layout-driven).
    let start = Instant::now();
    let outcome =
        run_event_driven_with_backend(params, population, seed, ExecMode::Parallel(1), backend);
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    let reports = outcome.wire.payload_bits;
    (
        Row {
            backend,
            n: params.n(),
            d: params.d(),
            elapsed_s,
            reports,
            reports_per_s: reports as f64 / elapsed_s,
            acc_bytes: outcome.acc_bytes,
        },
        outcome,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("RTF_BACKENDS_SMOKE").is_ok_and(|v| v == "1");
    // Each grid point pairs a throughput-shaped regime (modest d, large
    // n) with a large-log d regime (d = 4096 ⇒ 13 orders) where the
    // sparse layout's compressed per-period maps pay off. The grid is
    // cheap enough to run whole in CI, so smoke keeps it — every smoke
    // row differences exactly against the committed baseline.
    let grid: &[(usize, u64)] = &[(100_000, 64), (4_000, 4_096)];
    let fold_repeats: usize = if smoke { 50 } else { 400 };
    let k = 4usize;

    banner(
        "T21",
        &format!(
            "accumulator storage backends (k={k}, grid {grid:?}{})",
            if smoke { ", SMOKE" } else { "" }
        ),
        "one seam, four exact layouts: fixed-point for bit-exactness, sparse for large log d \
         memory, SoA for integer-increment hot paths — all value-for-value identical to dense",
    );

    let table = Table::new(&[
        ("n", 8),
        ("d", 6),
        ("backend", 8),
        ("wall s", 9),
        ("Mrep/s", 9),
        ("acc KiB", 9),
        ("vs dense", 9),
    ]);

    let mut rows: Vec<Row> = Vec::new();
    for &(n, d) in grid {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).expect("valid parameters");
        let mut rng = SeedSequence::new(21_000 + n as u64).rng();
        let population = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);

        let (dense_row, baseline) = measure(&params, &population, 42, AccumulatorKind::Dense);
        let dense_bytes = dense_row.acc_bytes;
        for backend in AccumulatorKind::ALL {
            let (row, outcome) = if backend == AccumulatorKind::Dense {
                // Reuse the baseline measurement rather than re-timing.
                (dense_row.clone(), None)
            } else {
                let (row, outcome) = measure(&params, &population, 42, backend);
                (row, Some(outcome))
            };
            if let Some(outcome) = &outcome {
                assert_eq!(
                    outcome.estimates, baseline.estimates,
                    "{backend} must match dense exactly before its numbers count"
                );
                assert_eq!(outcome.wire, baseline.wire, "{backend} wire stats");
            }
            table.row(&[
                format!("{n}"),
                format!("{d}"),
                row.backend.to_string(),
                format!("{:.2}", row.elapsed_s),
                format!("{:.2}", row.reports_per_s / 1e6),
                format!("{:.1}", row.acc_bytes as f64 / 1024.0),
                format!("{:.2}x", row.acc_bytes as f64 / dense_bytes as f64),
            ]);
            rows.push(row);
        }
    }

    // The acceptance check: in the large-log d regime the compressed
    // sparse layout must beat dense on resident accumulator bytes.
    let large_d = grid.iter().map(|&(_, d)| d).max().expect("non-empty grid");
    let bytes_of = |backend: AccumulatorKind| {
        rows.iter()
            .find(|r| r.d == large_d && r.backend == backend)
            .expect("grid covers every backend")
            .acc_bytes
    };
    assert!(
        bytes_of(AccumulatorKind::Sparse) < bytes_of(AccumulatorKind::Dense),
        "sparse ({} B) must beat dense ({} B) on memory at d = {large_d}",
        bytes_of(AccumulatorKind::Sparse),
        bytes_of(AccumulatorKind::Dense),
    );

    // The sparse-batched-folds before/after: one large mixed-order batch
    // folded into a sparse accumulator row-by-row (one binary search per
    // row) vs pre-aggregated (one `record_batch` per touched order).
    let fold_rows = 8_192usize;
    let fold_orders = 13u8; // the d = 4096 regime: 13 orders
    let mut fold_batch = ReportBatch::with_capacity(fold_rows);
    for i in 0..fold_rows {
        // Period-like skew: order h carries ~2^-h of the traffic.
        let mut h = 0u8;
        let mut bits = i;
        while bits % 2 == 1 && h + 1 < fold_orders {
            h += 1;
            bits /= 2;
        }
        let sign = if i % 3 == 0 { Sign::Minus } else { Sign::Plus };
        fold_batch.push(i as u32, h, sign);
    }
    // Equivalence first: a speedup for a wrong answer is worthless.
    let mut fast = AccumulatorKind::Sparse.new_accumulator(fold_orders as usize);
    let mut slow = AccumulatorKind::Sparse.new_accumulator(fold_orders as usize);
    fold_batch.fold_into(&mut fast);
    fold_batch.fold_into_rows(&mut slow);
    for h in 0..u32::from(fold_orders) {
        assert_eq!(
            fast.order_sum(h),
            slow.order_sum(h),
            "fold paths diverge at order {h}"
        );
    }
    assert_eq!(fast.reports(), slow.reports());

    let time_folds = |preaggregated: bool| -> f64 {
        let start = Instant::now();
        for _ in 0..fold_repeats {
            let mut acc = AccumulatorKind::Sparse.new_accumulator(fold_orders as usize);
            if preaggregated {
                fold_batch.fold_into(&mut acc);
            } else {
                fold_batch.fold_into_rows(&mut acc);
            }
            assert_eq!(acc.reports(), fold_rows as u64);
        }
        start.elapsed().as_secs_f64().max(1e-9)
    };
    let row_by_row_s = time_folds(false);
    let preaggregated_s = time_folds(true);
    let fold_speedup = row_by_row_s / preaggregated_s;
    println!(
        "\nsparse batched folds ({fold_rows} rows x {fold_repeats} folds, {fold_orders} orders): \
         row-by-row {row_by_row_s:.4}s vs pre-aggregated {preaggregated_s:.4}s => {fold_speedup:.2}x"
    );

    // The bit-packed sign-lane fold on the SoA count lanes: `fold_into`
    // run-detects order runs and popcounts the packed sign words
    // (64 signs per load), where the row reference decodes one sign per
    // row. The batch is built order-major through `extend_packed` — the
    // shape the span-batched client emission actually produces (one
    // order per bulk append), where runs are long enough for word ops
    // to pay. Equivalence on SoA first, then the before/after timing.
    let mut lane = SignLane::new();
    for i in 0..fold_rows {
        lane.push(if i % 3 == 0 { Sign::Minus } else { Sign::Plus });
    }
    let users: Vec<u32> = (0..fold_rows as u32).collect();
    let mut packed_batch = ReportBatch::with_capacity(fold_rows);
    let mut at = 0usize;
    for h in 0..fold_orders {
        // Order h carries ~2^-(h+1) of the traffic, like a dyadic period.
        let span = ((fold_rows - at) / 2).max(1).min(fold_rows - at);
        packed_batch.extend_packed(&users[at..at + span], h, &lane, at..at + span);
        at += span;
        if at == fold_rows {
            break;
        }
    }
    packed_batch.extend_packed(&users[at..], 0, &lane, at..fold_rows);
    let mut fast = AccumulatorKind::Soa.new_accumulator(fold_orders as usize);
    let mut slow = AccumulatorKind::Soa.new_accumulator(fold_orders as usize);
    packed_batch.fold_into(&mut fast);
    packed_batch.fold_into_rows(&mut slow);
    for h in 0..u32::from(fold_orders) {
        assert_eq!(
            fast.order_sum(h),
            slow.order_sum(h),
            "packed fold paths diverge at order {h}"
        );
    }
    assert_eq!(fast.reports(), slow.reports());
    let time_packed = |packed: bool| -> f64 {
        let start = Instant::now();
        for _ in 0..fold_repeats {
            let mut acc = AccumulatorKind::Soa.new_accumulator(fold_orders as usize);
            if packed {
                packed_batch.fold_into(&mut acc);
            } else {
                packed_batch.fold_into_rows(&mut acc);
            }
            assert_eq!(acc.reports(), fold_rows as u64);
        }
        start.elapsed().as_secs_f64().max(1e-9)
    };
    let packed_row_s = time_packed(false);
    let packed_word_s = time_packed(true);
    let packed_speedup = packed_row_s / packed_word_s;
    println!(
        "packed sign-lane folds on soa ({fold_rows} rows x {fold_repeats} folds): \
         per-row {packed_row_s:.4}s vs word-at-a-time {packed_word_s:.4}s => {packed_speedup:.2}x"
    );

    // Machine-readable output at the repository root.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"exp_backends\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"n\": {}, \"d\": {}, \"log_d\": {}, \
             \"elapsed_s\": {:.6}, \"reports\": {}, \"reports_per_s\": {:.1}, \
             \"acc_bytes\": {}}}{}\n",
            r.backend,
            r.n,
            r.d,
            r.d.ilog2(),
            r.elapsed_s,
            r.reports,
            r.reports_per_s,
            r.acc_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"fold\": {{\"backend\": \"sparse\", \"rows\": {fold_rows}, \
         \"orders\": {fold_orders}, \"repeats\": {fold_repeats}, \
         \"row_by_row_s\": {row_by_row_s:.6}, \"preaggregated_s\": {preaggregated_s:.6}, \
         \"speedup\": {fold_speedup:.4}}},\n"
    ));
    json.push_str(&format!(
        "  \"fold_packed\": {{\"backend\": \"soa\", \"rows\": {fold_rows}, \
         \"orders\": {fold_orders}, \"repeats\": {fold_repeats}, \
         \"per_row_s\": {packed_row_s:.6}, \"word_s\": {packed_word_s:.6}, \
         \"speedup\": {packed_speedup:.4}}}\n"
    ));
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backends.json");
    std::fs::write(path, &json).expect("write BENCH_backends.json");

    let sparse_ratio =
        bytes_of(AccumulatorKind::Sparse) as f64 / bytes_of(AccumulatorKind::Dense) as f64;
    println!(
        "\nresult: all four backends reproduced the dense estimates exactly; at d = {large_d} \
         the sparse layout holds {:.0}% of dense's accumulator bytes. wrote BENCH_backends.json. \
         PASS",
        100.0 * sparse_ratio
    );
}
