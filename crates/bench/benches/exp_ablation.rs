//! T9 — ablations over FutureRand's design choices.
//!
//! Four knobs, each isolating one design decision of Section 5:
//!
//!   (a) **annulus conditioning** — without the resample step, composing
//!       `k` copies of `RR(ε̃)` spends `k·ε̃ = ε√k/5` of budget, blowing
//!       past `ε` for `k > 25`; the annulus buys the `√k` composition.
//!   (b) **the constant in `ε̃ = ε/(c√k)`** — the paper proves `c = 5`
//!       suffices; the exact audit shows how much slack that leaves and
//!       what a tighter constant would buy in `c_gap`.
//!   (c) **hierarchy** — replacing the dyadic hierarchy with flat
//!       per-period reporting (everyone at order 0) makes the error grow
//!       with `√t` instead of `polylog d`.
//!   (d) **per-order `k_eff = min(k, L)`** — the bounded-support argument
//!       (Section 5.4) lets high orders use a smaller sparsity parameter;
//!       compare against instantiating every order with the global `k`.
//!
//! Run with `cargo bench --bench exp_ablation`.

use rtf_bench::{banner, fmt, measure_linf, trials_from_env, Table};
use rtf_core::client::Client;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::gap::WeightClassLaw;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_core::randomizer::{FutureRand, LocalRandomizer};
use rtf_core::server::Server;
use rtf_primitives::seeding::SeedSequence;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

/// Flat variant: every user reports every period at order 0; the server
/// integrates per-period sums. Unbiased, but the noise accumulates.
fn run_flat(params: &ProtocolParams, population: &Population, seed: u64) -> ProtocolOutcome {
    let d = params.d();
    let k = params.k();
    let composed = ComposedRandomizer::for_protocol(k, params.epsilon());
    let c_gap = composed.c_gap();
    let root = SeedSequence::new(seed);
    let mut per_period = vec![0.0f64; d as usize + 1];
    for u in 0..params.n() {
        let mut rng = root.child(u as u64).rng();
        let mut m = FutureRand::init(d as usize, &composed, &mut rng);
        let x = population.stream(u).derivative();
        for t in 1..=d {
            let bit = m.next(x.at(t), &mut rng);
            per_period[t as usize] += bit.as_f64();
        }
    }
    let mut estimates = Vec::with_capacity(d as usize);
    let mut acc = 0.0;
    for &sum in per_period.iter().skip(1) {
        acc += sum / c_gap;
        estimates.push(acc);
    }
    ProtocolOutcome::from_parts(estimates, vec![params.n()], params.n() as u64 * d)
}

/// Hierarchical variant with the *global* `k` at every order (no
/// `min(k, L)` refinement).
fn run_global_k(params: &ProtocolParams, population: &Population, seed: u64) -> ProtocolOutcome {
    let k = params.k();
    let composed = ComposedRandomizer::for_protocol(k, params.epsilon());
    let gaps = vec![composed.c_gap(); params.num_orders() as usize];
    let mut server = Server::new(*params, &gaps);
    let root = SeedSequence::new(seed);
    let mut groups: Vec<Vec<(usize, Client<FutureRand>, rand::rngs::StdRng)>> =
        (0..params.num_orders()).map(|_| Vec::new()).collect();
    for u in 0..params.n() {
        let mut rng = root.child(u as u64).rng();
        let h = Client::<FutureRand>::sample_order(params, &mut rng);
        server.register_user(h);
        let m = FutureRand::init(params.sequence_len(h), &composed, &mut rng);
        groups[h as usize].push((u, Client::new(params, h, m), rng));
    }
    for t in 1..=params.d() {
        let max_h = t.trailing_zeros().min(params.log_d());
        for h in 0..=max_h {
            let stride = 1u64 << h;
            for (u, client, rng) in groups[h as usize].iter_mut() {
                let x = population.stream(*u).derivative();
                let mut report = None;
                for tt in (t - stride + 1)..=t {
                    report = client.observe(tt, x.at(tt), rng);
                }
                server.ingest(h, report.expect("boundary").bit);
            }
        }
        let _ = server.end_of_period(t);
    }
    ProtocolOutcome::from_parts(
        server.estimates().to_vec(),
        server.group_sizes().to_vec(),
        0,
    )
}

fn main() {
    let trials = trials_from_env(8);

    banner(
        "T9",
        "design ablations: annulus, eps~ constant, hierarchy, per-order k_eff",
        "Section 5's choices are necessary: each ablation loses privacy or accuracy",
    );

    // ---- (a) annulus conditioning on/off (exact, no sampling) ----------
    println!("\n(a) annulus conditioning (exact):\n");
    let ta = Table::new(&[
        ("k", 6),
        ("gap(cond)", 11),
        ("gap(uncond)", 12),
        ("eps(cond)", 10),
        ("eps(uncond)", 12),
        ("uncond ok?", 11),
    ]);
    for &k in &[4usize, 16, 25, 64, 256, 1024] {
        let eps = 1.0;
        let law = WeightClassLaw::for_protocol(k, eps);
        let eps_tilde = law.eps_tilde();
        // Unconditioned product of k independent RR(ε̃): realized ε is
        // exactly k·ε̃; gap is tanh(ε̃/2).
        let uncond_eps = k as f64 * eps_tilde;
        let uncond_gap = (eps_tilde / 2.0).tanh();
        ta.row(&[
            k.to_string(),
            format!("{:.6}", law.c_gap()),
            format!("{uncond_gap:.6}"),
            format!("{:.3}", law.realized_epsilon()),
            format!("{uncond_eps:.3}"),
            if uncond_eps <= eps {
                "yes".into()
            } else {
                "VIOLATES eps".into()
            },
        ]);
    }
    println!("  → the conditioning keeps ~the same gap while capping the privacy loss at eps.");

    // ---- (b) the constant in ε̃ = ε/(c√k) ------------------------------
    println!(
        "\n(b) constant sweep eps~ = eps/(c*sqrt k), exact realized eps (worst over k grid):\n"
    );
    let tb = Table::new(&[
        ("c", 6),
        ("worst realized/eps", 19),
        ("gap at k=64", 12),
        ("vs c=5", 8),
        ("eps-LDP?", 9),
    ]);
    let k_grid = [1usize, 2, 4, 8, 16, 64, 256, 1024, 4096];
    let gap_c5 = WeightClassLaw::new(64, 1.0 / (5.0 * 8.0)).c_gap();
    let mut best_feasible_c = f64::INFINITY;
    for &c in &[2.0f64, 2.25, 2.5, 3.0, 4.0, 5.0, 6.0] {
        let mut worst = 0.0f64;
        for &k in &k_grid {
            let et = 1.0 / (c * (k as f64).sqrt());
            let realized = WeightClassLaw::new(k, et).realized_epsilon();
            worst = worst.max(realized);
        }
        let gap64 = WeightClassLaw::new(64, 1.0 / (c * 8.0)).c_gap();
        let ok = worst <= 1.0 + 1e-9;
        if ok {
            best_feasible_c = best_feasible_c.min(c);
        }
        tb.row(&[
            format!("{c}"),
            format!("{worst:.3}"),
            format!("{gap64:.6}"),
            format!("{:.2}x", gap64 / gap_c5),
            if ok { "yes".into() } else { "no".into() },
        ]);
    }
    println!(
        "  → the paper's c = 5 is safe but conservative; c ≈ {best_feasible_c} already \
         suffices on this grid, roughly doubling c_gap."
    );

    // ---- (c) hierarchy vs flat reporting -------------------------------
    // Flat error integrates per-period noise (∝ √(d·n)), the hierarchy
    // pays polylog d; the gap widens with d, so measure at d = 1024.
    let n = 20_000usize;
    let d = 1024u64;
    let k = 8usize;
    let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
    let gen = UniformChanges::new(d, k, 1.0);
    println!(
        "\n(c) hierarchy vs flat per-period reporting (n={n}, d={d}, k={k}, {trials} trials):\n"
    );
    let hier = measure_linf(params, &gen, trials, 0x9A, run_future_rand_aggregate);
    let flat = measure_linf(params, &gen, trials, 0x9B, run_flat);
    let tc = Table::new(&[
        ("variant", 14),
        ("linf error", 12),
        ("(std)", 10),
        ("vs hier", 9),
    ]);
    tc.row(&[
        "hierarchical".into(),
        fmt(hier.mean()),
        fmt(hier.std()),
        "1.00x".into(),
    ]);
    tc.row(&[
        "flat".into(),
        fmt(flat.mean()),
        fmt(flat.std()),
        format!("{:.2}x", flat.mean() / hier.mean()),
    ]);
    println!("  → flat error integrates noise over time (∝ sqrt(d·n)/c_gap), the hierarchy caps it at polylog d.");

    // ---- (d) per-order k_eff = min(k, L) vs global k --------------------
    let n2 = 6_000usize;
    let d = 256u64;
    let params2 = ProtocolParams::new(n2, d, k, 1.0, 0.05).unwrap();
    let gen = UniformChanges::new(d, k, 1.0);
    println!(
        "\n(d) per-order k_eff = min(k, L) vs global k (n={n2}, d={d}, k={k}, {trials} trials):\n"
    );
    let per_order = measure_linf(params2, &gen, trials, 0x9C, run_future_rand_aggregate);
    let global = measure_linf(params2, &gen, trials, 0x9D, run_global_k);
    let td = Table::new(&[
        ("variant", 16),
        ("linf error", 12),
        ("(std)", 10),
        ("vs k_eff", 9),
    ]);
    td.row(&[
        "k_eff=min(k,L)".into(),
        fmt(per_order.mean()),
        fmt(per_order.std()),
        "1.00x".into(),
    ]);
    td.row(&[
        "global k".into(),
        fmt(global.mean()),
        fmt(global.std()),
        format!("{:.2}x", global.mean() / per_order.mean()),
    ]);
    println!("  → a mild but free win: high orders have short sequences, so their randomizers can use smaller k.");

    println!("\nresult: ablations quantified. PASS");
}
