//! T12 — richer domains: categorical frequency tracking and heavy
//! hitters via element sampling.
//!
//! Paper context (Section 1): "our algorithm can be adapted to solve
//! frequency estimation and heavy hitter problems in richer domains via
//! existing techniques". The element-sampled adaptation (`rtf-domain`)
//! inherits `ε`-LDP and pays `√D` in per-element error:
//! each element is estimated from `≈ n/D` users and rescaled by `D`, so
//! per-element error `∝ D·√(n/D)·scale = √(D·n)·scale`.
//!
//! Run with `cargo bench --bench exp_domain`.

use rtf_bench::{banner, fmt, loglog_slope, trials_from_env, Table};
use rtf_domain::generator::ZipfChurn;
use rtf_domain::heavy::precision_at_r;
use rtf_domain::protocol::{run_domain_tracker, DomainParams};
use rtf_primitives::seeding::SeedSequence;

fn max_element_error(
    outcome: &rtf_domain::protocol::DomainOutcome,
    pop: &rtf_domain::population::CategoricalPopulation,
) -> f64 {
    outcome
        .estimates()
        .iter()
        .zip(pop.true_counts())
        .flat_map(|(est, truth)| est.iter().zip(truth).map(|(e, t)| (e - t).abs()))
        .fold(0.0, f64::max)
}

fn main() {
    let trials = trials_from_env(6);
    banner(
        "T12",
        "categorical domains: error vs D, heavy hitters vs n",
        "element sampling inherits eps-LDP; per-element error ~ sqrt(D n); top-1 recovery improves with n",
    );

    // ---- (a) error vs domain size D ------------------------------------
    let n = 60_000usize;
    let d = 64u64;
    let k = 2usize;
    println!(
        "\n(a) max per-element error vs domain size D (n={n}, d={d}, k={k}, {trials} trials):\n"
    );
    let ta = Table::new(&[
        ("D", 5),
        ("max |err|", 11),
        ("err/sqrt(D)", 12),
        ("min assigned", 13),
    ]);
    let mut xs = Vec::new();
    let mut series = Vec::new();
    for &dom in &[2u32, 4, 8, 16, 32] {
        let params = DomainParams {
            n,
            d,
            k,
            domain: dom,
            epsilon: 1.0,
            beta: 0.05,
            calibrated: false,
        };
        let g = ZipfChurn::new(d, dom, k, 1.0);
        let mut err = 0.0;
        let mut min_assigned = usize::MAX;
        for s in 0..trials as u64 {
            let mut rng = SeedSequence::new(500 + s).rng();
            let pop = g.population(n, &mut rng);
            let o = run_domain_tracker(&params, &pop, 900 + s);
            err += max_element_error(&o, &pop) / trials as f64;
            min_assigned = min_assigned.min(*o.assigned().iter().min().unwrap());
        }
        xs.push(dom as f64);
        series.push(err);
        ta.row(&[
            dom.to_string(),
            fmt(err),
            fmt(err / (dom as f64).sqrt()),
            min_assigned.to_string(),
        ]);
    }
    let slope = loglog_slope(&xs, &series);
    println!("  error ∝ D^slope: measured {slope:.3} (theory: 0.5)");

    // ---- (b) heavy-hitter precision vs n --------------------------------
    let dom = 8u32;
    println!("\n(b) heavy hitters: precision@1 / precision@3 at t=d vs n (D={dom}, Zipf 1.8, {trials} trials):\n");
    let tb = Table::new(&[("n", 9), ("prec@1", 8), ("prec@3", 8)]);
    for &nn in &[20_000usize, 80_000, 320_000] {
        let params = DomainParams {
            n: nn,
            d,
            k,
            domain: dom,
            epsilon: 1.0,
            beta: 0.05,
            calibrated: false,
        };
        let g = ZipfChurn::new(d, dom, k, 1.8);
        let (mut p1, mut p3) = (0.0, 0.0);
        for s in 0..trials as u64 {
            let mut rng = SeedSequence::new(800 + s).rng();
            let pop = g.population(nn, &mut rng);
            let o = run_domain_tracker(&params, &pop, 100 + s);
            p1 += precision_at_r(&o, &pop, d, 1) / trials as f64;
            p3 += precision_at_r(&o, &pop, d, 3) / trials as f64;
        }
        tb.row(&[nn.to_string(), format!("{p1:.2}"), format!("{p3:.2}")]);
    }
    println!("  → precision improves with n, top-1 earliest (largest margin).");

    let pass = (0.25..=0.75).contains(&slope);
    println!(
        "\nresult: {}",
        if pass {
            "domain adaptation shapes reproduced. PASS"
        } else {
            "UNEXPECTED SHAPE — see numbers above"
        }
    );
}
