//! T3 — ℓ∞ error versus the population size `n`.
//!
//! Paper claim (Theorem 4.1): absolute error grows as `√n`, i.e. the
//! relative error shrinks as `1/√n` — local privacy is affordable only at
//! scale. The aggregate simulation path makes the million-user points
//! cheap.
//!
//! Run with `cargo bench --bench exp_error_vs_n`.

use rtf_bench::{banner, fmt, loglog_slope, measure_linf, trials_from_env, Table};
use rtf_core::params::ProtocolParams;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_streams::generator::UniformChanges;

fn main() {
    let d = 256u64;
    let k = 8usize;
    let eps = 1.0;
    let beta = 0.05;
    let trials = trials_from_env(8);

    banner(
        "T3",
        &format!("linf error vs n   (d={d}, k={k}, eps={eps}, {trials} trials)"),
        "absolute error ∝ sqrt(n); relative error ∝ 1/sqrt(n)",
    );

    let ns = [4_000usize, 16_000, 64_000, 256_000, 1_024_000];
    let table = Table::new(&[
        ("n", 9),
        ("linf error", 12),
        ("(std)", 10),
        ("error/n", 10),
        ("error/sqrt(n)", 13),
    ]);

    let mut xs = Vec::new();
    let mut series = Vec::new();
    for &n in &ns {
        let params = ProtocolParams::new(n, d, k, eps, beta).unwrap();
        let gen = UniformChanges::new(d, k, 1.0);
        let r = measure_linf(
            params,
            &gen,
            trials,
            0xAB + n as u64,
            run_future_rand_aggregate,
        );
        xs.push(n as f64);
        series.push(r.mean());
        table.row(&[
            n.to_string(),
            fmt(r.mean()),
            fmt(r.std()),
            format!("{:.4}", r.mean() / n as f64),
            fmt(r.mean() / (n as f64).sqrt()),
        ]);
    }

    let slope = loglog_slope(&xs, &series);
    println!("\nshape: error ∝ n^slope");
    println!("  measured slope = {slope:.3}   (paper: 0.5)");
    let pass = (0.4..=0.6).contains(&slope);
    println!(
        "\nresult: {}",
        if pass {
            "shape reproduced. PASS"
        } else {
            "UNEXPECTED SHAPE — see numbers above"
        }
    );
}
