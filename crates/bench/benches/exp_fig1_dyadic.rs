//! F1 — Figure 1 of the paper: dyadic intervals, the decomposition
//! `C(3)`, and the partial sums of `X_u = (0, 1, 0, −1)` on `d = 4`
//! (Examples 3.3 and 3.5).
//!
//! Run with `cargo bench --bench exp_fig1_dyadic`.

use rtf_bench::{banner, Table};
use rtf_dyadic::decompose::decompose_prefix;
use rtf_dyadic::interval::Horizon;
use rtf_streams::stream::BoolStream;

fn main() {
    banner(
        "F1",
        "Figure 1 — dyadic decomposition and partial sums (d=4, k=2)",
        "C(3) = {I_(1,1), I_(0,3)}; partial sums of X_u=(0,1,0,-1) as in Example 3.5",
    );

    let horizon = Horizon::new(4);
    let stream = BoolStream::from_values(&[false, true, true, false]);
    let x = stream.derivative();

    let t = Table::new(&[("interval", 10), ("covers", 10), ("S_u(I)", 8)]);
    for i in horizon.iset() {
        t.row(&[
            format!("I_({},{})", i.order(), i.index()),
            format!("[{}..{}]", i.start(), i.end()),
            format!("{}", x.partial_sum(i).value()),
        ]);
    }

    println!();
    let t2 = Table::new(&[("t", 4), ("C(t)", 26), ("sum S_u", 8), ("st_u[t]", 8)]);
    for tt in 1..=4u64 {
        let parts = decompose_prefix(tt);
        let names: Vec<String> = parts
            .iter()
            .map(|i| format!("I_({},{})", i.order(), i.index()))
            .collect();
        let sum: i64 = parts.iter().map(|&i| x.partial_sum(i).value() as i64).sum();
        let truth = i64::from(stream.value_at(tt));
        assert_eq!(sum, truth, "Observation 3.9 violated at t={tt}");
        t2.row(&[
            tt.to_string(),
            format!("{{{}}}", names.join(",")),
            sum.to_string(),
            truth.to_string(),
        ]);
    }

    // Verify the figure's specific purple path.
    let c3 = decompose_prefix(3);
    assert_eq!(c3.len(), 2);
    assert_eq!((c3[0].order(), c3[0].index()), (1, 1));
    assert_eq!((c3[1].order(), c3[1].index()), (0, 3));
    println!("\nresult: matches Figure 1 exactly (C(3), partial sums, prefix identity). PASS");
}
