//! T20 — end-to-end throughput of the execution pipeline.
//!
//! ROADMAP's north star is serving millions of users as fast as the
//! hardware allows; the LDP benchmarking literature (Cormode–Maddock–
//! Maple 2021) stresses that protocol comparisons at realistic `n` live
//! or die on simulation throughput. This experiment measures reports/sec
//! and wall time of the honest event-driven schedule at `n ∈ {10⁵, 10⁶}`
//! through every execution mode: the sequential reference engine (per-
//! report `Bytes` framing) and the batched pipeline at 1/2/4/8 workers
//! (columnar report batches folded into mergeable shard accumulators).
//!
//! Every timed run is asserted **value-for-value identical** to the
//! sequential baseline before its timing is accepted — a throughput
//! number for a wrong answer is worthless.
//!
//! Machine-readable output: `BENCH_throughput.json` at the repository
//! root, seeding the perf trajectory (validated by the CI smoke step).
//!
//! Run with `cargo bench --bench exp_throughput` (full) or
//! `cargo bench --bench exp_throughput -- --smoke` (CI-sized; same JSON
//! schema, smaller `n`).

use rtf_bench::{banner, Table};
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_runtime::ExecMode;
use rtf_sim::engine::{run_event_driven_with, EventDrivenOutcome};
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;
use std::time::Instant;

/// Worker counts the parallel pipeline is measured at.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Measurement {
    n: usize,
    d: u64,
    mode: ExecMode,
    elapsed_s: f64,
    reports: u64,
    reports_per_s: f64,
}

fn measure(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    mode: ExecMode,
) -> (Measurement, EventDrivenOutcome) {
    let start = Instant::now();
    let outcome = run_event_driven_with(params, population, seed, mode);
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    let reports = outcome.wire.payload_bits;
    (
        Measurement {
            n: params.n(),
            d: params.d(),
            mode,
            elapsed_s,
            reports,
            reports_per_s: reports as f64 / elapsed_s,
        },
        outcome,
    )
}

fn mode_json(mode: ExecMode) -> (&'static str, usize) {
    match mode {
        ExecMode::Sequential => ("sequential", 0),
        ExecMode::Parallel(w) => ("parallel", w),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("RTF_THROUGHPUT_SMOKE").is_ok_and(|v| v == "1");
    // Smoke keeps the same schema and worker grid on a CI-sized n.
    let sizes: &[usize] = if smoke {
        &[20_000]
    } else {
        &[100_000, 1_000_000]
    };
    let d = 64u64;
    let k = 4usize;

    banner(
        "T20",
        &format!(
            "pipeline throughput (d={d}, k={k}, workers {WORKER_COUNTS:?}{})",
            if smoke { ", SMOKE" } else { "" }
        ),
        "the batched parallel pipeline multiplies reports/sec over the framed sequential engine",
    );

    let table = Table::new(&[
        ("n", 9),
        ("mode", 12),
        ("wall s", 9),
        ("reports", 10),
        ("Mrep/s", 9),
        ("speedup", 8),
    ]);

    let mut rows = Vec::new();
    for &n in sizes {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).expect("valid parameters");
        let mut rng = SeedSequence::new(7_000 + n as u64).rng();
        let population = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);

        let (seq, baseline) = measure(&params, &population, 42, ExecMode::Sequential);
        let seq_rate = seq.reports_per_s;
        table.row(&[
            format!("{n}"),
            "sequential".into(),
            format!("{:.2}", seq.elapsed_s),
            format!("{}", seq.reports),
            format!("{:.2}", seq.reports_per_s / 1e6),
            "1.00x".into(),
        ]);
        rows.push((seq, 1.0));

        for w in WORKER_COUNTS {
            let (m, outcome) = measure(&params, &population, 42, ExecMode::Parallel(w));
            assert_eq!(
                outcome.estimates, baseline.estimates,
                "parallel({w}) must match sequential before its timing counts"
            );
            assert_eq!(outcome.wire, baseline.wire);
            let speedup = m.reports_per_s / seq_rate;
            table.row(&[
                format!("{n}"),
                format!("parallel({w})"),
                format!("{:.2}", m.elapsed_s),
                format!("{}", m.reports),
                format!("{:.2}", m.reports_per_s / 1e6),
                format!("{speedup:.2}x"),
            ]);
            rows.push((m, speedup));
        }
    }

    // Machine-readable perf trajectory at the repository root.
    let hardware_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"exp_throughput\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (m, speedup)) in rows.iter().enumerate() {
        let (mode, workers) = mode_json(m.mode);
        json.push_str(&format!(
            "    {{\"n\": {}, \"d\": {}, \"mode\": \"{}\", \"workers\": {}, \
             \"elapsed_s\": {:.6}, \"reports\": {}, \"reports_per_s\": {:.1}, \
             \"speedup_vs_sequential\": {:.4}}}{}\n",
            m.n,
            m.d,
            mode,
            workers,
            m.elapsed_s,
            m.reports,
            m.reports_per_s,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");

    let best = rows
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nresult: every parallel run reproduced the sequential estimates exactly; best \
         throughput {best:.2}x sequential. wrote BENCH_throughput.json. PASS"
    );
}
