//! T20 — end-to-end throughput of the execution pipeline.
//!
//! ROADMAP's north star is serving millions of users as fast as the
//! hardware allows; the LDP benchmarking literature (Cormode–Maddock–
//! Maple 2021) stresses that protocol comparisons at realistic `n` live
//! or die on simulation throughput. This experiment measures reports/sec
//! and wall time at `n ∈ {10⁵, 10⁶}` through every execution mode — the
//! sequential reference engine (per-report `Bytes` framing) and the
//! batched pipeline at 1/2/4/8 workers — on **both** mode-carrying
//! engines: the honest event-driven schedule and the fault-injected
//! scenario engine (whose batched path additionally pays the
//! frame-provenance merge).
//!
//! Every timed run is asserted **value-for-value identical** to its
//! engine's sequential baseline before its timing is accepted — a
//! throughput number for a wrong answer is worthless.
//!
//! Both engines are measured under **both seed schemas** (`v1` the
//! frozen per-report `StdRng` baseline, `v2` the counter-based fast
//! seeds — see README's seed schema versioning policy); each schema
//! differences against its own sequential baseline, and every JSON row
//! carries a `seed_schema` field so the perf gate keys them apart. The
//! scenario engine rides the same span-native fast path as the event
//! engine now, so the v2 schema matters there too.
//!
//! Every scenario row — sequential included — decomposes into per-stage
//! wall clock (`stage_emit_s` / `stage_merge_s` / `stage_ingest_s`, via
//! `run_scenario_sequential_timed` / `run_scenario_batched_timed`;
//! validated by `scripts/perf_gate.py`). That decomposition is what
//! attributed the historical `parallel(2)`-slower-than-`parallel(1)`
//! anomaly at `n = 10⁶` to the emission stage: the old per-report fault
//! layer walked every client's ~150-byte state machine every period, so
//! on the single-hardware-thread bench box two half-population shards
//! interleaved with the largest possible per-thread working set and
//! every scheduler quantum evicted the other worker's clients. The
//! span-native emission layer replaced that loop with one linear fault
//! pre-walk plus packed sign-word span folds per contiguous client
//! block — per-shard state is a few packed lanes, not the client array —
//! which removes the thrash (and with it the anomaly) instead of merely
//! diagnosing it.
//!
//! The run also measures the cross-run pool-reuse delta (ROADMAP item):
//! repeated small maps on the per-call scoped `WorkerPool` vs the
//! process-wide persistent pool `run_trials` now folds over, reporting
//! the thread-spawn cost each call no longer pays.
//!
//! The streaming ingestion service is measured alongside the offline
//! modes (`"mode": "live"` rows): the same schedule served through
//! bounded per-worker mailboxes with period-close flushes — the
//! intake-pipeline overhead the service pays over the offline batched
//! fold.
//!
//! Machine-readable output: `BENCH_throughput.json` at the repository
//! root, seeding the perf trajectory (validated by the CI smoke step
//! and enforced as a baseline by the CI perf-regression gate,
//! `scripts/perf_gate.py`).
//!
//! Run with `cargo bench --bench exp_throughput` (full) or
//! `cargo bench --bench exp_throughput -- --smoke` (CI-sized: the
//! `n = 10⁵` slice of the full grid, so every smoke row is directly
//! comparable against the committed full-mode baseline).

use rtf_bench::{banner, Table};
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_primitives::fastseed::SeedSchema;
use rtf_primitives::seeding::SeedSequence;
use rtf_runtime::ingest::LiveConfig;
use rtf_runtime::{shared_pool, ExecMode, WorkerPool};
use rtf_scenarios::config::Scenario;
use rtf_scenarios::engine::{
    run_scenario_batched_timed, run_scenario_sequential_timed, ScenarioStageTimings,
};
use rtf_sim::engine::run_event_driven_schema;
use rtf_sim::live::run_event_driven_live_schema;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;
use std::time::Instant;

/// Worker counts the parallel pipeline is measured at.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The seed schemas the event engine is measured under: the v1 per-report
/// `StdRng` baseline and the v2 counter-based fast path.
const SCHEMAS: [SeedSchema; 2] = [SeedSchema::V1Std, SeedSchema::V2Fast];

struct Measurement {
    engine: &'static str,
    n: usize,
    d: u64,
    /// JSON mode label: `sequential`, `parallel`, or `live`.
    mode: &'static str,
    /// Worker count (0 for the sequential reference).
    workers: usize,
    /// Seed schema label: `v1` or `v2`.
    seed_schema: SeedSchema,
    elapsed_s: f64,
    reports: u64,
    reports_per_s: f64,
    /// Per-stage wall clock (scenario engine's batched mode only).
    stages: Option<ScenarioStageTimings>,
}

/// Everything a timed run must reproduce identically for its timing to
/// count: the estimates plus the full wire accounting (and, for the
/// scenario engine, the delivery-affecting fault bookkeeping folded into
/// `wire` by way of delivered frames).
#[derive(PartialEq, Debug)]
struct RunValues {
    estimates: Vec<f64>,
    wire: rtf_sim::message::WireStats,
}

/// Times one engine × mode × schema run, returning the measurement plus
/// the values the caller differences against the same-schema sequential
/// baseline. Both scenario modes run through their timed variants, so
/// every scenario row carries the per-stage decomposition.
fn measure(
    engine: &'static str,
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    mode: ExecMode,
    scenario: &Scenario,
    schema: SeedSchema,
) -> (Measurement, RunValues) {
    let start = Instant::now();
    let mut stages = None;
    let values = match engine {
        "event" => {
            let out = run_event_driven_schema(
                params,
                population,
                seed,
                mode,
                AccumulatorKind::Dense,
                schema,
            );
            RunValues {
                estimates: out.estimates,
                wire: out.wire,
            }
        }
        "scenario" => match mode {
            ExecMode::Sequential => {
                let (out, t) = run_scenario_sequential_timed(
                    params,
                    population,
                    seed,
                    scenario,
                    AccumulatorKind::Dense,
                    schema,
                );
                stages = Some(t);
                RunValues {
                    estimates: out.estimates,
                    wire: out.wire,
                }
            }
            ExecMode::Parallel(w) => {
                let (out, t) = run_scenario_batched_timed(
                    params,
                    population,
                    seed,
                    scenario,
                    w,
                    AccumulatorKind::Dense,
                    schema,
                );
                stages = Some(t);
                RunValues {
                    estimates: out.estimates,
                    wire: out.wire,
                }
            }
        },
        other => unreachable!("unknown engine {other}"),
    };
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    let reports = values.wire.payload_bits;
    let (mode, workers) = mode_json(mode);
    (
        Measurement {
            engine,
            n: params.n(),
            d: params.d(),
            mode,
            workers,
            seed_schema: schema,
            elapsed_s,
            reports,
            reports_per_s: reports as f64 / elapsed_s,
            stages,
        },
        values,
    )
}

/// Times the streaming ingestion service on the honest schedule with
/// `workers` ingestion workers (default mailbox/chunk shape), returning
/// the measurement plus the values for the baseline difference.
fn measure_live(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    workers: usize,
    schema: SeedSchema,
) -> (Measurement, RunValues) {
    let config = LiveConfig::new(workers);
    let start = Instant::now();
    let (out, _stats) = run_event_driven_live_schema(
        params,
        population,
        seed,
        &config,
        AccumulatorKind::Dense,
        schema,
    );
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    let reports = out.wire.payload_bits;
    (
        Measurement {
            engine: "event",
            n: params.n(),
            d: params.d(),
            mode: "live",
            workers,
            seed_schema: schema,
            elapsed_s,
            reports,
            reports_per_s: reports as f64 / elapsed_s,
            stages: None,
        },
        RunValues {
            estimates: out.estimates,
            wire: out.wire,
        },
    )
}

/// The cross-run pool-reuse measurement: `calls` repeated small
/// `map_indexed` fans on the scoped per-call pool vs the persistent
/// shared pool, at a fixed worker count. Returns
/// `(scoped_s, persistent_s)` totals.
fn measure_pool_reuse(workers: usize, calls: usize, jobs: usize) -> (f64, f64) {
    let work = |i: usize| -> u64 {
        // Cheap but not optimisable-away per-job work.
        (0..64u64).fold(i as u64, |acc, x| acc.wrapping_mul(31).wrapping_add(x))
    };
    let persistent = shared_pool(workers);
    // Warm both paths once so neither pays first-call setup in the
    // timed region.
    let scoped_pool = WorkerPool::new(workers);
    let expect = scoped_pool.map_indexed(jobs, work);
    assert_eq!(persistent.map_indexed(jobs, work), expect);

    let start = Instant::now();
    for _ in 0..calls {
        let out = scoped_pool.map_indexed(jobs, work);
        assert_eq!(out.len(), jobs);
    }
    let scoped_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..calls {
        let out = persistent.map_indexed(jobs, work);
        assert_eq!(out.len(), jobs);
    }
    let persistent_s = start.elapsed().as_secs_f64();
    (scoped_s, persistent_s)
}

fn mode_json(mode: ExecMode) -> (&'static str, usize) {
    match mode {
        ExecMode::Sequential => ("sequential", 0),
        ExecMode::Parallel(w) => ("parallel", w),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("RTF_THROUGHPUT_SMOKE").is_ok_and(|v| v == "1");
    // Smoke runs the n = 1e5 slice of the full grid — same schema, and
    // every smoke row has a directly comparable committed-baseline row
    // for the CI perf-regression gate to difference against.
    let sizes: &[usize] = if smoke {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let d = 64u64;
    let k = 4usize;

    banner(
        "T20",
        &format!(
            "pipeline throughput (d={d}, k={k}, workers {WORKER_COUNTS:?}{})",
            if smoke { ", SMOKE" } else { "" }
        ),
        "the batched parallel pipeline multiplies reports/sec over the framed sequential engine, \
         on the honest and the fault-injected schedule alike",
    );

    // A light fault mix for the scenario engine: enough to exercise the
    // fault layer and the provenance merge, not enough to change the
    // report volume materially.
    let storm = Scenario::honest()
        .with_dropout(0.02)
        .with_stragglers(0.05, 2)
        .with_duplicates(0.02);

    let table = Table::new(&[
        ("engine", 9),
        ("n", 9),
        ("schema", 7),
        ("mode", 12),
        ("wall s", 9),
        ("reports", 10),
        ("Mrep/s", 9),
        ("speedup", 8),
    ]);

    let mut rows: Vec<(Measurement, f64)> = Vec::new();
    let print_row = |m: &Measurement, speedup: f64| {
        table.row(&[
            m.engine.into(),
            format!("{}", m.n),
            format!("{}", m.seed_schema),
            if m.workers == 0 {
                m.mode.to_string()
            } else {
                format!("{}({})", m.mode, m.workers)
            },
            format!("{:.2}", m.elapsed_s),
            format!("{}", m.reports),
            format!("{:.2}", m.reports_per_s / 1e6),
            format!("{speedup:.2}x"),
        ]);
    };
    for &n in sizes {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).expect("valid parameters");
        let mut rng = SeedSequence::new(7_000 + n as u64).rng();
        let population = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);

        // The honest event-driven engine under both seed schemas: the v2
        // rows are the tentpole claim (counter-based word-at-a-time
        // randomness lifting the batched/live paths toward the fold
        // ceiling). Each schema differences against its own sequential
        // baseline — the schemas are distinct randomness streams.
        for schema in SCHEMAS {
            let (seq, baseline) = measure(
                "event",
                &params,
                &population,
                42,
                ExecMode::Sequential,
                &storm,
                schema,
            );
            let seq_rate = seq.reports_per_s;
            print_row(&seq, 1.0);
            rows.push((seq, 1.0));

            for w in WORKER_COUNTS {
                let (m, values) = measure(
                    "event",
                    &params,
                    &population,
                    42,
                    ExecMode::Parallel(w),
                    &storm,
                    schema,
                );
                assert_eq!(
                    values, baseline,
                    "event parallel({w})/{schema} must match sequential (estimates + wire \
                     stats) before its timing counts"
                );
                let speedup = m.reports_per_s / seq_rate;
                print_row(&m, speedup);
                rows.push((m, speedup));
            }

            // The streaming ingestion service on the same schedule: what
            // per-period mailbox intake + period-close flushes cost over
            // the offline batched fold.
            for w in WORKER_COUNTS {
                let (m, values) = measure_live(&params, &population, 42, w, schema);
                assert_eq!(
                    values, baseline,
                    "live({w})/{schema} must match sequential (estimates + wire stats) \
                     before its timing counts"
                );
                let speedup = m.reports_per_s / seq_rate;
                print_row(&m, speedup);
                rows.push((m, speedup));
            }
        }

        // The fault-injected engine under both seed schemas: its batched
        // path now rides the same span-native packed-word emission as the
        // event engine, so the v2 counter-based randomness shows up here
        // too. Every row (sequential included) carries the per-stage
        // decomposition.
        for schema in SCHEMAS {
            let (seq, baseline) = measure(
                "scenario",
                &params,
                &population,
                42,
                ExecMode::Sequential,
                &storm,
                schema,
            );
            let seq_rate = seq.reports_per_s;
            print_row(&seq, 1.0);
            if let Some(s) = &seq.stages {
                println!(
                    "    stages: emission {:.2}s, merge {:.2}s, ingest {:.2}s",
                    s.emission_s, s.merge_s, s.ingest_s
                );
            }
            rows.push((seq, 1.0));

            for w in WORKER_COUNTS {
                let (m, values) = measure(
                    "scenario",
                    &params,
                    &population,
                    42,
                    ExecMode::Parallel(w),
                    &storm,
                    schema,
                );
                assert_eq!(
                    values, baseline,
                    "scenario parallel({w})/{schema} must match sequential (estimates + wire \
                     stats) before its timing counts"
                );
                let speedup = m.reports_per_s / seq_rate;
                print_row(&m, speedup);
                if let Some(s) = &m.stages {
                    println!(
                        "    stages: emission {:.2}s, merge {:.2}s, ingest {:.2}s",
                        s.emission_s, s.merge_s, s.ingest_s
                    );
                }
                rows.push((m, speedup));
            }
        }
    }

    // Cross-run pool reuse: what does a map_* call cost when the threads
    // already exist?
    let (reuse_workers, reuse_calls, reuse_jobs) = if smoke { (4, 100, 32) } else { (4, 400, 32) };
    let (scoped_s, persistent_s) = measure_pool_reuse(reuse_workers, reuse_calls, reuse_jobs);
    let spawn_delta_per_call = (scoped_s - persistent_s) / reuse_calls as f64;
    println!(
        "\npool reuse ({reuse_workers} workers, {reuse_calls} calls x {reuse_jobs} jobs): \
         scoped {:.4}s vs persistent {:.4}s => spawn cost {:.1} us/call",
        scoped_s,
        persistent_s,
        spawn_delta_per_call * 1e6
    );

    // Machine-readable perf trajectory at the repository root.
    let hardware_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"exp_throughput\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"hardware_threads\": {hardware_threads},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (m, speedup)) in rows.iter().enumerate() {
        let stage_fields = match &m.stages {
            Some(s) => format!(
                ", \"stage_emit_s\": {:.6}, \"stage_merge_s\": {:.6}, \"stage_ingest_s\": {:.6}",
                s.emission_s, s.merge_s, s.ingest_s
            ),
            None => String::new(),
        };
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"n\": {}, \"d\": {}, \"mode\": \"{}\", \"workers\": {}, \
             \"seed_schema\": \"{}\", \"elapsed_s\": {:.6}, \"reports\": {}, \
             \"reports_per_s\": {:.1}, \"speedup_vs_sequential\": {:.4}{}}}{}\n",
            m.engine,
            m.n,
            m.d,
            m.mode,
            m.workers,
            m.seed_schema,
            m.elapsed_s,
            m.reports,
            m.reports_per_s,
            speedup,
            stage_fields,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"pool_reuse\": {{\"workers\": {reuse_workers}, \"calls\": {reuse_calls}, \
         \"jobs\": {reuse_jobs}, \"scoped_s\": {scoped_s:.6}, \
         \"persistent_s\": {persistent_s:.6}, \
         \"spawn_delta_s_per_call\": {spawn_delta_per_call:.9}}}\n"
    ));
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");

    let best = rows
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nresult: every parallel run reproduced the sequential estimates exactly; best \
         throughput {best:.2}x sequential. wrote BENCH_throughput.json. PASS"
    );
}
