//! P3 — end-to-end trial wall time, across the three execution paths:
//!
//! * `run_in_memory` — direct function calls, walks every period;
//! * `run_event_driven` — serialised messages, walks every period;
//! * `run_future_rand_aggregate` — batched zero-slot noise (the path
//!   that makes million-user experiments cheap).

use criterion::{criterion_group, criterion_main, Criterion};
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_sim::engine::run_event_driven;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let n = 5_000usize;
    let d = 256u64;
    let k = 4usize;
    let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
    let gen = UniformChanges::new(d, k, 0.8);
    let mut rng = SeedSequence::new(12).rng();
    let pop = Population::generate(&gen, n, &mut rng);

    group.bench_function("in_memory_n5k_d256", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(rtf_core::protocol::run_in_memory(&params, &pop, seed))
        });
    });
    group.bench_function("event_driven_n5k_d256", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_event_driven(&params, &pop, seed))
        });
    });
    group.bench_function("aggregate_n5k_d256", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_future_rand_aggregate(&params, &pop, seed))
        });
    });

    // The aggregate path at 20x the population, to show the scaling the
    // EXPERIMENTS.md campaigns rely on.
    let n_big = 100_000usize;
    let params_big = ProtocolParams::new(n_big, d, k, 1.0, 0.05).unwrap();
    let mut rng2 = SeedSequence::new(13).rng();
    let pop_big = Population::generate(&gen, n_big, &mut rng2);
    group.bench_function("aggregate_n100k_d256", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_future_rand_aggregate(&params_big, &pop_big, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
