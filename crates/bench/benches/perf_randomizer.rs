//! P1 — cost of the client-side pre-computation.
//!
//! `FutureRand::init` draws `b̃ = R̃(1^k)` — the "randomize the future"
//! step — from shared per-`(k, ε̃)` tables. Measures both the one-off
//! table construction (`ComposedRandomizer::for_protocol`, `O(k)`) and
//! the per-user draw (`FutureRand::init`, `O(k)` with small constants),
//! across three orders of magnitude of `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::randomizer::FutureRand;
use std::hint::black_box;

fn bench_randomizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomizer");
    group.sample_size(20);
    for &k in &[16usize, 256, 4096, 65_536] {
        group.bench_with_input(BenchmarkId::new("composed_build", k), &k, |b, &k| {
            b.iter(|| black_box(ComposedRandomizer::for_protocol(black_box(k), 1.0)));
        });
        let composed = ComposedRandomizer::for_protocol(k, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::new("future_rand_init", k), &k, |b, _| {
            b.iter(|| black_box(FutureRand::init(k * 2, &composed, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("sample_all_ones", k), &k, |b, _| {
            b.iter(|| black_box(composed.sample_for_all_ones(&mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_randomizer);
criterion_main!(benches);
