//! T11 — communication cost.
//!
//! Paper context (Sections 1/4.2): every report is a single bit; a user
//! at order `h` reports `d/2^h` times, so the expected per-user payload is
//! `E[d/2^h] = Σ_h (d/2^h)/(1+log d) ≈ 2d/(1+log d)` bits over the whole
//! horizon — under 2 bits per period even for small `d`, versus exactly
//! `d` bits (1/period) for naive repeated reporting.
//!
//! Measured through the event-driven engine, which serialises every
//! message and counts real framed bytes as well as payload bits.
//!
//! Run with `cargo bench --bench exp_communication`.

use rtf_bench::{banner, trials_from_env, Table};
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_sim::engine::run_event_driven;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

fn main() {
    let n = 2_000usize;
    let k = 4usize;
    let trials = trials_from_env(4).min(8);

    banner(
        "T11",
        &format!("communication cost (event-driven, serialised messages; n={n}, k={k})"),
        "one bit per completed interval: ~2d/(1+log d) payload bits per user vs d for naive",
    );

    let table = Table::new(&[
        ("d", 6),
        ("bits/user", 11),
        ("theory", 9),
        ("bits/user/period", 17),
        ("naive", 7),
        ("wire B/user", 12),
        ("msgs", 10),
    ]);
    for &d in &[64u64, 128, 256, 512, 1024] {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let gen = UniformChanges::new(d, k, 0.8);
        let mut bits = 0.0;
        let mut bytes = 0.0;
        let mut msgs = 0.0;
        for s in 0..trials {
            let mut rng = SeedSequence::new(600 + s as u64).rng();
            let pop = Population::generate(&gen, n, &mut rng);
            let out = run_event_driven(&params, &pop, 700 + s as u64);
            bits += out.wire.payload_bits as f64 / trials as f64;
            bytes += out.wire.wire_bytes as f64 / trials as f64;
            msgs += out.wire.messages as f64 / trials as f64;
        }
        let per_user = bits / n as f64;
        let orders = 1.0 + (d as f64).log2();
        // E[d/2^h] = (d/orders)·Σ_h 2^{-h} = (d/orders)·(2 − 2^{-log d}).
        let theory = (d as f64 / orders) * (2.0 - 1.0 / d as f64);
        table.row(&[
            d.to_string(),
            format!("{per_user:.1}"),
            format!("{theory:.1}"),
            format!("{:.3}", per_user / d as f64),
            format!("{d}"),
            format!("{:.1}", bytes / n as f64),
            format!("{:.0}", msgs),
        ]);
        assert!(
            (per_user - theory).abs() < 0.1 * theory,
            "payload {per_user} far from theory {theory} at d={d}"
        );
    }

    println!("\nresult: one-bit reports, ~2d/(1+log d) per user — matches the cost model. PASS");
}
