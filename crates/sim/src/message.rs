//! Wire formats and communication accounting.
//!
//! Two message kinds cross the wire in the paper's protocol:
//!
//! * one [`OrderAnnouncement`] per user before period 1 (Algorithm 1,
//!   line 1);
//! * one [`ReportMsg`] per completed order-`h_u` interval (one payload
//!   *bit* each; the framing here is a compact fixed-width binary layout,
//!   and both the framed bytes and the information-theoretic payload bits
//!   are tracked).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A user's one-time announcement of its sampled order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderAnnouncement {
    /// The user id.
    pub user: u32,
    /// The sampled order `h_u ∈ [0..log d]`.
    pub order: u8,
}

impl OrderAnnouncement {
    /// Encoded size in bytes (fixed-width layout).
    pub const WIRE_BYTES: usize = 5;

    /// Encodes into the compact fixed-width layout.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u32_le(self.user);
        b.put_u8(self.order);
        b.freeze()
    }

    /// Decodes from the compact layout.
    ///
    /// # Panics
    /// Panics if the buffer is shorter than [`Self::WIRE_BYTES`].
    pub fn decode(mut buf: impl Buf) -> Self {
        let user = buf.get_u32_le();
        let order = buf.get_u8();
        OrderAnnouncement { user, order }
    }
}

/// One report: a single perturbed bit for the interval completing at `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportMsg {
    /// The reporting user.
    pub user: u32,
    /// The period at which the report is due.
    pub t: u32,
    /// The perturbed partial sum, `true` encoding `+1`.
    pub bit: bool,
}

impl ReportMsg {
    /// Encoded size in bytes (fixed-width layout).
    pub const WIRE_BYTES: usize = 9;

    /// The information-theoretic payload: a single bit.
    pub const PAYLOAD_BITS: u64 = 1;

    /// Encodes into the compact fixed-width layout.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u32_le(self.user);
        b.put_u32_le(self.t);
        b.put_u8(u8::from(self.bit));
        b.freeze()
    }

    /// Decodes from the compact layout.
    ///
    /// # Panics
    /// Panics if the buffer is shorter than [`Self::WIRE_BYTES`].
    pub fn decode(mut buf: impl Buf) -> Self {
        let user = buf.get_u32_le();
        let t = buf.get_u32_le();
        let bit = buf.get_u8() != 0;
        ReportMsg { user, t, bit }
    }
}

/// Running communication totals for one protocol execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    /// Number of messages sent (announcements + reports).
    pub messages: u64,
    /// Total framed bytes on the wire.
    pub wire_bytes: u64,
    /// Total information-theoretic payload bits (1 per report).
    pub payload_bits: u64,
}

impl WireStats {
    /// Accounts for one announcement.
    pub fn record_announcement(&mut self) {
        self.messages += 1;
        self.wire_bytes += OrderAnnouncement::WIRE_BYTES as u64;
    }

    /// Accounts for one report.
    pub fn record_report(&mut self) {
        self.messages += 1;
        self.wire_bytes += ReportMsg::WIRE_BYTES as u64;
        self.payload_bits += ReportMsg::PAYLOAD_BITS;
    }

    /// Accounts for a columnar batch of `count` reports at once — the
    /// batched pipeline's equivalent of `count` `record_report` calls.
    pub fn record_report_batch(&mut self, count: u64) {
        self.messages += count;
        self.wire_bytes += count * ReportMsg::WIRE_BYTES as u64;
        self.payload_bits += count * ReportMsg::PAYLOAD_BITS;
    }

    /// Adds another shard's totals into `self` (exact integer merge).
    pub fn merge(&mut self, other: &WireStats) {
        self.messages += other.messages;
        self.wire_bytes += other.wire_bytes;
        self.payload_bits += other.payload_bits;
    }

    /// Average payload bits per user per period.
    pub fn bits_per_user_period(&self, n: usize, d: u64) -> f64 {
        self.payload_bits as f64 / (n as f64 * d as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announcement_round_trip() {
        let a = OrderAnnouncement {
            user: 12345,
            order: 7,
        };
        let bytes = a.encode();
        assert_eq!(bytes.len(), OrderAnnouncement::WIRE_BYTES);
        assert_eq!(OrderAnnouncement::decode(bytes), a);
    }

    #[test]
    fn report_round_trip() {
        for bit in [false, true] {
            let r = ReportMsg {
                user: u32::MAX,
                t: 1,
                bit,
            };
            let bytes = r.encode();
            assert_eq!(bytes.len(), ReportMsg::WIRE_BYTES);
            assert_eq!(ReportMsg::decode(bytes), r);
        }
    }

    #[test]
    fn wire_stats_accumulate() {
        let mut s = WireStats::default();
        s.record_announcement();
        s.record_report();
        s.record_report();
        assert_eq!(s.messages, 3);
        assert_eq!(
            s.wire_bytes,
            (OrderAnnouncement::WIRE_BYTES + 2 * ReportMsg::WIRE_BYTES) as u64
        );
        assert_eq!(s.payload_bits, 2);
        assert!((s.bits_per_user_period(1, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batched_accounting_matches_per_report() {
        let mut per_report = WireStats::default();
        for _ in 0..17 {
            per_report.record_report();
        }
        let mut batched = WireStats::default();
        batched.record_report_batch(17);
        assert_eq!(per_report, batched);

        // Shard merge: two halves equal the whole.
        let mut a = WireStats::default();
        a.record_announcement();
        a.record_report_batch(5);
        let mut b = WireStats::default();
        b.record_report_batch(12);
        let mut merged = a;
        merged.merge(&b);
        let mut whole = WireStats::default();
        whole.record_announcement();
        whole.record_report_batch(17);
        assert_eq!(merged, whole);
    }

    #[test]
    fn serde_compatibility() {
        // The wire structs are serde-serialisable for experiment dumps.
        let r = ReportMsg {
            user: 3,
            t: 9,
            bit: true,
        };
        let json = format!("{{\"user\":{},\"t\":{},\"bit\":{}}}", r.user, r.t, r.bit);
        // No serde_json offline; just check the fields are public and the
        // struct derives Serialize (compile-time) — format the debug repr.
        assert!(format!("{r:?}").contains("bit: true"));
        assert!(!json.is_empty());
    }
}
