//! Wire formats and communication accounting.
//!
//! Two message kinds cross the wire in the paper's protocol:
//!
//! * one [`OrderAnnouncement`] per user before period 1 (Algorithm 1,
//!   line 1);
//! * one [`ReportMsg`] per completed order-`h_u` interval (one payload
//!   *bit* each; the framing here is a compact fixed-width binary layout,
//!   and both the framed bytes and the information-theoretic payload bits
//!   are tracked).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A wire frame that cannot be decoded: the typed, non-panicking verdict
/// of [`OrderAnnouncement::try_decode`] / [`ReportMsg::try_decode`].
///
/// The frame paths that carry untrusted (network/Byzantine) bytes route
/// through `try_decode` and classify this error — a malformed frame is
/// counted and skipped, never a panic. The panicking `decode` variants
/// remain for trusted columnar lanes whose bytes the pipeline itself
/// produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer holds fewer bytes than the fixed-width layout needs.
    Truncated {
        /// Bytes the layout requires.
        need: usize,
        /// Bytes the buffer actually held.
        got: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { need, got } => {
                write!(f, "truncated frame: need {need} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A user's one-time announcement of its sampled order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderAnnouncement {
    /// The user id.
    pub user: u32,
    /// The sampled order `h_u ∈ [0..log d]`.
    pub order: u8,
}

impl OrderAnnouncement {
    /// Encoded size in bytes (fixed-width layout).
    pub const WIRE_BYTES: usize = 5;

    /// Encodes into the compact fixed-width layout.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u32_le(self.user);
        b.put_u8(self.order);
        b.freeze()
    }

    /// Decodes from the compact layout.
    ///
    /// # Panics
    /// Panics if the buffer is shorter than [`Self::WIRE_BYTES`]. Only
    /// for trusted lanes; untrusted bytes go through [`Self::try_decode`].
    pub fn decode(buf: impl Buf) -> Self {
        Self::try_decode(buf).expect("trusted announcement frame")
    }

    /// Fallible decode for untrusted bytes: a short buffer is a typed
    /// [`DecodeError`], never a panic.
    pub fn try_decode(mut buf: impl Buf) -> Result<Self, DecodeError> {
        if buf.remaining() < Self::WIRE_BYTES {
            return Err(DecodeError::Truncated {
                need: Self::WIRE_BYTES,
                got: buf.remaining(),
            });
        }
        let user = buf.get_u32_le();
        let order = buf.get_u8();
        Ok(OrderAnnouncement { user, order })
    }
}

/// One report: a single perturbed bit for the interval completing at `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportMsg {
    /// The reporting user.
    pub user: u32,
    /// The period at which the report is due.
    pub t: u32,
    /// The perturbed partial sum, `true` encoding `+1`.
    pub bit: bool,
}

impl ReportMsg {
    /// Encoded size in bytes (fixed-width layout).
    pub const WIRE_BYTES: usize = 9;

    /// The information-theoretic payload: a single bit.
    pub const PAYLOAD_BITS: u64 = 1;

    /// Encodes into the compact fixed-width layout.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(Self::WIRE_BYTES);
        b.put_u32_le(self.user);
        b.put_u32_le(self.t);
        b.put_u8(u8::from(self.bit));
        b.freeze()
    }

    /// Decodes from the compact layout.
    ///
    /// # Panics
    /// Panics if the buffer is shorter than [`Self::WIRE_BYTES`]. Only
    /// for trusted lanes; untrusted bytes go through [`Self::try_decode`].
    pub fn decode(buf: impl Buf) -> Self {
        Self::try_decode(buf).expect("trusted report frame")
    }

    /// Fallible decode for untrusted bytes: a short buffer is a typed
    /// [`DecodeError`], never a panic.
    pub fn try_decode(mut buf: impl Buf) -> Result<Self, DecodeError> {
        if buf.remaining() < Self::WIRE_BYTES {
            return Err(DecodeError::Truncated {
                need: Self::WIRE_BYTES,
                got: buf.remaining(),
            });
        }
        let user = buf.get_u32_le();
        let t = buf.get_u32_le();
        let bit = buf.get_u8() != 0;
        Ok(ReportMsg { user, t, bit })
    }
}

/// Running communication totals for one protocol execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireStats {
    /// Number of messages sent (announcements + reports).
    pub messages: u64,
    /// Total framed bytes on the wire.
    pub wire_bytes: u64,
    /// Total information-theoretic payload bits (1 per report).
    pub payload_bits: u64,
}

impl WireStats {
    /// Accounts for one announcement.
    pub fn record_announcement(&mut self) {
        self.messages += 1;
        self.wire_bytes += OrderAnnouncement::WIRE_BYTES as u64;
    }

    /// Accounts for one report.
    pub fn record_report(&mut self) {
        self.messages += 1;
        self.wire_bytes += ReportMsg::WIRE_BYTES as u64;
        self.payload_bits += ReportMsg::PAYLOAD_BITS;
    }

    /// Accounts for a columnar batch of `count` reports at once — the
    /// batched pipeline's equivalent of `count` `record_report` calls.
    pub fn record_report_batch(&mut self, count: u64) {
        self.messages += count;
        self.wire_bytes += count * ReportMsg::WIRE_BYTES as u64;
        self.payload_bits += count * ReportMsg::PAYLOAD_BITS;
    }

    /// Adds another shard's totals into `self` (exact integer merge).
    pub fn merge(&mut self, other: &WireStats) {
        self.messages += other.messages;
        self.wire_bytes += other.wire_bytes;
        self.payload_bits += other.payload_bits;
    }

    /// Average payload bits per user per period; `0.0` for an empty
    /// population or horizon (never NaN).
    pub fn bits_per_user_period(&self, n: usize, d: u64) -> f64 {
        if n == 0 || d == 0 {
            return 0.0;
        }
        self.payload_bits as f64 / (n as f64 * d as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announcement_round_trip() {
        let a = OrderAnnouncement {
            user: 12345,
            order: 7,
        };
        let bytes = a.encode();
        assert_eq!(bytes.len(), OrderAnnouncement::WIRE_BYTES);
        assert_eq!(OrderAnnouncement::decode(bytes), a);
    }

    #[test]
    fn report_round_trip() {
        for bit in [false, true] {
            let r = ReportMsg {
                user: u32::MAX,
                t: 1,
                bit,
            };
            let bytes = r.encode();
            assert_eq!(bytes.len(), ReportMsg::WIRE_BYTES);
            assert_eq!(ReportMsg::decode(bytes), r);
        }
    }

    #[test]
    fn try_decode_rejects_short_buffers_typed() {
        // Every strict prefix of a valid encoding is a typed error, not
        // a panic — the untrusted frame path depends on it.
        let ann = OrderAnnouncement { user: 7, order: 3 }.encode();
        for cut in 0..OrderAnnouncement::WIRE_BYTES {
            let err = OrderAnnouncement::try_decode(&ann.as_slice()[..cut]).unwrap_err();
            assert_eq!(
                err,
                DecodeError::Truncated {
                    need: OrderAnnouncement::WIRE_BYTES,
                    got: cut,
                }
            );
        }
        let rep = ReportMsg {
            user: 9,
            t: 4,
            bit: true,
        }
        .encode();
        for cut in 0..ReportMsg::WIRE_BYTES {
            let err = ReportMsg::try_decode(&rep.as_slice()[..cut]).unwrap_err();
            assert_eq!(
                err,
                DecodeError::Truncated {
                    need: ReportMsg::WIRE_BYTES,
                    got: cut,
                }
            );
            assert!(err.to_string().contains("truncated"));
        }
        // Full buffers decode identically through both variants.
        assert_eq!(
            ReportMsg::try_decode(rep.clone()).unwrap(),
            ReportMsg::decode(rep)
        );
    }

    #[test]
    fn bits_per_user_period_is_zero_for_empty_denominators() {
        let mut s = WireStats::default();
        s.record_report_batch(10);
        // n = 0 or d = 0 used to produce NaN; the guard returns 0.0.
        assert_eq!(s.bits_per_user_period(0, 64), 0.0);
        assert_eq!(s.bits_per_user_period(100, 0), 0.0);
        assert_eq!(s.bits_per_user_period(0, 0), 0.0);
        assert!((s.bits_per_user_period(10, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wire_stats_accumulate() {
        let mut s = WireStats::default();
        s.record_announcement();
        s.record_report();
        s.record_report();
        assert_eq!(s.messages, 3);
        assert_eq!(
            s.wire_bytes,
            (OrderAnnouncement::WIRE_BYTES + 2 * ReportMsg::WIRE_BYTES) as u64
        );
        assert_eq!(s.payload_bits, 2);
        assert!((s.bits_per_user_period(1, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batched_accounting_matches_per_report() {
        let mut per_report = WireStats::default();
        for _ in 0..17 {
            per_report.record_report();
        }
        let mut batched = WireStats::default();
        batched.record_report_batch(17);
        assert_eq!(per_report, batched);

        // Shard merge: two halves equal the whole.
        let mut a = WireStats::default();
        a.record_announcement();
        a.record_report_batch(5);
        let mut b = WireStats::default();
        b.record_report_batch(12);
        let mut merged = a;
        merged.merge(&b);
        let mut whole = WireStats::default();
        whole.record_announcement();
        whole.record_report_batch(17);
        assert_eq!(merged, whole);
    }

    #[test]
    fn serde_compatibility() {
        // The wire structs are serde-serialisable for experiment dumps.
        let r = ReportMsg {
            user: 3,
            t: 9,
            bit: true,
        };
        let json = format!("{{\"user\":{},\"t\":{},\"bit\":{}}}", r.user, r.t, r.bit);
        // No serde_json offline; just check the fields are public and the
        // struct derives Serialize (compile-time) — format the debug repr.
        assert!(format!("{r:?}").contains("bit: true"));
        assert!(!json.is_empty());
    }
}
