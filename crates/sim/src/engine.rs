//! The event-driven round loop — the honest deployment schedule.
//!
//! At every period `t`:
//!
//! 1. each client observes its own new derivative value `X_u[t]` (clients
//!    see *only* their own data, one period at a time — the online
//!    constraint);
//! 2. clients whose order divides `t` emit a [`ReportMsg`], which is
//!    *serialised into bytes*, queued in the server's mailbox, decoded and
//!    ingested — so the accounting reflects real framing;
//! 3. the server closes the period and publishes `â[t]`.
//!
//! This engine is `O(n·d)` and exists to (a) prove the protocol really is
//! online, (b) exercise the exact client state machine every period, and
//! (c) provide ground truth for the fast aggregate path.

use crate::message::{OrderAnnouncement, ReportMsg, WireStats};
use rtf_core::client::Client;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::params::ProtocolParams;
use rtf_core::randomizer::FutureRand;
use rtf_core::server::Server;
use rtf_primitives::seeding::SeedSequence;
use rtf_primitives::sign::Sign;
use rtf_streams::population::Population;

/// Result of an event-driven execution: estimates plus exact
/// communication accounting.
#[derive(Debug, Clone)]
pub struct EventDrivenOutcome {
    /// The online estimates `â[t]`.
    pub estimates: Vec<f64>,
    /// Per-order group sizes `|U_h|`.
    pub group_sizes: Vec<usize>,
    /// Wire accounting (announcements + reports, bytes and bits).
    pub wire: WireStats,
}

/// Runs the FutureRand protocol through the message-level engine.
///
/// Produces estimates *identical in distribution* to
/// [`rtf_core::protocol::run_in_memory`] (and identical value-for-value
/// given the same seed, since both derive client randomness from
/// `SeedSequence(seed).child(user)` and consume it in the same order).
pub fn run_event_driven(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> EventDrivenOutcome {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    population.assert_k_sparse(params.k());

    let composed: Vec<ComposedRandomizer> = (0..params.num_orders())
        .map(|h| ComposedRandomizer::for_protocol(params.k_for_order(h), params.epsilon()))
        .collect();

    let mut server = Server::for_future_rand(*params);
    let mut wire = WireStats::default();
    let root = SeedSequence::new(seed);

    // Build clients; send order announcements through the wire.
    let mut clients: Vec<(Client<FutureRand>, rand::rngs::StdRng)> = Vec::with_capacity(params.n());
    for u in 0..params.n() {
        let mut rng = root.child(u as u64).rng();
        let h = Client::<FutureRand>::sample_order(params, &mut rng);
        let ann = OrderAnnouncement {
            user: u as u32,
            order: h as u8,
        };
        let decoded = OrderAnnouncement::decode(ann.encode());
        server.register_user(u32::from(decoded.order));
        wire.record_announcement();
        let m = FutureRand::init(params.sequence_len(h), &composed[h as usize], &mut rng);
        clients.push((Client::new(params, h, m), rng));
    }

    // Round loop with a real (serialised) mailbox per period.
    let mut estimates = Vec::with_capacity(params.d() as usize);
    let mut mailbox: Vec<bytes::Bytes> = Vec::new();
    for t in 1..=params.d() {
        mailbox.clear();
        for (u, (client, rng)) in clients.iter_mut().enumerate() {
            let x = population.stream(u).derivative().at(t);
            if let Some(report) = client.observe(t, x, rng) {
                let msg = ReportMsg {
                    user: u as u32,
                    t: t as u32,
                    bit: report.bit == Sign::Plus,
                };
                mailbox.push(msg.encode());
            }
        }
        // Server drains the mailbox: decode, attribute to the sender's
        // order, ingest.
        for raw in &mailbox {
            let msg = ReportMsg::decode(raw.clone());
            let h = clients[msg.user as usize].0.order();
            let bit = if msg.bit { Sign::Plus } else { Sign::Minus };
            server.ingest(h, bit);
            wire.record_report();
        }
        estimates.push(server.end_of_period(t));
    }

    EventDrivenOutcome {
        estimates,
        group_sizes: server.group_sizes().to_vec(),
        wire,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_streams::generator::UniformChanges;

    fn setup(n: usize, d: u64, k: usize, seed: u64) -> (ProtocolParams, Population) {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        (params, pop)
    }

    #[test]
    fn matches_in_memory_fast_path_exactly() {
        // Same seed ⇒ identical estimates: both paths consume each user's
        // RNG stream in the same order (order draw, b̃ draw, then one draw
        // per zero partial sum). This pins down that the in-memory path in
        // rtf-core really is the same protocol.
        let (params, pop) = setup(150, 32, 3, 40);
        let ev = run_event_driven(&params, &pop, 99);
        let mem = rtf_core::protocol::run_in_memory(&params, &pop, 99);
        assert_eq!(ev.estimates, mem.estimates());
        assert_eq!(ev.group_sizes, mem.group_sizes());
    }

    #[test]
    fn wire_accounting_matches_group_structure() {
        let (params, pop) = setup(100, 16, 2, 41);
        let ev = run_event_driven(&params, &pop, 7);
        let expected_reports: u64 = ev
            .group_sizes
            .iter()
            .enumerate()
            .map(|(h, &sz)| sz as u64 * (16u64 >> h))
            .sum();
        assert_eq!(ev.wire.payload_bits, expected_reports);
        assert_eq!(ev.wire.messages, 100 + expected_reports);
        assert_eq!(
            ev.wire.wire_bytes,
            100 * OrderAnnouncement::WIRE_BYTES as u64
                + expected_reports * ReportMsg::WIRE_BYTES as u64
        );
    }

    #[test]
    fn bits_per_user_period_is_below_one() {
        // Users at order h > 0 report less than once per period, so the
        // average payload is < 1 bit/user/period (≈ 2/log d).
        let (params, pop) = setup(400, 64, 3, 42);
        let ev = run_event_driven(&params, &pop, 8);
        let rate = ev.wire.bits_per_user_period(400, 64);
        assert!(rate < 1.0, "rate {rate}");
        assert!(rate > 0.1, "rate {rate} suspiciously low");
    }

    #[test]
    fn deterministic_under_seed() {
        let (params, pop) = setup(80, 16, 2, 43);
        let a = run_event_driven(&params, &pop, 5);
        let b = run_event_driven(&params, &pop, 5);
        assert_eq!(a.estimates, b.estimates);
        assert_eq!(a.wire, b.wire);
    }
}
