//! The event-driven round loop — the honest deployment schedule.
//!
//! At every period `t`:
//!
//! 1. each client observes its own new derivative value `X_u[t]` (clients
//!    see *only* their own data, one period at a time — the online
//!    constraint);
//! 2. clients whose order divides `t` emit their report; the server
//!    ingests it and closes the period, publishing `â[t]`.
//!
//! Two execution modes run this schedule ([`ExecMode`]):
//!
//! * **Sequential** — the reference implementation: every report is
//!   *serialised into bytes* ([`ReportMsg`]), queued in the server's
//!   mailbox, decoded and ingested, so the accounting reflects real
//!   framing. `O(n·d)` with a per-report allocation; this is the oracle.
//! * **Parallel(w)** — the batched pipeline: users are partitioned into
//!   `w` contiguous shards, each worker runs its shard's client state
//!   machines locally, appending reports to columnar
//!   [`ReportBatch`](rtf_runtime::ReportBatch)es (no per-report
//!   allocation) folded into a
//!   mergeable shard accumulator per period; the server absorbs shard
//!   accumulators in shard-index order. Because per-user randomness
//!   derives from `SeedSequence(seed).child(user)` and report sums are
//!   integer-valued, the result is **value-for-value identical** to
//!   Sequential for every worker count (asserted by the differential
//!   oracle in `rtf-scenarios`).
//!
//! [`run_event_driven`] picks the mode from `RTF_WORKERS` (see
//! [`ExecMode::from_env`]), so the entire test pyramid can be replayed
//! through the parallel pipeline by exporting one variable.

use crate::message::{OrderAnnouncement, ReportMsg, WireStats};
use rtf_core::accumulator::{Accumulator, AccumulatorKind, AnyAccumulator};
use rtf_core::client::Client;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::params::ProtocolParams;
use rtf_core::randomizer::{FutureRand, SpanRandomizers};
use rtf_core::server::Server;
use rtf_primitives::fastseed::{self, SeedSchema};
use rtf_primitives::seeding::SeedSequence;
use rtf_primitives::sign::{Sign, Ternary};
use rtf_runtime::{ExecMode, SignLane, WorkerPool};
use rtf_streams::population::Population;

/// Result of an event-driven execution: estimates plus exact
/// communication accounting.
#[derive(Debug, Clone)]
pub struct EventDrivenOutcome {
    /// The online estimates `â[t]`.
    pub estimates: Vec<f64>,
    /// Per-order group sizes `|U_h|`.
    pub group_sizes: Vec<usize>,
    /// Wire accounting (announcements + reports, bytes and bits).
    pub wire: WireStats,
    /// Heap bytes held by the run's accumulation state — in batched mode
    /// the sum over every per-period shard accumulator (the quantity the
    /// storage backends trade against time in `exp_backends`); in
    /// sequential mode just the server's single live accumulator.
    pub acc_bytes: u64,
}

/// Runs the FutureRand protocol through the message-level engine, in the
/// mode selected by `RTF_WORKERS` ([`ExecMode::from_env`]; default
/// sequential).
///
/// Produces estimates *identical in distribution* to
/// [`rtf_core::protocol::run_in_memory`] (and identical value-for-value
/// given the same seed, since both derive client randomness from
/// `SeedSequence(seed).child(user)` and consume it in the same order) —
/// in **every** execution mode.
pub fn run_event_driven(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> EventDrivenOutcome {
    run_event_driven_with(params, population, seed, ExecMode::from_env())
}

/// Runs the FutureRand protocol through the message-level engine in an
/// explicit [`ExecMode`], on the accumulator backend selected by
/// `RTF_BACKEND` ([`AccumulatorKind::from_env`]; default dense).
pub fn run_event_driven_with(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    mode: ExecMode,
) -> EventDrivenOutcome {
    run_event_driven_with_backend(params, population, seed, mode, AccumulatorKind::from_env())
}

/// Runs the FutureRand protocol through the message-level engine in an
/// explicit [`ExecMode`] on an explicit accumulator backend. Every
/// mode × backend combination is value-for-value identical (asserted by
/// `rtf_scenarios::oracle::assert_backend_agreement`).
pub fn run_event_driven_with_backend(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    mode: ExecMode,
    backend: AccumulatorKind,
) -> EventDrivenOutcome {
    run_event_driven_schema(
        params,
        population,
        seed,
        mode,
        backend,
        SeedSchema::from_env(),
    )
}

/// [`run_event_driven_with_backend`] under an explicit client randomness
/// schema (instead of `RTF_SEED_SCHEMA`). Under [`SeedSchema::V2Fast`]
/// the batched pipeline emits whole span words straight from the
/// counter-based generator into the packed report lanes — no per-report
/// `Sign` materialisation — and stays value-for-value identical to the
/// sequential schedule run under the same schema.
pub fn run_event_driven_schema(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    mode: ExecMode,
    backend: AccumulatorKind,
    schema: SeedSchema,
) -> EventDrivenOutcome {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    population.assert_k_sparse(params.k());
    match mode {
        ExecMode::Sequential => run_sequential(params, population, seed, backend, schema),
        ExecMode::Parallel(w) => run_batched(params, population, seed, w.max(1), backend, schema),
    }
}

/// One composed randomizer table per order — shared by the engine's
/// modes and the live streaming driver ([`crate::live`]).
pub(crate) fn composed_tables(params: &ProtocolParams) -> Vec<ComposedRandomizer> {
    (0..params.num_orders())
        .map(|h| ComposedRandomizer::for_protocol(params.k_for_order(h), params.epsilon()))
        .collect()
}

/// One order group's client state in the batched/streaming pipelines,
/// struct-of-arrays: parallel lanes of user ids, RNG streams, a
/// precomputed span-event schedule, and one shared [`SpanRandomizers`]
/// arena.
///
/// The former layout held a `GroupedSlot {client, rng, cursor}` struct
/// per user — ~150 scattered bytes plus a per-user heap `b̃` vector, a
/// pointer chase per report. A span emission now walks each column once
/// ([`emit_span`](Self::emit_span)): partial sums rebuilt from the
/// precomputed span-event schedule, then one monomorphized randomizer
/// pass filling the packed [`SignLane`] — bit-identical to per-slot
/// `observe_span` calls.
///
/// Public because the span-native scenario engine
/// (`rtf_scenarios::engine`) drives the same groups through its fault
/// layer — client construction and span emission must live in exactly
/// one place for the engines' bit-identity proofs to mean anything.
pub struct SpanGroup {
    /// User ids in lane order.
    pub users: Vec<u32>,
    /// This group's report signs for the current span, bit-packed —
    /// valid after [`emit_span`](Self::emit_span), consumed via
    /// `ReportBatch::extend_packed` or masked span folds.
    pub signs: SignLane,
    rngs: Vec<rand::rngs::StdRng>,
    /// The group's non-zero span sums, precomputed at build: entry
    /// `span_events[t / stride − 1]` lists `(lane, ±1)` for exactly the
    /// lanes whose partial sum over the span ending at `t` is non-zero.
    /// The population is static, so walking each user's change times
    /// **once** here replaces a per-span `DerivativeCursor::sum_to` per
    /// lane — the former hottest load in the repo: a million scattered
    /// change arrays chased per period, for sums that are ~90% zero.
    span_events: Vec<Vec<(u32, Ternary)>>,
    spans: SpanRandomizers,
    /// Scratch: per-lane partial sums for the span being emitted —
    /// refilled per span as memset-to-zero plus the sparse
    /// [`span_events`](Self::span_events) patches.
    sums: Vec<Ternary>,
    /// The group's reporting stride `2^h`.
    stride: u64,
}

impl SpanGroup {
    /// Number of clients in the group.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the group holds no clients.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Emits the whole group's reports for the span ending at period `t`
    /// into [`signs`](Self::signs): pass 1 rebuilds the per-lane partial
    /// sums (a zero-fill plus the precomputed non-zero patches for this
    /// span), pass 2 draws every lane's report bit through the shared
    /// randomizer arena. Lane `i`'s draw consumes `rngs[i]` exactly as
    /// `Client::observe_span` would — the bit streams are identical
    /// (pinned by `span_group_matches_per_slot_clients`).
    ///
    /// # Panics
    /// Debug-asserts that `t` is the group's next span boundary — a
    /// non-empty group must emit at **every** boundary, in order, or the
    /// shared randomizer arena falls out of lockstep with the clients.
    pub fn emit_span(&mut self, t: u64) {
        debug_assert_eq!(
            t,
            (self.spans.position() as u64 + 1) * self.stride,
            "span boundary out of lockstep"
        );
        self.sums.clear();
        self.sums.resize(self.users.len(), Ternary::Zero);
        for &(lane, v) in &self.span_events[(t / self.stride - 1) as usize] {
            self.sums[lane as usize] = v;
        }
        self.signs.clear();
        let SpanGroup {
            signs,
            rngs,
            spans,
            sums,
            ..
        } = self;
        if spans.schema().is_fast() {
            // Fast schema: zero slots are a pure function of
            // (client key, report index) — fill whole 64-lane words
            // straight into the packed lane, no `Sign` per report and no
            // RNG draws.
            spans.fill_span_words(sums, |bits, count| signs.push_bits(bits, count));
        } else {
            spans.fill_span(sums, rngs, |s| signs.push(s));
        }
    }
}

/// Builds one user range's clients grouped by announced order — at
/// period `t` only orders dividing `t` report, so the round loop walks
/// exactly the reporting clients: `O(reports + changes)` per shard
/// instead of `O(users · periods)`.
///
/// This is the **one** client-construction path of the batched engine,
/// the live streaming driver ([`crate::live`]), and the span-native
/// scenario engine (`rtf_scenarios::engine`) — they must consume
/// per-user RNG identically for the batched ≡ streaming ≡ sequential
/// proofs to hold, so the construction lives in exactly one place.
pub fn build_order_groups(
    params: &ProtocolParams,
    population: &Population,
    composed: &[ComposedRandomizer],
    root: &SeedSequence,
    users: std::ops::Range<usize>,
    schema: SeedSchema,
) -> Vec<SpanGroup> {
    let orders = params.num_orders() as usize;
    let d = params.d();
    let mut groups: Vec<SpanGroup> = (0..orders)
        .map(|h| SpanGroup {
            users: Vec::new(),
            signs: SignLane::new(),
            rngs: Vec::new(),
            span_events: vec![Vec::new(); params.sequence_len(h as u32)],
            spans: SpanRandomizers::new_with_schema(
                params.sequence_len(h as u32),
                &composed[h],
                schema,
            ),
            sums: Vec::new(),
            stride: 1u64 << h,
        })
        .collect();
    for u in users {
        let node = root.child(u as u64);
        let mut rng = node.rng();
        let h = Client::<FutureRand>::sample_order(params, &mut rng);
        let m = FutureRand::init_with_schema(
            params.sequence_len(h),
            &composed[h as usize],
            &mut rng,
            schema,
            fastseed::client_key(&node),
        );
        let group = &mut groups[h as usize];
        let lane = group.users.len() as u32;
        group.users.push(u as u32);
        group.spans.push_lane(&m);
        group.rngs.push(rng);
        // One pass over the user's (sorted) change times builds the
        // lane's non-zero span sums: a span's sum is the parity flip of
        // the change count across it (`st(end) − st(start − 1)`, each
        // the parity of its prefix) — exactly `DerivativeCursor::sum_to`
        // called at every span boundary, computed once instead of once
        // per period.
        let stride = group.stride;
        let stream = population.stream(u);
        let changes = stream.change_times();
        let mut i = 0usize;
        let mut parity_before = false;
        while i < changes.len() && changes[i] <= d {
            let span_end = changes[i].div_ceil(stride) * stride;
            let mut count = 0u64;
            while i < changes.len() && changes[i] <= span_end {
                i += 1;
                count += 1;
            }
            let parity_after = parity_before ^ (count % 2 == 1);
            let v = match (parity_before, parity_after) {
                (false, true) => Some(Ternary::Plus),
                (true, false) => Some(Ternary::Minus),
                _ => None,
            };
            if let Some(v) = v {
                group.span_events[(span_end / stride - 1) as usize].push((lane, v));
            }
            parity_before = parity_after;
        }
    }
    groups
}

/// The single-threaded reference schedule with real (serialised) framing.
fn run_sequential(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    backend: AccumulatorKind,
    schema: SeedSchema,
) -> EventDrivenOutcome {
    let composed = composed_tables(params);
    let mut server = Server::for_future_rand_schema(*params, backend, schema);
    let mut wire = WireStats::default();
    let root = SeedSequence::new(seed);

    // Build clients; send order announcements through the wire.
    let mut clients: Vec<(Client<FutureRand>, rand::rngs::StdRng)> = Vec::with_capacity(params.n());
    for u in 0..params.n() {
        let node = root.child(u as u64);
        let mut rng = node.rng();
        let h = Client::<FutureRand>::sample_order(params, &mut rng);
        let ann = OrderAnnouncement {
            user: u as u32,
            order: h as u8,
        };
        let decoded = OrderAnnouncement::decode(ann.encode());
        server.register_user(u32::from(decoded.order));
        wire.record_announcement();
        let m = FutureRand::init_with_schema(
            params.sequence_len(h),
            &composed[h as usize],
            &mut rng,
            schema,
            fastseed::client_key(&node),
        );
        clients.push((Client::new(params, h, m), rng));
    }

    // Round loop with a real (serialised) mailbox per period.
    let mut estimates = Vec::with_capacity(params.d() as usize);
    let mut mailbox: Vec<bytes::Bytes> = Vec::new();
    for t in 1..=params.d() {
        mailbox.clear();
        for (u, (client, rng)) in clients.iter_mut().enumerate() {
            let x = population.stream(u).derivative().at(t);
            if let Some(report) = client.observe(t, x, rng) {
                let msg = ReportMsg {
                    user: u as u32,
                    t: t as u32,
                    bit: report.bit == Sign::Plus,
                };
                mailbox.push(msg.encode());
            }
        }
        // Server drains the mailbox: decode, attribute to the sender's
        // order, ingest.
        for raw in &mailbox {
            let msg = ReportMsg::decode(raw.clone());
            let h = clients[msg.user as usize].0.order();
            let bit = if msg.bit { Sign::Plus } else { Sign::Minus };
            server.ingest(h, bit);
            wire.record_report();
        }
        estimates.push(server.end_of_period(t));
    }

    let acc_bytes = server.accumulator().heap_bytes() as u64;
    EventDrivenOutcome {
        estimates,
        group_sizes: server.group_sizes().to_vec(),
        wire,
        acc_bytes,
    }
}

/// One worker's whole-horizon contribution: a mergeable accumulator per
/// period (on the selected storage backend), plus the shard's share of
/// the registration/wire accounting.
struct ShardRun {
    /// `per_period[t-1]` holds the shard's report sums for period `t`.
    per_period: Vec<AnyAccumulator>,
    group_sizes: Vec<usize>,
    wire: WireStats,
    /// Heap bytes of this shard's per-period accumulators after the
    /// horizon completed — the backend memory footprint.
    acc_bytes: u64,
}

/// The batched multi-worker pipeline: contiguous user shards, columnar
/// report batches, shard accumulators merged in shard-index order.
fn run_batched(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    workers: usize,
    backend: AccumulatorKind,
    schema: SeedSchema,
) -> EventDrivenOutcome {
    let composed = composed_tables(params);
    let root = SeedSequence::new(seed);
    let d = params.d();
    let orders = params.num_orders() as usize;
    let pool = WorkerPool::new(workers);

    let shards: Vec<ShardRun> = pool.map_shards(params.n(), |shard| {
        let mut wire = WireStats::default();
        for _ in shard.range() {
            wire.record_announcement();
        }
        let mut groups =
            build_order_groups(params, population, &composed, &root, shard.range(), schema);
        let group_sizes: Vec<usize> = groups.iter().map(SpanGroup::len).collect();

        let mut per_period: Vec<AnyAccumulator> =
            (0..d).map(|_| backend.new_accumulator(orders)).collect();
        for t in 1..=d {
            let acc = &mut per_period[(t - 1) as usize];
            let max_h = t.trailing_zeros().min(params.log_d());
            let mut rows = 0u64;
            for h in 0..=max_h {
                let group = &mut groups[h as usize];
                if group.is_empty() {
                    continue;
                }
                // The whole order-h interval ending at t, one columnar
                // pass: partial sums off the span-event schedule, one
                // randomizer sweep, then a masked-popcount fold of the
                // packed span
                // straight into the accumulator. A group span is one
                // constant-order run by construction, so there is no
                // batch to materialise and re-scan: the per-order totals
                // are exactly what `ReportBatch::fold_into` would hand
                // over (one `record_counts` per order, ascending), and
                // all backends are exact, so the sums are identical.
                group.emit_span(t);
                let len = group.len() as u64;
                let plus = group.signs.count_plus(0..group.len());
                acc.record_counts(h, plus, len - plus);
                rows += len;
            }
            wire.record_report_batch(rows);
        }

        let acc_bytes: u64 = per_period.iter().map(|a| a.heap_bytes() as u64).sum();
        ShardRun {
            per_period,
            group_sizes,
            wire,
            acc_bytes,
        }
    });

    // Deterministic merge: shard-index order, exactly the order
    // `map_shards` returned.
    let mut server = Server::for_future_rand_schema(*params, backend, schema);
    let mut wire = WireStats::default();
    let mut acc_bytes = 0u64;
    for shard in &shards {
        for (h, &count) in shard.group_sizes.iter().enumerate() {
            for _ in 0..count {
                server.register_user(h as u32);
            }
        }
        wire.merge(&shard.wire);
        acc_bytes += shard.acc_bytes;
    }
    let mut estimates = Vec::with_capacity(d as usize);
    for t in 1..=d {
        for shard in &shards {
            server
                .absorb_shard(&shard.per_period[(t - 1) as usize])
                .expect("shard accumulators share the server's backend and shape");
        }
        estimates.push(server.end_of_period(t));
    }

    EventDrivenOutcome {
        estimates,
        group_sizes: server.group_sizes().to_vec(),
        wire,
        acc_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_streams::generator::UniformChanges;

    fn setup(n: usize, d: u64, k: usize, seed: u64) -> (ProtocolParams, Population) {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        (params, pop)
    }

    #[test]
    fn matches_in_memory_fast_path_exactly() {
        // Same seed ⇒ identical estimates: both paths consume each user's
        // RNG stream in the same order (order draw, b̃ draw, then one draw
        // per zero partial sum). This pins down that the in-memory path in
        // rtf-core really is the same protocol.
        let (params, pop) = setup(150, 32, 3, 40);
        let ev = run_event_driven(&params, &pop, 99);
        let mem = rtf_core::protocol::run_in_memory(&params, &pop, 99);
        assert_eq!(ev.estimates, mem.estimates());
        assert_eq!(ev.group_sizes, mem.group_sizes());
    }

    #[test]
    fn batched_pipeline_is_worker_count_invariant() {
        // The tentpole determinism claim at unit scale: sequential and
        // parallel(w) agree value-for-value for every w, including more
        // workers than convenient shard sizes.
        let (params, pop) = setup(157, 32, 3, 44);
        let seq = run_event_driven_with(&params, &pop, 21, ExecMode::Sequential);
        for w in [1usize, 2, 3, 8] {
            let par = run_event_driven_with(&params, &pop, 21, ExecMode::Parallel(w));
            assert_eq!(par.estimates, seq.estimates, "{w} workers");
            assert_eq!(par.group_sizes, seq.group_sizes, "{w} workers");
            assert_eq!(par.wire, seq.wire, "{w} workers");
        }
    }

    #[test]
    fn fast_schema_is_mode_invariant_and_changes_only_zero_draws() {
        // Under the v2 schema the batched pipeline takes the packed
        // word-at-a-time path, the sequential schedule the per-report
        // path — they must still agree value-for-value, and both must
        // match the in-memory reference run under the same schema.
        let (params, pop) = setup(157, 32, 3, 47);
        let seq = run_event_driven_schema(
            &params,
            &pop,
            23,
            ExecMode::Sequential,
            AccumulatorKind::Dense,
            SeedSchema::V2Fast,
        );
        let mem = rtf_core::protocol::run_in_memory_schema(&params, &pop, 23, SeedSchema::V2Fast);
        assert_eq!(seq.estimates, mem.estimates());
        for w in [1usize, 2, 3, 8] {
            let par = run_event_driven_schema(
                &params,
                &pop,
                23,
                ExecMode::Parallel(w),
                AccumulatorKind::Dense,
                SeedSchema::V2Fast,
            );
            assert_eq!(par.estimates, seq.estimates, "{w} workers");
            assert_eq!(par.wire, seq.wire, "{w} workers");
        }
        // Order sampling and b̃ draws are schema-invariant, so the group
        // structure (and hence report counts) match v1 exactly — only the
        // zero-slot randomness source differs.
        let v1 = run_event_driven_schema(
            &params,
            &pop,
            23,
            ExecMode::Sequential,
            AccumulatorKind::Dense,
            SeedSchema::V1Std,
        );
        assert_eq!(v1.group_sizes, seq.group_sizes);
        assert_eq!(v1.wire, seq.wire);
        assert_ne!(v1.estimates, seq.estimates, "schemas are distinct streams");
    }

    #[test]
    fn backends_agree_on_the_event_driven_engine() {
        // The storage-engine claim at unit scale: every backend × mode
        // combination reproduces the dense sequential estimates exactly.
        let (params, pop) = setup(150, 32, 3, 45);
        let baseline = run_event_driven_with_backend(
            &params,
            &pop,
            33,
            ExecMode::Sequential,
            AccumulatorKind::Dense,
        );
        for kind in AccumulatorKind::ALL {
            for mode in [ExecMode::Sequential, ExecMode::Parallel(2)] {
                let out = run_event_driven_with_backend(&params, &pop, 33, mode, kind);
                assert_eq!(out.estimates, baseline.estimates, "{kind} {mode}");
                assert_eq!(out.group_sizes, baseline.group_sizes, "{kind} {mode}");
                assert_eq!(out.wire, baseline.wire, "{kind} {mode}");
            }
        }
    }

    #[test]
    fn sparse_backend_is_smaller_at_large_log_d() {
        // The memory story behind the sparse backend: per-period shard
        // accumulators touch ~2 orders on average, while dense always
        // carries 1 + log d lanes.
        let (params, pop) = setup(60, 64, 3, 46);
        let dense = run_event_driven_with_backend(
            &params,
            &pop,
            9,
            ExecMode::Parallel(1),
            AccumulatorKind::Dense,
        );
        let sparse = run_event_driven_with_backend(
            &params,
            &pop,
            9,
            ExecMode::Parallel(1),
            AccumulatorKind::Sparse,
        );
        assert_eq!(sparse.estimates, dense.estimates);
        assert!(
            sparse.acc_bytes < dense.acc_bytes,
            "sparse {} bytes vs dense {} bytes",
            sparse.acc_bytes,
            dense.acc_bytes
        );
    }

    #[test]
    fn wire_accounting_matches_group_structure() {
        let (params, pop) = setup(100, 16, 2, 41);
        let ev = run_event_driven(&params, &pop, 7);
        let expected_reports: u64 = ev
            .group_sizes
            .iter()
            .enumerate()
            .map(|(h, &sz)| sz as u64 * (16u64 >> h))
            .sum();
        assert_eq!(ev.wire.payload_bits, expected_reports);
        assert_eq!(ev.wire.messages, 100 + expected_reports);
        assert_eq!(
            ev.wire.wire_bytes,
            100 * OrderAnnouncement::WIRE_BYTES as u64
                + expected_reports * ReportMsg::WIRE_BYTES as u64
        );
    }

    #[test]
    fn bits_per_user_period_is_below_one() {
        // Users at order h > 0 report less than once per period, so the
        // average payload is < 1 bit/user/period (≈ 2/log d).
        let (params, pop) = setup(400, 64, 3, 42);
        let ev = run_event_driven(&params, &pop, 8);
        let rate = ev.wire.bits_per_user_period(400, 64);
        assert!(rate < 1.0, "rate {rate}");
        assert!(rate > 0.1, "rate {rate} suspiciously low");
    }

    #[test]
    fn deterministic_under_seed() {
        let (params, pop) = setup(80, 16, 2, 43);
        let a = run_event_driven(&params, &pop, 5);
        let b = run_event_driven(&params, &pop, 5);
        assert_eq!(a.estimates, b.estimates);
        assert_eq!(a.wire, b.wire);
    }
}
