//! The fast aggregate simulation path.
//!
//! The event-driven engine draws one uniform ±1 per *zero* partial sum —
//! by far the dominant cost at realistic scales (`n·d` RNG draws). But the
//! server only consumes each interval's *sum* of bits, and the zero-slot
//! bits are i.i.d. uniform, so their total is `2·Binomial(m₀, ½) − m₀` —
//! sampled exactly in `O(m₀/64)` by popcount. Non-zero partial sums still
//! walk each user's pre-computed `b̃` in interval order, so the cross-time
//! correlation structure of FutureRand (the thing the whole paper is
//! about) is preserved *exactly*.
//!
//! The resulting estimate stream is identical **in distribution** to the
//! event-driven engine (same per-user `(h_u, b̃)` draws, same conditional
//! law of every interval sum), but not bit-identical (server-side batch
//! noise uses its own RNG stream). The equivalence is validated
//! statistically in this module's tests and in `tests/` integration tests.
//!
//! Cost: `O(n·k + n + Σ_h (d/2^h)·(m_h/64))` per trial — about two orders
//! of magnitude cheaper than event-driven at `d = 1024` — which is what
//! makes the million-user experiments in EXPERIMENTS.md tractable.

use rtf_core::accumulator::AccumulatorKind;
use rtf_core::client::Client;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_core::randomizer::FutureRand;
use rtf_core::server::Server;
use rtf_primitives::binomial::sample_binomial_half;
use rtf_primitives::seeding::SeedSequence;
use rtf_primitives::sign::Sign;
use rtf_streams::population::Population;
use rtf_streams::stream::BoolStream;

/// The non-zero partial sums of one stream at order `h`: `(j, sign)`
/// pairs in ascending `j`, where `sign` is the value of `S_u(I_{h,j})`.
///
/// Runs in `O(k)` (iterates change times only).
fn nonzero_blocks(stream: &BoolStream, h: u32) -> Vec<(u64, Sign)> {
    let stride = 1u64 << h;
    let changes = stream.change_times();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < changes.len() {
        let j = changes[i].div_ceil(stride);
        // All changes inside interval j: advance to the first beyond.
        let block_end = j * stride;
        let mut i_end = i;
        while i_end < changes.len() && changes[i_end] <= block_end {
            i_end += 1;
        }
        // Parity before the block = i (changes strictly before block
        // start), parity after = i_end. S = st(end) − st(start−1).
        let before_one = i % 2 == 1;
        let after_one = i_end % 2 == 1;
        match (before_one, after_one) {
            (false, true) => out.push((j, Sign::Plus)),
            (true, false) => out.push((j, Sign::Minus)),
            _ => {}
        }
        i = i_end;
    }
    out
}

/// Runs the FutureRand protocol through the aggregate sampler, with the
/// paper's parameterisation `ε̃ = ε/(5√k_eff)`.
///
/// Per-user randomness (`h_u`, `b̃`) consumes the same
/// `SeedSequence(seed).child(user)` streams as the other paths; the
/// batched zero-slot noise uses the dedicated server stream
/// `child(0x5E71)`.
pub fn run_future_rand_aggregate(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    run_future_rand_aggregate_with_backend(params, population, seed, AccumulatorKind::from_env())
}

/// [`run_future_rand_aggregate`] on an explicit accumulator backend
/// (instead of the `RTF_BACKEND` default). Batch sums are
/// integer-valued, so every backend produces identical estimates.
pub fn run_future_rand_aggregate_with_backend(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    backend: AccumulatorKind,
) -> ProtocolOutcome {
    let composed: Vec<ComposedRandomizer> = (0..params.num_orders())
        .map(|h| ComposedRandomizer::for_protocol(params.k_for_order(h), params.epsilon()))
        .collect();
    let gaps: Vec<f64> = composed.iter().map(ComposedRandomizer::c_gap).collect();
    aggregate_impl(params, population, seed, &composed, &gaps, backend)
}

/// Runs the **audit-calibrated** FutureRand protocol through the
/// aggregate sampler (`rtf_core::calibrate`): same protocol, exact-audit
/// certified larger `ε̃`, ≈ 2× better `c_gap`.
pub fn run_calibrated_aggregate(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    let mut composed = Vec::with_capacity(params.num_orders() as usize);
    let mut gaps = Vec::with_capacity(params.num_orders() as usize);
    for h in 0..params.num_orders() {
        let cal = rtf_core::calibrate::calibrate(params.k_for_order(h), params.epsilon());
        gaps.push(cal.law.c_gap());
        composed.push(ComposedRandomizer::new(
            params.k_for_order(h),
            cal.eps_tilde,
        ));
    }
    aggregate_impl(
        params,
        population,
        seed,
        &composed,
        &gaps,
        AccumulatorKind::from_env(),
    )
}

fn aggregate_impl(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    composed: &[ComposedRandomizer],
    gaps: &[f64],
    backend: AccumulatorKind,
) -> ProtocolOutcome {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    population.assert_k_sparse(params.k());

    let mut server = Server::with_backend(*params, gaps, backend);
    let root = SeedSequence::new(seed);

    // Per-order accumulators over interval indices (1-based j).
    let orders = params.num_orders() as usize;
    let mut nonzero_sum: Vec<Vec<f64>> = (0..orders)
        .map(|h| vec![0.0; params.sequence_len(h as u32) + 1])
        .collect();
    let mut nonzero_cnt: Vec<Vec<u32>> = (0..orders)
        .map(|h| vec![0u32; params.sequence_len(h as u32) + 1])
        .collect();

    for u in 0..params.n() {
        let mut rng = root.child(u as u64).rng();
        let h = Client::<FutureRand>::sample_order(params, &mut rng);
        server.register_user(h);
        let m = FutureRand::init(params.sequence_len(h), &composed[h as usize], &mut rng);
        let b_tilde = m.b_tilde();
        for (idx, (j, sign)) in nonzero_blocks(population.stream(u), h)
            .into_iter()
            .enumerate()
        {
            nonzero_sum[h as usize][j as usize] += sign.mul(b_tilde[idx]).as_f64();
            nonzero_cnt[h as usize][j as usize] += 1;
        }
    }

    let group_sizes: Vec<usize> = server.group_sizes().to_vec();
    let mut server_rng = root.child(0x5E71).rng();
    let mut reports_sent = 0u64;
    for t in 1..=params.d() {
        let max_h = t.trailing_zeros().min(params.log_d());
        for h in 0..=max_h {
            let j = (t >> h) as usize;
            let group = group_sizes[h as usize] as u64;
            let nz = u64::from(nonzero_cnt[h as usize][j]);
            let zeros = group - nz;
            // Exact total of `zeros` i.i.d. uniform ±1 bits.
            let noise = 2.0 * sample_binomial_half(zeros, &mut server_rng) as f64 - zeros as f64;
            let sum = nonzero_sum[h as usize][j] + noise;
            server.ingest_aggregate(h, sum, group);
            reports_sent += group;
        }
        let _ = server.end_of_period(t);
    }

    ProtocolOutcome::from_parts(server.estimates().to_vec(), group_sizes, reports_sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_dyadic::interval::{DyadicInterval, Horizon};
    use rtf_streams::generator::{StreamGenerator, UniformChanges};

    #[test]
    fn nonzero_blocks_match_direct_partial_sums() {
        let mut rng = SeedSequence::new(50).rng();
        let g = UniformChanges::new(64, 6, 0.9);
        let hz = Horizon::new(64);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            let x = s.derivative();
            for h in hz.orders() {
                let blocks = nonzero_blocks(&s, h);
                // Ascending and within range.
                assert!(blocks.windows(2).all(|w| w[0].0 < w[1].0));
                // Exactly the non-zero partial sums, with matching signs.
                let mut expect = Vec::new();
                for i in hz.iset_at_order(h) {
                    let ps = x.partial_sum(i);
                    if let Some(sign) = ps.sign() {
                        expect.push((i.index(), sign));
                    }
                }
                assert_eq!(blocks, expect, "order {h} for {:?}", s.change_times());
            }
        }
    }

    #[test]
    fn aggregate_matches_event_driven_statistically() {
        // Same population, many seeds: mean and variance of â[t] must
        // agree between paths within Monte-Carlo tolerance.
        let n = 400usize;
        let d = 16u64;
        let params = ProtocolParams::new(n, d, 3, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(51).rng();
        let pop = Population::generate(&UniformChanges::new(d, 3, 0.8), n, &mut rng);
        let trials = 300u64;
        let dd = d as usize;
        let (mut mean_a, mut mean_b) = (vec![0.0; dd], vec![0.0; dd]);
        let (mut m2_a, mut m2_b) = (vec![0.0; dd], vec![0.0; dd]);
        for s in 0..trials {
            let a = run_future_rand_aggregate(&params, &pop, 10_000 + s);
            let b = rtf_core::protocol::run_in_memory(&params, &pop, 10_000 + s);
            for t in 0..dd {
                mean_a[t] += a.estimates()[t];
                mean_b[t] += b.estimates()[t];
                m2_a[t] += a.estimates()[t].powi(2);
                m2_b[t] += b.estimates()[t].powi(2);
            }
        }
        for t in 0..dd {
            let (ma, mb) = (mean_a[t] / trials as f64, mean_b[t] / trials as f64);
            let va = m2_a[t] / trials as f64 - ma * ma;
            let vb = m2_b[t] / trials as f64 - mb * mb;
            let sd = (va.max(vb) / trials as f64).sqrt();
            assert!(
                (ma - mb).abs() < 6.0 * sd + 1e-9,
                "t={}: means {ma} vs {mb} (sd {sd})",
                t + 1
            );
            // Variances within 40% of each other (loose but catches scale
            // bugs; both ≈ Σ scale² per order).
            assert!(
                (va - vb).abs() <= 0.4 * va.max(vb),
                "t={}: vars {va} vs {vb}",
                t + 1
            );
        }
    }

    #[test]
    fn aggregate_is_deterministic_and_shaped() {
        let n = 1000usize;
        let d = 64u64;
        let params = ProtocolParams::new(n, d, 4, 0.5, 0.05).unwrap();
        let mut rng = SeedSequence::new(52).rng();
        let pop = Population::generate(&UniformChanges::new(d, 4, 0.7), n, &mut rng);
        let a = run_future_rand_aggregate(&params, &pop, 1);
        let b = run_future_rand_aggregate(&params, &pop, 1);
        assert_eq!(a.estimates(), b.estimates());
        assert_eq!(a.estimates().len(), 64);
        assert_eq!(a.group_sizes().iter().sum::<usize>(), n);
        // Report accounting identical to the exact path's formula.
        let expect: u64 = a
            .group_sizes()
            .iter()
            .enumerate()
            .map(|(h, &sz)| sz as u64 * (d >> h))
            .sum();
        assert_eq!(a.reports_sent(), expect);
    }

    #[test]
    fn calibrated_aggregate_runs_and_beats_paper_config() {
        // Same instance: the calibrated configuration's error should be
        // clearly smaller on average (its c_gap is ≈ 2× larger).
        let n = 4_000usize;
        let d = 64u64;
        let k = 8usize;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(54).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 1.0), n, &mut rng);
        let trials = 10u64;
        let linf = |est: &[f64]| {
            est.iter()
                .zip(pop.true_counts())
                .map(|(e, t)| (e - t).abs())
                .fold(0.0f64, f64::max)
        };
        let (mut cal, mut paper) = (0.0, 0.0);
        for s in 0..trials {
            cal +=
                linf(run_calibrated_aggregate(&params, &pop, 70 + s).estimates()) / trials as f64;
            paper +=
                linf(run_future_rand_aggregate(&params, &pop, 70 + s).estimates()) / trials as f64;
        }
        assert!(cal < 0.75 * paper, "calibrated {cal} vs paper {paper}");
    }

    #[test]
    fn aggregate_handles_all_zero_population() {
        // No changes at all: truth is 0 everywhere; estimates are pure
        // noise around 0.
        let n = 2000usize;
        let d = 32u64;
        let params = ProtocolParams::new(n, d, 2, 1.0, 0.05).unwrap();
        let streams = (0..n).map(|_| BoolStream::all_zero(d)).collect();
        let pop = Population::from_streams(streams);
        let o = run_future_rand_aggregate(&params, &pop, 3);
        let mean: f64 = o.estimates().iter().sum::<f64>() / d as f64;
        // Noise is zero-mean; the time-averaged estimate should be small
        // relative to the per-time noise scale.
        let scale = (1.0 + 5.0) / 0.03 * (n as f64).sqrt();
        assert!(mean.abs() < scale, "mean {mean}");
    }

    #[test]
    fn blocks_respect_k_eff_budget() {
        // No stream may produce more non-zero blocks at order h than
        // min(k, L): FutureRand's b̃ must never be exhausted.
        let mut rng = SeedSequence::new(53).rng();
        let g = UniformChanges::new(128, 9, 1.0);
        let hz = Horizon::new(128);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            for h in hz.orders() {
                let l = (128u64 >> h) as usize;
                let blocks = nonzero_blocks(&s, h);
                assert!(blocks.len() <= 9.min(l), "h={h}");
                // And every reported j is within [1..L].
                assert!(blocks.iter().all(|&(j, _)| (1..=l as u64).contains(&j)));
                let _ = DyadicInterval::new(h, 1);
            }
        }
    }
}
