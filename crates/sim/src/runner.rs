//! Parallel, deterministically seeded trial runner.
//!
//! Experiments repeat a protocol execution over many trials (fresh
//! population and fresh protocol randomness per trial) and summarise a
//! per-trial metric. Trials are independent, so they fan out over the
//! process-wide **persistent** worker pool
//! (`rtf_runtime::persistent::shared_pool`): the worker threads are
//! spawned once and reused across every `run_trials` execution, so
//! experiments sweeping many small plans never pay the per-call thread
//! spawn cost (the spawn-cost delta is recorded by `exp_throughput`).
//! The injector channel load-balances while results return in trial
//! order; determinism is preserved because trial `i` always uses seeds
//! derived from `master_seed → child(i)`, regardless of which worker
//! runs it.
//!
//! Each plan also carries the accumulator storage backend
//! ([`AccumulatorKind`], default from `RTF_BACKEND`), which
//! [`run_trials_with`] hands to backend-aware execute callbacks.

use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_primitives::seeding::SeedSequence;
use rtf_runtime::shared_pool;
use rtf_streams::generator::StreamGenerator;
use rtf_streams::population::Population;

/// The default execution path for applications: the aggregate sampler
/// (distribution-identical to the event-driven engine, two orders of
/// magnitude faster; see `rtf_sim::aggregate`).
pub fn run_future_rand(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    crate::aggregate::run_future_rand_aggregate(params, population, seed)
}

/// A repeated-trials experiment plan.
#[derive(Debug, Clone, Copy)]
pub struct TrialPlan {
    /// Protocol parameters shared by all trials.
    pub params: ProtocolParams,
    /// Number of independent trials.
    pub trials: usize,
    /// Master seed; trial `i` derives everything from `child(i)`.
    pub master_seed: u64,
    /// Number of worker threads (0 ⇒ available parallelism).
    pub threads: usize,
    /// The accumulator storage backend handed to backend-aware execute
    /// callbacks by [`run_trials_with`]. Plain [`run_trials`] executes
    /// take no backend parameter and therefore cannot receive it — they
    /// fall back to whatever their own entry point selects (usually
    /// `RTF_BACKEND` via [`AccumulatorKind::from_env`]).
    pub backend: AccumulatorKind,
}

impl TrialPlan {
    /// A plan with sensible defaults (`threads = 0` ⇒ auto; backend from
    /// `RTF_BACKEND`).
    pub fn new(params: ProtocolParams, trials: usize, master_seed: u64) -> Self {
        TrialPlan {
            params,
            trials,
            master_seed,
            threads: 0,
            backend: AccumulatorKind::from_env(),
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads.min(self.trials.max(1));
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.trials.max(1))
    }
}

/// Per-trial metric values plus summary statistics.
#[derive(Debug, Clone)]
pub struct TrialResults {
    values: Vec<f64>,
}

impl TrialResults {
    /// The per-trial values, in trial order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no trials.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (unbiased).
    pub fn std(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    }

    /// The `q`-quantile (linear interpolation), `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values must not be NaN"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Runs `plan.trials` independent trials in parallel over the
/// process-wide persistent pool (threads are reused across `run_trials`
/// executions, never re-spawned per call).
///
/// Per trial `i`:
/// 1. a fresh population is generated from `generator` with the seed
///    `master → child(i) → child(0)`;
/// 2. `execute(params, &population, protocol_seed)` runs the protocol with
///    `protocol_seed = master → child(i) → child(1)`;
/// 3. `metric(&outcome, &population)` reduces the run to one number.
///
/// Results are returned in trial order, independent of scheduling.
pub fn run_trials<G, E, M>(plan: &TrialPlan, generator: &G, execute: E, metric: M) -> TrialResults
where
    G: StreamGenerator + Sync,
    E: Fn(&ProtocolParams, &Population, u64) -> ProtocolOutcome + Sync,
    M: Fn(&ProtocolOutcome, &Population) -> f64 + Sync,
{
    run_trials_with(
        plan,
        generator,
        |params, population, seed, _backend| execute(params, population, seed),
        metric,
    )
}

/// [`run_trials`] with a backend-aware execute callback: the plan's
/// [`AccumulatorKind`] is handed to `execute` so backend sweeps (e.g.
/// `exp_backends`) can run every trial on an explicit storage engine
/// rather than whatever `RTF_BACKEND` says.
pub fn run_trials_with<G, E, M>(
    plan: &TrialPlan,
    generator: &G,
    execute: E,
    metric: M,
) -> TrialResults
where
    G: StreamGenerator + Sync,
    E: Fn(&ProtocolParams, &Population, u64, AccumulatorKind) -> ProtocolOutcome + Sync,
    M: Fn(&ProtocolOutcome, &Population) -> f64 + Sync,
{
    assert!(plan.trials >= 1, "need at least one trial");
    let root = SeedSequence::new(plan.master_seed);
    let pool = shared_pool(plan.effective_threads());

    let values = pool.map_indexed(plan.trials, |i| {
        let trial_seed = root.child(i as u64);
        let mut pop_rng = trial_seed.child(0).rng();
        let population = Population::generate(generator, plan.params.n(), &mut pop_rng);
        let outcome = execute(
            &plan.params,
            &population,
            trial_seed.child(1).seed(),
            plan.backend,
        );
        metric(&outcome, &population)
    });
    TrialResults { values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_streams::generator::UniformChanges;

    fn linf(outcome: &ProtocolOutcome, pop: &Population) -> f64 {
        outcome
            .estimates()
            .iter()
            .zip(pop.true_counts())
            .map(|(e, t)| (e - t).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn parallel_results_are_deterministic_and_order_stable() {
        let params = ProtocolParams::new(300, 16, 2, 1.0, 0.05).unwrap();
        let gen = UniformChanges::new(16, 2, 0.7);
        let mut plan = TrialPlan::new(params, 12, 777);
        plan.threads = 4;
        let a = run_trials(&plan, &gen, run_future_rand, linf);
        plan.threads = 1;
        let b = run_trials(&plan, &gen, run_future_rand, linf);
        assert_eq!(a.values(), b.values(), "thread count must not matter");
    }

    #[test]
    fn backend_sweep_produces_identical_metrics() {
        // run_trials_with hands the plan's backend to the execute
        // callback; integer-exact storage means every backend yields the
        // identical per-trial metric values.
        let params = ProtocolParams::new(250, 16, 2, 1.0, 0.05).unwrap();
        let gen = UniformChanges::new(16, 2, 0.7);
        let execute = |p: &ProtocolParams,
                       pop: &Population,
                       seed: u64,
                       backend: rtf_core::accumulator::AccumulatorKind| {
            crate::aggregate::run_future_rand_aggregate_with_backend(p, pop, seed, backend)
        };
        let mut plan = TrialPlan::new(params, 6, 99);
        plan.backend = rtf_core::accumulator::AccumulatorKind::Dense;
        let reference = run_trials_with(&plan, &gen, execute, linf);
        for backend in rtf_core::accumulator::AccumulatorKind::ALL {
            plan.backend = backend;
            let r = run_trials_with(&plan, &gen, execute, linf);
            assert_eq!(r.values(), reference.values(), "{backend}");
        }
    }

    #[test]
    fn summary_statistics() {
        let r = TrialResults {
            values: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert!((r.mean() - 2.5).abs() < 1e-12);
        assert!((r.std() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(r.quantile(0.0), 1.0);
        assert_eq!(r.quantile(1.0), 4.0);
        assert!((r.quantile(0.5) - 2.5).abs() < 1e-12);
        assert_eq!(r.max(), 4.0);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn fresh_population_per_trial() {
        // Different trials see different noise *and* different data: the
        // per-trial errors should not be all identical.
        let params = ProtocolParams::new(200, 16, 2, 1.0, 0.05).unwrap();
        let gen = UniformChanges::new(16, 2, 0.7);
        let plan = TrialPlan::new(params, 8, 1);
        let r = run_trials(&plan, &gen, run_future_rand, linf);
        let first = r.values()[0];
        assert!(
            r.values().iter().any(|&v| (v - first).abs() > 1e-9),
            "all trials identical: {:?}",
            r.values()
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let params = ProtocolParams::new(10, 8, 1, 1.0, 0.05).unwrap();
        let gen = UniformChanges::new(8, 1, 0.5);
        let plan = TrialPlan::new(params, 0, 1);
        let _ = run_trials(&plan, &gen, run_future_rand, |_, _| 0.0);
    }
}
