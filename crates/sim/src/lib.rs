//! Deterministic message-passing simulation of longitudinal LDP
//! deployments.
//!
//! The paper assumes `n` devices reporting one bit to an untrusted server
//! whenever one of their dyadic intervals completes. This crate simulates
//! that deployment faithfully enough for every claim that depends on it:
//!
//! * [`message`] — serialisable wire formats for order announcements and
//!   report bits, with exact byte/bit accounting (the communication-cost
//!   experiment `exp_communication`);
//! * [`engine`] — the event-driven round loop: at every period each client
//!   observes its own new datum, emits any due report, and the server
//!   closes the period. Runs either **sequentially** with real serialised
//!   framing (the reference oracle) or through the **batched
//!   multi-worker pipeline** of `rtf-runtime` (columnar report batches,
//!   shard accumulators merged in shard-index order) — value-for-value
//!   identical for any worker count; `RTF_WORKERS` selects the default;
//! * [`aggregate`] — a distribution-identical `O(n·(k + d/2^h))`
//!   aggregate sampler for the FutureRand protocol (zero partial sums
//!   contribute an exact `Binomial(m, ½)` of uniform bits; non-zero ones
//!   walk each user's pre-computed `b̃`), enabling million-user
//!   experiments;
//! * [`runner`] — a parallel, deterministically seeded trial runner over
//!   the shared `rtf_runtime::WorkerPool`, returning per-trial metrics in
//!   trial order;
//! * [`live`] — [`run_event_driven_live`]: the honest schedule driven
//!   through the **streaming ingestion service**
//!   (`rtf_runtime::ingest`): per-period chunked intake into bounded
//!   per-worker mailboxes with blocking backpressure, shard accumulators
//!   flushed at period close, and exact journal-replay recovery of a
//!   worker killed mid-horizon — value-for-value identical to the
//!   offline engines.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod engine;
pub mod live;
pub mod message;
pub mod runner;

pub use aggregate::{
    run_calibrated_aggregate, run_future_rand_aggregate, run_future_rand_aggregate_with_backend,
};
pub use engine::{
    build_order_groups, run_event_driven, run_event_driven_with, run_event_driven_with_backend,
    EventDrivenOutcome, SpanGroup,
};
pub use live::{run_event_driven_live, run_event_driven_live_with};
pub use message::{OrderAnnouncement, ReportMsg, WireStats};
pub use runner::{run_future_rand, run_trials, run_trials_with, TrialPlan, TrialResults};
