//! The live (streaming) runner for the honest schedule.
//!
//! [`run_event_driven`](crate::engine::run_event_driven) simulates the
//! deployment offline: each worker owns its user shard for the whole
//! horizon. This module drives the same client state machines through
//! the **streaming ingestion service** (`rtf_runtime::ingest`) instead:
//! every period, each shard's due reports are chunked into columnar
//! batches and streamed into the owning worker's bounded mailbox
//! (blocking when full — backpressure, never loss), and the period is
//! closed by flushing every worker's shard accumulator into the server
//! via `Server::close_period_with_shards`.
//!
//! Because per-user randomness derives from
//! `SeedSequence(seed).child(user)` and shard sums merge exactly, the
//! streaming outcome is **value-for-value identical** to the sequential
//! and batched engines for every worker count, mailbox capacity, chunk
//! size — and across injected worker kills and whole-service
//! snapshot/restarts mid-horizon (journal replay restores the lost
//! state exactly). The differential oracle
//! (`rtf_scenarios::oracle::assert_live_agreement`) proves it.

use crate::engine::{build_order_groups, composed_tables, EventDrivenOutcome};
use crate::message::WireStats;
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_core::server::Server;
use rtf_primitives::fastseed::SeedSchema;
use rtf_primitives::seeding::SeedSequence;
use rtf_runtime::ingest::{IngestService, IngestStats, LiveConfig};
use rtf_runtime::partition;
use rtf_runtime::ReportBatch;
use rtf_streams::population::Population;

/// Runs the honest schedule through the streaming ingestion service with
/// `workers` ingestion workers, on the `RTF_BACKEND`-selected
/// accumulator backend and the `RTF_MAILBOX_CAP`-selected mailbox
/// capacity. Value-for-value identical to
/// [`run_event_driven`](crate::engine::run_event_driven) in every mode.
pub fn run_event_driven_live(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    workers: usize,
) -> EventDrivenOutcome {
    run_event_driven_live_with(
        params,
        population,
        seed,
        &LiveConfig::new(workers),
        AccumulatorKind::from_env(),
    )
    .0
}

/// [`run_event_driven_live`] under an explicit [`LiveConfig`] (mailbox
/// capacity, chunk size, injected worker kills and whole-service
/// restarts) and storage backend. Also returns the service's
/// [`IngestStats`] — periods, batches, recoveries, restarts, replays,
/// flushed accumulator bytes.
///
/// # Panics
/// Panics up front if any configured fault names a period outside
/// `1..=d` — such a fault would silently never fire, turning a chaos
/// test vacuous.
pub fn run_event_driven_live_with(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    config: &LiveConfig,
    backend: AccumulatorKind,
) -> (EventDrivenOutcome, IngestStats) {
    run_event_driven_live_schema(
        params,
        population,
        seed,
        config,
        backend,
        SeedSchema::from_env(),
    )
}

/// [`run_event_driven_live_with`] under an explicit client randomness
/// schema (instead of `RTF_SEED_SCHEMA`). Under [`SeedSchema::V2Fast`]
/// span emission takes the packed word-at-a-time path, and the service's
/// snapshots (including fault-injected restarts) carry the schema in
/// their headers.
pub fn run_event_driven_live_schema(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    config: &LiveConfig,
    backend: AccumulatorKind,
    schema: SeedSchema,
) -> (EventDrivenOutcome, IngestStats) {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    population.assert_k_sparse(params.k());

    let composed = composed_tables(params);
    let root = SeedSequence::new(seed);
    let d = params.d();
    config.validate_for_horizon(d);
    let workers = config.workers.max(1);
    let chunk = config.chunk_rows.max(1);
    let shards = partition(params.n(), workers);

    let mut server = Server::for_future_rand_schema(*params, backend, schema);
    let mut wire = WireStats::default();

    // Per worker shard, clients grouped by order (the one shared
    // construction path of the batched engine — RNG consumption must be
    // identical for the streaming ≡ batched ≡ sequential proof).
    let mut shard_groups: Vec<_> = shards
        .iter()
        .map(|shard| {
            build_order_groups(params, population, &composed, &root, shard.range(), schema)
        })
        .collect();
    for groups in &shard_groups {
        for (h, group) in groups.iter().enumerate() {
            for _ in 0..group.len() {
                server.register_user(h as u32);
                wire.record_announcement();
            }
        }
    }

    // Registration is complete; the service takes the server and runs
    // the horizon online.
    let mut service = IngestService::new(server, workers, config.mailbox_cap);
    let mut estimates = Vec::with_capacity(d as usize);
    for t in 1..=d {
        let max_h = t.trailing_zeros().min(params.log_d());
        for (w, groups) in shard_groups.iter_mut().enumerate() {
            let mut batch = ReportBatch::with_capacity(chunk);
            for h in 0..=max_h {
                let group = &mut groups[h as usize];
                if group.is_empty() {
                    continue;
                }
                group.emit_span(t);
                // Chunk-split bulk appends: fill the in-flight batch to
                // exactly `chunk` rows before each flush — the same
                // batch-size pattern the per-row loop produced.
                let len = group.len();
                let mut a = 0usize;
                while a < len {
                    let take = (chunk - batch.len()).min(len - a);
                    batch.extend_packed(
                        &group.users[a..a + take],
                        h as u8,
                        &group.signs,
                        a..a + take,
                    );
                    a += take;
                    if batch.len() >= chunk {
                        wire.record_report_batch(batch.len() as u64);
                        let full = std::mem::replace(&mut batch, ReportBatch::with_capacity(chunk));
                        service.submit_reports(w, full);
                    }
                }
            }
            if !batch.is_empty() {
                wire.record_report_batch(batch.len() as u64);
                service.submit_reports(w, batch);
            }
        }
        // Faults strike after this period's traffic is in flight and
        // before the close — the worst moment (mid-period restarts and
        // kills must recover from journals alone).
        service = config.apply_pre_close(service, t);
        let close = service
            .close_period(t)
            .expect("service shards share the server's backend and shape");
        estimates.push(close.estimate);
        service = config.apply_post_close(service, t);
    }

    let (server, stats) = service.finish();
    (
        EventDrivenOutcome {
            estimates,
            group_sizes: server.group_sizes().to_vec(),
            wire,
            acc_bytes: stats.flushed_acc_bytes,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_event_driven_with;
    use rtf_runtime::ExecMode;
    use rtf_streams::generator::UniformChanges;

    fn setup(n: usize, d: u64, k: usize, seed: u64) -> (ProtocolParams, Population) {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        (params, pop)
    }

    #[test]
    fn live_matches_sequential_for_every_worker_count() {
        let (params, pop) = setup(150, 32, 3, 90);
        let seq = run_event_driven_with(&params, &pop, 13, ExecMode::Sequential);
        for workers in [1usize, 2, 3, 8] {
            let live = run_event_driven_live(&params, &pop, 13, workers);
            assert_eq!(live.estimates, seq.estimates, "{workers} workers");
            assert_eq!(live.group_sizes, seq.group_sizes, "{workers} workers");
            assert_eq!(live.wire, seq.wire, "{workers} workers");
        }
    }

    #[test]
    fn backpressure_and_chunking_never_change_values() {
        let (params, pop) = setup(120, 16, 2, 91);
        let seq = run_event_driven_with(&params, &pop, 5, ExecMode::Sequential);
        for (cap, chunk) in [(1usize, 1usize), (1, 7), (2, 3), (64, 1000)] {
            let cfg = LiveConfig::new(3)
                .with_mailbox_cap(cap)
                .with_chunk_rows(chunk);
            let (live, stats) =
                run_event_driven_live_with(&params, &pop, 5, &cfg, AccumulatorKind::Dense);
            assert_eq!(live.estimates, seq.estimates, "cap {cap}, chunk {chunk}");
            assert_eq!(live.wire, seq.wire, "cap {cap}, chunk {chunk}");
            assert_eq!(stats.periods, 16);
            assert_eq!(stats.rows, seq.wire.payload_bits, "every report streamed");
        }
    }

    #[test]
    fn worker_kill_mid_horizon_recovers_exactly() {
        let (params, pop) = setup(140, 32, 3, 92);
        let seq = run_event_driven_with(&params, &pop, 23, ExecMode::Sequential);
        for workers in [1usize, 2, 8] {
            let cfg = LiveConfig::new(workers)
                .with_mailbox_cap(2)
                .with_chunk_rows(5)
                .with_kill(workers.saturating_sub(1), 16);
            let (live, stats) =
                run_event_driven_live_with(&params, &pop, 23, &cfg, AccumulatorKind::Dense);
            assert_eq!(live.estimates, seq.estimates, "{workers} workers");
            assert_eq!(live.wire, seq.wire, "{workers} workers");
            assert_eq!(stats.recoveries, 1, "{workers} workers");
            assert!(stats.replayed_batches > 0, "journal replay must happen");
        }
    }

    #[test]
    fn service_restart_mid_horizon_recovers_exactly() {
        let (params, pop) = setup(140, 32, 3, 94);
        let seq = run_event_driven_with(&params, &pop, 29, ExecMode::Sequential);
        for workers in [1usize, 2, 8] {
            // A mid-period restart at t=16 (journals full), a clean
            // restart after t=24 closes, and a worker kill at t=20 —
            // every composition must still be value-for-value exact.
            let cfg = LiveConfig::new(workers)
                .with_mailbox_cap(2)
                .with_chunk_rows(5)
                .with_restart(16)
                .with_kill(workers + 1, 20)
                .with_restart_after(24);
            let (live, stats) =
                run_event_driven_live_with(&params, &pop, 29, &cfg, AccumulatorKind::Dense);
            assert_eq!(live.estimates, seq.estimates, "{workers} workers");
            assert_eq!(live.wire, seq.wire, "{workers} workers");
            assert_eq!(stats.restarts, 2, "{workers} workers: both restarts fired");
            assert_eq!(stats.recoveries, 1, "{workers} workers: the kill fired");
            assert!(
                stats.replayed_batches > 0,
                "{workers} workers: the mid-period restart replays journals"
            );
        }
    }

    #[test]
    fn fast_schema_live_matches_fast_schema_sequential_through_faults() {
        use crate::engine::run_event_driven_schema;
        let (params, pop) = setup(140, 32, 3, 96);
        let seq = run_event_driven_schema(
            &params,
            &pop,
            37,
            ExecMode::Sequential,
            AccumulatorKind::Dense,
            rtf_runtime::SeedSchema::V2Fast,
        );
        for workers in [1usize, 2, 8] {
            // Mid-period restart + kill: the snapshot/restore cycle now
            // also round-trips the schema header.
            let cfg = LiveConfig::new(workers)
                .with_mailbox_cap(2)
                .with_chunk_rows(5)
                .with_restart(16)
                .with_kill(0, 20);
            let (live, stats) = run_event_driven_live_schema(
                &params,
                &pop,
                37,
                &cfg,
                AccumulatorKind::Dense,
                rtf_runtime::SeedSchema::V2Fast,
            );
            assert_eq!(live.estimates, seq.estimates, "{workers} workers");
            assert_eq!(live.wire, seq.wire, "{workers} workers");
            assert_eq!(stats.restarts, 1, "{workers} workers");
            assert_eq!(stats.recoveries, 1, "{workers} workers");
        }
    }

    #[test]
    fn off_horizon_fault_config_is_rejected() {
        let (params, pop) = setup(60, 8, 2, 95);
        let cfg = LiveConfig::new(2).with_restart(9);
        let caught = std::panic::catch_unwind(|| {
            run_event_driven_live_with(&params, &pop, 1, &cfg, AccumulatorKind::Dense)
        });
        assert!(caught.is_err(), "a fault that can never fire must panic");
    }

    #[test]
    fn every_backend_agrees_live() {
        let (params, pop) = setup(90, 16, 2, 93);
        let seq = run_event_driven_with(&params, &pop, 31, ExecMode::Sequential);
        for backend in AccumulatorKind::ALL {
            let cfg = LiveConfig::new(2).with_chunk_rows(9);
            let (live, _) = run_event_driven_live_with(&params, &pop, 31, &cfg, backend);
            assert_eq!(live.estimates, seq.estimates, "{backend}");
            assert_eq!(live.wire, seq.wire, "{backend}");
        }
    }
}
