//! Property tests for the wire formats and their accounting.
//!
//! Two invariants the whole communication-cost story rests on:
//!
//! * every message round-trips through its compact framing losslessly,
//!   at exactly the declared `WIRE_BYTES`;
//! * `WireStats` byte totals are *exactly* the sum of the encoded frame
//!   lengths of the recorded messages (no hidden framing, no drift
//!   between the accounting and the bytes).

use proptest::prelude::*;
use rtf_sim::message::{OrderAnnouncement, ReportMsg, WireStats};

proptest! {
    /// `OrderAnnouncement` encode→decode is the identity over the full
    /// field space, and the frame is exactly `WIRE_BYTES` long.
    #[test]
    fn announcement_roundtrip(user in 0u32..=u32::MAX, order in 0u8..=u8::MAX) {
        let a = OrderAnnouncement { user, order };
        let frame = a.encode();
        prop_assert_eq!(frame.len(), OrderAnnouncement::WIRE_BYTES);
        prop_assert_eq!(OrderAnnouncement::decode(frame), a);
    }

    /// `ReportMsg` encode→decode is the identity over the full field
    /// space, and the frame is exactly `WIRE_BYTES` long.
    #[test]
    fn report_roundtrip(user in 0u32..=u32::MAX, t in 0u32..=u32::MAX, bit_raw in 0u8..2) {
        let r = ReportMsg { user, t, bit: bit_raw == 1 };
        let frame = r.encode();
        prop_assert_eq!(frame.len(), ReportMsg::WIRE_BYTES);
        prop_assert_eq!(ReportMsg::decode(frame), r);
    }

    /// Decoding ignores trailing bytes beyond the fixed-width frame — the
    /// property that lets a receiver carve messages out of a larger
    /// buffer.
    #[test]
    fn decode_reads_exactly_the_frame(user in 0u32..=u32::MAX, t in 1u32..=u32::MAX, junk in 0u64..=u64::MAX) {
        let r = ReportMsg { user, t, bit: true };
        let mut buf = r.encode().as_slice().to_vec();
        buf.extend_from_slice(&junk.to_le_bytes());
        prop_assert_eq!(ReportMsg::decode(&buf[..]), r);
    }

    /// `WireStats` totals equal the sum of the encoded frame lengths of
    /// the recorded message sequence, message-for-message, and payload
    /// bits count exactly the reports.
    #[test]
    fn wire_stats_equal_sum_of_frame_lengths(kinds in prop::collection::vec(0u8..2, 0..200)) {
        let mut stats = WireStats::default();
        let mut framed_bytes = 0u64;
        let mut reports = 0u64;
        for (i, &kind) in kinds.iter().enumerate() {
            if kind == 0 {
                let a = OrderAnnouncement { user: i as u32, order: (i % 11) as u8 };
                framed_bytes += a.encode().len() as u64;
                stats.record_announcement();
            } else {
                let r = ReportMsg { user: i as u32, t: (i + 1) as u32, bit: i % 2 == 0 };
                framed_bytes += r.encode().len() as u64;
                stats.record_report();
                reports += 1;
            }
        }
        prop_assert_eq!(stats.wire_bytes, framed_bytes);
        prop_assert_eq!(stats.messages, kinds.len() as u64);
        prop_assert_eq!(stats.payload_bits, reports * ReportMsg::PAYLOAD_BITS);
    }

    /// The per-user-per-period payload rate is linear in the recorded
    /// reports: exactly `reports / (n·d)` bits.
    #[test]
    fn bits_per_user_period_is_exact(reports in 0u64..10_000, n in 1usize..5_000, d in 1u64..2_048) {
        let mut stats = WireStats::default();
        for _ in 0..reports {
            stats.record_report();
        }
        let rate = stats.bits_per_user_period(n, d);
        let expect = reports as f64 / (n as f64 * d as f64);
        prop_assert!((rate - expect).abs() < 1e-12, "rate {} vs {}", rate, expect);
    }
}
