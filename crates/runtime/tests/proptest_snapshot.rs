//! Property tests for the whole-service snapshot format.
//!
//! Over random protocol shapes `(n, d, k, ε)`, storage backends, worker
//! counts, and snapshot points (mid-period with journals full vs
//! between periods with journals empty):
//!
//! * snapshot → restore → re-snapshot is **byte-identical** (restore is
//!   pure state reconstruction — it never perturbs what it rebuilds);
//! * the restored service finishes the horizon value-for-value with a
//!   control service that never crashed;
//! * corrupted, truncated, or future-versioned bytes are rejected with
//!   a typed [`SnapshotError`] — never a panic, never a silent
//!   misparse.

use proptest::prelude::*;
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_core::server::Server;
use rtf_core::snapshot::SnapshotError;
use rtf_primitives::sign::Sign;
use rtf_runtime::ingest::IngestService;
use rtf_runtime::ReportBatch;

/// A server with `users` order-0 clients registered.
fn trusted_server(params: ProtocolParams, users: u32, backend: AccumulatorKind) -> Server {
    let mut server = Server::for_future_rand_with(params, backend);
    for _ in 0..users {
        server.register_user(0);
    }
    server
}

/// A deterministic per-period batch: every user reports, signs vary
/// with `(user, period, seed)`.
fn batch_for(t: u64, users: u32, seed: u64) -> ReportBatch {
    let mut batch = ReportBatch::new();
    for u in 0..users {
        let sign = if (u as u64 + t + seed) % 3 == 0 {
            Sign::Minus
        } else {
            Sign::Plus
        };
        batch.push(u, 0, sign);
    }
    batch
}

/// Splits one period's traffic across the service's workers.
fn submit_period(svc: &mut IngestService, t: u64, users: u32, seed: u64) {
    let workers = svc.workers();
    let batch = batch_for(t, users, seed);
    let per = (users as usize).div_ceil(workers).max(1);
    let mut piece = ReportBatch::new();
    let mut w = 0usize;
    for (i, (user, order, sign)) in batch.iter().enumerate() {
        piece.push(user, order, sign);
        if (i + 1) % per == 0 {
            svc.submit_reports(w % workers, std::mem::take(&mut piece));
            w += 1;
        }
    }
    if !piece.is_empty() {
        svc.submit_reports(w % workers, piece);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Roundtrip: a service snapshot at a random point restores to a
    /// byte-identical re-snapshot and finishes the horizon exactly like
    /// an uncrashed control run.
    #[test]
    fn snapshot_roundtrips_and_resumes_exactly(
        users in 4u32..40,
        d_exp in 3u32..5,            // d ∈ {8, 16}
        k in 1usize..3,
        eps_hundredths in 30u64..=100,
        seed in 0u64..10_000,
        backend_idx in 0usize..4,
        workers in 1usize..5,
        snap_frac in 0u64..100,
        mid_period in proptest::bool::ANY,
    ) {
        let d = 1u64 << d_exp;
        let eps = eps_hundredths as f64 / 100.0;
        let params = ProtocolParams::new(users as usize + 1, d, k, eps, 0.05).unwrap();
        let backend = AccumulatorKind::ALL[backend_idx];
        let snap_t = 1 + snap_frac * (d - 1) / 100;

        // Control: the same traffic, never crashed.
        let mut control = IngestService::new(
            trusted_server(params, users, backend), workers, 2);
        let mut expect = Vec::new();
        for t in 1..=d {
            submit_period(&mut control, t, users, seed);
            expect.push(control.close_period(t).unwrap().estimate);
        }
        let (control_server, control_stats) = control.finish();

        // Crashed run: snapshot at `snap_t` (mid-period: traffic in
        // journals, close not yet done; else: just after the close),
        // drop the process, restore from bytes.
        let mut svc = IngestService::new(
            trusted_server(params, users, backend), workers, 2);
        let mut estimates = Vec::new();
        let mut bytes = Vec::new();
        for t in 1..=snap_t {
            submit_period(&mut svc, t, users, seed);
            if t == snap_t && mid_period {
                bytes = svc.snapshot();
                break;
            }
            estimates.push(svc.close_period(t).unwrap().estimate);
            if t == snap_t {
                bytes = svc.snapshot();
            }
        }
        drop(svc);

        let mut restored = IngestService::restore(&bytes).unwrap();
        prop_assert_eq!(
            restored.snapshot(), bytes.clone(),
            "re-snapshot after restore must be byte-identical \
             ({}, {} workers, snap at t={}, mid={})",
            backend, workers, snap_t, mid_period
        );
        let resume_from = if mid_period { snap_t } else { snap_t + 1 };
        for t in resume_from..=d {
            if !(mid_period && t == snap_t) {
                submit_period(&mut restored, t, users, seed);
            }
            estimates.push(restored.close_period(t).unwrap().estimate);
        }
        prop_assert_eq!(
            estimates, expect,
            "restored horizon diverges ({}, {} workers, snap at t={}, mid={})",
            backend, workers, snap_t, mid_period
        );
        let (server, stats) = restored.finish();
        prop_assert_eq!(server.reports_ingested(), control_server.reports_ingested());
        prop_assert_eq!(server.estimates(), control_server.estimates());
        prop_assert_eq!(server.delivery_log(), control_server.delivery_log());
        prop_assert_eq!(stats.periods, control_stats.periods);
        prop_assert_eq!(stats.rows, control_stats.rows);
    }

    /// Adversarial bytes: truncation at every prefix length, a bit flip
    /// at a random offset, and a future version stamp are all rejected
    /// with a typed error — never a panic or a silent misparse.
    #[test]
    fn malformed_snapshots_are_rejected_not_misparsed(
        users in 4u32..24,
        seed in 0u64..10_000,
        backend_idx in 0usize..4,
        flip_pos_frac in 0u64..100,
        flip_bit in 0u32..8,
        version in 2u32..u32::MAX,
    ) {
        let params = ProtocolParams::new(users as usize + 1, 8, 1, 1.0, 0.05).unwrap();
        let backend = AccumulatorKind::ALL[backend_idx];
        let mut svc = IngestService::new(
            trusted_server(params, users, backend), 2, 2);
        for t in 1..=3u64 {
            submit_period(&mut svc, t, users, seed);
            svc.close_period(t).unwrap();
        }
        submit_period(&mut svc, 4, users, seed); // journals non-empty
        let bytes = svc.snapshot();
        drop(svc);

        // Every strict prefix fails loudly.
        for cut in 0..bytes.len() {
            prop_assert!(
                IngestService::restore(&bytes[..cut]).is_err(),
                "truncation to {} bytes must be rejected", cut
            );
        }
        // Any single-bit flip fails loudly (checksum).
        let pos = (flip_pos_frac as usize * (bytes.len() - 1)) / 100;
        let mut evil = bytes.clone();
        evil[pos] ^= 1 << flip_bit;
        prop_assert!(
            IngestService::restore(&evil).is_err(),
            "bit {} of byte {} flipped must be rejected", flip_bit, pos
        );
        // A future version is named precisely.
        let mut vers = bytes.clone();
        vers[8..12].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            IngestService::restore(&vers).err(),
            Some(SnapshotError::UnsupportedVersion { found: version })
        );
        // The pristine bytes still restore and re-snapshot identically.
        let restored = IngestService::restore(&bytes).unwrap();
        prop_assert_eq!(restored.snapshot(), bytes);
    }
}
