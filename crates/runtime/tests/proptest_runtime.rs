//! Property tests for the deterministic pool and batch primitives.

use proptest::prelude::*;
use rtf_core::accumulator::{Accumulator, DenseAccumulator};
use rtf_primitives::sign::Sign;
use rtf_runtime::{partition, FrameBatch, WorkerPool};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The partition is a contiguous, near-equal, exact cover for any
    /// (items, workers) — the shard boundaries the whole determinism
    /// story rests on.
    #[test]
    fn partition_is_a_contiguous_cover(items in 0usize..10_000, workers in 1usize..64) {
        let shards = partition(items, workers);
        prop_assert_eq!(shards.len(), workers);
        let mut expected_start = 0usize;
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.index, i);
            prop_assert_eq!(s.start, expected_start);
            prop_assert!(s.end >= s.start);
            expected_start = s.end;
        }
        prop_assert_eq!(expected_start, items);
        let lens: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(max - min <= 1, "near-equal split");
    }

    /// map_indexed returns results in index order for any job count and
    /// worker count, and sharded accumulation merged in shard order
    /// equals direct accumulation — the pool + monoid contract end to
    /// end on random event streams.
    #[test]
    fn sharded_accumulation_is_schedule_independent(
        events in proptest::collection::vec((0u32..6, prop::bool::ANY), 0..400),
        workers in 1usize..9,
    ) {
        let mut direct = DenseAccumulator::new(6);
        for &(h, plus) in &events {
            direct.record(h, if plus { Sign::Plus } else { Sign::Minus });
        }

        let pool = WorkerPool::new(workers);
        let shard_accs = pool.map_shards(events.len(), |shard| {
            let mut acc = DenseAccumulator::new(6);
            for &(h, plus) in &events[shard.range()] {
                acc.record(h, if plus { Sign::Plus } else { Sign::Minus });
            }
            acc
        });
        let mut merged = DenseAccumulator::new(6);
        for acc in &shard_accs {
            merged.merge(acc);
        }
        prop_assert_eq!(merged, direct);
    }

    /// merge_ordered is partition-invariant: however delivered frames
    /// are split into contiguous emitter shards, the merged row order is
    /// the same total (emission, emitter) order.
    #[test]
    fn frame_merge_is_partition_invariant(
        rows in proptest::collection::vec((1u32..16, 0u32..64), 0..120),
        workers_a in 1usize..7,
        workers_b in 1usize..7,
    ) {
        // Deduplicate the (emitted, emitter) key — the engines guarantee
        // uniqueness per delivery batch.
        let mut keyed: Vec<(u32, u32)> = rows;
        keyed.sort_unstable();
        keyed.dedup();
        // Shard by emitter (contiguous ranges of the emitter space).
        let build = |workers: usize| -> FrameBatch {
            let shards: Vec<FrameBatch> = partition(64, workers)
                .into_iter()
                .map(|s| {
                    let mut b = FrameBatch::new();
                    for &(emitted, emitter) in &keyed {
                        if s.range().contains(&(emitter as usize)) {
                            b.push(rtf_runtime::Frame {
                                emitted,
                                emitter,
                                user: emitter,
                                t: emitted,
                                bit: (emitter + emitted) % 2 == 0,
                                byzantine: false,
                            });
                        }
                    }
                    b
                })
                .collect();
            FrameBatch::merge_ordered(shards.iter())
        };
        let a = build(workers_a);
        let b = build(workers_b);
        let ka: Vec<(u32, u32, bool)> = a.iter().map(|f| (f.emitted, f.emitter, f.bit)).collect();
        let kb: Vec<(u32, u32, bool)> = b.iter().map(|f| (f.emitted, f.emitter, f.bit)).collect();
        prop_assert_eq!(ka, kb);
        // And the order really is ascending (emitted, emitter).
        let keys: Vec<(u32, u32)> = a.iter().map(|f| (f.emitted, f.emitter)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }
}
