//! Property tests for the bit-packed report lanes.
//!
//! The packed hot path (SignLane word ops, run-detected `fold_into`,
//! `extend_packed` bulk appends) must be observation-for-observation
//! identical to the scalar reference on every storage backend — these
//! properties pin that equivalence over adversarial row patterns,
//! including ranges that straddle 64-bit word boundaries.

use proptest::prelude::*;
use rtf_core::accumulator::{Accumulator, AccumulatorKind};
use rtf_primitives::sign::Sign;
use rtf_runtime::{ReportBatch, SignLane};

fn sign(plus: bool) -> Sign {
    if plus {
        Sign::Plus
    } else {
        Sign::Minus
    }
}

proptest! {
    /// Packed fold ≡ row-by-row reference on all four backends, over
    /// random order/sign patterns: long runs, interleavings, batches
    /// below the run-detection threshold, and empty batches.
    #[test]
    fn packed_fold_equals_scalar_fold_on_every_backend(
        rows in proptest::collection::vec((0u8..7, prop::bool::ANY), 0..600),
    ) {
        let mut batch = ReportBatch::new();
        for (i, &(h, plus)) in rows.iter().enumerate() {
            batch.push(i as u32, h, sign(plus));
        }
        for kind in AccumulatorKind::ALL {
            let mut fast = kind.new_accumulator(7);
            let mut slow = kind.new_accumulator(7);
            batch.fold_into(&mut fast);
            batch.fold_into_rows(&mut slow);
            for h in 0..7u32 {
                prop_assert_eq!(
                    fast.order_sum(h), slow.order_sum(h),
                    "{} order {}", kind, h
                );
            }
            prop_assert_eq!(fast.reports(), slow.reports(), "{}", kind);
        }
    }

    /// SignLane word ops ≡ a `Vec<Sign>` bit-by-bit model: push/get/iter
    /// round-trip, `count_plus` popcounts any subrange exactly, and
    /// `extend_from_range` stitches shifted words across boundaries.
    #[test]
    fn sign_lane_bulk_ops_match_bit_reference(
        bits in proptest::collection::vec(prop::bool::ANY, 0..300),
        lo in 0usize..300,
        hi in 0usize..300,
    ) {
        let model: Vec<Sign> = bits.iter().map(|&b| sign(b)).collect();
        let mut lane = SignLane::new();
        for &s in &model {
            lane.push(s);
        }
        prop_assert_eq!(lane.len(), model.len());
        let collected: Vec<Sign> = lane.iter().collect();
        prop_assert_eq!(&collected, &model);

        let a = lo.min(hi).min(model.len());
        let b = lo.max(hi).min(model.len());
        let expect = model[a..b].iter().filter(|&&s| s == Sign::Plus).count() as u64;
        prop_assert_eq!(lane.count_plus(a..b), expect);

        // Rebuild the prefix out of two arbitrary cuts: the shifted word
        // copies must reproduce the model bit for bit.
        let mut dst = SignLane::new();
        dst.extend_from_range(&lane, 0..a);
        dst.extend_from_range(&lane, a..b);
        let got: Vec<Sign> = dst.iter().collect();
        prop_assert_eq!(&got[..], &model[..b]);
    }

    /// `extend_packed` (the live path's chunk-split bulk append) ≡ the
    /// same rows pushed one at a time, for any split point.
    #[test]
    fn extend_packed_equals_per_row_pushes(
        bits in proptest::collection::vec(prop::bool::ANY, 1..200),
        order in 0u8..8,
        split_frac in 0usize..100,
    ) {
        let mut lane = SignLane::new();
        for &b in &bits {
            lane.push(sign(b));
        }
        let users: Vec<u32> = (0..bits.len() as u32).collect();
        let split = split_frac * bits.len() / 100;

        let mut bulk = ReportBatch::new();
        bulk.extend_packed(&users[..split], order, &lane, 0..split);
        bulk.extend_packed(&users[split..], order, &lane, split..bits.len());

        let mut scalar = ReportBatch::new();
        for (i, &b) in bits.iter().enumerate() {
            scalar.push(i as u32, order, sign(b));
        }
        let bulk_rows: Vec<(u32, u8, Sign)> = bulk.iter().collect();
        let scalar_rows: Vec<(u32, u8, Sign)> = scalar.iter().collect();
        prop_assert_eq!(bulk_rows, scalar_rows);
    }
}
