//! Deterministic parallel runtime for the longitudinal LDP pipelines.
//!
//! The paper's server (Algorithm 2) is a sum of ±1 report bits per open
//! dyadic interval — an embarrassingly shardable reduction — and every
//! per-user randomness stream already derives from
//! `SeedSequence(seed).child(user)`, independent of scheduling. This
//! crate supplies the three pieces that turn those facts into
//! bit-reproducible parallel execution:
//!
//! * [`mode`] — [`ExecMode`]: `Sequential` (the legacy single-threaded
//!   reference schedule) vs `Parallel(workers)` (the batched pipeline);
//!   `RTF_WORKERS` selects the default at runtime;
//! * [`pool`] — [`WorkerPool`]: a fixed-size pool (vendored crossbeam
//!   channels + parking_lot) whose sharded maps return results in
//!   shard-index order, making every downstream reduction
//!   schedule-independent;
//! * [`batch`] — columnar `{user, order, sign}` report batches that
//!   replace per-report `Bytes` frames on the hot path, folding straight
//!   into mergeable [`rtf_core::accumulator::DenseAccumulator`] shards.
//!
//! The execution engines themselves live with their protocols —
//! `rtf_sim::engine` (honest schedule) and `rtf_scenarios::engine`
//! (fault-injected schedule) — and are proven equivalent across modes by
//! the differential oracle (`rtf_scenarios::oracle`): `sequential ≡
//! parallel(w)` value-for-value for every worker count `w`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod mode;
pub mod pool;

pub use batch::{Frame, FrameBatch, ReportBatch};
pub use mode::ExecMode;
pub use pool::{partition, Shard, WorkerPool};
