//! Deterministic parallel runtime for the longitudinal LDP pipelines.
//!
//! The paper's server (Algorithm 2) is a sum of ±1 report bits per open
//! dyadic interval — an embarrassingly shardable reduction — and every
//! per-user randomness stream already derives from
//! `SeedSequence(seed).child(user)`, independent of scheduling. This
//! crate supplies the three pieces that turn those facts into
//! bit-reproducible parallel execution:
//!
//! * [`mode`] — [`ExecMode`]: `Sequential` (the legacy single-threaded
//!   reference schedule) vs `Parallel(workers)` (the batched pipeline);
//!   `RTF_WORKERS` selects the default at runtime;
//! * [`pool`] — [`WorkerPool`]: a fixed-size pool (vendored crossbeam
//!   channels + parking_lot) whose sharded maps return results in
//!   shard-index order, making every downstream reduction
//!   schedule-independent;
//! * [`batch`] — columnar `{user, order, sign}` report batches that
//!   replace per-report `Bytes` frames on the hot path, folding straight
//!   into mergeable shard accumulators of any storage backend
//!   ([`AccumulatorKind`], re-exported from `rtf_core::accumulator`;
//!   `RTF_BACKEND` selects the default next to `RTF_WORKERS`);
//! * [`persistent`] — [`PersistentPool`]: long-lived worker threads
//!   shared across `run_trials` executions, so repeated small maps pay
//!   the thread-spawn cost once per process instead of once per call;
//! * [`ingest`] — [`IngestService`]: the long-running streaming
//!   ingestion front — per-period batch intake into bounded per-worker
//!   mailboxes (backpressure blocks producers, never drops), shard
//!   accumulators flushed into the server at period close, a
//!   delivery-log journal that replays a killed worker's open period
//!   into its replacement exactly (`RTF_MAILBOX_CAP` sizes the
//!   mailboxes), and whole-service snapshot/restore — a versioned,
//!   checksummed byte format covering server state, stats, and open
//!   journals, so a killed process resumes bit-identically
//!   (`RTF_SNAPSHOT_DIR` gates the file-backed convenience wrappers).
//!
//! The execution engines themselves live with their protocols —
//! `rtf_sim::engine` (honest schedule) and `rtf_scenarios::engine`
//! (fault-injected schedule) — and are proven equivalent across modes by
//! the differential oracle (`rtf_scenarios::oracle`): `sequential ≡
//! parallel(w)` value-for-value for every worker count `w`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod ingest;
pub mod mode;
pub mod persistent;
pub mod pool;

pub use batch::{Frame, FrameBatch, ReportBatch, SignLane};
pub use ingest::{
    replay_frames_checked, snapshot_dir_from_env, IngestService, IngestStats, LiveConfig,
    PeriodClose, ServiceRestart, SnapshotFileError, WorkerKill,
};
pub use mode::ExecMode;
pub use persistent::{shared_pool, PersistentPool};
pub use pool::{partition, shard_of, Shard, WorkerPool};
// The storage-backend selector lives with the accumulators in rtf-core;
// re-exported here so runtime configuration (`RTF_WORKERS` → ExecMode,
// `RTF_BACKEND` → AccumulatorKind, `RTF_SEED_SCHEMA` → SeedSchema) is
// importable from one place.
pub use rtf_core::accumulator::AccumulatorKind;
pub use rtf_primitives::fastseed::SeedSchema;
