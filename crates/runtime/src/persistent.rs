//! A persistent worker pool shared across calls.
//!
//! [`WorkerPool`](crate::pool::WorkerPool) spawns scoped threads inside
//! every `map_*` call — simple and borrow-friendly, but each call pays
//! the full thread spawn/join cost. Experiments that fan many *small*
//! maps over the pool (`run_trials` with cheap per-trial work, repeated
//! oracle samplings) pay that cost per call. [`PersistentPool`] keeps the
//! worker threads alive instead: jobs are shipped over the shared
//! injector channel to long-lived workers, and [`shared_pool`] hands out
//! one process-wide pool per worker count, so every `run_trials`
//! execution reuses the same threads (the ROADMAP "cross-run pool reuse"
//! item; the spawn-cost delta is recorded by `exp_throughput`).
//!
//! The determinism contract is identical to `WorkerPool::map_indexed`:
//! results are returned **in job index order**, never completion order,
//! and the injector channel load-balances jobs across workers without
//! affecting that order.
//!
//! # Borrowed jobs on long-lived threads
//!
//! Scoped threads let jobs borrow caller data because the scope joins
//! before returning. A persistent pool cannot use scoped threads, so
//! [`PersistentPool::map_indexed`] re-establishes the same guarantee
//! manually: every submitted job decrements a completion latch (in a
//! drop guard, so panicking jobs count too) and the call blocks on that
//! latch before returning. All borrows the jobs capture therefore
//! outlive every access — the one `unsafe` lifetime erasure below is
//! sound for exactly that reason, and is the only unsafe code in the
//! workspace.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex as DataMutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// A type-erased job shipped to a long-lived worker.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A completion latch: `wait` blocks until `count_down` has been called
/// `count` times.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("latch poisoned");
        }
    }
}

/// A fixed-size pool whose worker threads outlive individual `map_*`
/// calls — and, via [`shared_pool`], individual `run_trials` executions.
pub struct PersistentPool {
    /// Job injector; workers drain it until the pool is dropped.
    tx: Option<Sender<Task>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl PersistentPool {
    /// Spawns a pool of `workers` long-lived threads (≥ 1; 0 clamps
    /// to 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Task>();
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("rtf-pool-{i}"))
                    .spawn(move || {
                        // Jobs individually catch panics, so a poisoned
                        // job never kills its worker thread.
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawn persistent pool worker")
            })
            .collect();
        PersistentPool {
            tx: Some(tx),
            handles,
            workers,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps every index in `0..jobs` through `map` on the persistent
    /// workers and returns the results **in index order** — the same
    /// contract as `WorkerPool::map_indexed`, without the per-call
    /// thread spawn.
    ///
    /// Blocks until every job has completed, so `map` may borrow caller
    /// data.
    ///
    /// # Panics
    /// Panics if any job panicked (after all jobs have drained, so the
    /// pool stays usable).
    pub fn map_indexed<T, F>(&self, jobs: usize, map: F) -> Vec<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        if self.workers == 1 || jobs <= 1 {
            return (0..jobs).map(map).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
        slots.resize_with(jobs, || None);
        let results = DataMutex::new(slots);
        let latch = Latch::new(jobs);
        let job_panicked = AtomicBool::new(false);
        let tx = self.tx.as_ref().expect("pool not shut down");

        for i in 0..jobs {
            let map = &map;
            let results = &results;
            let latch = &latch;
            let job_panicked = &job_panicked;
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                /// Counts the latch down even when the job panics, so
                /// `wait` below can never deadlock.
                struct Complete<'a>(&'a Latch);
                impl Drop for Complete<'_> {
                    fn drop(&mut self) {
                        self.0.count_down();
                    }
                }
                let _complete = Complete(latch);
                match catch_unwind(AssertUnwindSafe(|| map(i))) {
                    Ok(value) => results.lock()[i] = Some(value),
                    Err(_) => job_panicked.store(true, Ordering::SeqCst),
                }
            });
            // SAFETY: the task borrows `map`, `results`, `latch`, and
            // `job_panicked`, all of which live until this function
            // returns — and the function returns only after
            // `latch.wait()` observes every task's completion guard,
            // which runs at the end of the task body after the last use
            // of those borrows. Erasing the lifetime to ship the task to
            // a long-lived worker therefore never lets a worker touch a
            // dead borrow.
            #[allow(unsafe_code)]
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
            assert!(
                tx.send(task).is_ok(),
                "persistent pool workers disconnected"
            );
        }

        latch.wait();
        if job_panicked.load(Ordering::SeqCst) {
            panic!("persistent pool job panicked");
        }
        results
            .into_inner()
            .into_iter()
            .map(|slot| slot.expect("every job completed"))
            .collect()
    }

    /// Partitions `0..items` into one contiguous shard per worker and
    /// maps each shard on the persistent workers, returning results **in
    /// shard index order** — the same contract as
    /// [`WorkerPool::map_shards`](crate::pool::WorkerPool::map_shards)
    /// without the per-call thread spawn.
    pub fn map_shards<T, F>(&self, items: usize, map: F) -> Vec<T>
    where
        F: Fn(crate::pool::Shard) -> T + Sync,
        T: Send,
    {
        let shards = crate::pool::partition(items, self.workers);
        if self.workers == 1 {
            return shards.into_iter().map(map).collect();
        }
        self.map_indexed(shards.len(), |i| map(shards[i]))
    }
}

impl Drop for PersistentPool {
    fn drop(&mut self) {
        // Closing the injector lets every worker's `recv` loop end.
        self.tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One process-wide [`PersistentPool`] per worker count, created on first
/// use and alive for the rest of the process — the cross-run reuse
/// `run_trials` folds its trials over.
pub fn shared_pool(workers: usize) -> &'static PersistentPool {
    static SHARED: OnceLock<Mutex<HashMap<usize, &'static PersistentPool>>> = OnceLock::new();
    let workers = workers.max(1);
    let registry = SHARED.get_or_init(|| Mutex::new(HashMap::new()));
    let mut registry = registry.lock().expect("pool registry poisoned");
    registry
        .entry(workers)
        .or_insert_with(|| Box::leak(Box::new(PersistentPool::new(workers))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order_across_reuses() {
        let pool = PersistentPool::new(4);
        // The same pool services many calls — the whole point.
        for round in 0..20usize {
            let out = pool.map_indexed(37, |i| {
                if (i + round) % 5 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                i * i + round
            });
            let expect: Vec<usize> = (0..37).map(|i| i * i + round).collect();
            assert_eq!(out, expect, "round {round}");
        }
    }

    #[test]
    fn agrees_with_the_scoped_pool() {
        let persistent = PersistentPool::new(3);
        let scoped = WorkerPool::new(3);
        let a = persistent.map_indexed(101, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        let b = scoped.map_indexed(101, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        assert_eq!(a, b);
    }

    #[test]
    fn map_shards_agrees_with_the_scoped_pool() {
        let persistent = PersistentPool::new(3);
        let scoped = WorkerPool::new(3);
        let a = persistent.map_shards(103, |s| s.range().sum::<usize>());
        let b = scoped.map_shards(103, |s| s.range().sum::<usize>());
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<usize>(), (0..103).sum::<usize>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let pool = PersistentPool::new(3);
        let ran = AtomicUsize::new(0);
        let out = pool.map_indexed(200, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 200);
        assert_eq!(out, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_shapes() {
        let pool = PersistentPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert!(pool.map_indexed(0, |i| i).is_empty());
        assert_eq!(pool.map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn job_panic_propagates_and_pool_survives() {
        let pool = PersistentPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(10, |i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                i
            })
        }));
        assert!(caught.is_err(), "the panic must reach the caller");
        // The workers survived the poisoned job and keep serving.
        assert_eq!(pool.map_indexed(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn shared_pool_is_one_instance_per_worker_count() {
        let a = shared_pool(2) as *const PersistentPool;
        let b = shared_pool(2) as *const PersistentPool;
        let c = shared_pool(3) as *const PersistentPool;
        assert_eq!(a, b, "same worker count ⇒ same pool");
        assert_ne!(a, c, "different worker count ⇒ different pool");
        assert_eq!(shared_pool(0).workers(), 1, "zero clamps to one");
    }
}
