//! Columnar (struct-of-arrays) report batches — the hot-path wire
//! representation of the batched pipeline.
//!
//! The sequential engines frame every report into a heap-allocated
//! `Bytes` message and decode it on the server side; at millions of
//! users that allocation/decode pair dominates the run. Workers in the
//! batched pipeline append to reusable columnar buffers instead — one
//! `Vec` per field, no per-report allocation — and fold them straight
//! into a shard accumulator of whatever storage backend the deployment
//! selected ([`rtf_core::accumulator::AccumulatorKind`]).
//!
//! Two batch shapes exist:
//!
//! * [`ReportBatch`] — the honest schedule: `{user, order, sign}` rows
//!   for one period, folded into the accumulator by the worker itself;
//! * [`FrameBatch`] — the fault-injected schedule: delivered frames with
//!   their *emission* provenance `(emitted period, emitting user)`, so
//!   shard batches can be merged into exactly the sequential engine's
//!   mailbox order before checked ingestion (acceptance under
//!   impersonation depends on frame order, so the merge must reproduce
//!   it bit-for-bit).

use rtf_core::accumulator::Accumulator;
use rtf_core::snapshot::{SnapReader, SnapWriter, SnapshotError};
use rtf_primitives::sign::Sign;
use std::ops::Range;

/// The low `n` bits set (`n ≤ 64`).
#[inline]
fn low_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// A bit-packed lane of `±1` signs: bit `i` of word `i / 64` is `1` for
/// `+1`. The protocol payload *is* one bit per report, so this is the
/// information-theoretically tight in-memory representation — 64 reports
/// per word, folded with masked popcounts instead of per-row byte adds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignLane {
    words: Vec<u64>,
    len: usize,
}

impl SignLane {
    /// An empty lane.
    pub fn new() -> Self {
        SignLane::default()
    }

    /// An empty lane with capacity for `bits` signs reserved.
    pub fn with_capacity(bits: usize) -> Self {
        SignLane {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of signs in the lane.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the lane holds no signs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears the lane, keeping the word allocation for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Appends one sign.
    #[inline]
    pub fn push(&mut self, sign: Sign) {
        let off = self.len % 64;
        if off == 0 {
            self.words.push(0);
        }
        if sign == Sign::Plus {
            *self.words.last_mut().expect("word just ensured") |= 1u64 << off;
        }
        self.len += 1;
    }

    /// The sign at index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Sign {
        debug_assert!(i < self.len);
        if (self.words[i / 64] >> (i % 64)) & 1 == 1 {
            Sign::Plus
        } else {
            Sign::Minus
        }
    }

    /// Appends `count` signs given as the low bits of `bits`
    /// (bit `j` = sign `j`, `1` = `+1`).
    ///
    /// Public so word-at-a-time producers (the fast-seed span path in the
    /// engines) can append packed randomness without materialising `Sign`s.
    ///
    /// # Panics
    /// Panics (debug) if `count > 64`.
    #[inline]
    pub fn push_bits(&mut self, bits: u64, count: usize) {
        debug_assert!(count <= 64);
        if count == 0 {
            return;
        }
        let bits = bits & low_mask(count);
        let off = self.len % 64;
        if off == 0 {
            self.words.push(bits);
        } else {
            *self.words.last_mut().expect("non-empty at off > 0") |= bits << off;
            let spill = 64 - off;
            if count > spill {
                self.words.push(bits >> spill);
            }
        }
        self.len += count;
    }

    /// Appends `other[range]` to `self` — a word-at-a-time shifted copy,
    /// the bulk path [`ReportBatch::extend_packed`] rides on.
    pub fn extend_from_range(&mut self, other: &SignLane, range: Range<usize>) {
        assert!(range.start <= range.end && range.end <= other.len);
        let mut s = range.start;
        while s < range.end {
            let bi = s % 64;
            let take = (64 - bi).min(range.end - s);
            self.push_bits(other.words[s / 64] >> bi, take);
            s += take;
        }
    }

    /// Counts the `+1` signs in `self[range]` via masked popcounts —
    /// 64 reports per `count_ones`.
    pub fn count_plus(&self, range: Range<usize>) -> u64 {
        assert!(range.start <= range.end && range.end <= self.len);
        let mut total = 0u64;
        let mut s = range.start;
        while s < range.end {
            let bi = s % 64;
            let take = (64 - bi).min(range.end - s);
            let chunk = (self.words[s / 64] >> bi) & low_mask(take);
            total += u64::from(chunk.count_ones());
            s += take;
        }
        total
    }

    /// Counts the `+1` signs among the lanes selected by `mask` (bit `i`
    /// of `mask[i / 64]` selects sign `i`) — one masked popcount per
    /// word, the span-native scenario fold's inner loop. The mask must
    /// have exactly one word per lane word; bits past `len` are ignored
    /// because the lane keeps its tail bits zero.
    ///
    /// # Panics
    /// Panics if `mask` does not span the lane word-for-word.
    pub fn count_plus_masked(&self, mask: &[u64]) -> u64 {
        assert_eq!(
            mask.len(),
            self.words.len(),
            "mask must cover the lane word-for-word"
        );
        self.words
            .iter()
            .zip(mask)
            .map(|(&w, &m)| u64::from((w & m).count_ones()))
            .sum()
    }

    /// Iterates the signs in lane order.
    pub fn iter(&self) -> impl Iterator<Item = Sign> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

/// One period's reports for one shard of users, struct-of-arrays with a
/// bit-packed sign lane ([`SignLane`]): a fold consumes 64 reports per
/// word op instead of one per byte.
#[derive(Debug, Clone, Default)]
pub struct ReportBatch {
    users: Vec<u32>,
    orders: Vec<u8>,
    signs: SignLane,
}

impl ReportBatch {
    /// An empty batch.
    pub fn new() -> Self {
        ReportBatch::default()
    }

    /// An empty batch with row capacity reserved.
    pub fn with_capacity(rows: usize) -> Self {
        ReportBatch {
            users: Vec::with_capacity(rows),
            orders: Vec::with_capacity(rows),
            signs: SignLane::with_capacity(rows),
        }
    }

    /// Appends one report row.
    #[inline]
    pub fn push(&mut self, user: u32, order: u8, sign: Sign) {
        self.users.push(user);
        self.orders.push(order);
        self.signs.push(sign);
    }

    /// Bulk-appends one order group's span: `users` get order `order`
    /// and the signs `lane[range]` — two memcpys and a shifted word copy
    /// instead of `users.len()` per-row pushes.
    pub fn extend_packed(
        &mut self,
        users: &[u32],
        order: u8,
        lane: &SignLane,
        range: Range<usize>,
    ) {
        debug_assert_eq!(users.len(), range.end - range.start, "one sign per user");
        self.users.extend_from_slice(users);
        self.orders.resize(self.orders.len() + users.len(), order);
        self.signs.extend_from_range(lane, range);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Clears all rows, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.users.clear();
        self.orders.clear();
        self.signs.clear();
    }

    /// Iterates `(user, order, sign)` rows in append order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8, Sign)> + '_ {
        self.users
            .iter()
            .zip(&self.orders)
            .enumerate()
            .map(|(i, (&u, &h))| (u, h, self.signs.get(i)))
    }

    /// Folds every row into a shard accumulator of any storage backend —
    /// the batched replacement for per-report `Server::ingest`.
    ///
    /// Rows are walked as **runs of equal order** (the batched pipelines
    /// append whole order groups contiguously, so a batch is a handful of
    /// runs); each run's `+1` count comes from masked popcounts over the
    /// packed sign lane — 64 reports per word op — and per-order totals
    /// are handed over as **one `record_counts` per touched order**. For
    /// integer-valued ±1 rows the result is identical on every backend —
    /// sums and report counts are exact — while the sparse backend pays
    /// one binary search per *order* rather than per *row*. The reference
    /// row-by-row path is kept as [`fold_into_rows`](Self::fold_into_rows)
    /// and asserted equivalent by unit + property tests.
    pub fn fold_into<A: Accumulator>(&self, acc: &mut A) {
        // Tiny batches (streaming chunks go down to one row) cost more
        // to pre-aggregate than to record: zeroing the scratch dominates.
        // Both paths are exactly equivalent, so this is timing only.
        let n = self.len();
        if n < 16 {
            self.fold_into_rows(acc);
            return;
        }
        // Scratch indexed by order (u8 ⇒ 256 slots, ~4 KiB on the stack);
        // only touched slots are read or reset, so the cost tracks the
        // touched-order count, not the scratch size.
        let mut plus = [0u64; 256];
        let mut counts = [0u64; 256];
        let mut touched: Vec<u8> = Vec::new();
        let mut a = 0usize;
        while a < n {
            let h = self.orders[a];
            let mut b = a + 1;
            while b < n && self.orders[b] == h {
                b += 1;
            }
            let i = h as usize;
            if counts[i] == 0 {
                touched.push(h);
            }
            plus[i] += self.signs.count_plus(a..b);
            counts[i] += (b - a) as u64;
            a = b;
        }
        // First-touch order: deterministic for a given batch, and the
        // per-order batch totals commute across orders on every backend.
        for &h in &touched {
            let i = h as usize;
            acc.record_counts(u32::from(h), plus[i], counts[i] - plus[i]);
        }
    }

    /// The pre-batching reference fold: one `record` call per row. Kept
    /// for the before/after comparison in `exp_backends` and as the
    /// equivalence oracle for [`fold_into`](Self::fold_into).
    pub fn fold_into_rows<A: Accumulator>(&self, acc: &mut A) {
        for (i, &h) in self.orders.iter().enumerate() {
            acc.record(u32::from(h), self.signs.get(i));
        }
    }

    /// Serializes the batch (one shared row count, then each column) —
    /// used by the ingestion service to persist open-period journals.
    /// The byte layout predates the packed sign lane and is kept
    /// unchanged (one `i8` per sign), so existing snapshots stay
    /// readable.
    pub fn write_state(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for &u in &self.users {
            w.u32(u);
        }
        for &h in &self.orders {
            w.u8(h);
        }
        for s in self.signs.iter() {
            w.i8(s.value());
        }
    }

    /// Rebuilds a batch from bytes written by
    /// [`write_state`](Self::write_state), rejecting sign bytes outside
    /// `{−1, +1}` (which would panic later in `Sign::from_i8`).
    ///
    /// # Errors
    /// A typed [`SnapshotError`] on truncation or an invalid sign.
    pub fn read_state(r: &mut SnapReader<'_>) -> Result<ReportBatch, SnapshotError> {
        let rows = r.len(6)?;
        let mut users = Vec::with_capacity(rows);
        for _ in 0..rows {
            users.push(r.u32()?);
        }
        let mut orders = Vec::with_capacity(rows);
        for _ in 0..rows {
            orders.push(r.u8()?);
        }
        let mut signs = SignLane::with_capacity(rows);
        for _ in 0..rows {
            let s = r.i8()?;
            if s != 1 && s != -1 {
                return Err(SnapshotError::Corrupt("report sign not ±1"));
            }
            signs.push(Sign::from_i8(s));
        }
        Ok(ReportBatch {
            users,
            orders,
            signs,
        })
    }
}

/// Delivered frames for one period, struct-of-arrays, with emission
/// provenance for deterministic cross-shard ordering.
#[derive(Debug, Clone)]
pub struct FrameBatch {
    /// Emission period of each frame (the mailbox's primary sort key).
    emitted: Vec<u32>,
    /// The client that put the frame on the wire (secondary sort key —
    /// *not* necessarily the user id inside the frame: Byzantine clients
    /// impersonate).
    emitter: Vec<u32>,
    /// The frame's claimed sender.
    users: Vec<u32>,
    /// The frame's claimed reporting period.
    periods: Vec<u32>,
    /// The frame's report bit (`true` = +1).
    bits: Vec<bool>,
    /// Whether the emitting client is Byzantine (accounting only).
    byzantine: Vec<bool>,
    /// Whether rows are known ascending by `(emitted, emitter)` —
    /// maintained on every mutation so [`merge_ordered`] can take the
    /// zero-copy k-way path instead of materializing and sorting.
    ///
    /// [`merge_ordered`]: Self::merge_ordered
    sorted: bool,
}

impl Default for FrameBatch {
    fn default() -> Self {
        FrameBatch {
            emitted: Vec::new(),
            emitter: Vec::new(),
            users: Vec::new(),
            periods: Vec::new(),
            bits: Vec::new(),
            byzantine: Vec::new(),
            // An empty batch is vacuously in mailbox order.
            sorted: true,
        }
    }
}

/// One delivered frame, as yielded by [`FrameBatch::iter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Emission period.
    pub emitted: u32,
    /// Emitting client.
    pub emitter: u32,
    /// Claimed sender id in the frame payload.
    pub user: u32,
    /// Claimed reporting period in the frame payload.
    pub t: u32,
    /// Report bit (`true` = +1).
    pub bit: bool,
    /// Whether the emitter is Byzantine.
    pub byzantine: bool,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> Self {
        FrameBatch::default()
    }

    /// Appends one frame row.
    #[inline]
    pub fn push(&mut self, frame: Frame) {
        if self.sorted {
            if let Some(i) = self.len().checked_sub(1) {
                if (frame.emitted, frame.emitter) < (self.emitted[i], self.emitter[i]) {
                    self.sorted = false;
                }
            }
        }
        self.emitted.push(frame.emitted);
        self.emitter.push(frame.emitter);
        self.users.push(frame.user);
        self.periods.push(frame.t);
        self.bits.push(frame.bit);
        self.byzantine.push(frame.byzantine);
    }

    /// The frame at row `i` (column reads, no intermediate storage).
    #[inline]
    pub fn frame(&self, i: usize) -> Frame {
        Frame {
            emitted: self.emitted[i],
            emitter: self.emitter[i],
            user: self.users[i],
            t: self.periods[i],
            bit: self.bits[i],
            byzantine: self.byzantine[i],
        }
    }

    /// Whether rows are known ascending by `(emitted, emitter)` — the
    /// precondition for the zero-copy merge fast path.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Appends every frame of `other`, preserving row order — how an
    /// ingestion worker accumulates the batches streamed into its mailbox
    /// over one period.
    pub fn append(&mut self, other: &FrameBatch) {
        if other.is_empty() {
            return;
        }
        if self.sorted {
            let boundary_ok = match self.len().checked_sub(1) {
                Some(i) => {
                    (other.emitted[0], other.emitter[0]) >= (self.emitted[i], self.emitter[i])
                }
                None => true,
            };
            self.sorted = other.sorted && boundary_ok;
        }
        self.reserve(other.len());
        self.emitted.extend_from_slice(&other.emitted);
        self.emitter.extend_from_slice(&other.emitter);
        self.users.extend_from_slice(&other.users);
        self.periods.extend_from_slice(&other.periods);
        self.bits.extend_from_slice(&other.bits);
        self.byzantine.extend_from_slice(&other.byzantine);
    }

    /// Clears all frames, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.emitted.clear();
        self.emitter.clear();
        self.users.clear();
        self.periods.clear();
        self.bits.clear();
        self.byzantine.clear();
        self.sorted = true;
    }

    /// Iterates frames in row order.
    pub fn iter(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.len()).map(move |i| self.frame(i))
    }

    /// Merges per-shard batches for one delivery period into the exact
    /// frame order the sequential engine's mailbox would hold: ascending
    /// `(emission period, emitting user)`. The key is unique per frame —
    /// a client dispatches at most once per period and a retransmitted
    /// copy always lands in a different delivery period — so the order is
    /// total and independent of the shard partition.
    ///
    /// When every shard is already in mailbox order (the common case —
    /// workers append mailbox batches in arrival order, and arrival order
    /// per shard is the dispatch order), the merge is a zero-copy k-way
    /// walk over the shard *columns*: each output row is one linear-min
    /// scan of the shard heads plus a direct column copy. No intermediate
    /// `Vec<Frame>` is materialized and nothing is sorted. Shards that
    /// lost the order fall back to an index sort over `(key, shard, row)`
    /// triples — still never materializing frames before the copy.
    pub fn merge_ordered<'a, I>(shards: I) -> FrameBatch
    where
        I: IntoIterator<Item = &'a FrameBatch>,
    {
        let shards: Vec<&FrameBatch> = shards.into_iter().collect();
        let rows: usize = shards.iter().map(|s| s.len()).sum();
        let mut out = FrameBatch::default();
        out.reserve(rows);
        if shards.iter().all(|s| s.sorted) {
            let mut heads = vec![0usize; shards.len()];
            for _ in 0..rows {
                let mut best: Option<(usize, (u32, u32))> = None;
                for (s, shard) in shards.iter().enumerate() {
                    let i = heads[s];
                    if i >= shard.len() {
                        continue;
                    }
                    let key = (shard.emitted[i], shard.emitter[i]);
                    let better = match best {
                        Some((_, k)) => key < k,
                        None => true,
                    };
                    if better {
                        best = Some((s, key));
                    }
                }
                let (s, _) = best.expect("rows remain in some shard head");
                out.push(shards[s].frame(heads[s]));
                heads[s] += 1;
            }
        } else {
            let mut idx: Vec<(u32, u32, u32, u32)> = Vec::with_capacity(rows);
            for (s, shard) in shards.iter().enumerate() {
                for i in 0..shard.len() {
                    idx.push((shard.emitted[i], shard.emitter[i], s as u32, i as u32));
                }
            }
            idx.sort_unstable();
            for (_, _, s, i) in idx {
                out.push(shards[s as usize].frame(i as usize));
            }
        }
        debug_assert!(out.sorted, "merged output must be in mailbox order");
        out
    }

    fn reserve(&mut self, rows: usize) {
        self.emitted.reserve(rows);
        self.emitter.reserve(rows);
        self.users.reserve(rows);
        self.periods.reserve(rows);
        self.bits.reserve(rows);
        self.byzantine.reserve(rows);
    }

    /// Serializes the batch (one shared row count, then each column) —
    /// used by the ingestion service to persist open-period journals.
    pub fn write_state(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for &e in &self.emitted {
            w.u32(e);
        }
        for &e in &self.emitter {
            w.u32(e);
        }
        for &u in &self.users {
            w.u32(u);
        }
        for &t in &self.periods {
            w.u32(t);
        }
        for &b in &self.bits {
            w.bool(b);
        }
        for &b in &self.byzantine {
            w.bool(b);
        }
    }

    /// Rebuilds a batch from bytes written by
    /// [`write_state`](Self::write_state).
    ///
    /// # Errors
    /// A typed [`SnapshotError`] on truncation or a malformed boolean
    /// column.
    pub fn read_state(r: &mut SnapReader<'_>) -> Result<FrameBatch, SnapshotError> {
        let rows = r.len(18)?;
        let read_u32s = |r: &mut SnapReader<'_>| -> Result<Vec<u32>, SnapshotError> {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..rows {
                col.push(r.u32()?);
            }
            Ok(col)
        };
        let emitted = read_u32s(r)?;
        let emitter = read_u32s(r)?;
        let users = read_u32s(r)?;
        let periods = read_u32s(r)?;
        let read_bools = |r: &mut SnapReader<'_>| -> Result<Vec<bool>, SnapshotError> {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..rows {
                col.push(r.bool()?);
            }
            Ok(col)
        };
        let bits = read_bools(r)?;
        let byzantine = read_bools(r)?;
        // The byte layout predates the sorted flag; recompute it so
        // restored journals still take the zero-copy merge fast path.
        let sorted =
            (1..rows).all(|i| (emitted[i - 1], emitter[i - 1]) <= (emitted[i], emitter[i]));
        Ok(FrameBatch {
            emitted,
            emitter,
            users,
            periods,
            bits,
            byzantine,
            sorted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_core::accumulator::{AccumulatorKind, DenseAccumulator};

    #[test]
    fn report_batch_folds_like_direct_ingestion() {
        let mut batch = ReportBatch::with_capacity(4);
        batch.push(0, 0, Sign::Plus);
        batch.push(1, 2, Sign::Minus);
        batch.push(2, 2, Sign::Minus);
        batch.push(3, 1, Sign::Plus);
        assert_eq!(batch.len(), 4);

        let mut from_batch = DenseAccumulator::new(3);
        batch.fold_into(&mut from_batch);

        let mut direct = DenseAccumulator::new(3);
        for (_, h, s) in batch.iter() {
            direct.record(u32::from(h), s);
        }
        assert_eq!(from_batch, direct);
        assert_eq!(from_batch.reports(), 4);
        assert_eq!(from_batch.sums(), &[1.0, 1.0, -2.0]);

        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn preaggregated_fold_equals_row_by_row_on_every_backend() {
        // The sparse-batched-folds claim at unit scale: the per-order
        // pre-aggregation pass is observation-for-observation identical
        // to the row-by-row reference on all four layouts, including a
        // batch that touches one order many times and another not at all.
        let mut batch = ReportBatch::new();
        for i in 0..200u32 {
            let h = [0u8, 0, 3, 5][i as usize % 4];
            let s = if i % 3 == 0 { Sign::Minus } else { Sign::Plus };
            batch.push(i, h, s);
        }
        for kind in AccumulatorKind::ALL {
            let mut fast = kind.new_accumulator(6);
            let mut slow = kind.new_accumulator(6);
            batch.fold_into(&mut fast);
            batch.fold_into_rows(&mut slow);
            for h in 0..6u32 {
                assert_eq!(fast.order_sum(h), slow.order_sum(h), "{kind} order {h}");
            }
            assert_eq!(fast.reports(), slow.reports(), "{kind}");
            assert_eq!(fast.reports(), 200, "{kind}");
        }
        // Empty batches fold to nothing on both paths.
        let empty = ReportBatch::new();
        let mut acc = AccumulatorKind::Sparse.new_accumulator(4);
        empty.fold_into(&mut acc);
        assert_eq!(acc.reports(), 0);
    }

    #[test]
    fn masked_count_matches_per_index_filter() {
        // 150 lanes across three words, an irregular mask: the masked
        // popcount must equal filtering get() by the mask bit by bit.
        let mut lane = SignLane::new();
        for i in 0..150usize {
            lane.push(if i % 3 == 0 { Sign::Plus } else { Sign::Minus });
        }
        let mask: Vec<u64> = vec![0xDEAD_BEEF_0F0F_3355, u64::MAX, low_mask(150 % 64)];
        let expect: u64 = (0..150)
            .filter(|&i| (mask[i / 64] >> (i % 64)) & 1 == 1 && lane.get(i) == Sign::Plus)
            .count() as u64;
        assert_eq!(lane.count_plus_masked(&mask), expect);
        // Full mask degenerates to count_plus; empty lane takes an empty mask.
        assert_eq!(
            lane.count_plus_masked(&[u64::MAX, u64::MAX, u64::MAX]),
            lane.count_plus(0..150)
        );
        assert_eq!(SignLane::new().count_plus_masked(&[]), 0);
    }

    #[test]
    fn frame_batch_append_preserves_row_order() {
        let mut a = FrameBatch::new();
        a.push(frame(1, 0));
        a.push(frame(1, 2));
        let mut b = FrameBatch::new();
        b.push(frame(2, 1));
        a.append(&b);
        let keys: Vec<(u32, u32)> = a.iter().map(|f| (f.emitted, f.emitter)).collect();
        assert_eq!(keys, vec![(1, 0), (1, 2), (2, 1)]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(b.len(), 1, "append borrows, never drains");
    }

    #[test]
    fn report_batch_folds_identically_into_every_backend() {
        let mut batch = ReportBatch::new();
        batch.push(0, 0, Sign::Plus);
        batch.push(1, 1, Sign::Minus);
        batch.push(2, 1, Sign::Minus);
        batch.push(3, 2, Sign::Plus);
        for kind in AccumulatorKind::ALL {
            let mut acc = kind.new_accumulator(3);
            batch.fold_into(&mut acc);
            assert_eq!(acc.order_sum(0), 1.0, "{kind}");
            assert_eq!(acc.order_sum(1), -2.0, "{kind}");
            assert_eq!(acc.order_sum(2), 1.0, "{kind}");
            assert_eq!(acc.reports(), 4, "{kind}");
        }
    }

    fn frame(emitted: u32, emitter: u32) -> Frame {
        Frame {
            emitted,
            emitter,
            user: emitter,
            t: emitted,
            bit: emitter % 2 == 0,
            byzantine: false,
        }
    }

    #[test]
    fn merge_ordered_reconstructs_mailbox_order() {
        // Shard 0 owns users 0..3, shard 1 owns users 3..6; frames from
        // two emission periods interleave. The merged order must be
        // (emitted, emitter) ascending — exactly the sequential mailbox.
        let mut s0 = FrameBatch::new();
        let mut s1 = FrameBatch::new();
        for e in [1u32, 2] {
            for u in 0..3u32 {
                s0.push(frame(e, u));
            }
            for u in 3..6u32 {
                s1.push(frame(e, u));
            }
        }
        let merged = FrameBatch::merge_ordered(&[s0.clone(), s1.clone()]);
        let keys: Vec<(u32, u32)> = merged.iter().map(|f| (f.emitted, f.emitter)).collect();
        let expect: Vec<(u32, u32)> = [1u32, 2]
            .iter()
            .flat_map(|&e| (0..6u32).map(move |u| (e, u)))
            .collect();
        assert_eq!(keys, expect);

        // Partition-invariance: merging in the other shard order, or as
        // one concatenated shard, gives the identical row sequence.
        let swapped = FrameBatch::merge_ordered(&[s1, s0]);
        let swapped_keys: Vec<(u32, u32)> =
            swapped.iter().map(|f| (f.emitted, f.emitter)).collect();
        assert_eq!(swapped_keys, expect);
    }

    #[test]
    fn sorted_flag_tracks_mailbox_order() {
        let mut b = FrameBatch::new();
        assert!(b.is_sorted(), "empty is vacuously sorted");
        b.push(frame(1, 3));
        b.push(frame(1, 5));
        b.push(frame(2, 0));
        assert!(b.is_sorted());
        b.push(frame(1, 9)); // earlier emission period: order lost
        assert!(!b.is_sorted());
        b.clear();
        assert!(b.is_sorted(), "clear restores the vacuous order");

        // Append: sorted ⊕ sorted with an ascending boundary stays
        // sorted; a descending boundary or an unsorted operand does not.
        let mut lo = FrameBatch::new();
        lo.push(frame(1, 0));
        let mut hi = FrameBatch::new();
        hi.push(frame(2, 0));
        let mut ab = lo.clone();
        ab.append(&hi);
        assert!(ab.is_sorted());
        let mut ba = hi.clone();
        ba.append(&lo);
        assert!(!ba.is_sorted());
    }

    #[test]
    fn merge_fast_path_equals_index_sort_fallback() {
        // The same multiset of frames through both merge paths: shard
        // batches in mailbox order ride the k-way column walk, scrambled
        // shards fall back to the index sort — identical output rows.
        let rows = [
            frame(1, 4),
            frame(1, 7),
            frame(2, 1),
            frame(2, 6),
            frame(3, 0),
            frame(3, 9),
        ];
        let mut sorted_a = FrameBatch::new();
        let mut sorted_b = FrameBatch::new();
        for (i, f) in rows.iter().enumerate() {
            if i % 2 == 0 {
                sorted_a.push(*f);
            } else {
                sorted_b.push(*f);
            }
        }
        assert!(sorted_a.is_sorted() && sorted_b.is_sorted());
        let fast = FrameBatch::merge_ordered(&[sorted_a, sorted_b]);
        assert!(fast.is_sorted());

        let mut scrambled = FrameBatch::new();
        for f in rows.iter().rev() {
            scrambled.push(*f);
        }
        assert!(!scrambled.is_sorted());
        let slow = FrameBatch::merge_ordered(std::iter::once(&scrambled));
        let fast_rows: Vec<Frame> = fast.iter().collect();
        let slow_rows: Vec<Frame> = slow.iter().collect();
        assert_eq!(fast_rows, slow_rows);
    }

    #[test]
    fn batches_roundtrip_through_snapshot_state() {
        use rtf_core::snapshot::{SnapReader, SnapWriter};
        let mut rb = ReportBatch::new();
        rb.push(7, 0, Sign::Plus);
        rb.push(8, 3, Sign::Minus);
        let mut fb = FrameBatch::new();
        fb.push(frame(1, 4));
        fb.push(frame(2, 9));
        let mut w = SnapWriter::new();
        rb.write_state(&mut w);
        fb.write_state(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        let rb2 = ReportBatch::read_state(&mut r).unwrap();
        let fb2 = FrameBatch::read_state(&mut r).unwrap();
        r.finish().unwrap();
        let rows: Vec<_> = rb.iter().collect();
        let rows2: Vec<_> = rb2.iter().collect();
        assert_eq!(rows, rows2);
        let frames: Vec<Frame> = fb.iter().collect();
        let frames2: Vec<Frame> = fb2.iter().collect();
        assert_eq!(frames, frames2);
    }

    #[test]
    fn report_batch_rejects_non_sign_bytes() {
        use rtf_core::snapshot::{SnapReader, SnapWriter, SnapshotError};
        let mut w = SnapWriter::new();
        w.usize(1);
        w.u32(0); // user
        w.u8(0); // order
        w.i8(3); // not a ±1 sign
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(
            ReportBatch::read_state(&mut r).unwrap_err(),
            SnapshotError::Corrupt("report sign not ±1")
        );
    }
}
