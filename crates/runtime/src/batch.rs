//! Columnar (struct-of-arrays) report batches — the hot-path wire
//! representation of the batched pipeline.
//!
//! The sequential engines frame every report into a heap-allocated
//! `Bytes` message and decode it on the server side; at millions of
//! users that allocation/decode pair dominates the run. Workers in the
//! batched pipeline append to reusable columnar buffers instead — one
//! `Vec` per field, no per-report allocation — and fold them straight
//! into a shard accumulator of whatever storage backend the deployment
//! selected ([`rtf_core::accumulator::AccumulatorKind`]).
//!
//! Two batch shapes exist:
//!
//! * [`ReportBatch`] — the honest schedule: `{user, order, sign}` rows
//!   for one period, folded into the accumulator by the worker itself;
//! * [`FrameBatch`] — the fault-injected schedule: delivered frames with
//!   their *emission* provenance `(emitted period, emitting user)`, so
//!   shard batches can be merged into exactly the sequential engine's
//!   mailbox order before checked ingestion (acceptance under
//!   impersonation depends on frame order, so the merge must reproduce
//!   it bit-for-bit).

use rtf_core::accumulator::Accumulator;
use rtf_core::snapshot::{SnapReader, SnapWriter, SnapshotError};
use rtf_primitives::sign::Sign;

/// One period's reports for one shard of users, struct-of-arrays.
#[derive(Debug, Clone, Default)]
pub struct ReportBatch {
    users: Vec<u32>,
    orders: Vec<u8>,
    signs: Vec<i8>,
}

impl ReportBatch {
    /// An empty batch.
    pub fn new() -> Self {
        ReportBatch::default()
    }

    /// An empty batch with row capacity reserved.
    pub fn with_capacity(rows: usize) -> Self {
        ReportBatch {
            users: Vec::with_capacity(rows),
            orders: Vec::with_capacity(rows),
            signs: Vec::with_capacity(rows),
        }
    }

    /// Appends one report row.
    #[inline]
    pub fn push(&mut self, user: u32, order: u8, sign: Sign) {
        self.users.push(user);
        self.orders.push(order);
        self.signs.push(sign.value());
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Clears all rows, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.users.clear();
        self.orders.clear();
        self.signs.clear();
    }

    /// Iterates `(user, order, sign)` rows in append order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8, Sign)> + '_ {
        self.users
            .iter()
            .zip(&self.orders)
            .zip(&self.signs)
            .map(|((&u, &h), &s)| (u, h, Sign::from_i8(s)))
    }

    /// Folds every row into a shard accumulator of any storage backend —
    /// the batched replacement for per-report `Server::ingest`.
    ///
    /// Rows are pre-aggregated into a small per-order scratch (at most
    /// `1 + log d` orders are ever touched) and handed over as **one
    /// `record_batch` per touched order**, instead of one `record` per
    /// row. For integer-valued ±1 rows the result is identical on every
    /// backend — sums and report counts are exact — while the sparse
    /// backend pays one binary search per *order* rather than per *row*
    /// (the ROADMAP "sparse batched folds" item; the before/after timing
    /// lives in `BENCH_backends.json`). The reference row-by-row path is
    /// kept as [`fold_into_rows`](Self::fold_into_rows) and asserted
    /// equivalent by unit + property tests.
    pub fn fold_into<A: Accumulator>(&self, acc: &mut A) {
        // Tiny batches (streaming chunks go down to one row) cost more
        // to pre-aggregate than to record: zeroing the scratch dominates.
        // Both paths are exactly equivalent, so this is timing only.
        if self.len() < 16 {
            self.fold_into_rows(acc);
            return;
        }
        // Scratch indexed by order (u8 ⇒ 256 slots, ~4 KiB on the stack);
        // only touched slots are read or reset, so the cost tracks the
        // touched-order count, not the scratch size.
        let mut sums = [0i64; 256];
        let mut counts = [0u64; 256];
        let mut touched: Vec<u8> = Vec::new();
        for (&h, &s) in self.orders.iter().zip(&self.signs) {
            let i = h as usize;
            if counts[i] == 0 {
                touched.push(h);
            }
            sums[i] += i64::from(s);
            counts[i] += 1;
        }
        // First-touch order: deterministic for a given batch, and the
        // per-order batch totals commute across orders on every backend.
        for &h in &touched {
            let i = h as usize;
            acc.record_batch(u32::from(h), sums[i] as f64, counts[i]);
        }
    }

    /// The pre-batching reference fold: one `record` call per row. Kept
    /// for the before/after comparison in `exp_backends` and as the
    /// equivalence oracle for [`fold_into`](Self::fold_into).
    pub fn fold_into_rows<A: Accumulator>(&self, acc: &mut A) {
        for (&h, &s) in self.orders.iter().zip(&self.signs) {
            acc.record(u32::from(h), Sign::from_i8(s));
        }
    }

    /// Serializes the batch (one shared row count, then each column) —
    /// used by the ingestion service to persist open-period journals.
    pub fn write_state(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for &u in &self.users {
            w.u32(u);
        }
        for &h in &self.orders {
            w.u8(h);
        }
        for &s in &self.signs {
            w.i8(s);
        }
    }

    /// Rebuilds a batch from bytes written by
    /// [`write_state`](Self::write_state), rejecting sign bytes outside
    /// `{−1, +1}` (which would panic later in `Sign::from_i8`).
    ///
    /// # Errors
    /// A typed [`SnapshotError`] on truncation or an invalid sign.
    pub fn read_state(r: &mut SnapReader<'_>) -> Result<ReportBatch, SnapshotError> {
        let rows = r.len(6)?;
        let mut users = Vec::with_capacity(rows);
        for _ in 0..rows {
            users.push(r.u32()?);
        }
        let mut orders = Vec::with_capacity(rows);
        for _ in 0..rows {
            orders.push(r.u8()?);
        }
        let mut signs = Vec::with_capacity(rows);
        for _ in 0..rows {
            let s = r.i8()?;
            if s != 1 && s != -1 {
                return Err(SnapshotError::Corrupt("report sign not ±1"));
            }
            signs.push(s);
        }
        Ok(ReportBatch {
            users,
            orders,
            signs,
        })
    }
}

/// Delivered frames for one period, struct-of-arrays, with emission
/// provenance for deterministic cross-shard ordering.
#[derive(Debug, Clone, Default)]
pub struct FrameBatch {
    /// Emission period of each frame (the mailbox's primary sort key).
    emitted: Vec<u32>,
    /// The client that put the frame on the wire (secondary sort key —
    /// *not* necessarily the user id inside the frame: Byzantine clients
    /// impersonate).
    emitter: Vec<u32>,
    /// The frame's claimed sender.
    users: Vec<u32>,
    /// The frame's claimed reporting period.
    periods: Vec<u32>,
    /// The frame's report bit (`true` = +1).
    bits: Vec<bool>,
    /// Whether the emitting client is Byzantine (accounting only).
    byzantine: Vec<bool>,
}

/// One delivered frame, as yielded by [`FrameBatch::iter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Emission period.
    pub emitted: u32,
    /// Emitting client.
    pub emitter: u32,
    /// Claimed sender id in the frame payload.
    pub user: u32,
    /// Claimed reporting period in the frame payload.
    pub t: u32,
    /// Report bit (`true` = +1).
    pub bit: bool,
    /// Whether the emitter is Byzantine.
    pub byzantine: bool,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> Self {
        FrameBatch::default()
    }

    /// Appends one frame row.
    #[inline]
    pub fn push(&mut self, frame: Frame) {
        self.emitted.push(frame.emitted);
        self.emitter.push(frame.emitter);
        self.users.push(frame.user);
        self.periods.push(frame.t);
        self.bits.push(frame.bit);
        self.byzantine.push(frame.byzantine);
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Appends every frame of `other`, preserving row order — how an
    /// ingestion worker accumulates the batches streamed into its mailbox
    /// over one period.
    pub fn append(&mut self, other: &FrameBatch) {
        self.reserve(other.len());
        self.emitted.extend_from_slice(&other.emitted);
        self.emitter.extend_from_slice(&other.emitter);
        self.users.extend_from_slice(&other.users);
        self.periods.extend_from_slice(&other.periods);
        self.bits.extend_from_slice(&other.bits);
        self.byzantine.extend_from_slice(&other.byzantine);
    }

    /// Clears all frames, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.emitted.clear();
        self.emitter.clear();
        self.users.clear();
        self.periods.clear();
        self.bits.clear();
        self.byzantine.clear();
    }

    /// Iterates frames in row order.
    pub fn iter(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.len()).map(move |i| Frame {
            emitted: self.emitted[i],
            emitter: self.emitter[i],
            user: self.users[i],
            t: self.periods[i],
            bit: self.bits[i],
            byzantine: self.byzantine[i],
        })
    }

    /// Merges per-shard batches for one delivery period into the exact
    /// frame order the sequential engine's mailbox would hold: ascending
    /// `(emission period, emitting user)`. The key is unique per frame —
    /// a client dispatches at most once per period and a retransmitted
    /// copy always lands in a different delivery period — so the order is
    /// total and independent of the shard partition.
    pub fn merge_ordered<'a, I>(shards: I) -> FrameBatch
    where
        I: IntoIterator<Item = &'a FrameBatch>,
    {
        let mut all: Vec<Frame> = Vec::new();
        for shard in shards {
            all.reserve(shard.len());
            all.extend(shard.iter());
        }
        let rows = all.len();
        all.sort_unstable_by_key(|f| (f.emitted, f.emitter));
        let mut out = FrameBatch::default();
        out.reserve(rows);
        for f in all {
            out.push(f);
        }
        out
    }

    fn reserve(&mut self, rows: usize) {
        self.emitted.reserve(rows);
        self.emitter.reserve(rows);
        self.users.reserve(rows);
        self.periods.reserve(rows);
        self.bits.reserve(rows);
        self.byzantine.reserve(rows);
    }

    /// Serializes the batch (one shared row count, then each column) —
    /// used by the ingestion service to persist open-period journals.
    pub fn write_state(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for &e in &self.emitted {
            w.u32(e);
        }
        for &e in &self.emitter {
            w.u32(e);
        }
        for &u in &self.users {
            w.u32(u);
        }
        for &t in &self.periods {
            w.u32(t);
        }
        for &b in &self.bits {
            w.bool(b);
        }
        for &b in &self.byzantine {
            w.bool(b);
        }
    }

    /// Rebuilds a batch from bytes written by
    /// [`write_state`](Self::write_state).
    ///
    /// # Errors
    /// A typed [`SnapshotError`] on truncation or a malformed boolean
    /// column.
    pub fn read_state(r: &mut SnapReader<'_>) -> Result<FrameBatch, SnapshotError> {
        let rows = r.len(18)?;
        let read_u32s = |r: &mut SnapReader<'_>| -> Result<Vec<u32>, SnapshotError> {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..rows {
                col.push(r.u32()?);
            }
            Ok(col)
        };
        let emitted = read_u32s(r)?;
        let emitter = read_u32s(r)?;
        let users = read_u32s(r)?;
        let periods = read_u32s(r)?;
        let read_bools = |r: &mut SnapReader<'_>| -> Result<Vec<bool>, SnapshotError> {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..rows {
                col.push(r.bool()?);
            }
            Ok(col)
        };
        let bits = read_bools(r)?;
        let byzantine = read_bools(r)?;
        Ok(FrameBatch {
            emitted,
            emitter,
            users,
            periods,
            bits,
            byzantine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_core::accumulator::{AccumulatorKind, DenseAccumulator};

    #[test]
    fn report_batch_folds_like_direct_ingestion() {
        let mut batch = ReportBatch::with_capacity(4);
        batch.push(0, 0, Sign::Plus);
        batch.push(1, 2, Sign::Minus);
        batch.push(2, 2, Sign::Minus);
        batch.push(3, 1, Sign::Plus);
        assert_eq!(batch.len(), 4);

        let mut from_batch = DenseAccumulator::new(3);
        batch.fold_into(&mut from_batch);

        let mut direct = DenseAccumulator::new(3);
        for (_, h, s) in batch.iter() {
            direct.record(u32::from(h), s);
        }
        assert_eq!(from_batch, direct);
        assert_eq!(from_batch.reports(), 4);
        assert_eq!(from_batch.sums(), &[1.0, 1.0, -2.0]);

        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn preaggregated_fold_equals_row_by_row_on_every_backend() {
        // The sparse-batched-folds claim at unit scale: the per-order
        // pre-aggregation pass is observation-for-observation identical
        // to the row-by-row reference on all four layouts, including a
        // batch that touches one order many times and another not at all.
        let mut batch = ReportBatch::new();
        for i in 0..200u32 {
            let h = [0u8, 0, 3, 5][i as usize % 4];
            let s = if i % 3 == 0 { Sign::Minus } else { Sign::Plus };
            batch.push(i, h, s);
        }
        for kind in AccumulatorKind::ALL {
            let mut fast = kind.new_accumulator(6);
            let mut slow = kind.new_accumulator(6);
            batch.fold_into(&mut fast);
            batch.fold_into_rows(&mut slow);
            for h in 0..6u32 {
                assert_eq!(fast.order_sum(h), slow.order_sum(h), "{kind} order {h}");
            }
            assert_eq!(fast.reports(), slow.reports(), "{kind}");
            assert_eq!(fast.reports(), 200, "{kind}");
        }
        // Empty batches fold to nothing on both paths.
        let empty = ReportBatch::new();
        let mut acc = AccumulatorKind::Sparse.new_accumulator(4);
        empty.fold_into(&mut acc);
        assert_eq!(acc.reports(), 0);
    }

    #[test]
    fn frame_batch_append_preserves_row_order() {
        let mut a = FrameBatch::new();
        a.push(frame(1, 0));
        a.push(frame(1, 2));
        let mut b = FrameBatch::new();
        b.push(frame(2, 1));
        a.append(&b);
        let keys: Vec<(u32, u32)> = a.iter().map(|f| (f.emitted, f.emitter)).collect();
        assert_eq!(keys, vec![(1, 0), (1, 2), (2, 1)]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(b.len(), 1, "append borrows, never drains");
    }

    #[test]
    fn report_batch_folds_identically_into_every_backend() {
        let mut batch = ReportBatch::new();
        batch.push(0, 0, Sign::Plus);
        batch.push(1, 1, Sign::Minus);
        batch.push(2, 1, Sign::Minus);
        batch.push(3, 2, Sign::Plus);
        for kind in AccumulatorKind::ALL {
            let mut acc = kind.new_accumulator(3);
            batch.fold_into(&mut acc);
            assert_eq!(acc.order_sum(0), 1.0, "{kind}");
            assert_eq!(acc.order_sum(1), -2.0, "{kind}");
            assert_eq!(acc.order_sum(2), 1.0, "{kind}");
            assert_eq!(acc.reports(), 4, "{kind}");
        }
    }

    fn frame(emitted: u32, emitter: u32) -> Frame {
        Frame {
            emitted,
            emitter,
            user: emitter,
            t: emitted,
            bit: emitter % 2 == 0,
            byzantine: false,
        }
    }

    #[test]
    fn merge_ordered_reconstructs_mailbox_order() {
        // Shard 0 owns users 0..3, shard 1 owns users 3..6; frames from
        // two emission periods interleave. The merged order must be
        // (emitted, emitter) ascending — exactly the sequential mailbox.
        let mut s0 = FrameBatch::new();
        let mut s1 = FrameBatch::new();
        for e in [1u32, 2] {
            for u in 0..3u32 {
                s0.push(frame(e, u));
            }
            for u in 3..6u32 {
                s1.push(frame(e, u));
            }
        }
        let merged = FrameBatch::merge_ordered(&[s0.clone(), s1.clone()]);
        let keys: Vec<(u32, u32)> = merged.iter().map(|f| (f.emitted, f.emitter)).collect();
        let expect: Vec<(u32, u32)> = [1u32, 2]
            .iter()
            .flat_map(|&e| (0..6u32).map(move |u| (e, u)))
            .collect();
        assert_eq!(keys, expect);

        // Partition-invariance: merging in the other shard order, or as
        // one concatenated shard, gives the identical row sequence.
        let swapped = FrameBatch::merge_ordered(&[s1, s0]);
        let swapped_keys: Vec<(u32, u32)> =
            swapped.iter().map(|f| (f.emitted, f.emitter)).collect();
        assert_eq!(swapped_keys, expect);
    }

    #[test]
    fn batches_roundtrip_through_snapshot_state() {
        use rtf_core::snapshot::{SnapReader, SnapWriter};
        let mut rb = ReportBatch::new();
        rb.push(7, 0, Sign::Plus);
        rb.push(8, 3, Sign::Minus);
        let mut fb = FrameBatch::new();
        fb.push(frame(1, 4));
        fb.push(frame(2, 9));
        let mut w = SnapWriter::new();
        rb.write_state(&mut w);
        fb.write_state(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        let rb2 = ReportBatch::read_state(&mut r).unwrap();
        let fb2 = FrameBatch::read_state(&mut r).unwrap();
        r.finish().unwrap();
        let rows: Vec<_> = rb.iter().collect();
        let rows2: Vec<_> = rb2.iter().collect();
        assert_eq!(rows, rows2);
        let frames: Vec<Frame> = fb.iter().collect();
        let frames2: Vec<Frame> = fb2.iter().collect();
        assert_eq!(frames, frames2);
    }

    #[test]
    fn report_batch_rejects_non_sign_bytes() {
        use rtf_core::snapshot::{SnapReader, SnapWriter, SnapshotError};
        let mut w = SnapWriter::new();
        w.usize(1);
        w.u32(0); // user
        w.u8(0); // order
        w.i8(3); // not a ±1 sign
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(
            ReportBatch::read_state(&mut r).unwrap_err(),
            SnapshotError::Corrupt("report sign not ±1")
        );
    }
}
