//! The fixed-size worker pool and deterministic sharded map.
//!
//! Determinism contract: results are always returned **in job/shard
//! index order**, never in completion order, and shard boundaries depend
//! only on `(items, workers)` — so any reduction the caller performs over
//! the returned `Vec` is independent of scheduling. Combined with
//! per-user seeding (`SeedSequence(seed).child(user)`) and the exact
//! mergeability of [`rtf_core::accumulator::DenseAccumulator`], this
//! makes every pipeline built on the pool value-for-value reproducible
//! for any worker count.
//!
//! Mechanics: one shared crossbeam channel acts as the job injector
//! (workers pull indices until it drains — dynamic load balancing for
//! free), and a `parking_lot::Mutex<Vec<Option<T>>>` collects results by
//! index. Workers are scoped threads, so jobs may borrow the caller's
//! data without `Arc`.

use crate::mode::ExecMode;
use parking_lot::Mutex;

/// One contiguous slice of the item space, assigned to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard index (reduction order).
    pub index: usize,
    /// First item (inclusive).
    pub start: usize,
    /// One past the last item.
    pub end: usize,
}

impl Shard {
    /// Number of items in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard holds no items (more workers than items).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The item range, for iteration.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Splits `0..items` into exactly `shards` contiguous, near-equal shards
/// (the first `items % shards` shards hold one extra item). Depends only
/// on the two arguments — the partition is part of the determinism
/// contract.
pub fn partition(items: usize, shards: usize) -> Vec<Shard> {
    assert!(shards >= 1, "need at least one shard");
    let base = items / shards;
    let extra = items % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for index in 0..shards {
        let len = base + usize::from(index < extra);
        out.push(Shard {
            index,
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, items);
    out
}

/// The shard index that owns `item` under `partition(items, shards)`,
/// computed analytically (no search): the first `items % shards` shards
/// hold `⌈items/shards⌉` items, the rest `⌊items/shards⌋`. Streaming
/// fronts use this to route a report to its owner's mailbox without
/// materialising the partition.
///
/// # Panics
/// Panics if `item >= items` or `shards == 0`.
pub fn shard_of(items: usize, shards: usize, item: usize) -> usize {
    assert!(shards >= 1, "need at least one shard");
    assert!(item < items, "item {item} outside 0..{items}");
    let base = items / shards;
    let extra = items % shards;
    let boundary = extra * (base + 1);
    if item < boundary {
        item / (base + 1)
    } else {
        extra + (item - boundary) / base
    }
}

/// A fixed-size worker pool.
///
/// The pool is a lightweight handle; threads live only for the duration
/// of each `map_*` call (scoped), so borrowed data flows into jobs
/// without reference counting and a panicking job fails the caller.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool of `workers` threads (≥ 1; 0 clamps to 1).
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// The pool matching an [`ExecMode`]'s worker count.
    pub fn for_mode(mode: ExecMode) -> Self {
        WorkerPool::new(mode.workers())
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps every index in `0..jobs` through `map`, fanning out over the
    /// pool, and returns the results **in index order**. Jobs are pulled
    /// from a shared injector channel, so long and short jobs balance
    /// across workers without affecting the result order.
    pub fn map_indexed<T, F>(&self, jobs: usize, map: F) -> Vec<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        if self.workers == 1 || jobs <= 1 {
            return (0..jobs).map(map).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
        slots.resize_with(jobs, || None);
        let results = Mutex::new(slots);
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for i in 0..jobs {
            tx.send(i).expect("receiver alive");
        }
        drop(tx);

        crossbeam::thread::scope(|scope| {
            for _ in 0..self.workers.min(jobs) {
                let rx = rx.clone();
                let results = &results;
                let map = &map;
                scope.spawn(move |_| {
                    while let Ok(i) = rx.recv() {
                        let value = map(i);
                        results.lock()[i] = Some(value);
                    }
                });
            }
        })
        .expect("pool worker panicked");

        results
            .into_inner()
            .into_iter()
            .map(|slot| slot.expect("every job completed"))
            .collect()
    }

    /// Partitions `0..items` into one contiguous shard per worker, maps
    /// each shard on its own worker, and returns the results **in shard
    /// index order** — the caller's fold over the returned `Vec` is the
    /// deterministic shard-merge order.
    pub fn map_shards<T, F>(&self, items: usize, map: F) -> Vec<T>
    where
        F: Fn(Shard) -> T + Sync,
        T: Send,
    {
        let shards = partition(items, self.workers);
        if self.workers == 1 {
            return shards.into_iter().map(map).collect();
        }
        self.map_indexed(shards.len(), |i| map(shards[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn partition_covers_contiguously() {
        for items in [0usize, 1, 7, 100, 101] {
            for shards in [1usize, 2, 3, 8, 200] {
                let parts = partition(items, shards);
                assert_eq!(parts.len(), shards);
                assert_eq!(parts[0].start, 0);
                assert_eq!(parts.last().unwrap().end, items);
                for w in parts.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                let (min, max) = parts.iter().fold((usize::MAX, 0), |(lo, hi), s| {
                    (lo.min(s.len()), hi.max(s.len()))
                });
                assert!(max - min <= 1, "near-equal: {items}/{shards}");
            }
        }
    }

    #[test]
    fn shard_of_agrees_with_partition() {
        for items in [1usize, 2, 7, 100, 101, 1000] {
            for shards in [1usize, 2, 3, 8, 64] {
                let parts = partition(items, shards);
                for item in 0..items {
                    let owner = shard_of(items, shards, item);
                    assert!(
                        parts[owner].range().contains(&item),
                        "item {item} of {items}/{shards} routed to shard {owner} {:?}",
                        parts[owner]
                    );
                }
            }
        }
    }

    #[test]
    fn map_indexed_returns_in_index_order() {
        let pool = WorkerPool::new(4);
        // Uneven job costs: results must still land by index.
        let out = pool.map_indexed(50, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i * i
        });
        assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_shards_agrees_across_worker_counts() {
        let reference: Vec<usize> = vec![(0..103).sum()];
        let total = |counts: Vec<usize>| vec![counts.into_iter().sum::<usize>()];
        for workers in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(workers);
            let partials = pool.map_shards(103, |s| s.range().sum::<usize>());
            assert_eq!(partials.len(), workers);
            assert_eq!(total(partials), reference, "{workers} workers");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let pool = WorkerPool::new(3);
        let out = pool.map_indexed(200, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 200);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn zero_jobs_and_zero_workers_degenerate_gracefully() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert!(pool.map_indexed(0, |i| i).is_empty());
        let shards = WorkerPool::new(4).map_shards(2, |s| s.len());
        assert_eq!(shards.iter().sum::<usize>(), 2);
        assert_eq!(shards.len(), 4, "empty tail shards are preserved");
    }
}
