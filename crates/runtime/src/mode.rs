//! Execution-mode selection for the protocol pipelines.

/// How an execution path should run: on the calling thread with the
/// legacy per-report schedule, or through the batched multi-worker
/// pipeline.
///
/// Both modes are value-for-value identical for every worker count —
/// per-user randomness derives from `SeedSequence(seed).child(user)` and
/// shard accumulators merge exactly (integer-valued sums) — so the mode
/// is purely a throughput choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The single-threaded reference schedule (per-report framing on the
    /// hot path). This is the oracle the batched pipeline is differenced
    /// against.
    Sequential,
    /// The batched pipeline over a fixed-size pool of this many workers
    /// (≥ 1). `Parallel(1)` exercises the full sharded machinery on one
    /// worker — useful for isolating batching wins from threading wins.
    Parallel(usize),
}

impl ExecMode {
    /// Reads the mode from the `RTF_WORKERS` environment variable:
    /// unset, empty, unparsable, or `0` means [`ExecMode::Sequential`];
    /// `w ≥ 1` means [`ExecMode::Parallel`]`(w)`. CI sets `RTF_WORKERS=4`
    /// to run the whole test pyramid through the parallel pipeline.
    pub fn from_env() -> Self {
        match std::env::var("RTF_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(w) if w >= 1 => ExecMode::Parallel(w),
            _ => ExecMode::Sequential,
        }
    }

    /// Like [`from_env`](Self::from_env), but for surfaces whose natural
    /// default is parallel (throughput benches, large examples): unset
    /// or unparsable `RTF_WORKERS` means `Parallel(available
    /// parallelism)`, an explicit `0` means `Parallel(1)` (single-worker
    /// batched pipeline — no threading, still batched), `w ≥ 1` means
    /// `Parallel(w)`.
    pub fn from_env_or_parallel() -> Self {
        match std::env::var("RTF_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(w) => ExecMode::Parallel(w.max(1)),
            None => ExecMode::Parallel(
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1),
            ),
        }
    }

    /// The worker count this mode runs on (`Sequential` ⇒ 1).
    pub fn workers(&self) -> usize {
        match *self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel(w) => w.max(1),
        }
    }

    /// Whether this mode uses the batched multi-worker pipeline.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecMode::Parallel(_))
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Sequential => write!(f, "sequential"),
            ExecMode::Parallel(w) => write!(f, "parallel({w})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_and_flags() {
        assert_eq!(ExecMode::Sequential.workers(), 1);
        assert!(!ExecMode::Sequential.is_parallel());
        assert_eq!(ExecMode::Parallel(4).workers(), 4);
        assert!(ExecMode::Parallel(4).is_parallel());
        // Degenerate Parallel(0) clamps to one worker.
        assert_eq!(ExecMode::Parallel(0).workers(), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(ExecMode::Sequential.to_string(), "sequential");
        assert_eq!(ExecMode::Parallel(8).to_string(), "parallel(8)");
    }
}
