//! The streaming ingestion service — the long-running front of the
//! longitudinal pipeline.
//!
//! The protocol of Algorithm 2 is inherently a *service*: clients emit
//! one report per assigned boundary forever, and the server must fold
//! them in as they arrive, period after period, without ever seeing the
//! whole horizon at once. The batch engines (`run_event_driven`,
//! `run_scenario`) simulate that schedule offline over whole-horizon
//! shards; [`IngestService`] is the online counterpart:
//!
//! * **Per-period intake.** Producers stream columnar
//!   [`ReportBatch`]es (trusted traffic, folded into shard accumulators
//!   by the owning worker) or [`FrameBatch`]es (untrusted traffic,
//!   buffered for the period-close checked ingestion) into per-worker
//!   mailboxes.
//! * **Bounded mailboxes with backpressure.** Every mailbox is a bounded
//!   channel of [`LiveConfig::mailbox_cap`] batches (`RTF_MAILBOX_CAP`).
//!   A full mailbox **blocks the producer** — messages are never dropped
//!   and never reordered, so the observable outcome is independent of
//!   how far ahead producers run. Backpressure changes timing, never
//!   values.
//! * **Period-close flush.** [`close_period`](IngestService::close_period)
//!   barriers every worker, collects its shard accumulator and buffered
//!   frames **in worker index order**, replays the merged frame mailbox
//!   through the server's checked path, and finalises the period via
//!   [`Server::close_period_with_shards`] — exactly the merge order of
//!   the offline batched pipeline, so streaming execution is
//!   value-for-value identical to batched and sequential execution
//!   (proven by `rtf_scenarios::oracle::assert_live_agreement`).
//! * **Restart recovery.** Every submitted batch is journalled (per
//!   worker, per open period) before it enters a mailbox — a delivery
//!   log. [`kill_worker`](IngestService::kill_worker) abandons a worker
//!   thread and its entire un-flushed state mid-period, spawns a
//!   replacement, and replays the journal into it. Folding is
//!   deterministic, so the replacement's flush is bit-identical to the
//!   one the dead worker would have produced: **recovery is exact**, and
//!   the oracle asserts it on honest and fault-injected schedules alike.
//!
//! Journals are truncated at every period close (flushed shards already
//! live in the server), so the journal holds one open period of traffic
//! per worker — O(period volume), not O(horizon).

use crate::batch::{FrameBatch, ReportBatch};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use rtf_core::accumulator::{Accumulator, AccumulatorError, AnyAccumulator};
use rtf_core::server::{Delivery, Server};
use rtf_primitives::sign::Sign;

/// Default mailbox capacity when `RTF_MAILBOX_CAP` is unset.
pub const DEFAULT_MAILBOX_CAP: usize = 1024;

/// Parses a mailbox capacity: `None`/empty means
/// [`DEFAULT_MAILBOX_CAP`]; `0` clamps to 1 (a mailbox must admit the
/// flush barrier).
///
/// # Panics
/// Panics on an unparsable non-empty value, like the other `RTF_*`
/// selectors — a typo in CI must fail loudly.
pub fn parse_mailbox_cap(value: Option<&str>) -> usize {
    match value {
        None => DEFAULT_MAILBOX_CAP,
        Some(v) if v.trim().is_empty() => DEFAULT_MAILBOX_CAP,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("unparsable RTF_MAILBOX_CAP {v:?}; expected an integer"))
            .max(1),
    }
}

/// Reads the mailbox capacity from the `RTF_MAILBOX_CAP` environment
/// variable (see [`parse_mailbox_cap`]).
pub fn mailbox_cap_from_env() -> usize {
    parse_mailbox_cap(std::env::var("RTF_MAILBOX_CAP").ok().as_deref())
}

/// A mid-horizon worker failure to inject: after period `period`'s
/// traffic has been submitted (but before the period closes), worker
/// `worker` is killed and recovered from the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill {
    /// Worker index to kill (taken modulo the worker count).
    pub worker: usize,
    /// Period during which the kill strikes (1-based).
    pub period: u64,
}

/// Configuration of a live (streaming) run: service shape plus the
/// driver's submission granularity and optional fault injection.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Number of ingestion workers (≥ 1; 0 clamps to 1).
    pub workers: usize,
    /// Bounded mailbox capacity, in batches (≥ 1). Small caps force
    /// producers to stall on the backpressure path; values never change.
    pub mailbox_cap: usize,
    /// Maximum rows per submitted batch — the streaming granularity of
    /// the live drivers (smaller chunks ⇒ more intake messages per
    /// period).
    pub chunk_rows: usize,
    /// Optional injected worker failure (see [`WorkerKill`]).
    pub kill: Option<WorkerKill>,
}

impl LiveConfig {
    /// A config for `workers` workers with the environment's mailbox
    /// capacity (`RTF_MAILBOX_CAP`), a 256-row chunk, and no injected
    /// failure.
    pub fn new(workers: usize) -> Self {
        LiveConfig {
            workers: workers.max(1),
            mailbox_cap: mailbox_cap_from_env(),
            chunk_rows: 256,
            kill: None,
        }
    }

    /// Sets the mailbox capacity (0 clamps to 1).
    pub fn with_mailbox_cap(mut self, cap: usize) -> Self {
        self.mailbox_cap = cap.max(1);
        self
    }

    /// Sets the submission chunk size (0 clamps to 1).
    pub fn with_chunk_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = rows.max(1);
        self
    }

    /// Injects a worker kill (see [`WorkerKill`]).
    pub fn with_kill(mut self, worker: usize, period: u64) -> Self {
        self.kill = Some(WorkerKill { worker, period });
        self
    }
}

/// One intake message for a worker mailbox.
enum WorkerMsg {
    /// Trusted rows: fold into the worker's shard accumulator.
    Reports(ReportBatch),
    /// Untrusted frames: buffer for the period-close checked ingestion.
    Frames(FrameBatch),
    /// Period-close barrier: ship the shard state back and reset.
    Flush,
}

/// What a worker hands back at every flush barrier.
struct ShardFlush {
    acc: AnyAccumulator,
    frames: FrameBatch,
}

/// A journalled intake batch for the currently open period.
#[derive(Clone)]
enum JournalEntry {
    Reports(ReportBatch),
    Frames(FrameBatch),
}

/// One live ingestion worker: mailbox sender, flush receiver, thread.
struct WorkerSlot {
    tx: Option<Sender<WorkerMsg>>,
    flushes: Receiver<ShardFlush>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WorkerSlot {
    fn spawn(index: usize, mailbox_cap: usize, template: AnyAccumulator) -> Self {
        let (tx, rx) = bounded::<WorkerMsg>(mailbox_cap);
        let (flush_tx, flushes) = unbounded::<ShardFlush>();
        let handle = std::thread::Builder::new()
            .name(format!("rtf-ingest-{index}"))
            .spawn(move || worker_loop(rx, flush_tx, template))
            .expect("spawn ingest worker");
        WorkerSlot {
            tx: Some(tx),
            flushes,
            handle: Some(handle),
        }
    }

    /// Closes the mailbox and joins the thread. The worker drains every
    /// message still queued, then exits on disconnect — its state is
    /// simply never collected again, which is what "crashed" means to
    /// the rest of the service.
    fn stop(&mut self) {
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The worker body: fold trusted rows, buffer untrusted frames, ship
/// both back at every flush barrier.
fn worker_loop(rx: Receiver<WorkerMsg>, out: Sender<ShardFlush>, template: AnyAccumulator) {
    let mut acc = template.fresh_like();
    let mut frames = FrameBatch::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Reports(batch) => batch.fold_into(&mut acc),
            WorkerMsg::Frames(batch) => frames.append(&batch),
            WorkerMsg::Flush => {
                let flush = ShardFlush {
                    acc: std::mem::replace(&mut acc, template.fresh_like()),
                    frames: std::mem::take(&mut frames),
                };
                if out.send(flush).is_err() {
                    break; // service gone mid-flush: nothing left to serve
                }
            }
        }
    }
}

/// Aggregate accounting of one service lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Periods closed.
    pub periods: u64,
    /// Intake batches submitted (journal entries written).
    pub batches: u64,
    /// Trusted report rows submitted.
    pub rows: u64,
    /// Untrusted frames submitted.
    pub frames: u64,
    /// Workers killed and recovered.
    pub recoveries: u64,
    /// Journal batches replayed into replacement workers.
    pub replayed_batches: u64,
    /// Cumulative heap bytes of every flushed shard accumulator — the
    /// live counterpart of `EventDrivenOutcome::acc_bytes`.
    pub flushed_acc_bytes: u64,
}

/// The result of closing one period.
#[derive(Debug, Clone)]
pub struct PeriodClose {
    /// The period just closed.
    pub t: u64,
    /// The published estimate `â[t]`.
    pub estimate: f64,
    /// The period's untrusted frames in the exact ingestion (sequential
    /// mailbox) order — empty for trusted-only intake.
    pub frames: FrameBatch,
    /// Per-frame classification by the checked ingestion path, parallel
    /// to [`frames`](Self::frames).
    pub outcomes: Vec<Delivery>,
}

/// The long-running streaming ingestion service (see the module docs).
///
/// Owns the [`Server`] for the duration of the run;
/// [`finish`](Self::finish) hands it back with the final accounting.
pub struct IngestService {
    /// `Some` until [`finish`](Self::finish) hands the server back.
    server: Option<Server>,
    workers: Vec<WorkerSlot>,
    /// Per-worker delivery log of the currently open period.
    journal: Vec<Vec<JournalEntry>>,
    stats: IngestStats,
    mailbox_cap: usize,
}

impl IngestService {
    /// Starts `workers` ingestion workers (≥ 1; 0 clamps to 1) in front
    /// of `server`, with `mailbox_cap`-batch bounded mailboxes. Worker
    /// shard accumulators inherit the server's storage backend and shape
    /// via [`Server::new_shard`].
    ///
    /// All user registration must already have happened — the service
    /// starts at period 1.
    pub fn new(server: Server, workers: usize, mailbox_cap: usize) -> Self {
        let workers = workers.max(1);
        let mailbox_cap = mailbox_cap.max(1);
        let slots = (0..workers)
            .map(|i| WorkerSlot::spawn(i, mailbox_cap, server.new_shard()))
            .collect();
        IngestService {
            server: Some(server),
            workers: slots,
            journal: vec![Vec::new(); workers],
            stats: IngestStats::default(),
            mailbox_cap,
        }
    }

    fn server_mut(&mut self) -> &mut Server {
        self.server.as_mut().expect("service not finished")
    }

    /// Number of ingestion workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The bounded mailbox capacity, in batches.
    pub fn mailbox_cap(&self) -> usize {
        self.mailbox_cap
    }

    /// The accounting so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Streams one trusted report batch into worker `worker`'s mailbox,
    /// journalling it first. **Blocks while the mailbox is full** — the
    /// backpressure contract: producers stall, batches are never dropped.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn submit_reports(&mut self, worker: usize, batch: ReportBatch) {
        self.stats.batches += 1;
        self.stats.rows += batch.len() as u64;
        self.journal[worker].push(JournalEntry::Reports(batch.clone()));
        self.send(worker, WorkerMsg::Reports(batch));
    }

    /// Streams one untrusted frame batch into worker `worker`'s mailbox,
    /// journalling it first. Same blocking backpressure contract as
    /// [`submit_reports`](Self::submit_reports).
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn submit_frames(&mut self, worker: usize, batch: FrameBatch) {
        self.stats.batches += 1;
        self.stats.frames += batch.len() as u64;
        self.journal[worker].push(JournalEntry::Frames(batch.clone()));
        self.send(worker, WorkerMsg::Frames(batch));
    }

    fn send(&self, worker: usize, msg: WorkerMsg) {
        let tx = self.workers[worker]
            .tx
            .as_ref()
            .expect("worker mailbox open");
        assert!(tx.send(msg).is_ok(), "ingest worker {worker} disconnected");
    }

    /// Closes period `t`: barriers every worker, absorbs the flushed
    /// shard accumulators and replays the merged frame mailbox through
    /// the checked ingestion path (both in deterministic order), then
    /// finalises `â[t]` and truncates the journals.
    ///
    /// # Errors
    /// Returns [`AccumulatorError`] if a flushed shard does not match the
    /// server's backend/shape (impossible unless the service is misused —
    /// shards are cut from the server itself).
    ///
    /// # Panics
    /// Panics like `Server::end_of_period` if `t` is out of order.
    pub fn close_period(&mut self, t: u64) -> Result<PeriodClose, AccumulatorError> {
        // Barrier: one flush marker per mailbox. Workers drain in FIFO
        // order, so everything submitted for this period lands before the
        // marker.
        for w in 0..self.workers.len() {
            self.send(w, WorkerMsg::Flush);
        }
        // Collect in worker index order — the deterministic merge order.
        let mut shard_accs = Vec::with_capacity(self.workers.len());
        let mut shard_frames = Vec::with_capacity(self.workers.len());
        for slot in &self.workers {
            let flush = slot
                .flushes
                .recv()
                .expect("ingest worker answered the flush barrier");
            self.stats.flushed_acc_bytes += flush.acc.heap_bytes() as u64;
            shard_accs.push(flush.acc);
            shard_frames.push(flush.frames);
        }

        // Untrusted traffic first: reconstruct the sequential mailbox
        // order across shards and classify every frame.
        let frames = FrameBatch::merge_ordered(shard_frames.iter());
        let mut outcomes = Vec::with_capacity(frames.len());
        let server = self.server_mut();
        for frame in frames.iter() {
            let bit = if frame.bit { Sign::Plus } else { Sign::Minus };
            outcomes.push(server.ingest_checked(frame.user, u64::from(frame.t), bit));
        }

        let estimate = server.close_period_with_shards(t, shard_accs.iter())?;
        for entries in &mut self.journal {
            entries.clear();
        }
        self.stats.periods += 1;
        Ok(PeriodClose {
            t,
            estimate,
            frames,
            outcomes,
        })
    }

    /// Kills worker `worker` mid-period and recovers it: the thread is
    /// abandoned along with **all** of its un-flushed state (folded
    /// accumulator, buffered frames, queued mailbox), a replacement is
    /// spawned, and the open period's journal is replayed into it.
    /// Folding is deterministic, so the replacement's next flush is
    /// bit-identical to what the dead worker would have produced.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn kill_worker(&mut self, worker: usize) {
        self.workers[worker].stop();
        let template = self.server_mut().new_shard();
        self.workers[worker] = WorkerSlot::spawn(worker, self.mailbox_cap, template);
        self.stats.recoveries += 1;
        // Replay the delivery log. Clones go to the mailbox; the journal
        // keeps its entries in case this worker dies again before the
        // period closes.
        for i in 0..self.journal[worker].len() {
            self.stats.replayed_batches += 1;
            let msg = match &self.journal[worker][i] {
                JournalEntry::Reports(b) => WorkerMsg::Reports(b.clone()),
                JournalEntry::Frames(b) => WorkerMsg::Frames(b.clone()),
            };
            self.send(worker, msg);
        }
    }

    /// Stops every worker and hands back the server with the final
    /// accounting.
    pub fn finish(mut self) -> (Server, IngestStats) {
        for slot in &mut self.workers {
            slot.stop();
        }
        let stats = self.stats;
        // `self` still drops afterwards; `stop` is idempotent and the
        // server slot is simply empty by then.
        let server = self.server.take().expect("service finished once");
        (server, stats)
    }
}

impl Drop for IngestService {
    fn drop(&mut self) {
        for slot in &mut self.workers {
            slot.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_core::accumulator::AccumulatorKind;
    use rtf_core::params::ProtocolParams;

    fn params() -> ProtocolParams {
        ProtocolParams::new(100, 8, 2, 1.0, 0.05).unwrap()
    }

    /// A trusted server with `users` order-0 clients registered.
    fn trusted_server(users: usize, backend: AccumulatorKind) -> Server {
        let mut server = Server::for_future_rand_with(params(), backend);
        for _ in 0..users {
            server.register_user(0);
        }
        server
    }

    /// A deterministic report batch for one period.
    fn batch_for(t: u64, users: std::ops::Range<u32>) -> ReportBatch {
        let mut batch = ReportBatch::new();
        for u in users {
            let sign = if (u as u64 + t) % 3 == 0 {
                Sign::Minus
            } else {
                Sign::Plus
            };
            batch.push(u, 0, sign);
        }
        batch
    }

    /// Reference: the same traffic pushed straight through a server.
    fn reference_estimates(backend: AccumulatorKind) -> Vec<f64> {
        let mut server = trusted_server(12, backend);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            let batch = batch_for(t, 0..12);
            let mut shard = server.new_shard();
            batch.fold_into(&mut shard);
            server.absorb_shard(&shard).unwrap();
            estimates.push(server.end_of_period(t));
        }
        estimates
    }

    #[test]
    fn streamed_intake_matches_direct_ingestion_on_every_backend() {
        for backend in AccumulatorKind::ALL {
            let expect = reference_estimates(backend);
            for workers in [1usize, 2, 5] {
                let server = trusted_server(12, backend);
                let mut svc = IngestService::new(server, workers, 4);
                let mut estimates = Vec::new();
                for t in 1..=8u64 {
                    // Rows split arbitrarily across workers and chunks —
                    // the shard sums commute exactly.
                    for (w, span) in [(0usize, 0u32..5), (workers - 1, 5..12)] {
                        svc.submit_reports(w, batch_for(t, span));
                    }
                    estimates.push(svc.close_period(t).unwrap().estimate);
                }
                assert_eq!(estimates, expect, "{backend}, {workers} workers");
                let (server, stats) = svc.finish();
                assert_eq!(server.reports_ingested(), 12 * 8);
                assert_eq!(stats.periods, 8);
                assert_eq!(stats.rows, 12 * 8);
                assert_eq!(stats.recoveries, 0);
            }
        }
    }

    #[test]
    fn tiny_mailboxes_stall_producers_without_changing_values() {
        // cap = 1: every second submit must wait for the worker to drain
        // the first. The values are identical to the uncontended run.
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 1);
        assert_eq!(svc.mailbox_cap(), 1);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            // Many small chunks through few mailbox slots.
            for u in 0..12u32 {
                svc.submit_reports((u % 2) as usize, batch_for(t, u..u + 1));
            }
            estimates.push(svc.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect);
        assert_eq!(svc.stats().batches, 12 * 8);
    }

    #[test]
    fn killed_worker_recovers_exactly_from_the_journal() {
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 3, 2);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            svc.submit_reports(0, batch_for(t, 0..4));
            svc.submit_reports(1, batch_for(t, 4..8));
            svc.submit_reports(2, batch_for(t, 8..12));
            if t == 4 {
                // Mid-period kill: worker 1 has (maybe) folded its batch;
                // the replacement must replay it from the journal.
                svc.kill_worker(1);
            }
            estimates.push(svc.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect, "recovery must be exact");
        let (_, stats) = svc.finish();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.replayed_batches, 1, "one open-period batch replayed");
    }

    #[test]
    fn double_kill_in_one_period_still_recovers() {
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 2);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            svc.submit_reports(0, batch_for(t, 0..3));
            if t == 2 {
                svc.kill_worker(0); // replays 1 batch
            }
            svc.submit_reports(0, batch_for(t, 3..6));
            if t == 2 {
                svc.kill_worker(0); // replays 2 batches
            }
            svc.submit_reports(1, batch_for(t, 6..12));
            estimates.push(svc.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect);
        let (_, stats) = svc.finish();
        assert_eq!(stats.recoveries, 2);
        assert_eq!(stats.replayed_batches, 3);
    }

    #[test]
    fn frame_intake_replays_the_merged_mailbox_through_the_checked_path() {
        use crate::batch::Frame;
        // Two registered order-0 users reporting through frames; a junk
        // frame must classify, not panic. Frames scattered across workers
        // must ingest in (emitted, emitter) order.
        let mut server = Server::for_future_rand_with(params(), AccumulatorKind::Dense);
        assert!(server.register_client(0, 0));
        assert!(server.register_client(1, 0));
        let mut svc = IngestService::new(server, 2, 4);
        let mut w0 = FrameBatch::new();
        let mut w1 = FrameBatch::new();
        w1.push(Frame {
            emitted: 1,
            emitter: 1,
            user: 1,
            t: 1,
            bit: false,
            byzantine: false,
        });
        w0.push(Frame {
            emitted: 1,
            emitter: 0,
            user: 0,
            t: 1,
            bit: true,
            byzantine: false,
        });
        // A fabrication from an unregistered id.
        w0.push(Frame {
            emitted: 1,
            emitter: 7,
            user: 99,
            t: 1,
            bit: true,
            byzantine: true,
        });
        svc.submit_frames(0, w0);
        svc.submit_frames(1, w1);
        let close = svc.close_period(1).unwrap();
        let order: Vec<u32> = close.frames.iter().map(|f| f.emitter).collect();
        assert_eq!(order, vec![0, 1, 7], "merged mailbox order");
        assert_eq!(
            close.outcomes,
            vec![
                Delivery::Accepted,
                Delivery::Accepted,
                Delivery::UnknownUser
            ]
        );
        let (server, stats) = svc.finish();
        assert_eq!(server.delivery_log()[0].accepted, 2);
        assert_eq!(server.delivery_log()[0].unknown_user, 1);
        assert_eq!(stats.frames, 3);
    }

    #[test]
    fn dropping_an_unfinished_service_does_not_hang() {
        let server = trusted_server(4, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 1);
        svc.submit_reports(0, batch_for(1, 0..4));
        drop(svc); // workers drain and exit on mailbox disconnect
    }

    #[test]
    fn mailbox_cap_parsing() {
        assert_eq!(parse_mailbox_cap(None), DEFAULT_MAILBOX_CAP);
        assert_eq!(parse_mailbox_cap(Some("")), DEFAULT_MAILBOX_CAP);
        assert_eq!(parse_mailbox_cap(Some("  ")), DEFAULT_MAILBOX_CAP);
        assert_eq!(parse_mailbox_cap(Some("7")), 7);
        assert_eq!(parse_mailbox_cap(Some(" 42 ")), 42);
        assert_eq!(parse_mailbox_cap(Some("0")), 1, "0 clamps to 1");
        assert!(std::panic::catch_unwind(|| parse_mailbox_cap(Some("lots"))).is_err());
    }

    #[test]
    fn live_config_builders() {
        let cfg = LiveConfig::new(0);
        assert_eq!(cfg.workers, 1, "0 workers clamps to 1");
        assert!(cfg.kill.is_none());
        let cfg = LiveConfig::new(4)
            .with_mailbox_cap(0)
            .with_chunk_rows(0)
            .with_kill(2, 9);
        assert_eq!(cfg.mailbox_cap, 1);
        assert_eq!(cfg.chunk_rows, 1);
        assert_eq!(
            cfg.kill,
            Some(WorkerKill {
                worker: 2,
                period: 9
            })
        );
    }
}
