//! The streaming ingestion service — the long-running front of the
//! longitudinal pipeline.
//!
//! The protocol of Algorithm 2 is inherently a *service*: clients emit
//! one report per assigned boundary forever, and the server must fold
//! them in as they arrive, period after period, without ever seeing the
//! whole horizon at once. The batch engines (`run_event_driven`,
//! `run_scenario`) simulate that schedule offline over whole-horizon
//! shards; [`IngestService`] is the online counterpart:
//!
//! * **Per-period intake.** Producers stream columnar
//!   [`ReportBatch`]es (trusted traffic, folded into shard accumulators
//!   by the owning worker) or [`FrameBatch`]es (untrusted traffic,
//!   buffered for the period-close checked ingestion) into per-worker
//!   mailboxes.
//! * **Bounded mailboxes with backpressure.** Every mailbox is a bounded
//!   channel of [`LiveConfig::mailbox_cap`] batches (`RTF_MAILBOX_CAP`).
//!   A full mailbox **blocks the producer** — messages are never dropped
//!   and never reordered, so the observable outcome is independent of
//!   how far ahead producers run. Backpressure changes timing, never
//!   values.
//! * **Period-close flush.** [`close_period`](IngestService::close_period)
//!   barriers every worker, collects its shard accumulator and buffered
//!   frames **in worker index order**, replays the merged frame mailbox
//!   through the server's checked path, and finalises the period via
//!   [`Server::close_period_with_shards`] — exactly the merge order of
//!   the offline batched pipeline, so streaming execution is
//!   value-for-value identical to batched and sequential execution
//!   (proven by `rtf_scenarios::oracle::assert_live_agreement`).
//! * **Restart recovery.** Every submitted batch is journalled (per
//!   worker, per open period) before it enters a mailbox — a delivery
//!   log. [`kill_worker`](IngestService::kill_worker) abandons a worker
//!   thread and its entire un-flushed state mid-period, spawns a
//!   replacement, and replays the journal into it. Folding is
//!   deterministic, so the replacement's flush is bit-identical to the
//!   one the dead worker would have produced: **recovery is exact**, and
//!   the oracle asserts it on honest and fault-injected schedules alike.
//!
//! Journals are truncated at every period close (flushed shards already
//! live in the server), so the journal holds one open period of traffic
//! per worker — O(period volume), not O(horizon).
//!
//! * **Whole-service snapshot/restart.** The pair above — closed-period
//!   server state plus open-period journals — is *exactly* the durable
//!   state of the service, so [`snapshot`](IngestService::snapshot)
//!   serializes it (versioned, checksummed — see `rtf_core::snapshot`)
//!   and [`restore`](IngestService::restore) rebuilds a bit-identical
//!   service in a fresh process: fresh workers are spawned and the open
//!   period's journals are replayed into them, exactly like
//!   `kill_worker` recovers a single worker.
//!   [`restart`](IngestService::restart) composes the two in place and
//!   surfaces the event in [`IngestStats::restarts`]. File-backed
//!   convenience wrappers are gated on the `RTF_SNAPSHOT_DIR`
//!   environment variable. The chaos suite
//!   (`rtf_scenarios::chaos`) proves restarted ≡ streaming ≡ batched ≡
//!   sequential, value for value, under proptest-chosen kill/restart
//!   placements.

use crate::batch::{FrameBatch, ReportBatch};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use rtf_core::accumulator::{Accumulator, AccumulatorError, AnyAccumulator};
use rtf_core::server::{Delivery, Server};
use rtf_core::snapshot::{SnapReader, SnapWriter, SnapshotError};
use rtf_primitives::fastseed::SeedSchema;
use rtf_primitives::sign::Sign;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default mailbox capacity when `RTF_MAILBOX_CAP` is unset.
///
/// Deliberately small: with the live drivers' 4096-row chunks, 32
/// batches bound the in-flight rows per worker to ~128K — enough to
/// keep workers busy, small enough that batches are still cache-warm
/// when folded. A deep mailbox is effectively unbounded buffering: the
/// producer runs megabytes ahead and every fold streams cold memory.
pub const DEFAULT_MAILBOX_CAP: usize = 32;

/// Parses a mailbox capacity: `None`/empty means
/// [`DEFAULT_MAILBOX_CAP`]; `0` clamps to 1 (a mailbox must admit the
/// flush barrier).
///
/// # Panics
/// Panics on an unparsable non-empty value, like the other `RTF_*`
/// selectors — a typo in CI must fail loudly.
pub fn parse_mailbox_cap(value: Option<&str>) -> usize {
    match value {
        None => DEFAULT_MAILBOX_CAP,
        Some(v) if v.trim().is_empty() => DEFAULT_MAILBOX_CAP,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("unparsable RTF_MAILBOX_CAP {v:?}; expected an integer"))
            .max(1),
    }
}

/// Reads the mailbox capacity from the `RTF_MAILBOX_CAP` environment
/// variable (see [`parse_mailbox_cap`]).
pub fn mailbox_cap_from_env() -> usize {
    parse_mailbox_cap(std::env::var("RTF_MAILBOX_CAP").ok().as_deref())
}

/// A mid-horizon worker failure to inject: after period `period`'s
/// traffic has been submitted (but before the period closes), worker
/// `worker` is killed and recovered from the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill {
    /// Worker index to kill (taken modulo the worker count).
    pub worker: usize,
    /// Period during which the kill strikes (1-based).
    pub period: u64,
}

/// A whole-service restart to inject: at period `period` the service is
/// snapshotted, torn down, and restored from its own bytes — as if the
/// process had been killed and relaunched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceRestart {
    /// Period during which the restart strikes (1-based).
    pub period: u64,
    /// `true`: restart *mid-period*, after the period's traffic has been
    /// submitted but before the close — the worst moment, forcing a full
    /// journal replay. `false`: restart between periods, after the close,
    /// when the journals are empty.
    pub mid_period: bool,
}

/// Configuration of a live (streaming) run: service shape plus the
/// driver's submission granularity and optional fault injection.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Number of ingestion workers (≥ 1; 0 clamps to 1).
    pub workers: usize,
    /// Bounded mailbox capacity, in batches (≥ 1). Small caps force
    /// producers to stall on the backpressure path; values never change.
    pub mailbox_cap: usize,
    /// Maximum rows per submitted batch — the streaming granularity of
    /// the live drivers (smaller chunks ⇒ more intake messages per
    /// period).
    pub chunk_rows: usize,
    /// Injected worker failures (see [`WorkerKill`]); applied in order
    /// when their period arrives, after any same-period mid-period
    /// restarts.
    pub kills: Vec<WorkerKill>,
    /// Injected whole-service restarts (see [`ServiceRestart`]), applied
    /// in order when their period arrives.
    pub restarts: Vec<ServiceRestart>,
}

impl LiveConfig {
    /// A config for `workers` workers with the environment's mailbox
    /// capacity (`RTF_MAILBOX_CAP`), a 4096-row chunk, and no injected
    /// failure.
    pub fn new(workers: usize) -> Self {
        LiveConfig {
            workers: workers.max(1),
            mailbox_cap: mailbox_cap_from_env(),
            chunk_rows: 4096,
            kills: Vec::new(),
            restarts: Vec::new(),
        }
    }

    /// Sets the mailbox capacity (0 clamps to 1).
    pub fn with_mailbox_cap(mut self, cap: usize) -> Self {
        self.mailbox_cap = cap.max(1);
        self
    }

    /// Sets the submission chunk size (0 clamps to 1).
    pub fn with_chunk_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = rows.max(1);
        self
    }

    /// Adds a worker kill (see [`WorkerKill`]). May be called repeatedly
    /// — every added kill fires.
    pub fn with_kill(mut self, worker: usize, period: u64) -> Self {
        self.kills.push(WorkerKill { worker, period });
        self
    }

    /// Adds a *mid-period* whole-service restart at `period`: the
    /// service is snapshotted and rebuilt after the period's traffic is
    /// in flight, before the close. May be called repeatedly.
    pub fn with_restart(mut self, period: u64) -> Self {
        self.restarts.push(ServiceRestart {
            period,
            mid_period: true,
        });
        self
    }

    /// Adds a *between-periods* whole-service restart: the service is
    /// snapshotted and rebuilt right after period `period` closes.
    pub fn with_restart_after(mut self, period: u64) -> Self {
        self.restarts.push(ServiceRestart {
            period,
            mid_period: false,
        });
        self
    }

    /// Total number of injected faults (kills + restarts) — what
    /// [`IngestStats::recoveries`] + [`IngestStats::restarts`] must sum
    /// to after a run on a horizon that contains them all.
    pub fn fault_count(&self) -> usize {
        self.kills.len() + self.restarts.len()
    }

    /// Panics unless every configured fault lands on the horizon
    /// `[1..d]`. A fault scheduled at period 0 or past `d` would
    /// silently never fire — turning a chaos test into a vacuous pass —
    /// so the live drivers call this before running.
    ///
    /// # Panics
    /// Panics, naming the offending fault, if any kill or restart period
    /// is outside `[1..d]`.
    pub fn validate_for_horizon(&self, d: u64) {
        for kill in &self.kills {
            assert!(
                (1..=d).contains(&kill.period),
                "configured worker kill at period {} can never fire on horizon d={d}",
                kill.period
            );
        }
        for restart in &self.restarts {
            assert!(
                (1..=d).contains(&restart.period),
                "configured service restart at period {} can never fire on horizon d={d}",
                restart.period
            );
        }
    }

    /// Applies this config's faults that strike during period `t`,
    /// *before* the close: mid-period restarts first (in config order),
    /// then worker kills — so a restart-then-kill composition exercises
    /// a kill inside a freshly restored service.
    pub fn apply_pre_close(&self, mut service: IngestService, t: u64) -> IngestService {
        for restart in &self.restarts {
            if restart.mid_period && restart.period == t {
                service = service
                    .restart()
                    .expect("a service's own snapshot always restores");
            }
        }
        for kill in &self.kills {
            if kill.period == t {
                service.kill_worker(kill.worker);
            }
        }
        service
    }

    /// Applies this config's between-period restarts that strike right
    /// after period `t` closes.
    pub fn apply_post_close(&self, mut service: IngestService, t: u64) -> IngestService {
        for restart in &self.restarts {
            if !restart.mid_period && restart.period == t {
                service = service
                    .restart()
                    .expect("a service's own snapshot always restores");
            }
        }
        service
    }
}

/// One intake message for a worker mailbox. Batches are shared with the
/// journal through an [`Arc`] — submission hands the same allocation to
/// both, so the hot path never deep-copies a batch.
enum WorkerMsg {
    /// Trusted rows: fold into the worker's shard accumulator.
    Reports(Arc<ReportBatch>),
    /// Untrusted frames: buffer for the period-close checked ingestion.
    Frames(Arc<FrameBatch>),
    /// Period-close barrier: ship the shard state back and reset.
    Flush,
}

/// What a worker hands back at every flush barrier.
struct ShardFlush {
    acc: AnyAccumulator,
    frames: FrameBatch,
}

/// A journalled intake batch for the currently open period. Entries
/// share their batch allocation with the in-flight [`WorkerMsg`] (and
/// with every replay clone) — journalling costs one refcount bump, not
/// a deep copy.
#[derive(Clone)]
enum JournalEntry {
    Reports(Arc<ReportBatch>),
    Frames(Arc<FrameBatch>),
}

/// One live ingestion worker: mailbox sender, flush receiver, thread.
struct WorkerSlot {
    tx: Option<Sender<WorkerMsg>>,
    flushes: Receiver<ShardFlush>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WorkerSlot {
    fn spawn(index: usize, mailbox_cap: usize, template: AnyAccumulator) -> Self {
        let (tx, rx) = bounded::<WorkerMsg>(mailbox_cap);
        let (flush_tx, flushes) = unbounded::<ShardFlush>();
        let handle = std::thread::Builder::new()
            .name(format!("rtf-ingest-{index}"))
            .spawn(move || worker_loop(rx, flush_tx, template))
            .expect("spawn ingest worker");
        WorkerSlot {
            tx: Some(tx),
            flushes,
            handle: Some(handle),
        }
    }

    /// Closes the mailbox and joins the thread. The worker drains every
    /// message still queued, then exits on disconnect — its state is
    /// simply never collected again, which is what "crashed" means to
    /// the rest of the service.
    fn stop(&mut self) {
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The worker body: fold trusted rows, buffer untrusted frames, ship
/// both back at every flush barrier.
fn worker_loop(rx: Receiver<WorkerMsg>, out: Sender<ShardFlush>, template: AnyAccumulator) {
    let mut acc = template.fresh_like();
    let mut frames = FrameBatch::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Reports(batch) => batch.fold_into(&mut acc),
            WorkerMsg::Frames(batch) => frames.append(&batch),
            WorkerMsg::Flush => {
                let flush = ShardFlush {
                    acc: std::mem::replace(&mut acc, template.fresh_like()),
                    frames: std::mem::take(&mut frames),
                };
                if out.send(flush).is_err() {
                    break; // service gone mid-flush: nothing left to serve
                }
            }
        }
    }
}

/// Replays one delivery period's merged frame stream (ascending
/// `(emitted, emitter)` — see [`FrameBatch::merge_ordered`]) through the
/// server's checked ingestion path, returning one [`Delivery`] per
/// frame.
///
/// **Duplicate-storm pre-filter:** a stream can only hold more frames
/// than are due at `t` ([`Server::due_at`]) by repeating `(user,
/// period)` pairs, so when it does, repeats are resolved from a memo of
/// this period's verdicts instead of re-walking the roster. Within one
/// close the server's reject classifications are functions of frozen
/// state (`current_t` and roster membership never move between closes,
/// and a rejected frame mutates nothing), with exactly one exception —
/// a `Duplicate` verdict can later become `Late` once the same user's
/// current report is accepted — so every verdict is memoised **except**
/// `Duplicate`, and a repeat of an `Accepted` pair is a `Duplicate` by
/// the server's own rule (`t == last_accepted`). Memoised repeats still
/// land in the delivery log via [`Server::note_delivery`]. The outcome
/// vector and the delivery row are therefore identical to the unfiltered
/// walk, frame for frame; the scenario proptests assert it under
/// adversarial storms.
pub fn replay_frames_checked(server: &mut Server, t: u64, frames: &FrameBatch) -> Vec<Delivery> {
    let mut outcomes = Vec::with_capacity(frames.len());
    let storm = frames.len() as u64 > server.due_at(t);
    let mut seen: HashMap<u64, Delivery> = HashMap::new();
    for frame in frames.iter() {
        let bit = if frame.bit { Sign::Plus } else { Sign::Minus };
        if !storm {
            outcomes.push(server.ingest_checked(frame.user, u64::from(frame.t), bit));
            continue;
        }
        let key = (u64::from(frame.user) << 32) | u64::from(frame.t);
        let outcome = match seen.entry(key) {
            Entry::Occupied(prev) => {
                let o = match *prev.get() {
                    Delivery::Accepted => Delivery::Duplicate,
                    other => other,
                };
                server.note_delivery(o);
                o
            }
            Entry::Vacant(slot) => {
                let o = server.ingest_checked(frame.user, u64::from(frame.t), bit);
                if o != Delivery::Duplicate {
                    slot.insert(o);
                }
                o
            }
        };
        outcomes.push(outcome);
    }
    outcomes
}

/// Aggregate accounting of one service lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Periods closed.
    pub periods: u64,
    /// Intake batches submitted (journal entries written).
    pub batches: u64,
    /// Trusted report rows submitted.
    pub rows: u64,
    /// Untrusted frames submitted.
    pub frames: u64,
    /// Workers killed and recovered.
    pub recoveries: u64,
    /// Journal batches replayed into replacement workers — by
    /// single-worker recovery, by whole-service restarts, and by the
    /// journal-rebuild path of an aborted period close.
    pub replayed_batches: u64,
    /// Cumulative heap bytes of every flushed shard accumulator — the
    /// live counterpart of `EventDrivenOutcome::acc_bytes`.
    pub flushed_acc_bytes: u64,
    /// Whole-service snapshot/restore restarts performed (see
    /// [`IngestService::restart`]) — the proof a configured restart
    /// actually fired.
    pub restarts: u64,
}

/// The result of closing one period.
#[derive(Debug, Clone)]
pub struct PeriodClose {
    /// The period just closed.
    pub t: u64,
    /// The published estimate `â[t]`.
    pub estimate: f64,
    /// The period's untrusted frames in the exact ingestion (sequential
    /// mailbox) order — empty for trusted-only intake.
    pub frames: FrameBatch,
    /// Per-frame classification by the checked ingestion path, parallel
    /// to [`frames`](Self::frames).
    pub outcomes: Vec<Delivery>,
}

/// The long-running streaming ingestion service (see the module docs).
///
/// Owns the [`Server`] for the duration of the run;
/// [`finish`](Self::finish) hands it back with the final accounting.
///
/// # Examples
///
/// Stream trusted rows across two workers, kill one mid-period, and
/// recover it exactly from the journal:
///
/// ```
/// use rtf_core::params::ProtocolParams;
/// use rtf_core::server::Server;
/// use rtf_primitives::sign::Sign;
/// use rtf_runtime::ingest::IngestService;
/// use rtf_runtime::ReportBatch;
///
/// let params = ProtocolParams::new(100, 8, 2, 1.0, 0.05).unwrap();
/// let mut server = Server::for_future_rand(params);
/// for _ in 0..4 {
///     server.register_user(0); // four order-0 clients
/// }
///
/// let mut svc = IngestService::new(server, /* workers */ 2, /* mailbox_cap */ 4);
/// for t in 1..=8u64 {
///     let mut batch = ReportBatch::new();
///     for user in 0..4u32 {
///         batch.push(user, 0, Sign::Plus);
///     }
///     svc.submit_reports((t % 2) as usize, batch);
///     if t == 3 {
///         // Worker 0 dies with un-flushed state; the journal replays it.
///         svc.kill_worker(0);
///     }
///     let close = svc.close_period(t).unwrap();
///     assert!(close.estimate.is_finite());
/// }
/// let (server, stats) = svc.finish();
/// assert_eq!(server.reports_ingested(), 4 * 8);
/// assert_eq!(stats.recoveries, 1);
/// ```
pub struct IngestService {
    /// `Some` until [`finish`](Self::finish) hands the server back.
    server: Option<Server>,
    workers: Vec<WorkerSlot>,
    /// Per-worker delivery log of the currently open period.
    journal: Vec<Vec<JournalEntry>>,
    stats: IngestStats,
    mailbox_cap: usize,
}

impl IngestService {
    /// Starts `workers` ingestion workers (≥ 1; 0 clamps to 1) in front
    /// of `server`, with `mailbox_cap`-batch bounded mailboxes. Worker
    /// shard accumulators inherit the server's storage backend and shape
    /// via [`Server::new_shard`].
    ///
    /// All user registration must already have happened — the service
    /// starts at period 1.
    pub fn new(server: Server, workers: usize, mailbox_cap: usize) -> Self {
        let workers = workers.max(1);
        let mailbox_cap = mailbox_cap.max(1);
        let slots = (0..workers)
            .map(|i| WorkerSlot::spawn(i, mailbox_cap, server.new_shard()))
            .collect();
        IngestService {
            server: Some(server),
            workers: slots,
            journal: vec![Vec::new(); workers],
            stats: IngestStats::default(),
            mailbox_cap,
        }
    }

    fn server_mut(&mut self) -> &mut Server {
        self.server.as_mut().expect("service not finished")
    }

    fn server_ref(&self) -> &Server {
        self.server.as_ref().expect("service not finished")
    }

    /// Number of ingestion workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The bounded mailbox capacity, in batches.
    pub fn mailbox_cap(&self) -> usize {
        self.mailbox_cap
    }

    /// The accounting so far.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Streams one trusted report batch into worker `worker`'s mailbox,
    /// journalling it first. **Blocks while the mailbox is full** — the
    /// backpressure contract: producers stall, batches are never dropped.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn submit_reports(&mut self, worker: usize, batch: ReportBatch) {
        self.stats.batches += 1;
        self.stats.rows += batch.len() as u64;
        let batch = Arc::new(batch);
        self.journal[worker].push(JournalEntry::Reports(Arc::clone(&batch)));
        self.send(worker, WorkerMsg::Reports(batch));
    }

    /// Streams one untrusted frame batch into worker `worker`'s mailbox,
    /// journalling it first. Same blocking backpressure contract as
    /// [`submit_reports`](Self::submit_reports).
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn submit_frames(&mut self, worker: usize, batch: FrameBatch) {
        self.stats.batches += 1;
        self.stats.frames += batch.len() as u64;
        let batch = Arc::new(batch);
        self.journal[worker].push(JournalEntry::Frames(Arc::clone(&batch)));
        self.send(worker, WorkerMsg::Frames(batch));
    }

    fn send(&self, worker: usize, msg: WorkerMsg) {
        let tx = self.workers[worker]
            .tx
            .as_ref()
            .expect("worker mailbox open");
        assert!(tx.send(msg).is_ok(), "ingest worker {worker} disconnected");
    }

    /// Closes period `t`: barriers every worker, absorbs the flushed
    /// shard accumulators and replays the merged frame mailbox through
    /// the checked ingestion path (both in deterministic order), then
    /// finalises `â[t]` and truncates the journals.
    ///
    /// # Errors
    /// Returns [`AccumulatorError`] if a flushed shard does not match the
    /// server's backend/shape (impossible unless the service is misused —
    /// shards are cut from the server itself). The failure is
    /// **transactional**: every shard is validated *before* any frame is
    /// classified or any accumulator merged, and the open period's
    /// journals are replayed into the (barrier-reset) workers, so on
    /// `Err` the service is exactly where it was before the call —
    /// journals intact, delivery log untouched, stats unadvanced.
    ///
    /// # Panics
    /// Panics like `Server::end_of_period` if `t` is out of order.
    pub fn close_period(&mut self, t: u64) -> Result<PeriodClose, AccumulatorError> {
        // Barrier: one flush marker per mailbox. Workers drain in FIFO
        // order, so everything submitted for this period lands before the
        // marker.
        for w in 0..self.workers.len() {
            self.send(w, WorkerMsg::Flush);
        }
        // Collect in worker index order — the deterministic merge order.
        let mut shard_accs = Vec::with_capacity(self.workers.len());
        let mut shard_frames = Vec::with_capacity(self.workers.len());
        for slot in &self.workers {
            let flush = slot
                .flushes
                .recv()
                .expect("ingest worker answered the flush barrier");
            shard_accs.push(flush.acc);
            shard_frames.push(flush.frames);
        }

        // Validate every shard before mutating ANY state — otherwise a
        // bad shard would abort a close that had already pushed frames
        // through the checked path and reset the workers, leaving the
        // journal claiming traffic the server half-consumed.
        let server = self.server.as_ref().expect("service not finished");
        if let Err(err) = shard_accs
            .iter()
            .try_for_each(|shard| server.validate_shard(shard))
        {
            // The flush barrier already reset the workers; rebuild their
            // open-period state from the journal (exactly the kill_worker
            // recovery path) so the service is coherent after the abort.
            for w in 0..self.workers.len() {
                for i in 0..self.journal[w].len() {
                    self.stats.replayed_batches += 1;
                    let msg = match &self.journal[w][i] {
                        JournalEntry::Reports(b) => WorkerMsg::Reports(b.clone()),
                        JournalEntry::Frames(b) => WorkerMsg::Frames(b.clone()),
                    };
                    self.send(w, msg);
                }
            }
            return Err(err);
        }

        // Untrusted traffic first: reconstruct the sequential mailbox
        // order across shards and classify every frame (with the
        // duplicate-storm pre-filter when the stream is oversubscribed).
        let frames = FrameBatch::merge_ordered(shard_frames.iter());
        let server = self.server_mut();
        let outcomes = replay_frames_checked(server, t, &frames);

        let estimate = server
            .close_period_with_shards(t, shard_accs.iter())
            .expect("every shard validated before the merge");
        for shard in &shard_accs {
            self.stats.flushed_acc_bytes += shard.heap_bytes() as u64;
        }
        for entries in &mut self.journal {
            entries.clear();
        }
        self.stats.periods += 1;
        Ok(PeriodClose {
            t,
            estimate,
            frames,
            outcomes,
        })
    }

    /// Kills worker `worker % workers()` mid-period and recovers it: the
    /// thread is abandoned along with **all** of its un-flushed state
    /// (folded accumulator, buffered frames, queued mailbox), a
    /// replacement is spawned, and the open period's journal is replayed
    /// into it. Folding is deterministic, so the replacement's next
    /// flush is bit-identical to what the dead worker would have
    /// produced.
    ///
    /// The index is taken modulo the worker count — matching the
    /// documented [`WorkerKill`] contract, so every caller can pass a
    /// raw configured index without its own wrap-around copy.
    pub fn kill_worker(&mut self, worker: usize) {
        let worker = worker % self.workers.len();
        self.workers[worker].stop();
        let template = self.server_mut().new_shard();
        self.workers[worker] = WorkerSlot::spawn(worker, self.mailbox_cap, template);
        self.stats.recoveries += 1;
        // Replay the delivery log. Clones go to the mailbox; the journal
        // keeps its entries in case this worker dies again before the
        // period closes.
        for i in 0..self.journal[worker].len() {
            self.stats.replayed_batches += 1;
            let msg = match &self.journal[worker][i] {
                JournalEntry::Reports(b) => WorkerMsg::Reports(b.clone()),
                JournalEntry::Frames(b) => WorkerMsg::Frames(b.clone()),
            };
            self.send(worker, msg);
        }
    }

    /// Serializes the whole service — worker count, mailbox capacity,
    /// accounting, the complete server state, and every open-period
    /// journal — into versioned, checksummed snapshot bytes.
    ///
    /// The un-flushed in-worker state is deliberately *not* serialized:
    /// between closes it is a pure deterministic function of the
    /// journals, so [`restore`](Self::restore) rebuilds it by replay.
    /// Snapshotting is non-destructive and deterministic: equal service
    /// states produce equal bytes, and a restored service re-snapshots
    /// to exactly the bytes it was restored from.
    pub fn snapshot(&self) -> Vec<u8> {
        // The header records the seed schema the clients that fed this
        // server were running — resuming under a different schema is a
        // typed error, never a silent divergence.
        let mut w = SnapWriter::for_schema(self.server_ref().seed_schema());
        w.usize(self.workers.len());
        w.usize(self.mailbox_cap);
        let s = &self.stats;
        for v in [
            s.periods,
            s.batches,
            s.rows,
            s.frames,
            s.recoveries,
            s.replayed_batches,
            s.flushed_acc_bytes,
            s.restarts,
        ] {
            w.u64(v);
        }
        self.server
            .as_ref()
            .expect("service not finished")
            .write_snapshot(&mut w);
        for entries in &self.journal {
            w.usize(entries.len());
            for entry in entries {
                match entry {
                    JournalEntry::Reports(b) => {
                        w.u8(0);
                        b.write_state(&mut w);
                    }
                    JournalEntry::Frames(b) => {
                        w.u8(1);
                        b.write_state(&mut w);
                    }
                }
            }
        }
        w.finish()
    }

    /// Rebuilds a service from [`snapshot`](Self::snapshot) bytes — in
    /// this process or a completely fresh one. Fresh workers are spawned
    /// and the open period's journals are replayed into their mailboxes
    /// (without re-journalling), so the first subsequent
    /// [`close_period`](Self::close_period) flushes exactly what the
    /// snapshotted workers would have: recovery is bit-identical.
    ///
    /// Restoring is pure state reconstruction — stats are restored
    /// verbatim, so `restore(snapshot())` re-snapshots byte-identically.
    /// Use [`restart`](Self::restart) to also account the event.
    ///
    /// # Errors
    /// A typed [`SnapshotError`] for anything malformed: truncated or
    /// corrupted bytes, a foreign file, an unsupported format version,
    /// or any violated structural invariant. Never panics on bad bytes.
    pub fn restore(bytes: &[u8]) -> Result<IngestService, SnapshotError> {
        let mut r = SnapReader::new(bytes)?;
        let workers = r.usize()?;
        if workers == 0 {
            return Err(SnapshotError::Corrupt("service has no workers"));
        }
        if workers > 65_536 {
            return Err(SnapshotError::Corrupt("implausible worker count"));
        }
        let mailbox_cap = r.usize()?;
        if mailbox_cap == 0 {
            return Err(SnapshotError::Corrupt("zero mailbox capacity"));
        }
        let stats = IngestStats {
            periods: r.u64()?,
            batches: r.u64()?,
            rows: r.u64()?,
            frames: r.u64()?,
            recoveries: r.u64()?,
            replayed_batches: r.u64()?,
            flushed_acc_bytes: r.u64()?,
            restarts: r.u64()?,
        };
        let server = Server::read_snapshot(&mut r)?;
        let mut journal = Vec::with_capacity(workers);
        for _ in 0..workers {
            let entries_len = r.len(1)?;
            let mut entries = Vec::with_capacity(entries_len);
            for _ in 0..entries_len {
                entries.push(match r.u8()? {
                    0 => JournalEntry::Reports(Arc::new(ReportBatch::read_state(&mut r)?)),
                    1 => JournalEntry::Frames(Arc::new(FrameBatch::read_state(&mut r)?)),
                    _ => return Err(SnapshotError::Corrupt("unknown journal entry tag")),
                });
            }
            journal.push(entries);
        }
        r.finish()?;
        let slots = (0..workers)
            .map(|i| WorkerSlot::spawn(i, mailbox_cap, server.new_shard()))
            .collect();
        let service = IngestService {
            server: Some(server),
            workers: slots,
            journal,
            stats,
            mailbox_cap,
        };
        // Rebuild the open period inside the fresh workers. The entries
        // stay journalled (they are still un-flushed), so a later kill
        // or second restart replays them again.
        for (w, entries) in service.journal.iter().enumerate() {
            for entry in entries {
                let msg = match entry {
                    JournalEntry::Reports(b) => WorkerMsg::Reports(b.clone()),
                    JournalEntry::Frames(b) => WorkerMsg::Frames(b.clone()),
                };
                service.send(w, msg);
            }
        }
        Ok(service)
    }

    /// Kills and relaunches the whole service in place:
    /// [`snapshot`](Self::snapshot), tear everything down, then
    /// [`restore`](Self::restore) — the in-process equivalent of a
    /// process crash between or during periods. The event is surfaced in
    /// [`IngestStats::restarts`], and the journal batches the restore
    /// replayed are counted in [`IngestStats::replayed_batches`], so a
    /// chaos schedule can assert every configured restart actually
    /// fired.
    ///
    /// # Errors
    /// A [`SnapshotError`] only if the snapshot/restore roundtrip itself
    /// is broken — which the proptests prove it is not.
    pub fn restart(self) -> Result<IngestService, SnapshotError> {
        let bytes = self.snapshot();
        let replayed: u64 = self.journal.iter().map(|j| j.len() as u64).sum();
        drop(self); // every worker thread joins; nothing survives
        let mut service = IngestService::restore(&bytes)?;
        service.stats.restarts += 1;
        service.stats.replayed_batches += replayed;
        Ok(service)
    }

    /// Writes [`snapshot`](Self::snapshot) bytes to `dir/name`, creating
    /// `dir` if needed, and returns the full path.
    ///
    /// # Errors
    /// Any I/O error from creating the directory or writing the file.
    pub fn write_snapshot_to(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(name);
        std::fs::write(&path, self.snapshot())?;
        Ok(path)
    }

    /// [`write_snapshot_to`](Self::write_snapshot_to) into the
    /// `RTF_SNAPSHOT_DIR` directory; returns `Ok(None)` without touching
    /// the filesystem when the variable is unset or empty.
    ///
    /// # Errors
    /// Any I/O error from the underlying write.
    pub fn write_snapshot_file(&self, name: &str) -> std::io::Result<Option<PathBuf>> {
        match snapshot_dir_from_env() {
            Some(dir) => self.write_snapshot_to(&dir, name).map(Some),
            None => Ok(None),
        }
    }

    /// Restores a service from a snapshot file written by
    /// [`write_snapshot_to`](Self::write_snapshot_to) /
    /// [`write_snapshot_file`](Self::write_snapshot_file).
    ///
    /// # Errors
    /// [`SnapshotFileError::Io`] if the file cannot be read,
    /// [`SnapshotFileError::Snapshot`] if its bytes are rejected — in
    /// particular [`SnapshotError::SchemaMismatch`] when the snapshot was
    /// taken under a different seed schema than the one this process is
    /// configured to run (`RTF_SEED_SCHEMA`): a v1 snapshot must never
    /// silently resume under v2, or vice versa.
    pub fn restore_from_file(path: &Path) -> Result<IngestService, SnapshotFileError> {
        let bytes = std::fs::read(path)?;
        SnapReader::new(&bytes)?.expect_schema(SeedSchema::from_env())?;
        Ok(IngestService::restore(&bytes)?)
    }

    /// Stops every worker and hands back the server with the final
    /// accounting.
    pub fn finish(mut self) -> (Server, IngestStats) {
        for slot in &mut self.workers {
            slot.stop();
        }
        let stats = self.stats;
        // `self` still drops afterwards; `stop` is idempotent and the
        // server slot is simply empty by then.
        let server = self.server.take().expect("service finished once");
        (server, stats)
    }
}

impl Drop for IngestService {
    fn drop(&mut self) {
        for slot in &mut self.workers {
            slot.stop();
        }
    }
}

/// The snapshot directory selected by the `RTF_SNAPSHOT_DIR` environment
/// variable; `None` when unset or empty (file-backed snapshotting off).
pub fn snapshot_dir_from_env() -> Option<PathBuf> {
    match std::env::var("RTF_SNAPSHOT_DIR") {
        Ok(dir) if !dir.trim().is_empty() => Some(PathBuf::from(dir)),
        _ => None,
    }
}

/// Why a file-backed snapshot restore failed: the file itself, or its
/// contents.
#[derive(Debug)]
pub enum SnapshotFileError {
    /// The snapshot file could not be read.
    Io(std::io::Error),
    /// The file's bytes were rejected by the snapshot parser.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for SnapshotFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotFileError::Io(e) => write!(f, "reading snapshot file: {e}"),
            SnapshotFileError::Snapshot(e) => write!(f, "parsing snapshot file: {e}"),
        }
    }
}

impl std::error::Error for SnapshotFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotFileError::Io(e) => Some(e),
            SnapshotFileError::Snapshot(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for SnapshotFileError {
    fn from(e: std::io::Error) -> Self {
        SnapshotFileError::Io(e)
    }
}

impl From<SnapshotError> for SnapshotFileError {
    fn from(e: SnapshotError) -> Self {
        SnapshotFileError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_core::accumulator::AccumulatorKind;
    use rtf_core::params::ProtocolParams;

    fn params() -> ProtocolParams {
        ProtocolParams::new(100, 8, 2, 1.0, 0.05).unwrap()
    }

    /// A trusted server with `users` order-0 clients registered.
    fn trusted_server(users: usize, backend: AccumulatorKind) -> Server {
        let mut server = Server::for_future_rand_with(params(), backend);
        for _ in 0..users {
            server.register_user(0);
        }
        server
    }

    /// A deterministic report batch for one period.
    fn batch_for(t: u64, users: std::ops::Range<u32>) -> ReportBatch {
        let mut batch = ReportBatch::new();
        for u in users {
            let sign = if (u as u64 + t) % 3 == 0 {
                Sign::Minus
            } else {
                Sign::Plus
            };
            batch.push(u, 0, sign);
        }
        batch
    }

    /// Reference: the same traffic pushed straight through a server.
    fn reference_estimates(backend: AccumulatorKind) -> Vec<f64> {
        let mut server = trusted_server(12, backend);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            let batch = batch_for(t, 0..12);
            let mut shard = server.new_shard();
            batch.fold_into(&mut shard);
            server.absorb_shard(&shard).unwrap();
            estimates.push(server.end_of_period(t));
        }
        estimates
    }

    #[test]
    fn streamed_intake_matches_direct_ingestion_on_every_backend() {
        for backend in AccumulatorKind::ALL {
            let expect = reference_estimates(backend);
            for workers in [1usize, 2, 5] {
                let server = trusted_server(12, backend);
                let mut svc = IngestService::new(server, workers, 4);
                let mut estimates = Vec::new();
                for t in 1..=8u64 {
                    // Rows split arbitrarily across workers and chunks —
                    // the shard sums commute exactly.
                    for (w, span) in [(0usize, 0u32..5), (workers - 1, 5..12)] {
                        svc.submit_reports(w, batch_for(t, span));
                    }
                    estimates.push(svc.close_period(t).unwrap().estimate);
                }
                assert_eq!(estimates, expect, "{backend}, {workers} workers");
                let (server, stats) = svc.finish();
                assert_eq!(server.reports_ingested(), 12 * 8);
                assert_eq!(stats.periods, 8);
                assert_eq!(stats.rows, 12 * 8);
                assert_eq!(stats.recoveries, 0);
            }
        }
    }

    #[test]
    fn tiny_mailboxes_stall_producers_without_changing_values() {
        // cap = 1: every second submit must wait for the worker to drain
        // the first. The values are identical to the uncontended run.
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 1);
        assert_eq!(svc.mailbox_cap(), 1);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            // Many small chunks through few mailbox slots.
            for u in 0..12u32 {
                svc.submit_reports((u % 2) as usize, batch_for(t, u..u + 1));
            }
            estimates.push(svc.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect);
        assert_eq!(svc.stats().batches, 12 * 8);
    }

    #[test]
    fn killed_worker_recovers_exactly_from_the_journal() {
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 3, 2);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            svc.submit_reports(0, batch_for(t, 0..4));
            svc.submit_reports(1, batch_for(t, 4..8));
            svc.submit_reports(2, batch_for(t, 8..12));
            if t == 4 {
                // Mid-period kill: worker 1 has (maybe) folded its batch;
                // the replacement must replay it from the journal.
                svc.kill_worker(1);
            }
            estimates.push(svc.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect, "recovery must be exact");
        let (_, stats) = svc.finish();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.replayed_batches, 1, "one open-period batch replayed");
    }

    #[test]
    fn double_kill_in_one_period_still_recovers() {
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 2);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            svc.submit_reports(0, batch_for(t, 0..3));
            if t == 2 {
                svc.kill_worker(0); // replays 1 batch
            }
            svc.submit_reports(0, batch_for(t, 3..6));
            if t == 2 {
                svc.kill_worker(0); // replays 2 batches
            }
            svc.submit_reports(1, batch_for(t, 6..12));
            estimates.push(svc.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect);
        let (_, stats) = svc.finish();
        assert_eq!(stats.recoveries, 2);
        assert_eq!(stats.replayed_batches, 3);
    }

    #[test]
    fn frame_intake_replays_the_merged_mailbox_through_the_checked_path() {
        use crate::batch::Frame;
        // Two registered order-0 users reporting through frames; a junk
        // frame must classify, not panic. Frames scattered across workers
        // must ingest in (emitted, emitter) order.
        let mut server = Server::for_future_rand_with(params(), AccumulatorKind::Dense);
        assert!(server.register_client(0, 0));
        assert!(server.register_client(1, 0));
        let mut svc = IngestService::new(server, 2, 4);
        let mut w0 = FrameBatch::new();
        let mut w1 = FrameBatch::new();
        w1.push(Frame {
            emitted: 1,
            emitter: 1,
            user: 1,
            t: 1,
            bit: false,
            byzantine: false,
        });
        w0.push(Frame {
            emitted: 1,
            emitter: 0,
            user: 0,
            t: 1,
            bit: true,
            byzantine: false,
        });
        // A fabrication from an unregistered id.
        w0.push(Frame {
            emitted: 1,
            emitter: 7,
            user: 99,
            t: 1,
            bit: true,
            byzantine: true,
        });
        svc.submit_frames(0, w0);
        svc.submit_frames(1, w1);
        let close = svc.close_period(1).unwrap();
        let order: Vec<u32> = close.frames.iter().map(|f| f.emitter).collect();
        assert_eq!(order, vec![0, 1, 7], "merged mailbox order");
        assert_eq!(
            close.outcomes,
            vec![
                Delivery::Accepted,
                Delivery::Accepted,
                Delivery::UnknownUser
            ]
        );
        let (server, stats) = svc.finish();
        assert_eq!(server.delivery_log()[0].accepted, 2);
        assert_eq!(server.delivery_log()[0].unknown_user, 1);
        assert_eq!(stats.frames, 3);
    }

    #[test]
    fn dropping_an_unfinished_service_does_not_hang() {
        let server = trusted_server(4, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 1);
        svc.submit_reports(0, batch_for(1, 0..4));
        drop(svc); // workers drain and exit on mailbox disconnect
    }

    #[test]
    fn mailbox_cap_parsing() {
        assert_eq!(parse_mailbox_cap(None), DEFAULT_MAILBOX_CAP);
        assert_eq!(parse_mailbox_cap(Some("")), DEFAULT_MAILBOX_CAP);
        assert_eq!(parse_mailbox_cap(Some("  ")), DEFAULT_MAILBOX_CAP);
        assert_eq!(parse_mailbox_cap(Some("7")), 7);
        assert_eq!(parse_mailbox_cap(Some(" 42 ")), 42);
        assert_eq!(parse_mailbox_cap(Some("0")), 1, "0 clamps to 1");
        assert!(std::panic::catch_unwind(|| parse_mailbox_cap(Some("lots"))).is_err());
    }

    #[test]
    fn live_config_builders() {
        let cfg = LiveConfig::new(0);
        assert_eq!(cfg.workers, 1, "0 workers clamps to 1");
        assert!(cfg.kills.is_empty());
        assert!(cfg.restarts.is_empty());
        assert_eq!(cfg.fault_count(), 0);
        let cfg = LiveConfig::new(4)
            .with_mailbox_cap(0)
            .with_chunk_rows(0)
            .with_kill(2, 9)
            .with_kill(0, 3)
            .with_restart(5)
            .with_restart_after(7);
        assert_eq!(cfg.mailbox_cap, 1);
        assert_eq!(cfg.chunk_rows, 1);
        assert_eq!(
            cfg.kills,
            vec![
                WorkerKill {
                    worker: 2,
                    period: 9
                },
                WorkerKill {
                    worker: 0,
                    period: 3
                }
            ]
        );
        assert_eq!(
            cfg.restarts,
            vec![
                ServiceRestart {
                    period: 5,
                    mid_period: true
                },
                ServiceRestart {
                    period: 7,
                    mid_period: false
                }
            ]
        );
        assert_eq!(cfg.fault_count(), 4);
    }

    #[test]
    fn off_horizon_faults_fail_validation_loudly() {
        // A fault period past the horizon (or zero) would silently never
        // fire, making a chaos test vacuous — validation must catch it.
        LiveConfig::new(2).with_kill(0, 8).validate_for_horizon(8);
        LiveConfig::new(2).with_restart(1).validate_for_horizon(8);
        for bad in [
            LiveConfig::new(2).with_kill(0, 9),
            LiveConfig::new(2).with_kill(0, 0),
            LiveConfig::new(2).with_restart(99),
            LiveConfig::new(2).with_restart_after(0),
        ] {
            let caught = std::panic::catch_unwind(|| bad.validate_for_horizon(8));
            assert!(caught.is_err(), "fault config {bad:?} must be rejected");
        }
    }

    #[test]
    fn kill_worker_wraps_out_of_range_indices() {
        // The WorkerKill contract says "taken modulo the worker count";
        // kill_worker itself must honor it instead of panicking.
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 3, 2);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            svc.submit_reports(0, batch_for(t, 0..6));
            svc.submit_reports(2, batch_for(t, 6..12));
            if t == 3 {
                svc.kill_worker(5); // 5 % 3 = worker 2, which holds a batch
            }
            estimates.push(svc.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect);
        let (_, stats) = svc.finish();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.replayed_batches, 1);
    }

    #[test]
    fn failed_close_aborts_cleanly_and_the_service_recovers() {
        use rtf_core::accumulator::AccumulatorError;
        // Force the AccumulatorError path: replace worker 0 with one
        // whose shard template is a foreign backend, so its flush cannot
        // merge into the dense server.
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 4);
        svc.workers[0] = WorkerSlot::spawn(0, 4, AccumulatorKind::Fixed.new_accumulator(4));
        svc.submit_reports(0, batch_for(1, 0..6));
        svc.submit_reports(1, batch_for(1, 6..12));

        let err = svc.close_period(1).unwrap_err();
        assert_eq!(
            err,
            AccumulatorError::BackendMismatch {
                expected: AccumulatorKind::Dense,
                got: AccumulatorKind::Fixed
            }
        );
        // The abort must be clean: nothing closed, nothing ingested,
        // journals still hold the open period.
        assert_eq!(svc.stats().periods, 0);
        assert_eq!(svc.stats().flushed_acc_bytes, 0);
        assert_eq!(svc.journal[0].len(), 1, "journal not truncated on abort");
        assert_eq!(svc.journal[1].len(), 1, "journal not truncated on abort");
        {
            let server = svc.server.as_ref().unwrap();
            assert!(server.estimates().is_empty(), "no period closed");
            assert_eq!(server.reports_ingested(), 0, "no frame/shard consumed");
            assert!(server.delivery_log().is_empty());
        }

        // kill_worker replaces the poisoned worker with a proper shard
        // and replays the journal; the close then succeeds and the whole
        // horizon completes value-for-value with the reference.
        svc.kill_worker(0);
        let mut estimates = vec![svc.close_period(1).unwrap().estimate];
        for t in 2..=8u64 {
            svc.submit_reports(0, batch_for(t, 0..6));
            svc.submit_reports(1, batch_for(t, 6..12));
            estimates.push(svc.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect, "service coherent after aborted close");
        let (_, stats) = svc.finish();
        assert_eq!(stats.periods, 8);
        assert_eq!(stats.recoveries, 1);
    }

    #[test]
    fn snapshot_restore_roundtrips_mid_period_on_every_backend() {
        for backend in AccumulatorKind::ALL {
            let expect = reference_estimates(backend);
            let server = trusted_server(12, backend);
            let mut svc = IngestService::new(server, 2, 3);
            let mut estimates = Vec::new();
            for t in 1..=3u64 {
                svc.submit_reports(0, batch_for(t, 0..6));
                svc.submit_reports(1, batch_for(t, 6..12));
                estimates.push(svc.close_period(t).unwrap().estimate);
            }
            // Period 4 is open with un-flushed traffic when we snapshot.
            svc.submit_reports(0, batch_for(4, 0..6));
            svc.submit_reports(1, batch_for(4, 6..12));
            let bytes = svc.snapshot();
            drop(svc); // the "process" dies mid-period

            let mut restored = IngestService::restore(&bytes).unwrap();
            assert_eq!(
                restored.snapshot(),
                bytes,
                "{backend}: restore must re-snapshot byte-identically"
            );
            for t in 4..=8u64 {
                if t > 4 {
                    restored.submit_reports(0, batch_for(t, 0..6));
                    restored.submit_reports(1, batch_for(t, 6..12));
                }
                estimates.push(restored.close_period(t).unwrap().estimate);
            }
            assert_eq!(estimates, expect, "{backend}: exact recovery");
            let (server, stats) = restored.finish();
            assert_eq!(server.reports_ingested(), 12 * 8, "{backend}");
            assert_eq!(stats.periods, 8, "{backend}");
        }
    }

    #[test]
    fn restart_in_place_is_exact_and_accounted() {
        let expect = reference_estimates(AccumulatorKind::Dense);
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 3, 2);
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            svc.submit_reports(0, batch_for(t, 0..4));
            svc.submit_reports(1, batch_for(t, 4..8));
            svc.submit_reports(2, batch_for(t, 8..12));
            if t == 5 {
                svc = svc.restart().unwrap(); // worst moment: mid-period
            }
            estimates.push(svc.close_period(t).unwrap().estimate);
            if t == 6 {
                svc = svc.restart().unwrap(); // between periods too
            }
        }
        assert_eq!(estimates, expect, "restarted run must be exact");
        let (_, stats) = svc.finish();
        assert_eq!(stats.restarts, 2);
        assert_eq!(
            stats.replayed_batches, 3,
            "mid-period restart replays the open period's 3 batches; the \
             between-periods restart has nothing to replay"
        );
        assert_eq!(stats.recoveries, 0, "restarts are not worker kills");
        assert_eq!(stats.periods, 8);
        assert_eq!(stats.rows, 12 * 8);
    }

    #[test]
    fn restore_rejects_malformed_bytes_with_typed_errors() {
        use rtf_core::snapshot::SnapshotError;
        assert_eq!(
            IngestService::restore(b"not a snapshot").err().unwrap(),
            SnapshotError::BadMagic
        );
        let server = trusted_server(4, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 2);
        svc.submit_reports(0, batch_for(1, 0..4));
        let bytes = svc.snapshot();
        // Truncation at any point fails (checksum or header).
        for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
            assert!(
                IngestService::restore(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // A future format version is named, not guessed at.
        let mut vers = bytes.clone();
        vers[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(
            IngestService::restore(&vers).err().unwrap(),
            SnapshotError::UnsupportedVersion { found: 7 }
        );
        // Every single-bit corruption of the payload is caught.
        let mut evil = bytes.clone();
        evil[bytes.len() / 2] ^= 0x10;
        assert!(IngestService::restore(&evil).is_err());
        // The pristine bytes still restore.
        let restored = IngestService::restore(&bytes).unwrap();
        assert_eq!(restored.workers(), 2);
    }

    #[test]
    fn service_snapshots_record_the_seed_schema_and_guard_cross_schema_resume() {
        // The snapshot header carries the schema of the server inside the
        // service; a resume path expecting the other schema gets a typed
        // SchemaMismatch, never a silent continuation.
        for (schema, other) in [
            (SeedSchema::V1Std, SeedSchema::V2Fast),
            (SeedSchema::V2Fast, SeedSchema::V1Std),
        ] {
            let mut server =
                Server::for_future_rand_schema(params(), AccumulatorKind::Dense, schema);
            for _ in 0..4 {
                server.register_user(0);
            }
            let mut svc = IngestService::new(server, 2, 2);
            svc.submit_reports(0, batch_for(1, 0..4));
            let bytes = svc.snapshot();

            let r = SnapReader::new(&bytes).unwrap();
            assert_eq!(r.schema(), schema);
            assert_eq!(
                r.expect_schema(other).err().unwrap(),
                SnapshotError::SchemaMismatch {
                    found: schema,
                    expected: other,
                }
            );

            // Schema-faithful restore: the header wins, and the restored
            // service re-snapshots byte-identically (same header).
            let restored = IngestService::restore(&bytes).unwrap();
            assert_eq!(restored.server_ref().seed_schema(), schema);
            assert_eq!(restored.snapshot(), bytes);
        }
    }

    #[test]
    fn file_backed_snapshots_roundtrip_via_explicit_dir() {
        // Exercises the file layer through write_snapshot_to (the
        // explicit-directory core of the RTF_SNAPSHOT_DIR convenience;
        // the env wrapper is not driven here because env mutation races
        // parallel test threads).
        let expect = reference_estimates(AccumulatorKind::Dense);
        let dir = std::env::temp_dir().join(format!("rtf-snap-test-{}", std::process::id()));
        let server = trusted_server(12, AccumulatorKind::Dense);
        let mut svc = IngestService::new(server, 2, 2);
        for t in 1..=4u64 {
            svc.submit_reports(0, batch_for(t, 0..6));
            svc.submit_reports(1, batch_for(t, 6..12));
            svc.close_period(t).unwrap();
        }
        let path = svc.write_snapshot_to(&dir, "mid-horizon.rtfsnap").unwrap();
        drop(svc);

        let mut restored = IngestService::restore_from_file(&path).unwrap();
        let mut estimates = Vec::new();
        for t in 5..=8u64 {
            restored.submit_reports(0, batch_for(t, 0..6));
            restored.submit_reports(1, batch_for(t, 6..12));
            estimates.push(restored.close_period(t).unwrap().estimate);
        }
        assert_eq!(estimates, expect[4..], "resumed from disk exactly");

        // Missing files and corrupt files surface as typed errors.
        assert!(matches!(
            IngestService::restore_from_file(&dir.join("absent.rtfsnap")),
            Err(SnapshotFileError::Io(_))
        ));
        std::fs::write(dir.join("junk.rtfsnap"), b"junk").unwrap();
        assert!(matches!(
            IngestService::restore_from_file(&dir.join("junk.rtfsnap")),
            Err(SnapshotFileError::Snapshot(SnapshotError::BadMagic))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_dir_env_parsing_is_the_only_env_touchpoint() {
        // Read-only check of the parser contract (set/remove_var would
        // race other tests): whatever the ambient value, the function
        // returns None exactly when the variable is unset or blank.
        let ambient = std::env::var("RTF_SNAPSHOT_DIR").ok();
        let parsed = snapshot_dir_from_env();
        match ambient {
            None => assert!(parsed.is_none()),
            Some(v) if v.trim().is_empty() => assert!(parsed.is_none()),
            Some(v) => assert_eq!(parsed, Some(std::path::PathBuf::from(v))),
        }
    }
}
