//! Exact variance prediction for the protocol's estimates.
//!
//! Beyond unbiasedness, the estimator's *second* moment is predictable in
//! closed form, which pins the entire pipeline (sampling, randomizer,
//! scaling, aggregation) far more tightly than error bounds do.
//!
//! For user `u` and period `t`, the contribution
//! `Y_u = Σ_{I ∈ C(t)} z_u[I]` is non-zero for at most one interval (the
//! one whose order matches `h_u`), where it equals `±scale(h)` with
//! `scale(h) = (1 + log d)/c_gap(h)`. Therefore, exactly,
//!
//! ```text
//! E[Y_u²] = Σ_{h ∈ orders(C(t))} scale(h)² / (1 + log d)
//! Var[Y_u] = E[Y_u²] − st_u[t]²     (E[Y_u] = st_u[t] by unbiasedness)
//! ```
//!
//! and `Var[â[t]] = Σ_u Var[Y_u]` by independence across users. The
//! [`predicted_variance`] function evaluates this; tests (and the T8-style
//! experiments) check the empirical variance against it.

use rtf_core::gap::WeightClassLaw;
use rtf_core::params::ProtocolParams;
use rtf_streams::population::Population;

/// The per-order scales `(1 + log d)/c_gap(h)` of the FutureRand
/// protocol's estimator (paper parameterisation).
pub fn future_rand_scales(params: &ProtocolParams) -> Vec<f64> {
    let factor = 1.0 + f64::from(params.log_d());
    (0..params.num_orders())
        .map(|h| {
            factor / WeightClassLaw::for_protocol(params.k_for_order(h), params.epsilon()).c_gap()
        })
        .collect()
}

/// Exact `Var[â[t]]` for every `t`, for a concrete population (the
/// variance is over the protocol's randomness: order sampling, the
/// randomizers, and the report bits).
pub fn predicted_variance(params: &ProtocolParams, population: &Population) -> Vec<f64> {
    let scales = future_rand_scales(params);
    let orders_f = 1.0 + f64::from(params.log_d());
    let d = params.d();
    // Per-period second moment of one user's contribution: depends only
    // on which orders appear in C(t) (the set bits of t).
    let mut e_y2 = vec![0.0f64; d as usize];
    for (t, slot) in e_y2.iter_mut().enumerate() {
        let tt = (t + 1) as u64;
        let mut sum = 0.0;
        for (h, scale) in scales.iter().enumerate() {
            if tt & (1 << h) != 0 {
                sum += scale * scale;
            }
        }
        *slot = sum / orders_f;
    }
    // Var[â[t]] = Σ_u (E[Y²] − st_u[t]²) = n·E[Y²] − Σ_u st_u[t]
    // (st ∈ {0,1} so st² = st, and Σ_u st_u[t] = a[t]).
    let n = params.n() as f64;
    e_y2.iter()
        .zip(population.true_counts())
        .map(|(&m2, &a_t)| n * m2 - a_t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_primitives::seeding::SeedSequence;
    use rtf_sim::aggregate::run_future_rand_aggregate;
    use rtf_streams::generator::UniformChanges;

    #[test]
    fn empirical_variance_matches_prediction() {
        // The strongest pipeline check we have: the measured Var[â[t]]
        // must match the closed form at every period.
        let n = 400usize;
        let d = 16u64;
        let k = 3usize;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(70).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        let predicted = predicted_variance(&params, &pop);

        let trials = 1_500u64;
        let mut mean = vec![0.0f64; d as usize];
        let mut m2 = vec![0.0f64; d as usize];
        for s in 0..trials {
            let o = run_future_rand_aggregate(&params, &pop, 9_000 + s);
            for (t, &e) in o.estimates().iter().enumerate() {
                mean[t] += e;
                m2[t] += e * e;
            }
        }
        for t in 0..d as usize {
            let m = mean[t] / trials as f64;
            let var = m2[t] / trials as f64 - m * m;
            // Sample variance of a (roughly normal) statistic has relative
            // sd ≈ √(2/trials) ≈ 3.7%; allow 6σ ≈ 22%.
            let rel = (var - predicted[t]).abs() / predicted[t];
            assert!(
                rel < 0.22,
                "t={}: empirical var {var:.3e} vs predicted {:.3e} (rel {rel:.3})",
                t + 1,
                predicted[t]
            );
        }
    }

    #[test]
    fn variance_grows_with_popcount_of_t() {
        // More set bits in t ⇒ more orders contribute ⇒ larger variance
        // (monotone in the subset of orders when scales are comparable).
        let params = ProtocolParams::new(1_000, 64, 4, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(71).rng();
        let pop = Population::generate(&UniformChanges::new(64, 4, 0.5), 1_000, &mut rng);
        let v = predicted_variance(&params, &pop);
        // t = 63 (six set bits) must exceed t = 32 (one set bit, the
        // largest single order).
        assert!(v[62] > v[31], "v(63)={} v(32)={}", v[62], v[31]);
        // And every variance is positive for n ≫ a[t].
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn scales_match_server() {
        let params = ProtocolParams::new(100, 32, 4, 0.7, 0.05).unwrap();
        let server = rtf_core::server::Server::for_future_rand(params);
        let ours = future_rand_scales(&params);
        for (a, b) in ours.iter().zip(server.scales()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
