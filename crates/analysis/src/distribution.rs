//! First-principles output laws, independent of `rtf-core`'s log-domain
//! implementation.
//!
//! Everything here is linear-space `f64` arithmetic built from Pascal's
//! triangle — deliberately *different code* from
//! `rtf_core::gap::WeightClassLaw`, so the two act as independent
//! derivations of the same mathematics. Limited to moderate `k`
//! (binomials overflow `f64` near `k ≈ 1000`), which is all the audits
//! need.

use rtf_core::annulus::Annulus;
use rtf_primitives::sign::Ternary;

/// One row of Pascal's triangle: `C(k, 0..=k)` in `f64`.
///
/// # Panics
/// Panics for `k > 1000` (overflow territory — use
/// `rtf_core::gap::WeightClassLaw` for large `k`).
pub fn binomial_row(k: usize) -> Vec<f64> {
    assert!(k <= 1000, "binomial_row overflows f64 beyond k ≈ 1000");
    let mut row = vec![1.0f64];
    for i in 0..k {
        row.push(row[i] * (k - i) as f64 / (i + 1) as f64);
    }
    row
}

/// Per-string output probabilities of the composed randomizer `R̃` by
/// Hamming distance: `result[w] = Pr[R̃(b) = s]` for any `s` with
/// `‖b − s‖₀ = w`, derived from the definition in linear space.
pub fn composed_per_string_probs(k: usize, eps_tilde: f64) -> Vec<f64> {
    let annulus = Annulus::for_parameters(k, eps_tilde);
    composed_per_string_probs_with_annulus(k, eps_tilde, &annulus)
}

/// Same as [`composed_per_string_probs`] but over an explicit annulus
/// (used to audit the Bun et al. parameterisation too).
pub fn composed_per_string_probs_with_annulus(
    k: usize,
    eps_tilde: f64,
    annulus: &Annulus,
) -> Vec<f64> {
    assert_eq!(annulus.k(), k, "annulus built for different k");
    let p = 1.0 / (eps_tilde.exp() + 1.0);
    let row = binomial_row(k);
    let g = |w: usize| p.powi(w as i32) * (1.0 - p).powi((k - w) as i32);
    // P*_out = Σ_out C·g / Σ_out C.
    let mut num = 0.0;
    let mut den = 0.0;
    for w in annulus.outside() {
        num += row[w] * g(w);
        den += row[w];
    }
    let p_star = num / den;
    (0..=k)
        .map(|w| if annulus.contains(w) { g(w) } else { p_star })
        .collect()
}

/// Every `≤ k`-sparse ternary sequence of length `l`, for brute-force
/// audits. Sequences are generated in lexicographic order of support.
pub fn enumerate_sparse_ternary(l: usize, k: usize) -> Vec<Vec<Ternary>> {
    let mut out = Vec::new();
    // Iterate over support masks with ≤ k bits, then over sign patterns.
    for mask in 0u32..(1u32 << l) {
        let m = mask.count_ones() as usize;
        if m > k {
            continue;
        }
        let positions: Vec<usize> = (0..l).filter(|&j| mask & (1 << j) != 0).collect();
        for signs in 0u32..(1u32 << m) {
            let mut v = vec![Ternary::Zero; l];
            for (i, &j) in positions.iter().enumerate() {
                v[j] = if signs & (1 << i) != 0 {
                    Ternary::Minus
                } else {
                    Ternary::Plus
                };
            }
            out.push(v);
        }
    }
    out
}

/// The exact output pmf of the *online* FutureRand over all `2^l` report
/// sequences, for input `v` (length `l`, at most `k` non-zeros).
///
/// Outputs are indexed by bitmask: bit `j` set means `ω_{j+1} = +1`.
///
/// Derivation (Sections 5.3–5.4): with support positions
/// `j_1 < … < j_m`, the output satisfies `ω_{j_i} = v_{j_i}·b̃_i`, so
/// `Pr[ω | v] = 2^{−(l−m)} · Σ_{s ∈ G} Pr[b̃ = s]` where `G` pins the
/// first `m` coordinates of `s` to `ω_{j_i}·v_{j_i}` and leaves the rest
/// free; `Pr[b̃ = s]` depends only on the number of `−1`s in `s`.
pub fn futurerand_output_pmf(l: usize, k: usize, epsilon: f64, v: &[Ternary]) -> Vec<f64> {
    assert_eq!(v.len(), l, "input length mismatch");
    assert!(l <= 24, "2^l outputs — keep l small");
    let m = v.iter().filter(|t| t.is_nonzero()).count();
    assert!(m <= k, "input has {m} non-zeros > k = {k}");
    let eps_tilde = epsilon / (5.0 * (k as f64).sqrt());
    let q = composed_per_string_probs(k, eps_tilde);
    let free = k - m;
    let free_row = binomial_row(free);
    let support: Vec<usize> = (0..l).filter(|&j| v[j].is_nonzero()).collect();

    let mut pmf = Vec::with_capacity(1 << l);
    let zero_factor = 0.5f64.powi((l - m) as i32);
    for omega in 0u32..(1u32 << l) {
        // c = number of pinned coordinates of s equal to −1.
        let mut c = 0usize;
        for (i, &j) in support.iter().enumerate() {
            let omega_j = if omega & (1 << j) != 0 { 1i8 } else { -1i8 };
            let pinned = omega_j * v[j].value();
            debug_assert!(pinned != 0);
            if pinned < 0 {
                c += 1;
            }
            let _ = i;
        }
        // Σ over the free coordinates: w' of them −1.
        let mut mass = 0.0;
        for (w_free, &cnt) in free_row.iter().enumerate() {
            mass += cnt * q[c + w_free];
        }
        pmf.push(zero_factor * mass);
    }
    pmf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_core::gap::WeightClassLaw;

    #[test]
    #[allow(clippy::needless_range_loop)] // w indexes two parallel laws
    fn per_string_probs_match_core_law() {
        // Independent linear-space derivation vs rtf-core's log-space law.
        for k in [1usize, 3, 8, 40, 200] {
            for eps in [0.3, 1.0] {
                let et = eps / (5.0 * (k as f64).sqrt());
                let ours = composed_per_string_probs(k, et);
                let law = WeightClassLaw::for_protocol(k, eps);
                for w in 0..=k {
                    let core_val = law.ln_per_string_prob(w).exp();
                    let rel = (ours[w] - core_val).abs() / core_val.max(1e-300);
                    assert!(rel < 1e-9, "k={k} w={w}: {} vs {core_val}", ours[w]);
                }
            }
        }
    }

    #[test]
    fn per_string_probs_normalise() {
        for k in [2usize, 5, 17, 64] {
            let et = 1.0 / (5.0 * (k as f64).sqrt());
            let q = composed_per_string_probs(k, et);
            let row = binomial_row(k);
            let total: f64 = q.iter().zip(&row).map(|(a, b)| a * b).sum();
            assert!((total - 1.0).abs() < 1e-10, "k={k}: {total}");
        }
    }

    #[test]
    fn enumerate_counts_match_formula() {
        // #sequences = Σ_{m ≤ k} C(l,m)·2^m.
        for (l, k) in [(3usize, 1usize), (4, 2), (5, 5), (6, 3)] {
            let row = binomial_row(l);
            let expect: f64 = (0..=k.min(l)).map(|m| row[m] * 2f64.powi(m as i32)).sum();
            let got = enumerate_sparse_ternary(l, k).len();
            assert_eq!(got as f64, expect, "l={l} k={k}");
        }
    }

    #[test]
    fn enumerate_respects_sparsity() {
        for v in enumerate_sparse_ternary(6, 2) {
            assert!(v.iter().filter(|t| t.is_nonzero()).count() <= 2);
        }
    }

    #[test]
    fn futurerand_pmf_sums_to_one() {
        for v in [
            vec![Ternary::Zero; 4],
            vec![Ternary::Plus, Ternary::Zero, Ternary::Minus, Ternary::Zero],
            vec![Ternary::Plus, Ternary::Plus, Ternary::Zero, Ternary::Zero],
        ] {
            let pmf = futurerand_output_pmf(4, 2, 1.0, &v);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-10, "{v:?}: {total}");
        }
    }

    #[test]
    fn all_zero_input_gives_uniform_output() {
        // Property III: with no non-zeros every output sequence has
        // probability 2^{-l}.
        let pmf = futurerand_output_pmf(5, 3, 1.0, &[Ternary::Zero; 5]);
        for &p in &pmf {
            assert!((p - 1.0 / 32.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_matches_monte_carlo() {
        // Simulate the actual online FutureRand and compare the empirical
        // output distribution against the exact pmf.
        use rand::SeedableRng;
        use rtf_core::composed::ComposedRandomizer;
        use rtf_core::randomizer::{FutureRand, LocalRandomizer};
        use rtf_primitives::sign::Sign;

        let l = 4usize;
        let k = 2usize;
        let eps = 1.0;
        let v = vec![Ternary::Plus, Ternary::Zero, Ternary::Minus, Ternary::Zero];
        let exact = futurerand_output_pmf(l, k, eps, &v);
        let composed = ComposedRandomizer::for_protocol(k, eps);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let draws = 200_000usize;
        let mut counts = vec![0u64; 1 << l];
        for _ in 0..draws {
            let mut m = FutureRand::init(l, &composed, &mut rng);
            let mut omega = 0u32;
            for (j, &vj) in v.iter().enumerate() {
                if m.next(vj, &mut rng) == Sign::Plus {
                    omega |= 1 << j;
                }
            }
            counts[omega as usize] += 1;
        }
        let expected: Vec<f64> = exact.iter().map(|p| p * draws as f64).collect();
        let (chi2, dof) = crate::stats::chi_square_stat(&counts, &expected, 5.0);
        assert!(
            chi2 < crate::stats::chi_square_critical_999(dof),
            "chi2 {chi2} dof {dof}"
        );
    }

    #[test]
    fn bounded_support_case_matches_full_support_marginals() {
        // Section 5.4: with |supp| = 1 < k = 2 the law uses only the first
        // b̃ bit. The marginal of ω at the support position must show gap
        // c_gap; zero positions must be exactly uniform.
        let l = 3usize;
        let k = 2usize;
        let eps = 0.8;
        let v = vec![Ternary::Zero, Ternary::Plus, Ternary::Zero];
        let pmf = futurerand_output_pmf(l, k, eps, &v);
        let law = WeightClassLaw::for_protocol(k, eps);
        // Marginal Pr[ω_2 = +1] − Pr[ω_2 = −1] must equal c_gap.
        let mut gap = 0.0;
        let mut zero_bias = 0.0;
        for (omega, &p) in pmf.iter().enumerate() {
            gap += if omega & 0b010 != 0 { p } else { -p };
            zero_bias += if omega & 0b001 != 0 { p } else { -p };
        }
        assert!(
            (gap - law.c_gap()).abs() < 1e-10,
            "gap {gap} vs {}",
            law.c_gap()
        );
        assert!(zero_bias.abs() < 1e-12);
    }
}
