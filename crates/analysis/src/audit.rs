//! Exact privacy audits.
//!
//! An `ε`-LDP claim is an inequality over *all* input pairs and outputs;
//! for the randomizers in this workspace the worst case is computable
//! exactly, so the audits below return the **realized** privacy loss —
//! the exact LDP parameter of the implemented algorithm — to compare
//! against the nominal budget. Lemmas 5.2 / Theorem 4.5 promise
//! `realized ≤ ε`; the audits also expose how much slack the analysis
//! leaves (≈ 2× for FutureRand; exactly 2× for Erlingsson as restated in
//! Section 6).

use crate::distribution::{
    composed_per_string_probs, enumerate_sparse_ternary, futurerand_output_pmf,
};
use rtf_primitives::sign::Ternary;

/// Exact realized ε of the composed randomizer `R̃(k, ε̃)` — the
/// linear-space re-derivation (cross-checks
/// `rtf_core::gap::WeightClassLaw::realized_epsilon`).
///
/// Any Hamming-weight pair `(w, w')` is attainable by some `(b, b', s)`,
/// so the realized ε is `ln(max_w q(w) / min_w q(w))`.
pub fn realized_epsilon_composed(k: usize, eps_tilde: f64) -> f64 {
    let q = composed_per_string_probs(k, eps_tilde);
    let max = q.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = q.iter().copied().fold(f64::INFINITY, f64::min);
    (max / min).ln()
}

/// Result of a brute-force sequence audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequenceAudit {
    /// The exact realized LDP parameter over all input pairs & outputs.
    pub realized_epsilon: f64,
    /// Number of input sequences enumerated.
    pub inputs: usize,
    /// Number of output sequences enumerated.
    pub outputs: usize,
}

/// Brute-force end-to-end audit of the *online FutureRand* over all
/// `≤ k`-sparse inputs of length `l` and all `2^l` outputs — the
/// client-side guarantee of Theorem 4.5 at one fixed order.
///
/// Exponential in `l`; keep `l ≤ 10`.
pub fn futurerand_sequence_audit(l: usize, k: usize, epsilon: f64) -> SequenceAudit {
    assert!(l <= 10, "brute force is exponential in l; keep l ≤ 10");
    let inputs = enumerate_sparse_ternary(l, k);
    let pmfs: Vec<Vec<f64>> = inputs
        .iter()
        .map(|v| futurerand_output_pmf(l, k, epsilon, v))
        .collect();
    SequenceAudit {
        realized_epsilon: worst_ratio(&pmfs),
        inputs: inputs.len(),
        outputs: 1 << l,
    }
}

/// Brute-force audit of the Example 4.2 *independent* randomizer
/// (per-coordinate `ε/k` randomized response, uniform zeros).
pub fn independent_sequence_audit(l: usize, k: usize, epsilon: f64) -> SequenceAudit {
    assert!(l <= 10, "brute force is exponential in l; keep l ≤ 10");
    let p = 1.0 / ((epsilon / k as f64).exp() + 1.0);
    let inputs = enumerate_sparse_ternary(l, k);
    let pmfs: Vec<Vec<f64>> = inputs
        .iter()
        .map(|v| {
            (0u32..(1 << l))
                .map(|omega| {
                    let mut prob = 1.0;
                    for (j, &vj) in v.iter().enumerate() {
                        let omega_j = if omega & (1 << j) != 0 { 1i8 } else { -1i8 };
                        prob *= match vj {
                            Ternary::Zero => 0.5,
                            nz if nz.value() == omega_j => 1.0 - p,
                            _ => p,
                        };
                    }
                    prob
                })
                .collect()
        })
        .collect();
    SequenceAudit {
        realized_epsilon: worst_ratio(&pmfs),
        inputs: inputs.len(),
        outputs: 1 << l,
    }
}

/// Exact audit of the Erlingsson et al. client (Section 6): the input
/// space is "which change survived sampling" — nothing (`None`) or a
/// `(position, sign)` pair; the output sequence is uniform except for one
/// randomized-response coordinate.
pub fn erlingsson_sequence_audit(l: usize, epsilon: f64) -> SequenceAudit {
    assert!(l <= 16, "brute force is exponential in l; keep l ≤ 16");
    let p = 1.0 / ((epsilon / 2.0).exp() + 1.0);
    // Inputs: None, or (pos ∈ [0..l), sign ∈ {−1,+1}).
    let mut pmfs: Vec<Vec<f64>> = Vec::with_capacity(2 * l + 1);
    let uniform = vec![0.5f64.powi(l as i32); 1 << l];
    pmfs.push(uniform);
    for pos in 0..l {
        for sign in [-1i8, 1i8] {
            let pmf: Vec<f64> = (0u32..(1 << l))
                .map(|omega| {
                    let omega_pos = if omega & (1 << pos) != 0 { 1i8 } else { -1i8 };
                    let coord = if omega_pos == sign { 1.0 - p } else { p };
                    coord * 0.5f64.powi((l - 1) as i32)
                })
                .collect();
            pmfs.push(pmf);
        }
    }
    SequenceAudit {
        realized_epsilon: worst_ratio(&pmfs),
        inputs: 2 * l + 1,
        outputs: 1 << l,
    }
}

/// `max_ω max_{v,v'} ln(P_v(ω)/P_{v'}(ω))` over a family of pmfs sharing
/// one output space.
fn worst_ratio(pmfs: &[Vec<f64>]) -> f64 {
    let outputs = pmfs[0].len();
    let mut worst = 0.0f64;
    for omega in 0..outputs {
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for pmf in pmfs {
            let v = pmf[omega];
            max = max.max(v);
            min = min.min(v);
        }
        worst = worst.max((max / min).ln());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_core::gap::WeightClassLaw;

    #[test]
    fn composed_audit_matches_core_law() {
        for k in [1usize, 4, 16, 64, 256] {
            for eps in [0.25, 1.0] {
                let et = eps / (5.0 * (k as f64).sqrt());
                let independent = realized_epsilon_composed(k, et);
                let core = WeightClassLaw::for_protocol(k, eps).realized_epsilon();
                assert!(
                    (independent - core).abs() < 1e-9,
                    "k={k} ε={eps}: {independent} vs {core}"
                );
            }
        }
    }

    #[test]
    fn lemma_5_2_holds_exactly() {
        // realized ε ≤ nominal ε over the audit grid.
        for k in [1usize, 2, 3, 8, 32, 128, 512] {
            for eps in [0.1, 0.5, 1.0] {
                let et = eps / (5.0 * (k as f64).sqrt());
                let realized = realized_epsilon_composed(k, et);
                assert!(realized <= eps + 1e-9, "k={k} ε={eps}: {realized}");
            }
        }
    }

    #[test]
    fn theorem_4_5_futurerand_client_audit() {
        // End-to-end online client audit at small (L, k): realized ≤ ε,
        // including the bounded-support case |supp| < k (Section 5.4).
        for (l, k) in [(4usize, 1usize), (4, 2), (6, 2), (6, 3), (8, 2)] {
            for eps in [0.5, 1.0] {
                let audit = futurerand_sequence_audit(l, k, eps);
                assert!(
                    audit.realized_epsilon <= eps + 1e-9,
                    "L={l} k={k} ε={eps}: realized {}",
                    audit.realized_epsilon
                );
                assert!(audit.realized_epsilon > 0.0);
            }
        }
    }

    #[test]
    fn futurerand_audit_matches_composed_realized_eps() {
        // With |supp| forced up to k the sequence-level worst case equals
        // the composed randomizer's weight-class worst case: the zero
        // coordinates are input-independent, so they cancel in every
        // ratio, and any (w, w') class pair is attainable by sign
        // patterns.
        let (l, k, eps) = (5usize, 2usize, 1.0);
        let seq = futurerand_sequence_audit(l, k, eps).realized_epsilon;
        let et = eps / (5.0 * (k as f64).sqrt());
        let comp = realized_epsilon_composed(k, et);
        assert!(
            (seq - comp).abs() < 1e-9,
            "sequence {seq} vs composed {comp}"
        );
    }

    #[test]
    fn independent_randomizer_saturates_budget() {
        // The Example 4.2 randomizer's worst case is exactly ε (k flips of
        // budget ε/k each).
        for (l, k) in [(4usize, 2usize), (5, 3)] {
            let audit = independent_sequence_audit(l, k, 1.0);
            assert!(
                (audit.realized_epsilon - 1.0).abs() < 1e-9,
                "L={l} k={k}: {}",
                audit.realized_epsilon
            );
        }
    }

    #[test]
    fn erlingsson_realizes_half_budget() {
        // As restated in Section 6, the Erlingsson client's exact LDP
        // parameter is ε/2 (one RR(ε/2) coordinate; position and value
        // differences both bound by the same factor). Recorded in
        // EXPERIMENTS.md as analysis slack.
        for l in [2usize, 4, 8] {
            let audit = erlingsson_sequence_audit(l, 1.0);
            assert!(
                (audit.realized_epsilon - 0.5) < 1e-9,
                "L={l}: {}",
                audit.realized_epsilon
            );
            assert!(audit.realized_epsilon <= 1.0);
        }
    }

    #[test]
    fn futurerand_slack_is_substantial() {
        // The paper's ε̃ = ε/(5√k) leaves ≈ 2× slack at moderate k: the
        // realized ε sits near 0.47·ε (measured; see EXPERIMENTS.md).
        let realized = realized_epsilon_composed(64, 1.0 / (5.0 * 8.0));
        assert!(realized < 0.6, "realized {realized}");
        assert!(realized > 0.3, "realized {realized}");
    }

    #[test]
    fn audit_input_output_counts() {
        let a = futurerand_sequence_audit(4, 2, 1.0);
        // Σ_{m≤2} C(4,m)2^m = 1 + 8 + 24 = 33.
        assert_eq!(a.inputs, 33);
        assert_eq!(a.outputs, 16);
        let e = erlingsson_sequence_audit(4, 1.0);
        assert_eq!(e.inputs, 9);
    }
}
