//! Analysis toolkit: exact distributions, privacy audits, error metrics
//! and statistical tests.
//!
//! Where `rtf-core` computes quantities *for the protocol* (log-domain,
//! `O(k)`), this crate re-derives them *independently* — linear-space
//! brute force over small instances — and audits the implemented
//! randomizers against the paper's privacy and utility lemmas:
//!
//! * [`metrics`] — ℓ∞/ℓ1/ℓ2 error metrics over estimate streams;
//! * [`distribution`] — first-principles output laws of the composed
//!   randomizer and of the *online* FutureRand (full `2^L` output pmf),
//!   used to prove online ≡ offline (Sections 5.3–5.4) and to
//!   cross-check `rtf-core`'s log-domain math;
//! * [`audit`] — exact realized-ε audits: weight-class audit of `R̃`
//!   (Lemma 5.2), brute-force end-to-end sequence audits of FutureRand,
//!   the independent randomizer, and the Erlingsson client (Theorem 4.5
//!   and Section 6);
//! * [`stats`] — chi-square goodness of fit (with Wilson–Hilferty
//!   critical values), total-variation distance, Hoeffding intervals.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod audit;
pub mod distribution;
pub mod metrics;
pub mod postprocess;
pub mod stats;
pub mod variance;

pub use audit::{
    erlingsson_sequence_audit, futurerand_sequence_audit, independent_sequence_audit,
    realized_epsilon_composed,
};
pub use distribution::{composed_per_string_probs, futurerand_output_pmf};
pub use metrics::{l1_error, l2_error, linf_error, mean_abs_error};
pub use stats::{chi_square_critical_999, chi_square_stat, hoeffding_radius, tv_distance};
