//! Error metrics over estimate streams.
//!
//! The paper's accuracy notion is the ℓ∞ error
//! `max_t |â[t] − a[t]|` (Definition 2.1); the other norms are reported by
//! some of the benches for completeness.

/// `max_t |â[t] − a[t]|` — the paper's `(α, β)`-accuracy metric.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn linf_error(estimates: &[f64], truth: &[f64]) -> f64 {
    check(estimates, truth);
    estimates
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .fold(0.0, f64::max)
}

/// `Σ_t |â[t] − a[t]|`.
pub fn l1_error(estimates: &[f64], truth: &[f64]) -> f64 {
    check(estimates, truth);
    estimates
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .sum()
}

/// `√(Σ_t (â[t] − a[t])²)`.
pub fn l2_error(estimates: &[f64], truth: &[f64]) -> f64 {
    check(estimates, truth);
    estimates
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// `(1/d) Σ_t |â[t] − a[t]|`.
pub fn mean_abs_error(estimates: &[f64], truth: &[f64]) -> f64 {
    l1_error(estimates, truth) / estimates.len() as f64
}

/// The per-period signed errors `â[t] − a[t]` (for bias inspection).
pub fn signed_errors(estimates: &[f64], truth: &[f64]) -> Vec<f64> {
    check(estimates, truth);
    estimates.iter().zip(truth).map(|(e, t)| e - t).collect()
}

fn check(estimates: &[f64], truth: &[f64]) {
    assert!(!estimates.is_empty(), "empty estimate stream");
    assert_eq!(
        estimates.len(),
        truth.len(),
        "estimate/truth length mismatch: {} vs {}",
        estimates.len(),
        truth.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let est = [1.0, 2.0, 3.0];
        let truth = [0.0, 4.0, 3.0];
        assert_eq!(linf_error(&est, &truth), 2.0);
        assert_eq!(l1_error(&est, &truth), 3.0);
        assert!((l2_error(&est, &truth) - 5f64.sqrt()).abs() < 1e-12);
        assert!((mean_abs_error(&est, &truth) - 1.0).abs() < 1e-12);
        assert_eq!(signed_errors(&est, &truth), vec![1.0, -2.0, 0.0]);
    }

    #[test]
    fn zero_error_when_equal() {
        let v = [5.0, 6.0, 7.0];
        assert_eq!(linf_error(&v, &v), 0.0);
        assert_eq!(l1_error(&v, &v), 0.0);
        assert_eq!(l2_error(&v, &v), 0.0);
    }

    #[test]
    fn norm_ordering() {
        // ℓ∞ ≤ ℓ2 ≤ ℓ1 for any vector.
        let est = [0.5, -1.5, 2.0, 0.0];
        let truth = [0.0; 4];
        let (inf, two, one) = (
            linf_error(&est, &truth),
            l2_error(&est, &truth),
            l1_error(&est, &truth),
        );
        assert!(inf <= two && two <= one);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_rejected() {
        let _ = linf_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = linf_error(&[], &[]);
    }
}
