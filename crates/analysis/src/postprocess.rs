//! Estimate post-processing.
//!
//! Differential privacy is closed under post-processing: any function of
//! the released estimates is released for free. Three standard,
//! provably-harmless cleanups for count streams:
//!
//! * [`clip`] — counts live in `[0, n]`; projecting onto the box can only
//!   reduce every per-period error (the truth is inside the box);
//! * isotonic projection is *not* applicable here (counts are not
//!   monotone), but windows are: [`moving_average`] trades temporal
//!   resolution for noise reduction when the underlying counts drift
//!   slowly (`k ≪ d` means most users are constant over short windows);
//! * [`round_counts`] — counts are integers; rounding never increases
//!   the error by more than ½ and usually reduces it.

/// Projects every estimate onto `[0, n]`.
///
/// Never increases `|â[t] − a[t]|` for any `t`, since `a[t] ∈ [0, n]`.
pub fn clip(estimates: &[f64], n: usize) -> Vec<f64> {
    estimates.iter().map(|&e| e.clamp(0.0, n as f64)).collect()
}

/// Centered moving average with window `w` (odd), shrinking the window at
/// the boundaries. Reduces noise variance by ≈ `w` when the truth is
/// locally constant; biased when the truth moves within the window.
pub fn moving_average(estimates: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1, "window must be ≥ 1");
    assert!(w % 2 == 1, "window must be odd for a centered average");
    let half = w / 2;
    let n = estimates.len();
    (0..n)
        .map(|t| {
            let lo = t.saturating_sub(half);
            let hi = (t + half).min(n - 1);
            estimates[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect()
}

/// Rounds every estimate to the nearest integer (counts are integral).
pub fn round_counts(estimates: &[f64]) -> Vec<f64> {
    estimates.iter().map(|&e| e.round()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::linf_error;

    #[test]
    fn clip_never_hurts() {
        let truth = [3.0, 5.0, 0.0, 10.0];
        let est = [-4.0, 5.5, 2.0, 13.0];
        let clipped = clip(&est, 10);
        assert_eq!(clipped, vec![0.0, 5.5, 2.0, 10.0]);
        assert!(linf_error(&clipped, &truth) <= linf_error(&est, &truth));
        // Per-period: every coordinate error must be ≤ the raw one.
        for i in 0..truth.len() {
            assert!((clipped[i] - truth[i]).abs() <= (est[i] - truth[i]).abs() + 1e-12);
        }
    }

    #[test]
    fn clip_is_idempotent() {
        let est = [-1.0, 3.0, 12.0];
        let once = clip(&est, 10);
        assert_eq!(clip(&once, 10), once);
    }

    #[test]
    fn moving_average_flattens_noise() {
        // Constant truth + alternating noise: the w=3 average cancels
        // most of it.
        let est = [10.0, 14.0, 6.0, 14.0, 6.0, 14.0, 6.0, 10.0];
        let truth = [10.0; 8];
        let smoothed = moving_average(&est, 3);
        assert!(linf_error(&smoothed, &truth) < linf_error(&est, &truth));
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let est = [1.0, 2.0, 3.0];
        assert_eq!(moving_average(&est, 1), est.to_vec());
    }

    #[test]
    fn moving_average_boundaries_shrink() {
        let est = [0.0, 10.0, 20.0];
        let s = moving_average(&est, 3);
        // Left edge averages [0,10], right edge [10,20].
        assert_eq!(s, vec![5.0, 10.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_rejected() {
        let _ = moving_average(&[1.0, 2.0], 2);
    }

    #[test]
    fn rounding_counts() {
        assert_eq!(round_counts(&[1.2, -0.4, 7.5]), vec![1.0, -0.0, 8.0]);
    }
}
