//! Statistical test helpers: chi-square goodness of fit, total-variation
//! distance, Hoeffding intervals (Corollary A.2 of the paper).

/// Pearson chi-square statistic of observed counts against an expected
/// pmf, merging adjacent cells until every merged cell has expected count
/// at least `min_expected` (the usual ≥ 5 rule).
///
/// Returns `(statistic, degrees_of_freedom)`; `dof = cells − 1`.
///
/// # Panics
/// Panics on length mismatch, or if the expectation vector doesn't sum to
/// ≈ the observation total (caller should scale `expected` to counts).
pub fn chi_square_stat(observed: &[u64], expected: &[f64], min_expected: f64) -> (f64, usize) {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    let total_obs: u64 = observed.iter().sum();
    let total_exp: f64 = expected.iter().sum();
    assert!(
        (total_exp - total_obs as f64).abs() < 0.01 * total_obs as f64 + 1.0,
        "expected counts sum {total_exp} far from observed total {total_obs}"
    );
    let mut chi2 = 0.0;
    let mut cells = 0usize;
    let mut pend_obs = 0.0;
    let mut pend_exp = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        pend_obs += o as f64;
        pend_exp += e;
        if pend_exp >= min_expected {
            chi2 += (pend_obs - pend_exp).powi(2) / pend_exp;
            cells += 1;
            pend_obs = 0.0;
            pend_exp = 0.0;
        }
    }
    if pend_exp > 0.0 {
        if cells > 0 {
            // Fold the remainder into the last cell by recomputing: add as
            // its own cell (slightly conservative) only if it has mass.
            chi2 += (pend_obs - pend_exp).powi(2) / pend_exp;
            cells += 1;
        } else {
            chi2 = (pend_obs - pend_exp).powi(2) / pend_exp.max(f64::MIN_POSITIVE);
            cells = 1;
        }
    }
    (chi2, cells.saturating_sub(1))
}

/// The 99.9% critical value of the chi-square distribution with `dof`
/// degrees of freedom, via the Wilson–Hilferty cube approximation
/// (`z_{0.999} = 3.0902`). Accurate to a few percent for `dof ≥ 3`, which
/// is ample for pass/fail testing.
pub fn chi_square_critical_999(dof: usize) -> f64 {
    assert!(dof >= 1, "dof must be ≥ 1");
    let d = dof as f64;
    let z = 3.0902;
    let inner = 1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt();
    d * inner.powi(3)
}

/// Total-variation distance `½ Σ |p_i − q_i|` between two pmfs.
///
/// # Panics
/// Panics on length mismatch or if either argument is far from a pmf.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    for pmf in [p, q] {
        let s: f64 = pmf.iter().sum();
        assert!((s - 1.0).abs() < 1e-6, "not a pmf: sums to {s}");
    }
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Hoeffding radius (Corollary A.2): a sum of `n` independent `[−1,1]`
/// variables deviates from its mean by more than `√(2n·ln(2/β))` with
/// probability at most `β`.
pub fn hoeffding_radius(n: usize, beta: f64) -> f64 {
    assert!(beta > 0.0 && beta < 1.0, "β must be in (0,1)");
    (2.0 * n as f64 * (2.0 / beta).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn chi_square_accepts_true_distribution() {
        // Sample from a known pmf; the statistic should be below the
        // 99.9% critical value.
        let pmf = [0.1, 0.2, 0.3, 0.4];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            let u: f64 = rng.random();
            let mut acc = 0.0;
            for (i, &p) in pmf.iter().enumerate() {
                acc += p;
                if u < acc {
                    counts[i] += 1;
                    break;
                }
            }
        }
        let expected: Vec<f64> = pmf.iter().map(|p| p * n as f64).collect();
        let (chi2, dof) = chi_square_stat(&counts, &expected, 5.0);
        assert!(chi2 < chi_square_critical_999(dof), "chi2 {chi2} dof {dof}");
    }

    #[test]
    fn chi_square_rejects_wrong_distribution() {
        // Observations from uniform, expectation heavily skewed.
        let n = 10_000u64;
        let observed = [2500u64, 2500, 2500, 2500];
        let expected = [100.0, 100.0, 100.0, 9700.0];
        let (chi2, dof) = chi_square_stat(&observed, &expected, 5.0);
        assert!(chi2 > chi_square_critical_999(dof));
        let _ = n;
    }

    #[test]
    fn chi_square_merges_sparse_cells() {
        // Tail cells with tiny expectations must merge, not divide by ~0.
        let observed = [9000u64, 990, 9, 1, 0, 0];
        let expected = [9000.0, 990.0, 9.0, 0.9, 0.09, 0.01];
        let (chi2, dof) = chi_square_stat(&observed, &expected, 5.0);
        assert!(chi2.is_finite());
        assert!(dof >= 1);
    }

    #[test]
    fn critical_values_are_sane() {
        // Known reference points: χ²_{0.999}(10) ≈ 29.59, (30) ≈ 59.70.
        assert!((chi_square_critical_999(10) - 29.59).abs() < 1.0);
        assert!((chi_square_critical_999(30) - 59.70).abs() < 1.5);
        // Monotone in dof.
        assert!(chi_square_critical_999(20) > chi_square_critical_999(10));
    }

    #[test]
    fn tv_distance_properties() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!((tv_distance(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(tv_distance(&p, &p), 0.0);
        // Symmetry.
        assert_eq!(tv_distance(&p, &q), tv_distance(&q, &p));
    }

    #[test]
    fn hoeffding_radius_matches_formula() {
        let r = hoeffding_radius(1000, 0.05);
        assert!((r - (2.0f64 * 1000.0 * (2.0 / 0.05f64).ln()).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a pmf")]
    fn tv_rejects_non_pmf() {
        let _ = tv_distance(&[0.5, 0.2], &[0.5, 0.5]);
    }
}
