//! Property-based tests for the longitudinal data model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtf_dyadic::decompose::decompose_prefix;
use rtf_dyadic::interval::Horizon;
use rtf_streams::generator::{
    BurstyChanges, PeriodicToggle, StreamGenerator, TrendingPopulation, UniformChanges,
};
use rtf_streams::population::Population;
use rtf_streams::stream::BoolStream;

/// Strategy: a sorted set of distinct change times within [1..d].
fn change_times(d: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::btree_set(1..=d, 0..16).prop_map(|s| s.into_iter().collect())
}

proptest! {
    /// Values ↔ change-times round trip.
    #[test]
    fn stream_round_trip(times in change_times(64)) {
        let s = BoolStream::from_change_times(64, times.clone());
        let back = BoolStream::from_values(&s.values());
        prop_assert_eq!(back.change_times(), &times[..]);
    }

    /// Observation 3.9 (single user): st_u[t] = Σ_{I ∈ C(t)} S_u(I).
    #[test]
    fn prefix_identity_obs_3_9(times in change_times(128), t in 1u64..=128) {
        let s = BoolStream::from_change_times(128, times);
        let x = s.derivative();
        let sum: i64 = decompose_prefix(t)
            .into_iter()
            .map(|i| x.partial_sum(i).value() as i64)
            .sum();
        prop_assert_eq!(sum, i64::from(s.value_at(t)));
    }

    /// Observation 3.7: every partial sum is in {−1, 0, 1} and equals
    /// st(end) − st(start−1).
    #[test]
    fn partial_sums_obs_3_7(times in change_times(64)) {
        let s = BoolStream::from_change_times(64, times);
        let x = s.derivative();
        for i in Horizon::new(64).iset() {
            let ps = x.partial_sum(i).value() as i64;
            let direct = i64::from(s.value_at(i.end())) - i64::from(s.value_at(i.start() - 1));
            prop_assert_eq!(ps, direct);
        }
    }

    /// Observation 3.6: at most ‖X_u‖₀ non-zero partial sums per order.
    #[test]
    fn per_order_sparsity_obs_3_6(times in change_times(64)) {
        let s = BoolStream::from_change_times(64, times);
        let x = s.derivative();
        let hz = Horizon::new(64);
        for h in hz.orders() {
            let nz = hz.iset_at_order(h).filter(|&i| x.partial_sum(i).is_nonzero()).count();
            prop_assert!(nz <= s.change_count());
        }
    }

    /// The derivative's support is exactly the change-time set, with
    /// alternating signs summing to st_u[d] ∈ {0,1}.
    #[test]
    fn derivative_structure(times in change_times(64)) {
        let s = BoolStream::from_change_times(64, times.clone());
        let x = s.derivative();
        prop_assert_eq!(x.support(), &times[..]);
        let total: i64 = x.to_vec().iter().map(|t| t.value() as i64).sum();
        prop_assert!(total == 0 || total == 1);
        prop_assert_eq!(total, i64::from(s.value_at(64)));
    }

    /// Population ground truth equals the brute-force count at every t.
    #[test]
    fn population_counts(seed in 0u64..500, n in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gen = UniformChanges::new(32, 5, 0.7);
        let pop = Population::generate(&gen, n, &mut rng);
        for t in 1..=32u64 {
            let expect = pop.streams().iter().filter(|s| s.value_at(t)).count() as f64;
            prop_assert_eq!(pop.true_counts()[(t - 1) as usize], expect);
        }
    }

    /// Every generator respects its own k bound and horizon.
    #[test]
    fn generators_respect_contracts(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 64u64;
        macro_rules! check {
            ($g:expr) => {{
                let g = $g;
                let s = g.generate(&mut rng);
                prop_assert_eq!(s.d(), g.d());
                prop_assert!(s.change_count() <= g.k());
            }};
        }
        check!(UniformChanges::new(d, 6, 0.9));
        check!(BurstyChanges::new(d, 6, 16));
        check!(PeriodicToggle::new(d, 6, 5));
        check!(TrendingPopulation::new(d, 6, |t| t as f64 / d as f64));
    }
}
