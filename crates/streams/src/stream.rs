//! One user's longitudinal Boolean data and its discrete derivative.
//!
//! The paper fixes `st_u[0] = 0` (Definition 3.1), so a value sequence is
//! fully described by the *times at which it flips*. We store exactly that:
//! a strictly increasing list of change times in `[1..d]`. The number of
//! changes is `‖X_u‖₀`, the quantity bounded by `k` throughout the paper,
//! and all queries the protocol needs — `st_u[t]`, `X_u[t]`, partial sums
//! `S_u(I)` — are `O(log k)` via binary search.

use rtf_dyadic::interval::DyadicInterval;
use rtf_primitives::sign::Ternary;

/// A user's Boolean value sequence over `[1..d]`, stored as change times.
///
/// Invariants: change times are strictly increasing and within `[1..d]`.
/// By the paper's convention the value before time 1 is 0, so the value at
/// time `t` is the parity of the number of changes at or before `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolStream {
    d: u64,
    change_times: Vec<u64>,
}

impl BoolStream {
    /// Builds a stream on `[1..d]` from its change times (strictly
    /// increasing, each in `[1..d]`).
    ///
    /// # Panics
    /// Panics if a change time is out of range or the list is not strictly
    /// increasing.
    pub fn from_change_times(d: u64, change_times: Vec<u64>) -> Self {
        assert!(d >= 1, "horizon must be non-empty");
        for w in change_times.windows(2) {
            assert!(
                w[0] < w[1],
                "change times must be strictly increasing, got {} then {}",
                w[0],
                w[1]
            );
        }
        if let (Some(&first), Some(&last)) = (change_times.first(), change_times.last()) {
            assert!(first >= 1, "change times are 1-based");
            assert!(last <= d, "change time {last} beyond horizon {d}");
        }
        BoolStream { d, change_times }
    }

    /// Builds a stream from an explicit value sequence (`values[t−1]` is
    /// `st_u[t]`), deriving the change times.
    pub fn from_values(values: &[bool]) -> Self {
        assert!(!values.is_empty(), "horizon must be non-empty");
        let mut change_times = Vec::new();
        let mut prev = false; // st_u[0] = 0
        for (i, &v) in values.iter().enumerate() {
            if v != prev {
                change_times.push((i + 1) as u64);
                prev = v;
            }
        }
        BoolStream {
            d: values.len() as u64,
            change_times,
        }
    }

    /// A stream that is 0 everywhere.
    pub fn all_zero(d: u64) -> Self {
        Self::from_change_times(d, Vec::new())
    }

    /// The horizon length `d`.
    #[inline]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The change times (strictly increasing, 1-based).
    #[inline]
    pub fn change_times(&self) -> &[u64] {
        &self.change_times
    }

    /// `‖X_u‖₀` — the number of value changes, the quantity the protocol
    /// bounds by `k`.
    #[inline]
    pub fn change_count(&self) -> usize {
        self.change_times.len()
    }

    /// `st_u[t]` for `t ∈ [0..d]` — the paper defines `st_u[0] = 0`.
    ///
    /// # Panics
    /// Panics if `t > d`.
    pub fn value_at(&self, t: u64) -> bool {
        assert!(t <= self.d, "time {t} beyond horizon {}", self.d);
        // Number of changes in [1..t]; parity gives the value.
        let changes_up_to = self.change_times.partition_point(|&c| c <= t);
        changes_up_to % 2 == 1
    }

    /// The full value sequence (`result[t−1] = st_u[t]`).
    pub fn values(&self) -> Vec<bool> {
        let mut out = vec![false; self.d as usize];
        let mut v = false;
        let mut next_change = 0usize;
        for t in 1..=self.d {
            if next_change < self.change_times.len() && self.change_times[next_change] == t {
                v = !v;
                next_change += 1;
            }
            out[(t - 1) as usize] = v;
        }
        out
    }

    /// The discrete derivative `X_u` (Definition 3.1), borrowing this
    /// stream's change-time list.
    pub fn derivative(&self) -> Derivative<'_> {
        Derivative { stream: self }
    }
}

/// The discrete derivative `X_u ∈ {−1, 0, 1}^d` of a [`BoolStream`]
/// (Definition 3.1): `X_u[t] = st_u[t] − st_u[t−1]`.
///
/// Because `st_u[0] = 0`, the non-zeros of `X_u` are exactly the change
/// times, alternating `+1, −1, +1, …` starting with `+1`.
#[derive(Debug, Clone, Copy)]
pub struct Derivative<'a> {
    stream: &'a BoolStream,
}

impl Derivative<'_> {
    /// The horizon length `d`.
    #[inline]
    pub fn d(&self) -> u64 {
        self.stream.d
    }

    /// `X_u[t]` for `t ∈ [1..d]`.
    ///
    /// # Panics
    /// Panics if `t` is off-horizon.
    pub fn at(&self, t: u64) -> Ternary {
        assert!(
            (1..=self.stream.d).contains(&t),
            "time {t} outside [1..{}]",
            self.stream.d
        );
        match self.stream.change_times.binary_search(&t) {
            // The (i+1)-th change: odd-numbered changes are 0→1 (+1).
            Ok(i) => {
                if i % 2 == 0 {
                    Ternary::Plus
                } else {
                    Ternary::Minus
                }
            }
            Err(_) => Ternary::Zero,
        }
    }

    /// The support `supp(X_u)` — exactly the change times.
    #[inline]
    pub fn support(&self) -> &[u64] {
        &self.stream.change_times
    }

    /// `‖X_u‖₀`.
    #[inline]
    pub fn nonzero_count(&self) -> usize {
        self.stream.change_times.len()
    }

    /// The dyadic partial sum `S_u(I) = Σ_{t ∈ I} X_u[t]` (Definition 3.4).
    ///
    /// Computed as `st_u[end(I)] − st_u[start(I)−1]` (Observation 3.7), so
    /// the result is always in `{−1, 0, 1}` and costs `O(log k)`.
    pub fn partial_sum(&self, interval: DyadicInterval) -> Ternary {
        assert!(
            interval.end() <= self.stream.d,
            "interval {interval} beyond horizon {}",
            self.stream.d
        );
        let before = self.stream.value_at(interval.start() - 1);
        let after = self.stream.value_at(interval.end());
        match (before, after) {
            (false, true) => Ternary::Plus,
            (true, false) => Ternary::Minus,
            _ => Ternary::Zero,
        }
    }

    /// The full derivative as a dense vector (`result[t−1] = X_u[t]`).
    pub fn to_vec(&self) -> Vec<Ternary> {
        let mut out = vec![Ternary::Zero; self.stream.d as usize];
        for (i, &c) in self.stream.change_times.iter().enumerate() {
            out[(c - 1) as usize] = if i % 2 == 0 {
                Ternary::Plus
            } else {
                Ternary::Minus
            };
        }
        out
    }
}

impl<'a> Derivative<'a> {
    /// A streaming cursor over this derivative: [`DerivativeCursor::next_at`]
    /// yields `X_u[t]` for ascending `t` in `O(1)` amortised, replacing
    /// the per-period binary search of [`at`](Self::at) on hot loops that
    /// sweep every period anyway (the batched simulation pipeline). The
    /// cursor borrows the underlying stream, not this (freely copyable)
    /// derivative view, so it outlives the view expression.
    pub fn cursor(&self) -> DerivativeCursor<'a> {
        DerivativeCursor {
            changes: &self.stream.change_times,
            idx: 0,
            last_t: 0,
            d: self.stream.d,
        }
    }
}

/// A streaming cursor over one derivative (see [`Derivative::cursor`]).
///
/// Holds only a borrowed change-time slice and an index, so a million
/// cursors cost a million `(&[u64], usize)` pairs and each step is a
/// single predictable comparison — the batched pipeline keeps one per
/// client state machine.
#[derive(Debug, Clone)]
pub struct DerivativeCursor<'a> {
    changes: &'a [u64],
    idx: usize,
    last_t: u64,
    d: u64,
}

impl DerivativeCursor<'_> {
    /// `X_u[t]` for the next period. Periods must be consumed in order
    /// (`t` strictly ascending from 1), mirroring the client state
    /// machine's own in-order contract; debug builds assert it (the
    /// release hot path keeps only the branch it needs).
    #[inline]
    pub fn next_at(&mut self, t: u64) -> Ternary {
        debug_assert!(
            t == self.last_t + 1 && t <= self.d,
            "cursor periods must ascend: expected {}, got {t} (d = {})",
            self.last_t + 1,
            self.d
        );
        self.last_t = t;
        if self.idx < self.changes.len() && self.changes[self.idx] == t {
            let x = if self.idx % 2 == 0 {
                Ternary::Plus
            } else {
                Ternary::Minus
            };
            self.idx += 1;
            x
        } else {
            Ternary::Zero
        }
    }

    /// The partial sum `Σ X_u[s]` over `s ∈ (last consumed period, t]`,
    /// consuming the span — equivalent to summing [`next_at`](Self::next_at)
    /// over every period of the span, in `O(changes inside the span)`
    /// (zero-change spans cost one comparison). Always in `{−1, 0, 1}`
    /// because consecutive changes alternate sign (Observation 3.7).
    ///
    /// Span ends must ascend and stay on the horizon; debug builds
    /// assert it.
    #[inline]
    pub fn sum_to(&mut self, t: u64) -> Ternary {
        debug_assert!(
            t > self.last_t && t <= self.d,
            "span end {t} must ascend past {} within d = {}",
            self.last_t,
            self.d
        );
        self.last_t = t;
        // Parity of consumed changes before and after the span: the sum
        // is st(t) − st(span start − 1), each the parity of its prefix.
        let before = self.idx;
        while self.idx < self.changes.len() && self.changes[self.idx] <= t {
            self.idx += 1;
        }
        match (before % 2 == 1, self.idx % 2 == 1) {
            (false, true) => Ternary::Plus,
            (true, false) => Ternary::Minus,
            _ => Ternary::Zero,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_dyadic::interval::Horizon;

    #[test]
    fn cursor_matches_random_access_everywhere() {
        for changes in [
            vec![],
            vec![1],
            vec![16],
            vec![1, 5, 6, 11, 16],
            vec![2, 3, 4, 5],
        ] {
            let s = BoolStream::from_change_times(16, changes.clone());
            let x = s.derivative();
            let mut cursor = x.cursor();
            for t in 1..=16u64 {
                assert_eq!(cursor.next_at(t), x.at(t), "t={t}, changes {changes:?}");
            }
        }
    }

    #[test]
    fn cursor_span_sums_match_per_period_sums() {
        for changes in [
            vec![],
            vec![1],
            vec![16],
            vec![1, 5, 6, 11, 16],
            vec![2, 3, 4, 5],
            vec![8, 9],
        ] {
            let s = BoolStream::from_change_times(16, changes.clone());
            let x = s.derivative();
            for stride in [1u64, 2, 4, 8, 16] {
                let mut cursor = x.cursor();
                let mut prev = 0u64;
                for t in (stride..=16).step_by(stride as usize) {
                    let direct: i8 = ((prev + 1)..=t).map(|s| x.at(s).value()).sum();
                    assert_eq!(
                        cursor.sum_to(t).value(),
                        direct,
                        "stride {stride}, t {t}, changes {changes:?}"
                    );
                    prev = t;
                }
            }
        }
    }

    /// The running example of the paper: st_u = (0, 1, 1, 0).
    fn paper_example() -> BoolStream {
        BoolStream::from_values(&[false, true, true, false])
    }

    #[test]
    fn paper_example_derivative() {
        // Definition 3.1 example: st = (0,1,1,0) ⇒ X = (0,1,0,−1).
        let s = paper_example();
        assert_eq!(s.change_times(), &[2, 4]);
        let x = s.derivative();
        let dense: Vec<i8> = x.to_vec().iter().map(|t| t.value()).collect();
        assert_eq!(dense, vec![0, 1, 0, -1]);
    }

    #[test]
    fn paper_example_3_5_partial_sums() {
        // Example 3.5: all partial sums of X_u = (0,1,0,−1).
        let s = paper_example();
        let x = s.derivative();
        let expect = [
            ((0u32, 1u64), 0i8),
            ((0, 2), 1),
            ((0, 3), 0),
            ((0, 4), -1),
            ((1, 1), 1),
            ((1, 2), -1),
            ((2, 1), 0),
        ];
        for ((h, j), v) in expect {
            assert_eq!(
                x.partial_sum(DyadicInterval::new(h, j)).value(),
                v,
                "S(I_{{{h},{j}}})"
            );
        }
    }

    #[test]
    fn observation_3_9_prefix_identity() {
        // st_u[t] = Σ_{I ∈ C(t)} S_u(I) for every t (Observation 3.9,
        // single-user form).
        let s = BoolStream::from_change_times(16, vec![1, 5, 6, 11, 16]);
        let x = s.derivative();
        for t in 1..=16u64 {
            let sum: i64 = rtf_dyadic::decompose::decompose_prefix(t)
                .into_iter()
                .map(|i| x.partial_sum(i).value() as i64)
                .sum();
            assert_eq!(sum, s.value_at(t) as i64, "t = {t}");
        }
    }

    #[test]
    fn observation_3_6_sparsity_per_order() {
        // At most k non-zero partial sums at each order.
        let s = BoolStream::from_change_times(64, vec![3, 17, 40]);
        let x = s.derivative();
        let hz = Horizon::new(64);
        for h in hz.orders() {
            let nonzero = hz
                .iset_at_order(h)
                .filter(|&i| x.partial_sum(i).is_nonzero())
                .count();
            assert!(nonzero <= 3, "order {h}: {nonzero} non-zeros");
        }
    }

    #[test]
    fn values_round_trip() {
        let patterns: [&[bool]; 4] = [
            &[false, false, false],
            &[true, false, true, true],
            &[true; 7],
            &[false, true, false, true, false, true],
        ];
        for p in patterns {
            let s = BoolStream::from_values(p);
            assert_eq!(s.values(), p, "round trip for {p:?}");
            for (i, &v) in p.iter().enumerate() {
                assert_eq!(s.value_at((i + 1) as u64), v);
            }
        }
    }

    #[test]
    fn value_at_zero_is_false() {
        let s = BoolStream::from_change_times(8, vec![1]);
        assert!(!s.value_at(0), "st_u[0] = 0 by convention");
        assert!(s.value_at(1));
    }

    #[test]
    fn change_count_equals_derivative_l0() {
        let s = BoolStream::from_change_times(32, vec![2, 9, 10, 31]);
        assert_eq!(s.change_count(), 4);
        let dense = s.derivative().to_vec();
        let l0 = dense.iter().filter(|t| t.is_nonzero()).count();
        assert_eq!(l0, 4);
    }

    #[test]
    fn derivative_alternates_signs() {
        let s = BoolStream::from_change_times(32, vec![4, 8, 15, 16, 23]);
        let x = s.derivative();
        let signs: Vec<i8> = s.change_times().iter().map(|&c| x.at(c).value()).collect();
        assert_eq!(signs, vec![1, -1, 1, -1, 1]);
    }

    #[test]
    fn all_zero_stream() {
        let s = BoolStream::all_zero(16);
        assert_eq!(s.change_count(), 0);
        assert!((0..=16).all(|t| !s.value_at(t)));
        let x = s.derivative();
        assert!(x.to_vec().iter().all(|t| !t.is_nonzero()));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_change_times_rejected() {
        let _ = BoolStream::from_change_times(8, vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn out_of_range_change_time_rejected() {
        let _ = BoolStream::from_change_times(8, vec![9]);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_change_time_rejected() {
        let _ = BoolStream::from_change_times(8, vec![0, 1]);
    }

    #[test]
    fn partial_sum_always_in_ternary_range() {
        // Observation 3.7: S_u(I) ∈ {−1, 0, 1} no matter how many changes
        // fall inside I.
        let s = BoolStream::from_change_times(16, (1..=16).collect());
        let x = s.derivative();
        let hz = Horizon::new(16);
        for i in hz.iset() {
            let v = x.partial_sum(i).value();
            assert!((-1..=1).contains(&v));
        }
    }
}
