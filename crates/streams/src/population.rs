//! A population of users and its ground truth.
//!
//! The server's target quantity is `a[t] = Σ_u st_u[t]` (Equation 1). The
//! population owns all `n` user streams, computes the true counts once in
//! `O(n·k + d)` via a difference array over change times, and exposes the
//! `k`-sparsity checks the protocol's preconditions need.

use crate::generator::StreamGenerator;
use crate::stream::BoolStream;
use rand::Rng;

/// `n` longitudinal Boolean user streams plus the ground-truth counts.
#[derive(Debug, Clone)]
pub struct Population {
    d: u64,
    streams: Vec<BoolStream>,
    true_counts: Vec<f64>,
}

impl Population {
    /// Builds a population from explicit streams.
    ///
    /// # Panics
    /// Panics if the streams disagree on `d` or the list is empty.
    pub fn from_streams(streams: Vec<BoolStream>) -> Self {
        assert!(
            !streams.is_empty(),
            "population must have at least one user"
        );
        let d = streams[0].d();
        assert!(
            streams.iter().all(|s| s.d() == d),
            "all streams must share the same horizon"
        );
        let true_counts = Self::compute_counts(d, &streams);
        Population {
            d,
            streams,
            true_counts,
        }
    }

    /// Draws `n` users from a generator.
    pub fn generate<G: StreamGenerator, R: Rng + ?Sized>(
        generator: &G,
        n: usize,
        rng: &mut R,
    ) -> Self {
        assert!(n >= 1, "population must have at least one user");
        let streams: Vec<BoolStream> = (0..n).map(|_| generator.generate(rng)).collect();
        Self::from_streams(streams)
    }

    /// `a[t]` for all `t` via a difference array over change times:
    /// each change at time `c` adds ±1 to every `a[t]` with `t ≥ c`.
    fn compute_counts(d: u64, streams: &[BoolStream]) -> Vec<f64> {
        let mut diff = vec![0i64; d as usize + 1];
        for s in streams {
            for (i, &c) in s.change_times().iter().enumerate() {
                let sign = if i % 2 == 0 { 1 } else { -1 };
                diff[c as usize] += sign;
            }
        }
        let mut counts = Vec::with_capacity(d as usize);
        let mut acc = 0i64;
        for (t, &delta) in diff.iter().enumerate().skip(1) {
            acc += delta;
            debug_assert!(acc >= 0, "count went negative at t = {t}");
            counts.push(acc as f64);
        }
        counts
    }

    /// The horizon length `d`.
    #[inline]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The number of users `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.streams.len()
    }

    /// The user streams.
    #[inline]
    pub fn streams(&self) -> &[BoolStream] {
        &self.streams
    }

    /// One user's stream.
    pub fn stream(&self, user: usize) -> &BoolStream {
        &self.streams[user]
    }

    /// The ground truth `a[t]` (`true_counts()[t−1] = a[t]`, Equation 1).
    #[inline]
    pub fn true_counts(&self) -> &[f64] {
        &self.true_counts
    }

    /// The largest change count across users — must be `≤ k` for the
    /// protocol's guarantees to apply.
    pub fn max_change_count(&self) -> usize {
        self.streams
            .iter()
            .map(BoolStream::change_count)
            .max()
            .unwrap_or(0)
    }

    /// Asserts every user changes at most `k` times.
    ///
    /// # Panics
    /// Panics (with the offending user) if some stream exceeds the bound.
    pub fn assert_k_sparse(&self, k: usize) {
        for (u, s) in self.streams.iter().enumerate() {
            assert!(
                s.change_count() <= k,
                "user {u} changes {} times, exceeding k = {k}",
                s.change_count()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::UniformChanges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_match_brute_force() {
        let streams = vec![
            BoolStream::from_values(&[false, true, true, false]),
            BoolStream::from_values(&[true, true, false, false]),
            BoolStream::from_values(&[false, false, false, true]),
        ];
        let pop = Population::from_streams(streams.clone());
        for t in 1..=4u64 {
            let expect = streams.iter().filter(|s| s.value_at(t)).count() as f64;
            assert_eq!(pop.true_counts()[(t - 1) as usize], expect, "t = {t}");
        }
    }

    #[test]
    fn counts_match_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = UniformChanges::new(64, 7, 0.9);
        let pop = Population::generate(&g, 200, &mut rng);
        for t in 1..=64u64 {
            let expect = pop.streams().iter().filter(|s| s.value_at(t)).count() as f64;
            assert_eq!(pop.true_counts()[(t - 1) as usize], expect, "t = {t}");
        }
    }

    #[test]
    fn generate_respects_n_and_d() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = UniformChanges::new(32, 3, 0.5);
        let pop = Population::generate(&g, 57, &mut rng);
        assert_eq!(pop.n(), 57);
        assert_eq!(pop.d(), 32);
        assert_eq!(pop.true_counts().len(), 32);
    }

    #[test]
    fn max_change_count_and_sparsity() {
        let streams = vec![
            BoolStream::from_change_times(8, vec![1, 2]),
            BoolStream::from_change_times(8, vec![1, 2, 3, 4]),
        ];
        let pop = Population::from_streams(streams);
        assert_eq!(pop.max_change_count(), 4);
        pop.assert_k_sparse(4);
    }

    #[test]
    #[should_panic(expected = "exceeding k")]
    fn sparsity_violation_detected() {
        let pop = Population::from_streams(vec![BoolStream::from_change_times(8, vec![1, 2, 3])]);
        pop.assert_k_sparse(2);
    }

    #[test]
    #[should_panic(expected = "same horizon")]
    fn mixed_horizons_rejected() {
        let _ = Population::from_streams(vec![BoolStream::all_zero(8), BoolStream::all_zero(16)]);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_population_rejected() {
        let _ = Population::from_streams(Vec::new());
    }

    #[test]
    fn counts_are_bounded_by_n() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = UniformChanges::new(128, 10, 1.0);
        let pop = Population::generate(&g, 50, &mut rng);
        for (&c, t) in pop.true_counts().iter().zip(1..) {
            assert!((0.0..=50.0).contains(&c), "a[{t}] = {c}");
        }
    }
}
