//! Synthetic workload generators.
//!
//! The paper's theorems are worst-case over *any* `k`-sparse change
//! pattern, and its motivation names concrete regimes (URL lists that
//! "change little every day", telemetry counters, trends). Each generator
//! below produces streams from one such regime; together they cover the
//! behaviours that stress different terms of the error bound:
//!
//! * [`UniformChanges`] — change times scattered uniformly over `[1..d]`;
//! * [`BurstyChanges`] — all changes packed into one short window;
//! * [`PeriodicToggle`] — regular toggling at a fixed period;
//! * [`AdversarialAligned`] — every user's changes inside the *same* dyadic
//!   block, concentrating error on a few partial sums;
//! * [`TrendingPopulation`] — users track a global trend curve `p(t)`;
//! * [`WaveTrend`] — a data-parameterized sinusoidal trend (the
//!   TOML-representable sibling of [`TrendingPopulation`]);
//! * [`StaticPopulation`] — the `k = 0`/`k = 1` regime of users who never
//!   change after an initial draw.

use crate::stream::BoolStream;
use rand::Rng;
use rtf_primitives::subset::sample_subset;

/// A source of `k`-sparse longitudinal Boolean streams.
pub trait StreamGenerator {
    /// The horizon length `d` of generated streams.
    fn d(&self) -> u64;

    /// The change bound `k`: every generated stream has
    /// `change_count() ≤ k`.
    fn k(&self) -> usize;

    /// Draws one user stream.
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolStream;
}

/// Helper: sorted distinct change times — a uniform `c`-subset of `[1..d]`.
fn uniform_change_times<R: Rng + ?Sized>(d: u64, c: usize, rng: &mut R) -> Vec<u64> {
    sample_subset(d as usize, c, rng)
        .into_iter()
        .map(|i| (i + 1) as u64)
        .collect()
}

/// Change times scattered uniformly over the horizon.
///
/// Each user flips `c ~ Binomial(k, density)` times, at a uniformly random
/// set of `c` distinct periods. `density = 1.0` pins every user at exactly
/// `k` changes (the worst case for the protocol); smaller densities model
/// heterogeneous populations.
#[derive(Debug, Clone, Copy)]
pub struct UniformChanges {
    d: u64,
    k: usize,
    density: f64,
}

impl UniformChanges {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics unless `k ≤ d` and `density ∈ [0, 1]`.
    pub fn new(d: u64, k: usize, density: f64) -> Self {
        assert!(k as u64 <= d, "cannot change {k} times in {d} periods");
        assert!(
            (0.0..=1.0).contains(&density),
            "density must be in [0,1], got {density}"
        );
        UniformChanges { d, k, density }
    }
}

impl StreamGenerator for UniformChanges {
    fn d(&self) -> u64 {
        self.d
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolStream {
        let c = (0..self.k)
            .filter(|_| rng.random::<f64>() < self.density)
            .count();
        BoolStream::from_change_times(self.d, uniform_change_times(self.d, c, rng))
    }
}

/// All of a user's changes land inside one short, user-specific window —
/// the "everything happened during one event" regime.
#[derive(Debug, Clone, Copy)]
pub struct BurstyChanges {
    d: u64,
    k: usize,
    burst_len: u64,
}

impl BurstyChanges {
    /// Creates the generator; bursts are `burst_len` periods long.
    ///
    /// # Panics
    /// Panics unless `k ≤ burst_len ≤ d`.
    pub fn new(d: u64, k: usize, burst_len: u64) -> Self {
        assert!(burst_len <= d, "burst {burst_len} longer than horizon {d}");
        assert!(
            k as u64 <= burst_len,
            "cannot fit {k} changes in a burst of {burst_len}"
        );
        BurstyChanges { d, k, burst_len }
    }
}

impl StreamGenerator for BurstyChanges {
    fn d(&self) -> u64 {
        self.d
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolStream {
        let start = rng.random_range(0..=(self.d - self.burst_len));
        let c = rng.random_range(0..=self.k);
        let times: Vec<u64> = sample_subset(self.burst_len as usize, c, rng)
            .into_iter()
            .map(|i| start + (i + 1) as u64)
            .collect();
        BoolStream::from_change_times(self.d, times)
    }
}

/// Toggles at a fixed period from a random phase, truncated to `k` changes
/// — the "weekly pattern" regime.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicToggle {
    d: u64,
    k: usize,
    period: u64,
}

impl PeriodicToggle {
    /// Creates the generator with toggling period `period ≥ 1`.
    ///
    /// # Panics
    /// Panics if `period == 0` or if `k` toggles at that period cannot be
    /// k-sparse… (they always can; only `period ≥ 1` is required).
    pub fn new(d: u64, k: usize, period: u64) -> Self {
        assert!(period >= 1, "period must be ≥ 1");
        PeriodicToggle { d, k, period }
    }
}

impl StreamGenerator for PeriodicToggle {
    fn d(&self) -> u64 {
        self.d
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolStream {
        let phase = rng.random_range(1..=self.period.min(self.d));
        let times: Vec<u64> = (0..)
            .map(|i| phase + i * self.period)
            .take_while(|&t| t <= self.d)
            .take(self.k)
            .collect();
        BoolStream::from_change_times(self.d, times)
    }
}

/// Every user's changes fall inside the *same* dyadic interval, chosen at
/// construction — the adversarial case where the population's entire churn
/// hits a handful of partial sums.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialAligned {
    d: u64,
    k: usize,
    block_start: u64,
    block_len: u64,
}

impl AdversarialAligned {
    /// Creates the generator with changes confined to the order-`h` dyadic
    /// interval with index `j`.
    ///
    /// # Panics
    /// Panics if the block lies outside `[1..d]` or is shorter than `k`.
    pub fn new(d: u64, k: usize, h: u32, j: u64) -> Self {
        let block = rtf_dyadic::interval::DyadicInterval::new(h, j);
        assert!(block.end() <= d, "block {block} beyond horizon {d}");
        assert!(
            k as u64 <= block.len(),
            "cannot fit {k} changes in block of length {}",
            block.len()
        );
        AdversarialAligned {
            d,
            k,
            block_start: block.start(),
            block_len: block.len(),
        }
    }
}

impl StreamGenerator for AdversarialAligned {
    fn d(&self) -> u64 {
        self.d
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolStream {
        let c = rng.random_range(0..=self.k);
        let times: Vec<u64> = sample_subset(self.block_len as usize, c, rng)
            .into_iter()
            .map(|i| self.block_start + i as u64)
            .collect();
        BoolStream::from_change_times(self.d, times)
    }
}

/// Users track a global trend: the population-level probability of holding
/// value 1 follows a caller-supplied curve `p(t)`, while each user still
/// changes at most `k` times.
///
/// Each user draws `c ≤ k` change *opportunities* uniformly over time;
/// between consecutive opportunities the user holds a value drawn from the
/// curve at the segment start. Opportunities where the drawn value equals
/// the previous one produce no change, so the `k`-sparsity bound holds by
/// construction.
pub struct TrendingPopulation<F: Fn(u64) -> f64> {
    d: u64,
    k: usize,
    curve: F,
}

impl<F: Fn(u64) -> f64> TrendingPopulation<F> {
    /// Creates the generator; `curve(t)` must return a probability for
    /// every `t ∈ [1..d]`.
    ///
    /// # Panics
    /// Panics if `k == 0` (a trend requires at least one opportunity) or
    /// `k > d`.
    pub fn new(d: u64, k: usize, curve: F) -> Self {
        assert!(k >= 1, "trending users need k ≥ 1");
        assert!(k as u64 <= d, "cannot change {k} times in {d} periods");
        TrendingPopulation { d, k, curve }
    }
}

impl<F: Fn(u64) -> f64> StreamGenerator for TrendingPopulation<F> {
    fn d(&self) -> u64 {
        self.d
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolStream {
        // Segment boundaries: k change opportunities.
        let opportunities = uniform_change_times(self.d, self.k, rng);
        let mut change_times = Vec::new();
        let mut current = false; // st_u[0] = 0
        for &t in &opportunities {
            let p = (self.curve)(t).clamp(0.0, 1.0);
            let next = rng.random::<f64>() < p;
            if next != current {
                change_times.push(t);
                current = next;
            }
        }
        BoolStream::from_change_times(self.d, change_times)
    }
}

/// A data-parameterized sinusoidal trend: the population-level probability
/// of holding value 1 oscillates between `low` and `high` with period
/// `wave_period`.
///
/// This is [`TrendingPopulation`] with the fixed curve
/// `p(t) = mid + amp · sin(2πt / wave_period)` where `mid = (low+high)/2`
/// and `amp = (high-low)/2`. Unlike the closure-based generator it is
/// plain data, so a scenario spec (`rtf_scenarios::dsl`) can name it in a
/// TOML file and round-trip it losslessly.
#[derive(Debug, Clone, Copy)]
pub struct WaveTrend {
    d: u64,
    k: usize,
    low: f64,
    high: f64,
    wave_period: u64,
}

impl WaveTrend {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics unless `0 ≤ low ≤ high ≤ 1`, `wave_period ≥ 1`,
    /// and `1 ≤ k ≤ d`.
    pub fn new(d: u64, k: usize, low: f64, high: f64, wave_period: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high) && low <= high,
            "wave bounds must satisfy 0 ≤ low ≤ high ≤ 1, got [{low}, {high}]"
        );
        assert!(wave_period >= 1, "wave_period must be ≥ 1");
        assert!(k >= 1, "trending users need k ≥ 1");
        assert!(k as u64 <= d, "cannot change {k} times in {d} periods");
        WaveTrend {
            d,
            k,
            low,
            high,
            wave_period,
        }
    }

    /// The trend curve value at period `t`.
    pub fn curve(&self, t: u64) -> f64 {
        let mid = (self.low + self.high) / 2.0;
        let amp = (self.high - self.low) / 2.0;
        let phase = 2.0 * std::f64::consts::PI * t as f64 / self.wave_period as f64;
        (mid + amp * phase.sin()).clamp(0.0, 1.0)
    }
}

impl StreamGenerator for WaveTrend {
    fn d(&self) -> u64 {
        self.d
    }
    fn k(&self) -> usize {
        self.k
    }
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolStream {
        // Same opportunity/segment scheme as TrendingPopulation, so the
        // k-sparsity bound holds by construction.
        let opportunities = uniform_change_times(self.d, self.k, rng);
        let mut change_times = Vec::new();
        let mut current = false;
        for &t in &opportunities {
            let next = rng.random::<f64>() < self.curve(t);
            if next != current {
                change_times.push(t);
                current = next;
            }
        }
        BoolStream::from_change_times(self.d, change_times)
    }
}

/// Users draw an initial value once and never change it (at most one change
/// at `t = 1`) — the regime where longitudinal tracking is cheapest and a
/// sanity baseline for `k = 1`.
#[derive(Debug, Clone, Copy)]
pub struct StaticPopulation {
    d: u64,
    p_one: f64,
}

impl StaticPopulation {
    /// Creates the generator; each user holds 1 with probability `p_one`.
    ///
    /// # Panics
    /// Panics unless `p_one ∈ [0, 1]`.
    pub fn new(d: u64, p_one: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_one), "p_one must be a probability");
        StaticPopulation { d, p_one }
    }
}

impl StreamGenerator for StaticPopulation {
    fn d(&self) -> u64 {
        self.d
    }
    fn k(&self) -> usize {
        1
    }
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> BoolStream {
        if rng.random::<f64>() < self.p_one {
            BoolStream::from_change_times(self.d, vec![1])
        } else {
            BoolStream::all_zero(self.d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_sparsity<G: StreamGenerator>(g: &G, trials: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..trials {
            let s = g.generate(&mut rng);
            assert_eq!(s.d(), g.d());
            assert!(
                s.change_count() <= g.k(),
                "stream has {} changes > k = {}",
                s.change_count(),
                g.k()
            );
        }
    }

    #[test]
    fn all_generators_respect_k() {
        check_sparsity(&UniformChanges::new(64, 5, 0.8), 300, 1);
        check_sparsity(&BurstyChanges::new(64, 5, 16), 300, 2);
        check_sparsity(&PeriodicToggle::new(64, 5, 7), 300, 3);
        check_sparsity(&AdversarialAligned::new(64, 5, 3, 2), 300, 4);
        check_sparsity(&TrendingPopulation::new(64, 5, |t| t as f64 / 64.0), 300, 5);
        check_sparsity(&StaticPopulation::new(64, 0.3), 300, 6);
        check_sparsity(&WaveTrend::new(64, 5, 0.1, 0.9, 16), 300, 7);
    }

    #[test]
    fn uniform_full_density_hits_exactly_k() {
        let g = UniformChanges::new(128, 9, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(g.generate(&mut rng).change_count(), 9);
        }
    }

    #[test]
    fn uniform_zero_density_never_changes() {
        let g = UniformChanges::new(128, 9, 0.0);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            assert_eq!(g.generate(&mut rng).change_count(), 0);
        }
    }

    #[test]
    fn bursty_changes_stay_in_some_window() {
        let g = BurstyChanges::new(256, 8, 16);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            if let (Some(&first), Some(&last)) = (s.change_times().first(), s.change_times().last())
            {
                assert!(last - first < 16, "changes span {} > burst", last - first);
            }
        }
    }

    #[test]
    fn periodic_spacing_is_exact() {
        let g = PeriodicToggle::new(256, 10, 12);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            for w in s.change_times().windows(2) {
                assert_eq!(w[1] - w[0], 12);
            }
        }
    }

    #[test]
    fn adversarial_changes_confined_to_block() {
        // Block I_{3,2} = [9..16] on d = 64.
        let g = AdversarialAligned::new(64, 6, 3, 2);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            for &c in s.change_times() {
                assert!((9..=16).contains(&c), "change at {c} outside block");
            }
        }
    }

    #[test]
    fn trending_population_tracks_curve() {
        // Step curve: 0 before midpoint, 0.9 after. Late-time fraction of
        // ones should be near 0.9.
        let d = 64u64;
        let g = TrendingPopulation::new(d, 8, |t| if t > 32 { 0.9 } else { 0.0 });
        let mut rng = StdRng::seed_from_u64(12);
        let n = 3000;
        let ones_at_end = (0..n).filter(|_| g.generate(&mut rng).value_at(d)).count();
        let f = ones_at_end as f64 / n as f64;
        assert!((f - 0.9).abs() < 0.05, "fraction of ones at d: {f}");
    }

    #[test]
    fn static_population_frequency_matches() {
        let g = StaticPopulation::new(32, 0.25);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 8000;
        let ones = (0..n).filter(|_| g.generate(&mut rng).value_at(1)).count();
        let f = ones as f64 / n as f64;
        assert!((f - 0.25).abs() < 0.02, "fraction {f}");
        // And static: value at 1 equals value at d.
        for _ in 0..100 {
            let s = g.generate(&mut rng);
            assert_eq!(s.value_at(1), s.value_at(32));
        }
    }

    #[test]
    fn wave_trend_matches_its_closure_twin() {
        // WaveTrend is TrendingPopulation with a fixed curve; drawn with
        // the same RNG stream they must produce identical streams.
        let wave = WaveTrend::new(64, 6, 0.2, 0.8, 12);
        let twin = TrendingPopulation::new(64, 6, |t| wave.curve(t));
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            assert_eq!(
                wave.generate(&mut a).change_times(),
                twin.generate(&mut b).change_times()
            );
        }
    }

    #[test]
    #[should_panic(expected = "wave bounds")]
    fn wave_trend_rejects_inverted_bounds() {
        let _ = WaveTrend::new(64, 5, 0.9, 0.1, 8);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn bursty_rejects_tiny_window() {
        let _ = BurstyChanges::new(64, 10, 4);
    }

    #[test]
    #[should_panic(expected = "cannot change")]
    fn uniform_rejects_k_above_d() {
        let _ = UniformChanges::new(4, 5, 1.0);
    }
}
