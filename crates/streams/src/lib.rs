//! The longitudinal Boolean user-data model and synthetic workload
//! generators.
//!
//! Implements the data side of Section 2 and Definition 3.1 of *Randomize
//! the Future* (Ohrimenko, Wirth, Wu — PODS 2022):
//!
//! * [`stream::BoolStream`] — one user's Boolean value sequence
//!   `st_u ∈ {0,1}^d`, stored compactly as its ≤ `k` change times (the
//!   paper's convention `st_u[0] = 0` makes the change-time list a complete
//!   description);
//! * [`stream::Derivative`] — the discrete derivative `X_u ∈ {−1,0,1}^d`
//!   (Definition 3.1) and its dyadic partial sums `S_u(I)` (Definition 3.4,
//!   Observations 3.6/3.7);
//! * [`generator`] — synthetic workload generators covering the regimes the
//!   paper's motivation describes (rarely-changing URL lists, bursts,
//!   periodic toggles, population-level trends, adversarially aligned
//!   changes);
//! * [`population`] — `n` users plus the ground-truth counts
//!   `a[t] = Σ_u st_u[t]` (Equation 1).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod generator;
pub mod population;
pub mod stream;

pub use generator::{
    AdversarialAligned, BurstyChanges, PeriodicToggle, StaticPopulation, StreamGenerator,
    TrendingPopulation, UniformChanges,
};
pub use population::Population;
pub use stream::{BoolStream, Derivative};
