//! Comparison protocols for longitudinal LDP frequency estimation.
//!
//! Everything the paper compares against (Sections 1 and 6), implemented
//! from scratch so the benches can reproduce the "who wins, by what
//! factor" claims:
//!
//! * [`erlingsson`] — the online protocol of Erlingsson et al. (2020):
//!   keep one uniformly sampled change, basic randomized response with
//!   `ε̃ = ε/2`, server rescales by an extra factor `k`. Error linear in
//!   `k` — the bound the paper improves to `√k`;
//! * [`bun`] — the Bun–Nelson–Stemmer (2019) composed randomizer
//!   (Algorithm 4 / Appendix A.2), whose annulus is parameterised by `λ`
//!   and whose gap is `O(ε/√(k·ln(k/ε)))` — a `√ln(k/ε)` factor worse
//!   than FutureRand;
//! * [`naive`] — repeated one-shot randomized response, both with the
//!   privacy budget split `ε/d` per period and with fixed per-period `ε`
//!   (linear privacy decay);
//! * [`central`] — the central-model binary-tree mechanism (Dwork et al.
//!   2010 / Chan et al. 2011), the non-local reference point;
//! * [`independent`] — the paper's own hierarchical framework with the
//!   naive Example 4.2 randomizer instead of FutureRand: the ablation
//!   isolating the composed randomizer's contribution;
//! * [`registry`] — a uniform [`registry::LongitudinalProtocol`] trait so
//!   benches can sweep protocols generically.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bun;
pub mod calibrated;
pub mod central;
pub mod erlingsson;
pub mod independent;
pub mod naive;
pub mod registry;

pub use bun::BunRandomizer;
pub use calibrated::run_calibrated;
pub use central::run_central_tree;
pub use erlingsson::run_erlingsson;
pub use independent::run_independent;
pub use naive::{run_naive_decay, run_naive_split};
pub use registry::{LongitudinalProtocol, ProtocolKind};
