//! Ablation: the paper's hierarchical framework with the *naive
//! independent* randomizer of Example 4.2 instead of FutureRand.
//!
//! Identical to `rtf_core::protocol::run_in_memory` except each client's
//! sequence randomizer perturbs every non-zero partial sum with an
//! independent basic randomized response of budget `ε/k_eff` (and zeros
//! uniformly). Its gap is `Θ(ε/k)` instead of `Θ(ε/√k)`, so comparing the
//! two runs isolates exactly the composed randomizer's `√k` contribution
//! — everything else (sampling, hierarchy, estimation) is shared code.

use rtf_core::client::Client;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_core::randomizer::{IndependentRand, LocalRandomizer};
use rtf_core::server::Server;
use rtf_primitives::seeding::SeedSequence;
use rtf_streams::population::Population;

/// Runs the hierarchical framework with the Example 4.2 randomizer.
pub fn run_independent(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    population.assert_k_sparse(params.k());

    let gaps: Vec<f64> = (0..params.num_orders())
        .map(|h| {
            IndependentRand::new(
                params.sequence_len(h),
                params.k_for_order(h),
                params.epsilon(),
            )
            .c_gap()
        })
        .collect();
    let mut server = Server::new(*params, &gaps);

    let root = SeedSequence::new(seed);
    let mut groups: Vec<Vec<(usize, Client<IndependentRand>, rand::rngs::StdRng)>> =
        (0..params.num_orders()).map(|_| Vec::new()).collect();
    for u in 0..params.n() {
        let mut rng = root.child(u as u64).rng();
        let h = Client::<IndependentRand>::sample_order(params, &mut rng);
        server.register_user(h);
        let m = IndependentRand::new(
            params.sequence_len(h),
            params.k_for_order(h),
            params.epsilon(),
        );
        groups[h as usize].push((u, Client::new(params, h, m), rng));
    }

    let mut reports_sent = 0u64;
    for t in 1..=params.d() {
        let max_h = t.trailing_zeros().min(params.log_d());
        for h in 0..=max_h {
            let stride = 1u64 << h;
            for (u, client, rng) in groups[h as usize].iter_mut() {
                let x = population.stream(*u).derivative();
                let start = t - stride + 1;
                let mut report = None;
                for tt in start..=t {
                    report = client.observe(tt, x.at(tt), rng);
                }
                let r = report.expect("boundary must produce a report");
                server.ingest(h, r.bit);
                reports_sent += 1;
            }
        }
        let _ = server.end_of_period(t);
    }

    ProtocolOutcome::from_parts(
        server.estimates().to_vec(),
        server.group_sizes().to_vec(),
        reports_sent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_streams::generator::UniformChanges;

    fn linf(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn runs_and_is_deterministic() {
        let params = ProtocolParams::new(300, 32, 4, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(20).rng();
        let pop = Population::generate(&UniformChanges::new(32, 4, 0.8), 300, &mut rng);
        let a = run_independent(&params, &pop, 3);
        let b = run_independent(&params, &pop, 3);
        assert_eq!(a.estimates(), b.estimates());
    }

    #[test]
    fn future_rand_beats_independent_at_large_k() {
        // The √k-vs-k ablation. With exact constants the two gaps are
        // tanh(ε/(2k)) ≈ ε/(2k) (independent) vs ≈ 0.08·ε/√k (FutureRand),
        // so the crossover sits near k ≈ 40 at ε = 1 (recorded in
        // EXPERIMENTS.md); by k = 256 FutureRand wins by ≈ 2.6×.
        let n = 1_000usize;
        let d = 256u64;
        let k = 256usize;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(21).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 1.0), n, &mut rng);
        let trials = 4;
        let (mut fr, mut ind) = (0.0, 0.0);
        for s in 0..trials {
            let a = rtf_core::protocol::run_in_memory(&params, &pop, 500 + s);
            let b = run_independent(&params, &pop, 500 + s);
            fr += linf(a.estimates(), pop.true_counts()) / trials as f64;
            ind += linf(b.estimates(), pop.true_counts()) / trials as f64;
        }
        assert!(ind > 1.5 * fr, "independent {ind} vs FutureRand {fr}");
    }

    #[test]
    fn unbiasedness() {
        let n = 300usize;
        let d = 8u64;
        let params = ProtocolParams::new(n, d, 2, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(22).rng();
        let pop = Population::generate(&UniformChanges::new(d, 2, 1.0), n, &mut rng);
        let trials = 600;
        let mut mean = vec![0.0; d as usize];
        for s in 0..trials {
            let o = run_independent(&params, &pop, 2_000 + s);
            for (m, &e) in mean.iter_mut().zip(o.estimates()) {
                *m += e / trials as f64;
            }
        }
        let gap = (1.0f64 / 2.0 / 2.0).tanh(); // k_eff = 2 at low orders
        let per_trial_sd = 4.0 / gap * (n as f64).sqrt();
        let tol = 5.0 * per_trial_sd / (trials as f64).sqrt();
        let bias = linf(&mean, pop.true_counts());
        assert!(bias < tol, "bias {bias} vs tol {tol}");
    }
}
