//! A uniform interface over every protocol in the workspace, so the
//! benches and the simulator can sweep them generically.

use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_streams::population::Population;

/// Every runnable longitudinal frequency-estimation protocol.
pub trait LongitudinalProtocol {
    /// A short stable identifier (used in bench table rows).
    fn name(&self) -> &'static str;

    /// Whether the protocol is `ε`-LDP at the nominal budget (the naive
    /// decay variant and the central model are not *local* `ε`; flagged so
    /// tables can annotate them).
    fn is_eps_ldp(&self) -> bool;

    /// Runs the protocol end to end.
    fn run(&self, params: &ProtocolParams, population: &Population, seed: u64) -> ProtocolOutcome;
}

/// The concrete protocols, as unit structs for easy arraying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// This paper: hierarchical framework + FutureRand.
    FutureRand,
    /// This paper with the audit-calibrated `ε̃` (exact-audit-certified;
    /// ~2× better `c_gap` at the same ε).
    FutureRandCalibrated,
    /// Erlingsson et al. 2020: change sampling + basic RR, error ∝ k.
    Erlingsson,
    /// Hierarchical framework + Example 4.2 independent randomizer
    /// (ablation).
    Independent,
    /// Repeated RR with per-period budget ε/d.
    NaiveSplit,
    /// Repeated RR with per-period budget ε (privacy decays to ε·d).
    NaiveDecay,
    /// Central-model binary tree mechanism (trusted curator).
    CentralTree,
}

impl ProtocolKind {
    /// All protocols, in the order bench tables print them.
    pub const ALL: [ProtocolKind; 7] = [
        ProtocolKind::FutureRand,
        ProtocolKind::FutureRandCalibrated,
        ProtocolKind::Erlingsson,
        ProtocolKind::Independent,
        ProtocolKind::NaiveSplit,
        ProtocolKind::NaiveDecay,
        ProtocolKind::CentralTree,
    ];

    /// The `ε`-LDP protocols only (fair comparison set).
    pub const LOCAL_EPS: [ProtocolKind; 5] = [
        ProtocolKind::FutureRand,
        ProtocolKind::FutureRandCalibrated,
        ProtocolKind::Erlingsson,
        ProtocolKind::Independent,
        ProtocolKind::NaiveSplit,
    ];
}

impl LongitudinalProtocol for ProtocolKind {
    fn name(&self) -> &'static str {
        match self {
            ProtocolKind::FutureRand => "future-rand",
            ProtocolKind::FutureRandCalibrated => "future-rand-cal",
            ProtocolKind::Erlingsson => "erlingsson20",
            ProtocolKind::Independent => "independent",
            ProtocolKind::NaiveSplit => "naive-split",
            ProtocolKind::NaiveDecay => "naive-decay",
            ProtocolKind::CentralTree => "central-tree",
        }
    }

    fn is_eps_ldp(&self) -> bool {
        !matches!(self, ProtocolKind::NaiveDecay | ProtocolKind::CentralTree)
    }

    fn run(&self, params: &ProtocolParams, population: &Population, seed: u64) -> ProtocolOutcome {
        match self {
            ProtocolKind::FutureRand => rtf_core::protocol::run_in_memory(params, population, seed),
            ProtocolKind::FutureRandCalibrated => {
                crate::calibrated::run_calibrated(params, population, seed)
            }
            ProtocolKind::Erlingsson => crate::erlingsson::run_erlingsson(params, population, seed),
            ProtocolKind::Independent => {
                crate::independent::run_independent(params, population, seed)
            }
            ProtocolKind::NaiveSplit => crate::naive::run_naive_split(params, population, seed),
            ProtocolKind::NaiveDecay => crate::naive::run_naive_decay(params, population, seed).0,
            ProtocolKind::CentralTree => crate::central::run_central_tree(params, population, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_primitives::seeding::SeedSequence;
    use rtf_streams::generator::UniformChanges;

    #[test]
    fn every_protocol_runs_and_produces_d_estimates() {
        let params = ProtocolParams::new(200, 16, 2, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(30).rng();
        let pop = Population::generate(&UniformChanges::new(16, 2, 0.7), 200, &mut rng);
        for p in ProtocolKind::ALL {
            let o = p.run(&params, &pop, 77);
            assert_eq!(o.estimates().len(), 16, "{}", p.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProtocolKind::ALL.len());
    }

    #[test]
    fn ldp_flags() {
        assert!(ProtocolKind::FutureRand.is_eps_ldp());
        assert!(ProtocolKind::FutureRandCalibrated.is_eps_ldp());
        assert!(ProtocolKind::Erlingsson.is_eps_ldp());
        assert!(ProtocolKind::NaiveSplit.is_eps_ldp());
        assert!(!ProtocolKind::NaiveDecay.is_eps_ldp());
        assert!(!ProtocolKind::CentralTree.is_eps_ldp());
        for p in ProtocolKind::LOCAL_EPS {
            assert!(p.is_eps_ldp());
        }
    }
}
