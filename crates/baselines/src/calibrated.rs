//! The audit-calibrated FutureRand protocol — this paper's protocol with
//! the per-coordinate budget raised to the largest value whose *exact*
//! realized privacy loss still fits `ε` (see `rtf_core::calibrate`).
//!
//! Same framework, same randomizer family, same server; only `ε̃`
//! changes. The exact audit certifies `ε`-LDP, and the ~2× larger
//! `c_gap` halves the estimation error — quantified in `exp_ablation`.

use rtf_core::calibrate::calibrate;
use rtf_core::client::Client;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_core::randomizer::FutureRand;
use rtf_core::server::Server;
use rtf_primitives::seeding::SeedSequence;
use rtf_streams::population::Population;

/// Runs the calibrated FutureRand protocol end to end.
pub fn run_calibrated(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    population.assert_k_sparse(params.k());

    // Calibrated randomizer + matching exact gaps per order.
    let mut composed = Vec::with_capacity(params.num_orders() as usize);
    let mut gaps = Vec::with_capacity(params.num_orders() as usize);
    for h in 0..params.num_orders() {
        let cal = calibrate(params.k_for_order(h), params.epsilon());
        gaps.push(cal.law.c_gap());
        composed.push(ComposedRandomizer::new(
            params.k_for_order(h),
            cal.eps_tilde,
        ));
    }
    let mut server = Server::new(*params, &gaps);

    let root = SeedSequence::new(seed);
    let mut groups: Vec<Vec<(usize, Client<FutureRand>, rand::rngs::StdRng)>> =
        (0..params.num_orders()).map(|_| Vec::new()).collect();
    for u in 0..params.n() {
        let mut rng = root.child(u as u64).rng();
        let h = Client::<FutureRand>::sample_order(params, &mut rng);
        server.register_user(h);
        let m = FutureRand::init(params.sequence_len(h), &composed[h as usize], &mut rng);
        groups[h as usize].push((u, Client::new(params, h, m), rng));
    }

    for t in 1..=params.d() {
        let max_h = t.trailing_zeros().min(params.log_d());
        for h in 0..=max_h {
            let stride = 1u64 << h;
            for (u, client, rng) in groups[h as usize].iter_mut() {
                let x = population.stream(*u).derivative();
                let mut report = None;
                for tt in (t - stride + 1)..=t {
                    report = client.observe(tt, x.at(tt), rng);
                }
                server.ingest(h, report.expect("boundary").bit);
            }
        }
        let _ = server.end_of_period(t);
    }

    let reports = server.reports_ingested();
    ProtocolOutcome::from_parts(
        server.estimates().to_vec(),
        server.group_sizes().to_vec(),
        reports,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_analysis_free::linf;
    use rtf_streams::generator::UniformChanges;

    /// Local ℓ∞ helper (rtf-analysis depends on this crate, so no cycle).
    mod rtf_analysis_free {
        pub fn linf(a: &[f64], b: &[f64]) -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max)
        }
    }

    #[test]
    fn calibrated_beats_paper_parameterisation_in_error() {
        let n = 3_000usize;
        let d = 64u64;
        let k = 8usize;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(60).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 1.0), n, &mut rng);
        let trials = 6u64;
        let (mut cal, mut paper) = (0.0, 0.0);
        for s in 0..trials {
            let a = run_calibrated(&params, &pop, 300 + s);
            let b = rtf_core::protocol::run_in_memory(&params, &pop, 300 + s);
            cal += linf(a.estimates(), pop.true_counts()) / trials as f64;
            paper += linf(b.estimates(), pop.true_counts()) / trials as f64;
        }
        assert!(
            cal < 0.75 * paper,
            "calibrated {cal} should clearly beat paper {paper}"
        );
    }

    #[test]
    fn calibrated_is_deterministic_and_unbiased() {
        let n = 400usize;
        let d = 16u64;
        let params = ProtocolParams::new(n, d, 2, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(61).rng();
        let pop = Population::generate(&UniformChanges::new(d, 2, 1.0), n, &mut rng);
        let a = run_calibrated(&params, &pop, 9);
        let b = run_calibrated(&params, &pop, 9);
        assert_eq!(a.estimates(), b.estimates());
        // Unbiasedness over trials.
        let trials = 400u64;
        let mut mean = vec![0.0; d as usize];
        for s in 0..trials {
            let o = run_calibrated(&params, &pop, 5_000 + s);
            for (m, &e) in mean.iter_mut().zip(o.estimates()) {
                *m += e / trials as f64;
            }
        }
        let cal = calibrate(2, 1.0);
        let per_trial_sd = 5.0 / cal.law.c_gap() * (n as f64).sqrt();
        let tol = 5.0 * per_trial_sd / (trials as f64).sqrt();
        let bias = rtf_analysis_free::linf(&mean, pop.true_counts());
        assert!(bias < tol, "bias {bias} vs tol {tol}");
    }
}
