//! The central-model binary-tree mechanism (Dwork et al. 2010, Chan et
//! al. 2011) — the trusted-curator reference point of Section 6.
//!
//! A trusted curator sees the exact per-period derivative totals
//! `Σ_u X_u[t]`, builds the dyadic tree of interval sums, adds independent
//! Laplace noise to every node, and answers prefix queries via `C(t)`.
//!
//! **Sensitivity.** One user's whole longitudinal record changes at most
//! `k` leaf values by ±1 each, and each leaf feeds `1 + log d` nodes, so
//! the ℓ₁ sensitivity of the node vector is `k·(1 + log d)`; Laplace scale
//! `k·(1 + log d)/ε` gives `ε`-DP for the *entire* horizon — the
//! apples-to-apples counterpart of the local protocols' user-level `ε`.
//! Per-time error is `O((k/ε)·(log d)^{1.5})`, independent of `n`: the
//! local-vs-central gap the `exp_central_gap` bench measures is `Θ(√n)`.

use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_dyadic::tree::DyadicTree;
use rtf_primitives::laplace::Laplace;
use rtf_primitives::seeding::SeedSequence;
use rtf_streams::population::Population;

/// Runs the central-model tree mechanism over a population.
///
/// Returns estimates of `a[t]` for every `t`; `reports_sent` counts the
/// (unperturbed) per-period contributions users would upload to the
/// curator.
pub fn run_central_tree(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    let d = params.d();
    // Exact per-period derivative totals (the curator sees the truth).
    let mut leaves = vec![0.0f64; d as usize];
    for s in population.streams() {
        for (i, &c) in s.change_times().iter().enumerate() {
            leaves[(c - 1) as usize] += if i % 2 == 0 { 1.0 } else { -1.0 };
        }
    }
    let mut tree = DyadicTree::from_leaves(params.horizon(), &leaves);
    let scale = (params.k() as f64) * (1.0 + f64::from(params.log_d())) / params.epsilon();
    let lap = Laplace::new(scale);
    let mut rng = SeedSequence::new(seed).child(0xCE47).rng();
    tree.perturb(|_| lap.sample(&mut rng));
    let estimates: Vec<f64> = (1..=d).map(|t| tree.prefix_sum(t)).collect();
    ProtocolOutcome::from_parts(estimates, vec![params.n()], params.n() as u64 * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_streams::generator::UniformChanges;

    fn linf(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn error_is_n_free_and_small() {
        // Error depends on (k, d, ε) only: same envelope for n = 100 and
        // n = 10_000.
        let d = 64u64;
        let k = 4usize;
        // (1+log d) nodes per query, each Laplace(k(1+log d)/ε):
        // whp bound ≈ (1+log d)·scale·ln(2d/β).
        let scale = (k as f64) * 7.0 / 1.0;
        let envelope = 7.0 * scale * (2.0 * d as f64 / 0.05f64).ln();
        for n in [100usize, 10_000] {
            let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
            let mut rng = SeedSequence::new(6).rng();
            let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
            let o = run_central_tree(&params, &pop, 9);
            let err = linf(o.estimates(), pop.true_counts());
            assert!(err < envelope, "n={n}: err {err} vs envelope {envelope}");
        }
    }

    #[test]
    fn zero_noise_limit_recovers_truth() {
        // With a huge ε the Laplace scale shrinks; error must be tiny
        // relative to n. (ε ≤ 1 in ProtocolParams, so emulate by checking
        // the unperturbed tree path through DyadicTree directly.)
        let n = 500usize;
        let d = 32u64;
        let mut rng = SeedSequence::new(7).rng();
        let pop = Population::generate(&UniformChanges::new(d, 3, 0.8), n, &mut rng);
        let mut leaves = vec![0.0f64; d as usize];
        for s in pop.streams() {
            for (i, &c) in s.change_times().iter().enumerate() {
                leaves[(c - 1) as usize] += if i % 2 == 0 { 1.0 } else { -1.0 };
            }
        }
        let tree = DyadicTree::from_leaves(rtf_dyadic::interval::Horizon::new(d), &leaves);
        for t in 1..=d {
            assert!(
                (tree.prefix_sum(t) - pop.true_counts()[(t - 1) as usize]).abs() < 1e-9,
                "t = {t}"
            );
        }
    }

    #[test]
    fn central_crushes_local_at_moderate_n() {
        let n = 5_000usize;
        let d = 64u64;
        let k = 4usize;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(8).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        let central = run_central_tree(&params, &pop, 3);
        let local = rtf_core::protocol::run_in_memory(&params, &pop, 3);
        let err_c = linf(central.estimates(), pop.true_counts());
        let err_l = linf(local.estimates(), pop.true_counts());
        assert!(
            err_l > 5.0 * err_c,
            "local {err_l} should dwarf central {err_c}"
        );
    }

    #[test]
    fn determinism() {
        let params = ProtocolParams::new(100, 16, 2, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(9).rng();
        let pop = Population::generate(&UniformChanges::new(16, 2, 0.5), 100, &mut rng);
        let a = run_central_tree(&params, &pop, 5);
        let b = run_central_tree(&params, &pop, 5);
        assert_eq!(a.estimates(), b.estimates());
    }
}
