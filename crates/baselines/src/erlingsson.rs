//! The online protocol of Erlingsson et al. (2020), as restated in
//! Section 6 of the paper.
//!
//! Differences from FutureRand:
//!
//! 1. **Change sampling.** Each user samples a slot `i ∈ [k]` uniformly
//!    and keeps only its `i`-th change (if it has fewer than `i` changes it
//!    keeps nothing). After this, at most one partial sum at the sampled
//!    order is non-zero. We use the slot interpretation (rather than
//!    "uniform among its own `m ≤ k` changes") because it keeps the
//!    estimator exactly unbiased after the server's fixed `×k` rescale:
//!    `E[S'_u(I)] = S_u(I)/k` for every interval.
//! 2. **Perturbation.** The surviving partial sum is perturbed by one
//!    basic randomized response with `ε̃ = ε/2`; all other reports are
//!    uniform ±1. The report sequence deviates from uniform in at most one
//!    position, giving `ε`-LDP (two `e^{ε/2}` factors, one for position ×
//!    value each).
//! 3. **Estimation.** The server multiplies by the extra factor `k`
//!    (Section 6), which is what makes the final error linear in `k`.

use rand::Rng;
use rtf_core::client::ClientReport;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_core::server::Server;
use rtf_primitives::rr::BasicRandomizer;
use rtf_primitives::seeding::SeedSequence;
use rtf_primitives::sign::Sign;
use rtf_streams::population::Population;

/// Per-user state of the Erlingsson et al. client.
#[derive(Debug, Clone)]
struct ErlClient {
    h: u32,
    stride: u64,
    /// The kept change: time and derivative sign, if any survived
    /// sampling.
    kept: Option<(u64, Sign)>,
}

impl ErlClient {
    /// Samples order and change slot for one user.
    fn new<R: Rng + ?Sized>(params: &ProtocolParams, change_times: &[u64], rng: &mut R) -> Self {
        let h = rng.random_range(0..params.num_orders());
        // Uniform slot in [0..k); slots beyond the user's actual change
        // count keep nothing.
        let slot = rng.random_range(0..params.k());
        let kept = change_times.get(slot).map(|&t| {
            let sign = if slot % 2 == 0 {
                Sign::Plus
            } else {
                Sign::Minus
            };
            (t, sign)
        });
        ErlClient {
            h,
            stride: 1u64 << h,
            kept,
        }
    }

    /// The report for the interval completing at `t` (a multiple of the
    /// client's stride).
    fn report<R: Rng + ?Sized>(&self, t: u64, rr: &BasicRandomizer, rng: &mut R) -> ClientReport {
        debug_assert_eq!(t % self.stride, 0);
        let j = t / self.stride;
        let start = t - self.stride + 1;
        let bit = match self.kept {
            Some((ct, sign)) if (start..=t).contains(&ct) => rr.randomize(sign, rng),
            _ => Sign::uniform(rng),
        };
        ClientReport { t, j, bit }
    }
}

/// The preservation gap of the Erlingsson client's non-zero reports:
/// `(e^{ε/2}−1)/(e^{ε/2}+1) = tanh(ε/4)`.
pub fn erlingsson_c_gap(epsilon: f64) -> f64 {
    (epsilon / 4.0).tanh()
}

/// Runs the Erlingsson et al. protocol end to end over a population.
///
/// The server is `rtf-core`'s Algorithm 2 instance with effective gap
/// `c_gap/k`, which realises the `×k` rescale of Section 6.
///
/// # Panics
/// Panics on `params`/`population` mismatch, like
/// [`rtf_core::protocol::run_in_memory`].
pub fn run_erlingsson(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    population.assert_k_sparse(params.k());

    let rr = BasicRandomizer::new(params.epsilon() / 2.0);
    // Effective gap c_gap/k realises scale = (1+log d)·k/c_gap.
    let eff_gap = erlingsson_c_gap(params.epsilon()) / params.k() as f64;
    let gaps = vec![eff_gap; params.num_orders() as usize];
    let mut server = Server::new(*params, &gaps);

    let root = SeedSequence::new(seed);
    let mut groups: Vec<Vec<(ErlClient, rand::rngs::StdRng)>> =
        (0..params.num_orders()).map(|_| Vec::new()).collect();
    for u in 0..params.n() {
        let mut rng = root.child(u as u64).rng();
        let client = ErlClient::new(params, population.stream(u).change_times(), &mut rng);
        server.register_user(client.h);
        let h = client.h as usize;
        groups[h].push((client, rng));
    }

    let mut reports_sent = 0u64;
    for t in 1..=params.d() {
        let max_h = t.trailing_zeros().min(params.log_d());
        for h in 0..=max_h {
            for (client, rng) in groups[h as usize].iter_mut() {
                let r = client.report(t, &rr, rng);
                server.ingest(h, r.bit);
                reports_sent += 1;
            }
        }
        let _ = server.end_of_period(t);
    }

    ProtocolOutcome::from_parts(
        server.estimates().to_vec(),
        server.group_sizes().to_vec(),
        reports_sent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_streams::generator::UniformChanges;

    fn linf(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn c_gap_formula() {
        assert!((erlingsson_c_gap(1.0) - 0.25f64.tanh()).abs() < 1e-15);
        assert!(erlingsson_c_gap(0.5) < erlingsson_c_gap(1.0));
    }

    #[test]
    fn runs_and_is_deterministic() {
        let params = ProtocolParams::new(400, 32, 4, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(1).rng();
        let pop = Population::generate(&UniformChanges::new(32, 4, 0.8), 400, &mut rng);
        let o1 = run_erlingsson(&params, &pop, 7);
        let o2 = run_erlingsson(&params, &pop, 7);
        assert_eq!(o1.estimates(), o2.estimates());
        assert_eq!(o1.estimates().len(), 32);
    }

    #[test]
    fn unbiasedness_over_trials() {
        // Mean estimate over many trials must approach the truth: checks
        // the slot-sampling + ×k rescale bookkeeping.
        let n = 300usize;
        let d = 8u64;
        let k = 3usize;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(2).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 1.0), n, &mut rng);
        let trials = 600;
        let mut mean = vec![0.0; d as usize];
        for s in 0..trials {
            let o = run_erlingsson(&params, &pop, 1000 + s);
            for (m, &e) in mean.iter_mut().zip(o.estimates()) {
                *m += e / trials as f64;
            }
        }
        // Tolerance: the per-trial std is large (∝ k√n/c_gap); averaging
        // over T trials shrinks it by √T.
        let per_trial_sd =
            (1.0 + (d as f64).log2()) * (k as f64) / erlingsson_c_gap(1.0) * (n as f64).sqrt();
        let tol = 5.0 * per_trial_sd / (trials as f64).sqrt();
        let bias = linf(&mean, pop.true_counts());
        assert!(bias < tol, "bias {bias} vs tol {tol}");
    }

    #[test]
    fn error_grows_linearly_in_k_vs_future_rand() {
        // The headline comparison (reproduced properly in the benches):
        // Erlingsson's error grows ∝ k, FutureRand's ∝ √k. With exact
        // constants the scale ratio is ≈ 0.32·√k at ε = 1, so the
        // crossover sits near k ≈ 10 and the gap is ≈ 2.5× by k = 64.
        let n = 1_000usize;
        let d = 64u64;
        let k = 64usize;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(3).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 1.0), n, &mut rng);
        let trials = 6;
        let (mut ours, mut theirs) = (0.0, 0.0);
        for s in 0..trials {
            let o1 = rtf_core::protocol::run_in_memory(&params, &pop, 50 + s);
            let o2 = run_erlingsson(&params, &pop, 50 + s);
            ours += linf(o1.estimates(), pop.true_counts()) / trials as f64;
            theirs += linf(o2.estimates(), pop.true_counts()) / trials as f64;
        }
        assert!(
            theirs > 1.5 * ours,
            "Erlingsson {theirs} should exceed FutureRand {ours} at k = {k}"
        );
    }

    #[test]
    fn kept_change_signs_alternate() {
        // Slot parity must map to derivative sign: slot 0 → +1, slot 1 → −1.
        let params = ProtocolParams::new(10, 16, 4, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(4).rng();
        let mut seen_plus = false;
        let mut seen_minus = false;
        for _ in 0..200 {
            let c = ErlClient::new(&params, &[3, 9, 12], &mut rng);
            if let Some((t, s)) = c.kept {
                match t {
                    3 | 12 => {
                        assert_eq!(s, Sign::Plus);
                        seen_plus = true;
                    }
                    9 => {
                        assert_eq!(s, Sign::Minus);
                        seen_minus = true;
                    }
                    other => panic!("kept unexpected time {other}"),
                }
            }
        }
        assert!(seen_plus && seen_minus);
    }
}
