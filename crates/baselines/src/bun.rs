//! The Bun–Nelson–Stemmer (2019) composed randomizer — Algorithm 4 /
//! Appendix A.2 of the paper.
//!
//! Same pseudo-code as the paper's `R̃`, different parameters: the annulus
//! is the *symmetric* interval `kp ± √((k/2)·ln(2/λ))` and the
//! per-coordinate budget satisfies `ε = 6·ε̃·√(k·ln(1/λ))` (Fact A.6),
//! subject to the validity constraint `0 < λ < (ε̃√k / (2(k+1)))^{2/3}`
//! (Inequality 45). Theorem A.8 shows its gap is only
//! `O(ε/√(k·ln(k/ε)) + (ε/(k·ln(k/ε)))^{2/3})` — a `√ln(k/ε)` factor
//! worse than FutureRand when the first term dominates, which is exactly
//! what the `exp_cgap` bench tabulates.
//!
//! We solve for a feasible `(λ, ε̃)` pair by fixed-point iteration on the
//! constraint, then reuse the workspace's exact [`WeightClassLaw`]
//! machinery over the Bun annulus to get its exact `c_gap` and realized
//! privacy loss.

use rtf_core::annulus::Annulus;
use rtf_core::gap::WeightClassLaw;

/// A solved Bun et al. parameterisation for a target `(k, ε)`.
#[derive(Debug, Clone)]
pub struct BunRandomizer {
    k: usize,
    epsilon: f64,
    lambda: f64,
    eps_tilde: f64,
    law: WeightClassLaw,
}

impl BunRandomizer {
    /// Solves for `(λ, ε̃)` satisfying Fact A.6 and builds the randomizer.
    ///
    /// Returns `None` if no feasible `λ ∈ (0, 1)` exists for this `(k, ε)`
    /// (tiny `k` with large `ε` can be infeasible because Inequality (45)
    /// forces `λ` so small that the annulus swallows `[0..k−1]`).
    pub fn solve(k: usize, epsilon: f64) -> Option<Self> {
        assert!(k >= 1, "k must be ≥ 1");
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "ε must be in (0,1], got {epsilon}"
        );
        let kf = k as f64;
        // Fixed point: ε̃(λ) = ε / (6√(k ln(1/λ))); constraint
        // λ < (ε̃√k / (2(k+1)))^{2/3}. Start permissive and contract.
        let mut lambda: f64 = 0.1;
        for _ in 0..200 {
            let eps_tilde = epsilon / (6.0 * (kf * (1.0 / lambda).ln()).sqrt());
            let cap = (eps_tilde * kf.sqrt() / (2.0 * (kf + 1.0))).powf(2.0 / 3.0);
            let next = (0.5 * cap).min(0.5);
            if next <= f64::MIN_POSITIVE {
                return None;
            }
            if (next - lambda).abs() < 1e-15 * lambda {
                lambda = next;
                break;
            }
            lambda = next;
        }
        let eps_tilde = epsilon / (6.0 * (kf * (1.0 / lambda).ln()).sqrt());
        // Validity re-check (Inequality 45).
        let cap = (eps_tilde * kf.sqrt() / (2.0 * (kf + 1.0))).powf(2.0 / 3.0);
        if !(lambda > 0.0 && lambda < cap) {
            return None;
        }
        // Symmetric annulus kp ± √((k/2)·ln(2/λ)) (Equation 43), rounded
        // inward and clamped into [0, k−1] so the complement is non-empty.
        let p = 1.0 / (eps_tilde.exp() + 1.0);
        let radius = (kf / 2.0 * (2.0 / lambda).ln()).sqrt();
        let lb = ((kf * p - radius).ceil().max(0.0)) as usize;
        let ub_raw = (kf * p + radius).floor() as i64;
        if ub_raw < lb as i64 || ub_raw >= k as i64 {
            // Annulus covers everything up to k: the resampling branch
            // would be empty — infeasible as specified.
            if ub_raw >= k as i64 {
                return None;
            }
            return None;
        }
        let annulus = Annulus::from_bounds(k, lb, ub_raw as usize);
        let law = WeightClassLaw::with_annulus(k, eps_tilde, annulus);
        Some(BunRandomizer {
            k,
            epsilon,
            lambda,
            eps_tilde,
            law,
        })
    }

    /// The sparsity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The target privacy budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The solved `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The solved per-coordinate budget `ε̃`.
    pub fn eps_tilde(&self) -> f64 {
        self.eps_tilde
    }

    /// The exact output law over the Bun annulus (exact `c_gap`,
    /// realized ε, pmf).
    pub fn law(&self) -> &WeightClassLaw {
        &self.law
    }

    /// Theorem A.8's upper bound on the gap (the expression inside the
    /// `O(·)` with constant 1):
    /// `ε/√(k·ln(k/ε)) + (ε/(k·ln(k/ε)))^{2/3}`.
    pub fn theorem_a8_gap_bound(&self) -> f64 {
        let kf = self.k as f64;
        let lg = (kf / self.epsilon).ln().max(1.0);
        self.epsilon / (kf * lg).sqrt() + (self.epsilon / (kf * lg)).powf(2.0 / 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_finds_feasible_parameters_for_large_k() {
        for k in [64usize, 256, 1024, 4096] {
            for eps in [0.25, 0.5, 1.0] {
                let b = BunRandomizer::solve(k, eps)
                    .unwrap_or_else(|| panic!("no solution at k={k}, ε={eps}"));
                // Constraint 45 holds.
                let cap =
                    (b.eps_tilde() * (k as f64).sqrt() / (2.0 * (k as f64 + 1.0))).powf(2.0 / 3.0);
                assert!(b.lambda() > 0.0 && b.lambda() < cap, "k={k} ε={eps}");
                // Fact A.6: ε = 6 ε̃ √(k ln(1/λ)).
                let recon = 6.0 * b.eps_tilde() * ((k as f64) * (1.0 / b.lambda()).ln()).sqrt();
                assert!(
                    (recon - eps).abs() < 1e-9,
                    "k={k}: ε reconstruction {recon} vs {eps}"
                );
            }
        }
    }

    #[test]
    fn bun_gap_worse_than_future_rand() {
        // The paper's Appendix A.2 point: FutureRand's exact gap exceeds
        // Bun's at the same (k, ε), asymptotically by √ln(k/ε).
        for k in [256usize, 1024, 4096] {
            let eps = 1.0;
            let ours = WeightClassLaw::for_protocol(k, eps).c_gap();
            let theirs = BunRandomizer::solve(k, eps).unwrap().law().c_gap();
            assert!(ours > theirs, "k={k}: ours {ours} ≤ Bun {theirs}");
        }
    }

    #[test]
    fn bun_privacy_holds_at_nominal_epsilon() {
        // Fact A.6 claims ε-DP; the exact realized ε must respect it.
        for k in [64usize, 512, 2048] {
            let b = BunRandomizer::solve(k, 1.0).unwrap();
            let realized = b.law().realized_epsilon();
            assert!(realized <= 1.0 + 1e-9, "k={k}: realized {realized} > 1.0");
        }
    }

    #[test]
    fn gap_within_theorem_a8_bound() {
        for k in [128usize, 1024] {
            let b = BunRandomizer::solve(k, 0.5).unwrap();
            // Theorem A.8 is an upper bound (with unspecified constant);
            // the exact gap must not exceed a small multiple of it.
            assert!(b.law().c_gap() <= 3.0 * b.theorem_a8_gap_bound(), "k={k}");
        }
    }

    #[test]
    fn annulus_is_symmetric_around_kp() {
        let b = BunRandomizer::solve(1024, 1.0).unwrap();
        let p = 1.0 / (b.eps_tilde().exp() + 1.0);
        let kp = 1024.0 * p;
        let ann = b.law().annulus();
        let lo_gap = kp - ann.lb() as f64;
        let hi_gap = ann.ub() as f64 - kp;
        // Integer rounding allows ±1 asymmetry.
        assert!(
            (lo_gap - hi_gap).abs() <= 2.0,
            "annulus asymmetric: {lo_gap} vs {hi_gap}"
        );
    }

    #[test]
    fn tiny_k_may_be_infeasible_and_reports_none() {
        // For k = 1 the constraint can be unsatisfiable; either way, no
        // panic.
        let _ = BunRandomizer::solve(1, 1.0);
        let _ = BunRandomizer::solve(2, 1.0);
    }
}
