//! Naive repeated randomized response — the strawman of Section 1.
//!
//! Each period, every user reports their *current* Boolean value through
//! one-shot randomized response; the server unbiases the count. Two
//! variants:
//!
//! * [`run_naive_split`] — the per-report budget is `ε/d`, so the whole
//!   horizon composes to `ε`-LDP. Utility collapses: per-period error is
//!   `Θ((d/ε)·√n)`.
//! * [`run_naive_decay`] — the per-report budget stays `ε`, so utility is
//!   good but the *realized* privacy budget grows to `ε·d` (the "rapid
//!   degradation of privacy" the paper quotes from its reference \[7\]); the function
//!   returns that realized budget alongside the estimates.

use rand::Rng;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::ProtocolOutcome;
use rtf_primitives::rr::BasicRandomizer;
use rtf_primitives::seeding::SeedSequence;
use rtf_primitives::sign::Sign;
use rtf_streams::population::Population;

/// Shared driver: repeated RR with a given per-report budget.
fn run_repeated_rr(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    per_report_eps: f64,
) -> ProtocolOutcome {
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    let rr = BasicRandomizer::new(per_report_eps);
    let root = SeedSequence::new(seed);
    let n = params.n();
    let d = params.d();
    // Unbiasing: report r ∈ {−1,+1} encodes value v ∈ {0,1} as sign
    // s = 2v−1 kept w.p. 1−p. E[r] = s·(1−2p) ⇒ v̂ = (r/(1−2p) + 1)/2.
    let gap = rr.gap();
    let mut estimates = Vec::with_capacity(d as usize);
    let mut rngs: Vec<rand::rngs::StdRng> = (0..n).map(|u| root.child(u as u64).rng()).collect();
    for t in 1..=d {
        let mut sum = 0.0;
        for (u, rng) in rngs.iter_mut().enumerate() {
            let v = population.stream(u).value_at(t);
            let s = if v { Sign::Plus } else { Sign::Minus };
            let r = if rng.random::<f64>() < rr.p_flip() {
                s.flipped()
            } else {
                s
            };
            sum += r.as_f64();
        }
        // â[t] = (Σ r / gap + n) / 2.
        estimates.push((sum / gap + n as f64) / 2.0);
    }
    ProtocolOutcome::from_parts(estimates, vec![n], (n as u64) * d)
}

/// Repeated RR with the privacy budget split `ε/d` per period — the
/// `ε`-LDP strawman with `Θ(d/ε·√n)` error.
pub fn run_naive_split(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    run_repeated_rr(
        params,
        population,
        seed,
        params.epsilon() / params.d() as f64,
    )
}

/// Repeated RR with fixed per-period budget `ε` — good utility, but the
/// realized privacy budget is `ε·d` (returned as the second element).
pub fn run_naive_decay(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> (ProtocolOutcome, f64) {
    let outcome = run_repeated_rr(params, population, seed, params.epsilon());
    let realized = params.epsilon() * params.d() as f64;
    (outcome, realized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_streams::generator::UniformChanges;

    fn linf(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn setup(n: usize, d: u64, k: usize) -> (ProtocolParams, Population) {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(5).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        (params, pop)
    }

    #[test]
    fn decay_variant_tracks_truth_closely() {
        // With per-report ε = 1 the estimator is accurate: error ≈
        // √(n·ln d)/gap ≪ n.
        let (params, pop) = setup(4_000, 16, 3);
        let (o, realized) = run_naive_decay(&params, &pop, 11);
        assert_eq!(realized, 16.0);
        let err = linf(o.estimates(), pop.true_counts());
        let gap = 0.5f64.tanh();
        let envelope = (2.0 * 4_000.0 * (2.0 * 16.0 / 0.05f64).ln()).sqrt() / (2.0 * gap) * 2.0;
        assert!(err < envelope, "err {err} vs envelope {envelope}");
    }

    #[test]
    fn split_variant_is_much_worse() {
        let (params, pop) = setup(4_000, 64, 3);
        let (decay, _) = run_naive_decay(&params, &pop, 13);
        let split = run_naive_split(&params, &pop, 13);
        let err_decay = linf(decay.estimates(), pop.true_counts());
        let err_split = linf(split.estimates(), pop.true_counts());
        assert!(
            err_split > 10.0 * err_decay,
            "split {err_split} vs decay {err_decay}"
        );
    }

    #[test]
    fn unbiasedness_of_repeated_rr() {
        let (params, pop) = setup(500, 8, 2);
        let trials = 400;
        let mut mean = vec![0.0; 8];
        for s in 0..trials {
            let o = run_naive_split(&params, &pop, 100 + s);
            for (m, &e) in mean.iter_mut().zip(o.estimates()) {
                *m += e / trials as f64;
            }
        }
        // Per-trial sd ≈ √n/(2·gap(ε/d)); gap(1/8) ≈ 1/16.
        let gap = (1.0f64 / 8.0 / 2.0).tanh();
        let per_trial_sd = (500f64).sqrt() / (2.0 * gap);
        let tol = 5.0 * per_trial_sd / (trials as f64).sqrt();
        let bias = linf(&mean, pop.true_counts());
        assert!(bias < tol, "bias {bias} vs tol {tol}");
    }

    #[test]
    fn communication_is_one_bit_per_period() {
        let (params, pop) = setup(100, 16, 2);
        let o = run_naive_split(&params, &pop, 1);
        assert_eq!(o.reports_sent(), 100 * 16);
    }

    #[test]
    fn determinism() {
        let (params, pop) = setup(200, 16, 2);
        let a = run_naive_split(&params, &pop, 42);
        let b = run_naive_split(&params, &pop, 42);
        assert_eq!(a.estimates(), b.estimates());
    }
}
