//! Dyadic interval algebra for hierarchical release of longitudinal
//! statistics.
//!
//! This crate implements Section 3 of *Randomize the Future* (Ohrimenko,
//! Wirth, Wu — PODS 2022): dyadic intervals over the time horizon `[1..d]`
//! (Definition 3.2), the minimal prefix decomposition `C(t)` (Fact 3.8),
//! and two aggregation containers used by the server-side algorithms —
//! a streaming [`frontier::Frontier`] holding only the most
//! recently completed interval per order (enough to answer every prefix
//! query online with `O(log d)` state), and a full
//! [`tree::DyadicTree`] used by offline analyses and the
//! central-model baseline.
//!
//! # Conventions
//!
//! Times are **1-based**: `t ∈ [1..d]`, matching the paper. An interval of
//! order `h` and index `j ≥ 1` covers `{(j−1)·2^h + 1, …, j·2^h}`. The
//! horizon `d` must be a power of two (the paper assumes this w.l.o.g.).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod decompose;
pub mod frontier;
pub mod interval;
pub mod tree;

pub use decompose::{decompose_prefix, decompose_range};
pub use frontier::Frontier;
pub use interval::{DyadicInterval, Horizon};
pub use tree::DyadicTree;
