//! Dyadic intervals (Definition 3.2) and the time horizon they live on.

/// The time horizon `[1..d]` with `d` a power of two.
///
/// Owns the global constants every dyadic computation needs: `d`,
/// `log₂ d`, and the set of valid orders `[0..log d]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Horizon {
    d: u64,
    log_d: u32,
}

impl Horizon {
    /// Creates the horizon `[1..d]`.
    ///
    /// # Panics
    /// Panics unless `d` is a power of two and `d ≥ 1`.
    pub fn new(d: u64) -> Self {
        assert!(
            d >= 1 && d.is_power_of_two(),
            "horizon d must be a power of two ≥ 1, got {d}"
        );
        Horizon {
            d,
            log_d: d.trailing_zeros(),
        }
    }

    /// The number of time periods `d`.
    #[inline]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// `log₂ d`.
    #[inline]
    pub fn log_d(&self) -> u32 {
        self.log_d
    }

    /// The number of distinct orders, `1 + log₂ d` — also the support size
    /// of the client's order-sampling distribution (Algorithm 1, line 1).
    #[inline]
    pub fn num_orders(&self) -> u32 {
        self.log_d + 1
    }

    /// Iterator over valid orders `h ∈ [0..log d]`.
    pub fn orders(&self) -> impl Iterator<Item = u32> {
        0..=self.log_d
    }

    /// The number of dyadic intervals of order `h`, i.e. `d / 2^h`
    /// (`|ISet[h]|` in the paper's notation).
    ///
    /// # Panics
    /// Panics if `h > log d`.
    #[inline]
    pub fn intervals_at_order(&self, h: u32) -> u64 {
        assert!(h <= self.log_d, "order {h} exceeds log d = {}", self.log_d);
        self.d >> h
    }

    /// Iterator over all dyadic intervals of order `h` (the paper's
    /// `ISet[h]`), in left-to-right order.
    pub fn iset_at_order(&self, h: u32) -> impl Iterator<Item = DyadicInterval> {
        let count = self.intervals_at_order(h);
        (1..=count).map(move |j| DyadicInterval::new(h, j))
    }

    /// Iterator over the full `ISet = ∪_h ISet[h]`, order by order.
    pub fn iset(&self) -> impl Iterator<Item = DyadicInterval> + '_ {
        self.orders().flat_map(move |h| self.iset_at_order(h))
    }

    /// Total number of dyadic intervals, `Σ_h d/2^h = 2d − 1`.
    pub fn iset_len(&self) -> u64 {
        2 * self.d - 1
    }

    /// Whether `t` is a valid time on this horizon.
    #[inline]
    pub fn contains_time(&self, t: u64) -> bool {
        (1..=self.d).contains(&t)
    }

    /// The unique order-`h` interval containing time `t`.
    ///
    /// # Panics
    /// Panics if `t` is off-horizon or `h > log d`.
    pub fn interval_containing(&self, h: u32, t: u64) -> DyadicInterval {
        assert!(self.contains_time(t), "time {t} outside [1..{}]", self.d);
        assert!(h <= self.log_d, "order {h} exceeds log d = {}", self.log_d);
        DyadicInterval::new(h, t.div_ceil(1 << h))
    }
}

/// A dyadic interval `I_{h,j} = {(j−1)·2^h + 1, …, j·2^h}` (Definition 3.2).
///
/// `h` is the *order*, `j ≥ 1` the 1-based index within that order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DyadicInterval {
    order: u32,
    index: u64,
}

impl DyadicInterval {
    /// Creates `I_{h,j}`.
    ///
    /// # Panics
    /// Panics if `index == 0` (indices are 1-based).
    pub fn new(order: u32, index: u64) -> Self {
        assert!(index >= 1, "dyadic interval indices are 1-based");
        DyadicInterval { order, index }
    }

    /// The order `h` (the interval covers `2^h` time periods).
    #[inline]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// The 1-based index `j` within its order.
    #[inline]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The interval length `2^h`.
    #[inline]
    pub fn len(&self) -> u64 {
        1u64 << self.order
    }

    /// Always `false`; dyadic intervals are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First covered time, `(j−1)·2^h + 1`.
    #[inline]
    pub fn start(&self) -> u64 {
        (self.index - 1) * self.len() + 1
    }

    /// Last covered time, `j·2^h` — also the first time at which a client
    /// has all the data needed to compute this interval's partial sum
    /// (Section 4.2).
    #[inline]
    pub fn end(&self) -> u64 {
        self.index * self.len()
    }

    /// Whether time `t` lies inside the interval.
    #[inline]
    pub fn contains(&self, t: u64) -> bool {
        (self.start()..=self.end()).contains(&t)
    }

    /// Iterator over the covered times.
    pub fn times(&self) -> impl Iterator<Item = u64> {
        self.start()..=self.end()
    }

    /// The parent interval (order `h+1`) in the dyadic tree.
    #[must_use]
    pub fn parent(&self) -> DyadicInterval {
        DyadicInterval::new(self.order + 1, self.index.div_ceil(2))
    }

    /// The two children (order `h−1`), or `None` for leaves (order 0).
    pub fn children(&self) -> Option<(DyadicInterval, DyadicInterval)> {
        if self.order == 0 {
            return None;
        }
        let h = self.order - 1;
        Some((
            DyadicInterval::new(h, 2 * self.index - 1),
            DyadicInterval::new(h, 2 * self.index),
        ))
    }

    /// Whether `self` fully contains `other`.
    pub fn covers(&self, other: &DyadicInterval) -> bool {
        self.start() <= other.start() && other.end() <= self.end()
    }

    /// Whether the two intervals share any time period. Dyadic intervals
    /// are laminar: they either nest or are disjoint.
    pub fn overlaps(&self, other: &DyadicInterval) -> bool {
        self.start() <= other.end() && other.start() <= self.end()
    }
}

impl std::fmt::Display for DyadicInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "I[{},{}]=({}..={})",
            self.order,
            self.index,
            self.start(),
            self.end()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_3_all_intervals_on_d4() {
        // Example 3.3: the dyadic intervals on [4].
        let h = Horizon::new(4);
        let intervals: Vec<DyadicInterval> = h.iset().collect();
        let expected = vec![
            DyadicInterval::new(0, 1),
            DyadicInterval::new(0, 2),
            DyadicInterval::new(0, 3),
            DyadicInterval::new(0, 4),
            DyadicInterval::new(1, 1),
            DyadicInterval::new(1, 2),
            DyadicInterval::new(2, 1),
        ];
        assert_eq!(intervals, expected);
        assert_eq!(h.iset_len(), 7);
        // Spot-check the covered ranges from the example.
        assert_eq!((intervals[4].start(), intervals[4].end()), (1, 2)); // I_{1,1} = {1,2}
        assert_eq!((intervals[5].start(), intervals[5].end()), (3, 4)); // I_{1,2} = {3,4}
        assert_eq!((intervals[6].start(), intervals[6].end()), (1, 4)); // I_{2,1}
    }

    #[test]
    fn horizon_rejects_non_power_of_two() {
        for bad in [0u64, 3, 5, 6, 7, 100] {
            let r = std::panic::catch_unwind(|| Horizon::new(bad));
            assert!(r.is_err(), "d = {bad} should be rejected");
        }
    }

    #[test]
    fn horizon_d1_degenerate() {
        let h = Horizon::new(1);
        assert_eq!(h.log_d(), 0);
        assert_eq!(h.num_orders(), 1);
        assert_eq!(h.iset().count(), 1);
    }

    #[test]
    fn interval_geometry() {
        let i = DyadicInterval::new(3, 2); // {9..16}
        assert_eq!(i.len(), 8);
        assert_eq!(i.start(), 9);
        assert_eq!(i.end(), 16);
        assert!(i.contains(9) && i.contains(16));
        assert!(!i.contains(8) && !i.contains(17));
        assert_eq!(i.times().count(), 8);
    }

    #[test]
    fn parent_child_round_trip() {
        let h = Horizon::new(64);
        for i in h.iset() {
            if let Some((l, r)) = i.children() {
                assert_eq!(l.parent(), i);
                assert_eq!(r.parent(), i);
                assert!(i.covers(&l) && i.covers(&r));
                assert_eq!(l.end() + 1, r.start());
                assert_eq!(l.start(), i.start());
                assert_eq!(r.end(), i.end());
            } else {
                assert_eq!(i.order(), 0);
            }
        }
    }

    #[test]
    fn intervals_of_same_order_partition_horizon() {
        let hz = Horizon::new(32);
        for h in hz.orders() {
            let mut covered = [false; 33];
            for i in hz.iset_at_order(h) {
                for t in i.times() {
                    assert!(!covered[t as usize], "time {t} covered twice at order {h}");
                    covered[t as usize] = true;
                }
            }
            assert!(
                covered[1..].iter().all(|&c| c),
                "order {h} must cover [1..32]"
            );
        }
    }

    #[test]
    fn laminar_structure() {
        let hz = Horizon::new(16);
        let all: Vec<_> = hz.iset().collect();
        for a in &all {
            for b in &all {
                if a.overlaps(b) {
                    assert!(
                        a.covers(b) || b.covers(a),
                        "{a} and {b} overlap without nesting"
                    );
                }
            }
        }
    }

    #[test]
    fn interval_containing_is_inverse_of_contains() {
        let hz = Horizon::new(64);
        for h in hz.orders() {
            for t in 1..=64u64 {
                let i = hz.interval_containing(h, t);
                assert_eq!(i.order(), h);
                assert!(i.contains(t), "{i} should contain {t}");
            }
        }
    }

    #[test]
    fn end_is_first_completion_time() {
        // The last datum needed for I_{h,j} arrives at time j·2^h
        // (Section 4.2): end() must be divisible by 2^h with quotient j.
        let hz = Horizon::new(128);
        for i in hz.iset() {
            assert_eq!(i.end() % i.len(), 0);
            assert_eq!(i.end() / i.len(), i.index());
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_index_rejected() {
        let _ = DyadicInterval::new(0, 0);
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", DyadicInterval::new(1, 2));
        assert!(s.contains("1") && s.contains("2") && s.contains("3..=4"));
    }
}
