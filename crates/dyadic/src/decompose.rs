//! Minimal dyadic decompositions (Fact 3.8).
//!
//! A prefix `[1..t]` decomposes into at most `⌈log t⌉ + 1` disjoint dyadic
//! intervals with *distinct orders* — one per set bit of `t`. A general
//! range `[ℓ..r]` decomposes into at most `2·⌈log(r−ℓ+1)⌉ + 2` dyadic
//! intervals (orders may repeat), which the paper notes in passing after
//! Fact 3.8.

use crate::interval::DyadicInterval;

/// The canonical decomposition `C(t)` of the prefix `[1..t]` into disjoint
/// dyadic intervals with distinct orders, highest order first (Fact 3.8).
///
/// The construction reads the binary expansion of `t`: each set bit at
/// position `h` contributes the order-`h` interval ending at the cumulative
/// position reached so far. For example `C(3) = {I_{1,1}, I_{0,3}} =
/// {{1,2},{3}}` as in Figure 1.
///
/// Returns the empty vector for `t = 0` (the empty prefix).
pub fn decompose_prefix(t: u64) -> Vec<DyadicInterval> {
    let mut parts = Vec::with_capacity(t.count_ones() as usize);
    let mut covered: u64 = 0;
    // Walk the set bits from most to least significant.
    let mut remaining = t;
    while remaining != 0 {
        let h = 63 - remaining.leading_zeros(); // highest set bit
        let len = 1u64 << h;
        covered += len;
        parts.push(DyadicInterval::new(h, covered >> h));
        remaining ^= len;
    }
    parts
}

/// Decomposes an arbitrary range `[l..r]` (inclusive, 1-based) into a
/// minimal sequence of disjoint dyadic intervals, left to right.
///
/// This is the classic segment-tree cover: repeatedly take the largest
/// dyadic interval that starts at the current position and fits inside the
/// remainder.
///
/// # Panics
/// Panics if `l == 0` or `l > r`.
pub fn decompose_range(l: u64, r: u64) -> Vec<DyadicInterval> {
    assert!(l >= 1, "times are 1-based");
    assert!(l <= r, "empty or inverted range [{l}..{r}]");
    let mut parts = Vec::new();
    let mut pos = l;
    while pos <= r {
        // Largest order aligned at `pos`: the interval of order h starts at
        // pos iff 2^h divides pos−1.
        let align = if pos == 1 {
            63
        } else {
            (pos - 1).trailing_zeros()
        };
        // Largest order that still fits into [pos..r].
        let space = 63 - (r - pos + 1).leading_zeros();
        let h = align.min(space);
        let len = 1u64 << h;
        parts.push(DyadicInterval::new(h, (pos - 1 + len) >> h));
        pos += len;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: check that a list of intervals tiles [l..r] exactly.
    fn assert_tiles(parts: &[DyadicInterval], l: u64, r: u64) {
        let mut pos = l;
        for p in parts {
            assert_eq!(p.start(), pos, "gap or overlap before {p}");
            pos = p.end() + 1;
        }
        assert_eq!(pos, r + 1, "cover must end exactly at {r}");
    }

    #[test]
    fn figure_1_c3() {
        // Figure 1 / Fact 3.8 example: C(3) = {{1,2}, {3}}.
        let c3 = decompose_prefix(3);
        assert_eq!(
            c3,
            vec![DyadicInterval::new(1, 1), DyadicInterval::new(0, 3)]
        );
    }

    #[test]
    fn prefix_edge_cases() {
        assert!(decompose_prefix(0).is_empty());
        assert_eq!(decompose_prefix(1), vec![DyadicInterval::new(0, 1)]);
        // Power of two: a single interval.
        assert_eq!(decompose_prefix(8), vec![DyadicInterval::new(3, 1)]);
        // All-ones: one interval per order.
        let c7 = decompose_prefix(7);
        assert_eq!(c7.len(), 3);
        assert_eq!(
            c7,
            vec![
                DyadicInterval::new(2, 1),
                DyadicInterval::new(1, 3),
                DyadicInterval::new(0, 7)
            ]
        );
    }

    #[test]
    fn prefix_tiles_and_has_distinct_orders() {
        for t in 1..=4096u64 {
            let parts = decompose_prefix(t);
            assert_tiles(&parts, 1, t);
            // Distinct orders, strictly decreasing (Fact 3.8).
            assert!(parts.windows(2).all(|w| w[0].order() > w[1].order()));
            // Size bound: number of set bits ≤ ⌈log t⌉ + 1.
            assert_eq!(parts.len(), t.count_ones() as usize);
        }
    }

    #[test]
    fn prefix_interval_ends_match_truncated_t() {
        // The order-h part of C(t) must end at (t >> h) << h — the property
        // the streaming frontier relies on (see `frontier`).
        for t in 1..=1024u64 {
            for p in decompose_prefix(t) {
                let h = p.order();
                assert_eq!(p.end(), (t >> h) << h);
            }
        }
    }

    #[test]
    fn range_example_2_to_3() {
        // The paper's example after Fact 3.8: [2..3] = {{2},{3}} (two
        // order-0 intervals; orders may repeat).
        let parts = decompose_range(2, 3);
        assert_eq!(
            parts,
            vec![DyadicInterval::new(0, 2), DyadicInterval::new(0, 3)]
        );
    }

    #[test]
    fn range_tiles_exactly() {
        for l in 1..=128u64 {
            for r in l..=128u64 {
                let parts = decompose_range(l, r);
                assert_tiles(&parts, l, r);
            }
        }
    }

    #[test]
    fn range_is_minimal_size() {
        // Minimality bound: ≤ 2·(⌊log₂ len⌋ + 1) parts.
        for l in 1..=256u64 {
            for r in l..=256u64 {
                let len = r - l + 1;
                let bound = 2 * ((64 - len.leading_zeros()) as usize);
                let parts = decompose_range(l, r);
                assert!(
                    parts.len() <= bound,
                    "[{l}..{r}]: {} parts > bound {bound}",
                    parts.len()
                );
            }
        }
    }

    #[test]
    fn range_prefix_agrees_with_decompose_prefix() {
        for t in 1..=512u64 {
            assert_eq!(decompose_range(1, t), decompose_prefix(t));
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn range_zero_start_rejected() {
        let _ = decompose_range(0, 4);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn range_inverted_rejected() {
        let _ = decompose_range(5, 4);
    }
}
