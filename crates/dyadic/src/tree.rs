//! A complete dyadic tree holding one value per dyadic interval.
//!
//! Used where the *whole* hierarchy is materialised: the central-model
//! binary tree mechanism (every node gets independent Laplace noise) and
//! offline analyses. The online protocol itself only needs the
//! [`Frontier`](crate::frontier::Frontier).

use crate::interval::{DyadicInterval, Horizon};

/// Dense storage of one `T` per dyadic interval on a horizon.
///
/// Level `h` holds `d / 2^h` values; total `2d − 1`.
#[derive(Debug, Clone)]
pub struct DyadicTree<T> {
    horizon: Horizon,
    /// `levels[h][j−1]` = value of `I_{h,j}`.
    levels: Vec<Vec<T>>,
}

impl<T: Clone + Default> DyadicTree<T> {
    /// A tree with every node set to `T::default()`.
    pub fn new(horizon: Horizon) -> Self {
        let levels = horizon
            .orders()
            .map(|h| vec![T::default(); horizon.intervals_at_order(h) as usize])
            .collect();
        DyadicTree { horizon, levels }
    }
}

impl<T> DyadicTree<T> {
    /// The underlying horizon.
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// Shared access to the value at `interval`.
    ///
    /// # Panics
    /// Panics if the interval is off-horizon.
    pub fn get(&self, interval: DyadicInterval) -> &T {
        &self.levels[interval.order() as usize][(interval.index() - 1) as usize]
    }

    /// Mutable access to the value at `interval`.
    pub fn get_mut(&mut self, interval: DyadicInterval) -> &mut T {
        &mut self.levels[interval.order() as usize][(interval.index() - 1) as usize]
    }

    /// Iterates `(interval, &value)` over the whole tree, order by order.
    pub fn iter(&self) -> impl Iterator<Item = (DyadicInterval, &T)> {
        self.levels.iter().enumerate().flat_map(|(h, level)| {
            level
                .iter()
                .enumerate()
                .map(move |(j, v)| (DyadicInterval::new(h as u32, (j + 1) as u64), v))
        })
    }
}

impl DyadicTree<f64> {
    /// Builds the tree of interval sums from per-period leaf values
    /// (`leaves[t−1]` = value at time `t`): every internal node becomes the
    /// sum of its children, i.e. node `I` holds `Σ_{t ∈ I} leaves[t−1]`.
    ///
    /// # Panics
    /// Panics unless `leaves.len() == d`.
    pub fn from_leaves(horizon: Horizon, leaves: &[f64]) -> Self {
        assert_eq!(
            leaves.len() as u64,
            horizon.d(),
            "need exactly d = {} leaves, got {}",
            horizon.d(),
            leaves.len()
        );
        let mut levels: Vec<Vec<f64>> = Vec::with_capacity(horizon.num_orders() as usize);
        levels.push(leaves.to_vec());
        for h in 1..=horizon.log_d() {
            let below = &levels[(h - 1) as usize];
            let level: Vec<f64> = below.chunks_exact(2).map(|c| c[0] + c[1]).collect();
            levels.push(level);
        }
        DyadicTree { horizon, levels }
    }

    /// Applies `noise(interval)` additively to every node — the
    /// central-model mechanism's per-node perturbation hook.
    pub fn perturb(&mut self, mut noise: impl FnMut(DyadicInterval) -> f64) {
        for h in 0..self.levels.len() {
            for j in 0..self.levels[h].len() {
                self.levels[h][j] += noise(DyadicInterval::new(h as u32, (j + 1) as u64));
            }
        }
    }

    /// The prefix sum `Σ_{I ∈ C(t)} node(I)` — exact if unperturbed,
    /// the tree-mechanism estimate if perturbed.
    pub fn prefix_sum(&self, t: u64) -> f64 {
        assert!(
            self.horizon.contains_time(t),
            "time {t} outside horizon [1..{}]",
            self.horizon.d()
        );
        crate::decompose::decompose_prefix(t)
            .into_iter()
            .map(|i| *self.get(i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_leaves_builds_interval_sums() {
        let hz = Horizon::new(8);
        let leaves: Vec<f64> = (1..=8).map(f64::from).collect();
        let tree = DyadicTree::from_leaves(hz, &leaves);
        for (i, &v) in tree.iter() {
            let expect: f64 = i.times().map(|t| t as f64).sum();
            assert_eq!(v, expect, "node {i}");
        }
    }

    #[test]
    fn prefix_sum_matches_direct() {
        let hz = Horizon::new(16);
        let leaves: Vec<f64> = (0..16).map(|i| ((i * 7 + 3) % 5) as f64 - 2.0).collect();
        let tree = DyadicTree::from_leaves(hz, &leaves);
        let mut direct = 0.0;
        for t in 1..=16u64 {
            direct += leaves[(t - 1) as usize];
            assert_eq!(tree.prefix_sum(t), direct, "t = {t}");
        }
    }

    #[test]
    fn perturb_shifts_prefix_by_decomposition_noise() {
        let hz = Horizon::new(8);
        let leaves = vec![0.0; 8];
        let mut tree = DyadicTree::from_leaves(hz, &leaves);
        // Give order-h nodes noise 10^h; prefix noise at t is then the sum
        // over set bits of t of 10^h.
        tree.perturb(|i| 10f64.powi(i.order() as i32));
        for t in 1..=8u64 {
            let expect: f64 = (0..4)
                .filter(|h| t & (1 << h) != 0)
                .map(|h| 10f64.powi(h))
                .sum();
            assert_eq!(tree.prefix_sum(t), expect, "t = {t}");
        }
    }

    #[test]
    fn get_mut_roundtrip() {
        let hz = Horizon::new(4);
        let mut tree: DyadicTree<i32> = DyadicTree::new(hz);
        *tree.get_mut(DyadicInterval::new(1, 2)) = 42;
        assert_eq!(*tree.get(DyadicInterval::new(1, 2)), 42);
        assert_eq!(*tree.get(DyadicInterval::new(1, 1)), 0);
    }

    #[test]
    fn iter_covers_all_nodes_once() {
        let hz = Horizon::new(16);
        let tree: DyadicTree<u8> = DyadicTree::new(hz);
        let nodes: Vec<_> = tree.iter().map(|(i, _)| i).collect();
        assert_eq!(nodes.len() as u64, hz.iset_len());
        let set: std::collections::HashSet<_> = nodes.iter().collect();
        assert_eq!(set.len(), nodes.len());
    }

    #[test]
    #[should_panic(expected = "need exactly d")]
    fn wrong_leaf_count_rejected() {
        let _ = DyadicTree::from_leaves(Horizon::new(8), &[0.0; 7]);
    }
}
