//! The streaming frontier: `O(log d)` server state sufficient for every
//! online prefix query.
//!
//! At time `t`, the prefix decomposition `C(t)` contains, for each set bit
//! `h` of `t`, the order-`h` interval ending at `(t >> h) << h` — which is
//! exactly the *most recently completed* order-`h` interval. So the server
//! never needs more than the latest completed value per order: record each
//! interval's aggregate as it completes, and any prefix estimate
//! `â[t] = Σ_{I ∈ C(t)} Ŝ(I)` (Algorithm 2, line 6) is a sum over the set
//! bits of `t`.

use crate::interval::{DyadicInterval, Horizon};

/// Per-order storage of the most recently completed interval value.
#[derive(Debug, Clone)]
pub struct Frontier<T> {
    horizon: Horizon,
    /// `slots[h]` = (index j of the last completed order-h interval, value).
    slots: Vec<Option<(u64, T)>>,
}

impl<T> Frontier<T> {
    /// An empty frontier over `[1..d]`.
    pub fn new(horizon: Horizon) -> Self {
        let mut slots = Vec::with_capacity(horizon.num_orders() as usize);
        slots.resize_with(horizon.num_orders() as usize, || None);
        Frontier { horizon, slots }
    }

    /// The horizon this frontier lives on.
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// The raw per-order slots, `slots[h] = (index, value)` of the last
    /// completed order-`h` interval — the serialization seam used by
    /// `rtf-core`'s snapshots.
    pub fn slots(&self) -> &[Option<(u64, T)>] {
        &self.slots
    }

    /// Rebuilds a frontier from raw slots (the inverse of
    /// [`slots`](Self::slots)), validating that the slot count matches the
    /// horizon and every index names a real interval of its order; the
    /// error string says what failed.
    pub fn from_slots(
        horizon: Horizon,
        slots: Vec<Option<(u64, T)>>,
    ) -> Result<Self, &'static str> {
        if slots.len() != horizon.num_orders() as usize {
            return Err("frontier slot count does not match horizon");
        }
        for (h, slot) in slots.iter().enumerate() {
            if let Some((j, _)) = slot {
                if *j < 1 || *j > horizon.intervals_at_order(h as u32) {
                    return Err("frontier slot index outside horizon");
                }
            }
        }
        Ok(Frontier { horizon, slots })
    }

    /// Records the aggregate `value` of a completed interval.
    ///
    /// Intervals of each order must be recorded in left-to-right temporal
    /// order (the natural order in which they complete).
    ///
    /// # Panics
    /// Panics if the interval's order is off-horizon, or if it does not
    /// strictly follow the previously recorded interval of the same order.
    pub fn record(&mut self, interval: DyadicInterval, value: T) {
        let h = interval.order();
        assert!(
            h <= self.horizon.log_d(),
            "order {h} exceeds log d = {}",
            self.horizon.log_d()
        );
        assert!(
            interval.index() <= self.horizon.intervals_at_order(h),
            "interval {interval} beyond horizon d = {}",
            self.horizon.d()
        );
        let slot = &mut self.slots[h as usize];
        if let Some((prev_j, _)) = slot {
            assert!(
                interval.index() > *prev_j,
                "interval {interval} recorded out of order (previous index {prev_j})"
            );
        }
        *slot = Some((interval.index(), value));
    }

    /// The latest recorded value of order `h`, if any.
    pub fn latest(&self, h: u32) -> Option<(DyadicInterval, &T)> {
        self.slots[h as usize]
            .as_ref()
            .map(|(j, v)| (DyadicInterval::new(h, *j), v))
    }

    /// Visits the value of every interval in `C(t)`, i.e. the decomposition
    /// of the prefix `[1..t]`.
    ///
    /// Returns `Err(interval)` for the first required interval that has not
    /// been recorded yet (or whose recorded index is stale), which signals
    /// a protocol-ordering bug in the caller.
    pub fn visit_prefix<'a>(
        &'a self,
        t: u64,
        mut visit: impl FnMut(DyadicInterval, &'a T),
    ) -> Result<(), DyadicInterval> {
        assert!(
            self.horizon.contains_time(t),
            "time {t} outside horizon [1..{}]",
            self.horizon.d()
        );
        let mut remaining = t;
        while remaining != 0 {
            let h = remaining.trailing_zeros();
            remaining &= remaining - 1;
            // The order-h interval in C(t) ends at (t >> h) << h, so its
            // index is t >> h.
            let j = t >> h;
            match &self.slots[h as usize] {
                Some((stored_j, v)) if *stored_j == j => {
                    visit(DyadicInterval::new(h, j), v);
                }
                _ => return Err(DyadicInterval::new(h, j)),
            }
        }
        Ok(())
    }

    /// Convenience: sums `f(value)` over the prefix decomposition `C(t)`.
    ///
    /// # Panics
    /// Panics if some required interval is missing (see
    /// [`visit_prefix`](Self::visit_prefix) for the non-panicking form).
    pub fn prefix_sum(&self, t: u64, mut f: impl FnMut(&T) -> f64) -> f64 {
        let mut acc = 0.0;
        self.visit_prefix(t, |_, v| acc += f(v))
            .unwrap_or_else(|missing| {
                panic!("prefix query at t={t} requires unrecorded interval {missing}")
            });
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_prefix;

    /// Drives a frontier through the full horizon, recording interval sums
    /// of a known per-period series, and checks every prefix.
    #[test]
    fn frontier_prefix_sums_match_direct_sums() {
        let d = 64u64;
        let hz = Horizon::new(d);
        // Period values 1, 2, 3, … so prefix sums are t(t+1)/2.
        let mut frontier = Frontier::new(hz);
        for t in 1..=d {
            // Every interval ending at t completes now: orders 0..=ν₂(t).
            for h in 0..=t.trailing_zeros() {
                let i = DyadicInterval::new(h, t >> h);
                let sum: f64 = i.times().map(|x| x as f64).sum();
                frontier.record(i, sum);
            }
            let got = frontier.prefix_sum(t, |&v| v);
            let expect = (t * (t + 1) / 2) as f64;
            assert_eq!(got, expect, "prefix sum at t={t}");
        }
    }

    #[test]
    fn frontier_agrees_with_decompose_prefix() {
        let d = 32u64;
        let hz = Horizon::new(d);
        let mut frontier = Frontier::new(hz);
        for t in 1..=d {
            for h in 0..=t.trailing_zeros() {
                frontier.record(DyadicInterval::new(h, t >> h), ());
            }
            let mut seen = Vec::new();
            frontier
                .visit_prefix(t, |i, _| seen.push(i))
                .expect("all parts recorded");
            let mut expect = decompose_prefix(t);
            // visit_prefix iterates low bit to high bit; sort both.
            seen.sort();
            expect.sort();
            assert_eq!(seen, expect, "t = {t}");
        }
    }

    #[test]
    fn slots_roundtrip_through_from_slots() {
        let hz = Horizon::new(16);
        let mut f = Frontier::new(hz);
        f.record(DyadicInterval::new(0, 3), 1.5);
        f.record(DyadicInterval::new(2, 1), -2.0);
        let rebuilt = Frontier::from_slots(hz, f.slots().to_vec()).unwrap();
        assert_eq!(rebuilt.slots(), f.slots());
        assert_eq!(
            rebuilt.latest(2).map(|(i, v)| (i.index(), *v)),
            Some((1, -2.0))
        );
    }

    #[test]
    fn from_slots_rejects_malformed_state() {
        let hz = Horizon::new(8);
        // Wrong slot count.
        assert!(Frontier::<f64>::from_slots(hz, vec![None; 2]).is_err());
        // Index 0 and index beyond the horizon are both invalid.
        let mut slots: Vec<Option<(u64, f64)>> = vec![None; hz.num_orders() as usize];
        slots[0] = Some((0, 1.0));
        assert!(Frontier::from_slots(hz, slots.clone()).is_err());
        slots[0] = Some((9, 1.0));
        assert!(Frontier::from_slots(hz, slots).is_err());
    }

    #[test]
    fn missing_interval_reported() {
        let hz = Horizon::new(8);
        let mut frontier: Frontier<f64> = Frontier::new(hz);
        frontier.record(DyadicInterval::new(0, 1), 1.0);
        // t = 3 needs I_{1,1} (unrecorded) and I_{0,3} (stale slot).
        let err = frontier.visit_prefix(3, |_, _| {}).unwrap_err();
        assert_eq!(err.order(), 0); // lowest bit visited first: I_{0,3} index 3 ≠ stored 1
        assert_eq!(err.index(), 3);
    }

    #[test]
    fn latest_tracks_most_recent() {
        let hz = Horizon::new(8);
        let mut f = Frontier::new(hz);
        assert!(f.latest(0).is_none());
        f.record(DyadicInterval::new(0, 1), 'a');
        f.record(DyadicInterval::new(0, 2), 'b');
        let (i, v) = f.latest(0).unwrap();
        assert_eq!((i.index(), *v), (2, 'b'));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_record_rejected() {
        let hz = Horizon::new(8);
        let mut f = Frontier::new(hz);
        f.record(DyadicInterval::new(0, 3), 0.0);
        f.record(DyadicInterval::new(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn off_horizon_interval_rejected() {
        let hz = Horizon::new(8);
        let mut f = Frontier::new(hz);
        f.record(DyadicInterval::new(0, 9), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside horizon")]
    fn off_horizon_query_rejected() {
        let hz = Horizon::new(8);
        let f: Frontier<f64> = Frontier::new(hz);
        let _ = f.visit_prefix(9, |_, _| {});
    }
}
