//! Property-based tests for the dyadic interval algebra.

use proptest::prelude::*;
use rtf_dyadic::decompose::{decompose_prefix, decompose_range};
use rtf_dyadic::frontier::Frontier;
use rtf_dyadic::interval::{DyadicInterval, Horizon};
use rtf_dyadic::tree::DyadicTree;

proptest! {
    /// C(t) tiles [1..t] exactly, with strictly decreasing distinct
    /// orders and exactly popcount(t) parts (Fact 3.8).
    #[test]
    fn prefix_decomposition_fact_3_8(t in 1u64..1_000_000) {
        let parts = decompose_prefix(t);
        prop_assert_eq!(parts.len(), t.count_ones() as usize);
        let mut pos = 1u64;
        let mut last_order = u32::MAX;
        for p in &parts {
            prop_assert_eq!(p.start(), pos);
            prop_assert!(p.order() < last_order, "orders must strictly decrease");
            last_order = p.order();
            pos = p.end() + 1;
        }
        prop_assert_eq!(pos, t + 1);
    }

    /// Range decomposition tiles [l..r] with at most 2·⌈log len⌉ + 2 parts.
    #[test]
    fn range_decomposition_tiles(l in 1u64..100_000, len in 1u64..100_000) {
        let r = l + len - 1;
        let parts = decompose_range(l, r);
        let mut pos = l;
        for p in &parts {
            prop_assert_eq!(p.start(), pos);
            pos = p.end() + 1;
        }
        prop_assert_eq!(pos, r + 1);
        let bound = 2 * (64 - len.leading_zeros()) as usize + 2;
        prop_assert!(parts.len() <= bound);
    }

    /// Interval geometry: start/end/len are consistent, parent covers,
    /// children partition.
    #[test]
    fn interval_geometry(order in 0u32..20, index in 1u64..10_000) {
        let i = DyadicInterval::new(order, index);
        prop_assert_eq!(i.end() - i.start() + 1, i.len());
        prop_assert_eq!(i.len(), 1u64 << order);
        prop_assert!(i.parent().covers(&i));
        if let Some((a, b)) = i.children() {
            prop_assert_eq!(a.end() + 1, b.start());
            prop_assert_eq!(a.start(), i.start());
            prop_assert_eq!(b.end(), i.end());
        }
    }

    /// The frontier answers exactly the same prefix sums as a full tree
    /// built from the same leaves.
    #[test]
    fn frontier_equals_tree(
        log_d in 1u32..8,
        leaves_seed in prop::collection::vec(-100i32..100, 256),
    ) {
        let d = 1u64 << log_d;
        let hz = Horizon::new(d);
        let leaves: Vec<f64> = leaves_seed.iter().take(d as usize).map(|&v| v as f64).collect();
        let tree = DyadicTree::from_leaves(hz, &leaves);
        let mut frontier = Frontier::new(hz);
        for t in 1..=d {
            for h in 0..=t.trailing_zeros().min(log_d) {
                let i = DyadicInterval::new(h, t >> h);
                frontier.record(i, *tree.get(i));
            }
            let got = frontier.prefix_sum(t, |&v| v);
            prop_assert_eq!(got, tree.prefix_sum(t), "t = {}", t);
        }
    }

    /// The unique order-h interval containing t actually contains t, and
    /// every other interval of that order doesn't.
    #[test]
    fn containing_interval_unique(log_d in 1u32..10, t_frac in 0.0f64..1.0, h_frac in 0.0f64..=1.0) {
        let d = 1u64 << log_d;
        let t = 1 + ((d - 1) as f64 * t_frac) as u64;
        let h = (log_d as f64 * h_frac) as u32;
        let hz = Horizon::new(d);
        let i = hz.interval_containing(h, t);
        prop_assert!(i.contains(t));
        let hits = hz.iset_at_order(h).filter(|iv| iv.contains(t)).count();
        prop_assert_eq!(hits, 1);
    }
}
