//! Audit-calibrated parameterisation of the composed randomizer.
//!
//! Lemma 5.2 *proves* that `ε̃ = ε/(5√k)` keeps the composed randomizer
//! `ε`-LDP, but the exact audit (the `realized_epsilon` of
//! [`WeightClassLaw`]) shows the bound is loose: at moderate `k` the
//! realized privacy loss is only ≈ `0.47·ε`. Since the realized loss of
//! the *implemented* randomizer is computable exactly in `O(k)`, we can
//! turn the analysis around: **search for the largest `ε̃` whose exact
//! realized loss still fits the budget**, and certify the result by
//! re-auditing. This roughly doubles the preservation gap `c_gap` — i.e.
//! halves the estimation error — at the *same* exact privacy level.
//!
//! This is an extension beyond the paper (enabled by the exact
//! weight-class law); the `exp_ablation` bench quantifies the gain and
//! `exp_privacy_audit`-style tests certify safety on a broad grid.

use crate::gap::WeightClassLaw;

/// Outcome of calibrating `ε̃` for a `(k, ε)` pair.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The calibrated per-coordinate budget (≥ the paper's `ε/(5√k)`).
    pub eps_tilde: f64,
    /// The exact realized privacy loss at that `ε̃` (certified `≤ ε`).
    pub realized_epsilon: f64,
    /// The law at the calibrated `ε̃` (carries `c_gap`, annulus, …).
    pub law: WeightClassLaw,
}

/// Finds, by bisection plus exact verification, the largest
/// `ε̃ ∈ [ε/(5√k), ε]` whose exact realized privacy loss is at most `ε`.
///
/// The realized loss is monotone in `ε̃` in practice; because every
/// candidate is *verified exactly*, monotonicity is not assumed for
/// soundness — if the search misbehaves the paper's `ε/(5√k)` is the
/// fallback, which Lemma 5.2 guarantees safe (and the final result is
/// asserted safe regardless).
///
/// # Panics
/// Panics if `k == 0` or `ε ∉ (0, 1]`.
pub fn calibrate(k: usize, epsilon: f64) -> Calibration {
    assert!(k >= 1, "k must be ≥ 1");
    assert!(
        epsilon > 0.0 && epsilon <= 1.0,
        "ε must be in (0,1], got {epsilon}"
    );
    let paper = epsilon / (5.0 * (k as f64).sqrt());
    let mut lo = paper; // known-safe by Lemma 5.2 (verified below anyway)
    let mut hi = epsilon; // surely unsafe for k > 1; loose upper anchor

    // ~45 halvings: eps_tilde resolved to ~1e-15 relative.
    for _ in 0..45 {
        let mid = 0.5 * (lo + hi);
        let realized = WeightClassLaw::new(k, mid).realized_epsilon();
        if realized <= epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Final exact verification with a small safety margin; fall back to
    // the paper's parameterisation if anything went sideways.
    let candidate = lo * (1.0 - 1e-9);
    let law = WeightClassLaw::new(k, candidate.max(paper));
    let (eps_tilde, law) = if law.realized_epsilon() <= epsilon {
        (candidate.max(paper), law)
    } else {
        (paper, WeightClassLaw::new(k, paper))
    };
    let realized = law.realized_epsilon();
    assert!(
        realized <= epsilon + 1e-9,
        "calibration produced an unsafe ε̃ (realized {realized} > {epsilon})"
    );
    Calibration {
        eps_tilde,
        realized_epsilon: realized,
        law,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_is_certified_safe_on_grid() {
        for k in [1usize, 2, 3, 5, 8, 16, 33, 64, 129, 256, 777, 2048] {
            for eps in [0.1, 0.25, 0.5, 1.0] {
                let cal = calibrate(k, eps);
                assert!(
                    cal.realized_epsilon <= eps + 1e-9,
                    "k={k} eps={eps}: realized {}",
                    cal.realized_epsilon
                );
            }
        }
    }

    #[test]
    fn calibrated_beats_paper_parameterisation() {
        for k in [4usize, 16, 64, 256, 1024] {
            let eps = 1.0;
            let cal = calibrate(k, eps);
            let paper = WeightClassLaw::for_protocol(k, eps);
            assert!(
                cal.law.c_gap() > 1.5 * paper.c_gap(),
                "k={k}: calibrated gap {} vs paper {}",
                cal.law.c_gap(),
                paper.c_gap()
            );
            assert!(cal.eps_tilde > paper.eps_tilde());
        }
    }

    #[test]
    fn calibration_nearly_exhausts_the_budget() {
        // The whole point: realized ε should be ≈ ε, not ≈ 0.47 ε.
        for k in [8usize, 64, 512] {
            let cal = calibrate(k, 1.0);
            assert!(
                cal.realized_epsilon > 0.999,
                "k={k}: realized only {}",
                cal.realized_epsilon
            );
        }
    }

    #[test]
    fn k_equals_one_caps_at_epsilon() {
        // For k = 1 the composed randomizer is plain conditioned RR whose
        // realized loss equals ε̃; calibration should drive ε̃ → ε.
        let cal = calibrate(1, 0.5);
        assert!((cal.eps_tilde - 0.5).abs() < 1e-6, "got {}", cal.eps_tilde);
        assert!((cal.realized_epsilon - 0.5).abs() < 1e-6);
    }

    #[test]
    fn monotone_budget_usage() {
        // Larger ε ⇒ larger calibrated ε̃ and larger gap.
        let mut last_gap = 0.0;
        for eps in [0.125, 0.25, 0.5, 1.0] {
            let cal = calibrate(64, eps);
            assert!(cal.law.c_gap() > last_gap);
            last_gap = cal.law.c_gap();
        }
    }
}
