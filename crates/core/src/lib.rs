//! The paper's primary contribution: the **FutureRand** randomizer and the
//! asymptotically optimal `ε`-LDP longitudinal frequency-estimation
//! protocol.
//!
//! Implements Sections 4 and 5 of *Randomize the Future: Asymptotically
//! Optimal Locally Private Frequency Estimation Protocol for Longitudinal
//! Data* (Ohrimenko, Wirth, Wu — PODS 2022):
//!
//! * [`params`] — validated protocol parameters `(n, d, k, ε, β)` plus the
//!   derived per-order quantities and Theorem 4.1's assumptions;
//! * [`annulus`] — the Hamming-weight annulus `[LB..UB]` of Equation (15);
//! * [`gap`] — *exact* log-domain computation of the weight-class output
//!   law of the composed randomizer: `g(i)`, `P*_out` (Equation 24), the
//!   preservation gap `c_gap` (Lemma 5.3) and the realized privacy loss
//!   (Lemma 5.2);
//! * [`composed`] — the composed randomizer `R̃` (Algorithm 3, lines 3–7)
//!   in two distribution-identical implementations (literal per-coordinate,
//!   and O(1)-per-draw weight-class sampling);
//! * [`randomizer`] — the online [`randomizer::FutureRand`]
//!   (Algorithm 3, `M.init` / `M^{(j)}`) and the naive independent
//!   randomizer of Example 4.2, both behind one trait;
//! * [`client`] — Algorithm 1, the client `Aclt`;
//! * [`accumulator`] — the mergeable per-order accumulation monoid, the
//!   seam along which `rtf-runtime` shards the server across workers —
//!   now a pluggable storage-engine layer with four exact backends
//!   (dense `f64`, fixed-point `i64`, compressed sparse, SoA count
//!   lanes) selected by [`accumulator::AccumulatorKind`] /
//!   `RTF_BACKEND`;
//! * [`server`] — Algorithm 2, the streaming server `Asvr`, a thin
//!   checked-ingestion/finalisation facade over one accumulator;
//! * [`protocol`] — an in-memory end-to-end driver (the message-level
//!   simulation lives in `rtf-sim`);
//! * [`bounds`] — the closed-form error bounds the benches print next to
//!   measured errors (Theorem 4.1, the Erlingsson et al. bound, the lower
//!   bound, the central-model bound).
//!
//! # Faithfulness notes
//!
//! The annulus bounds are integers here (`LB = max(0, ⌈kp − 2√k⌉)`,
//! `UB = min(k, ⌊(k/ε̃)·ln(2e^ε̃/(e^ε̃+1))⌋)`); rounding inward (ceil/floor)
//! preserves every inequality in the proofs of Lemmas 5.2/5.3 (see
//! DESIGN.md). The server uses the *exact* `c_gap` of the implemented
//! randomizer — computed in `O(k)` log-domain arithmetic — instead of the
//! asymptotic `Ω(ε/√k)`, which keeps estimates exactly unbiased.
//!
//! Per order `h`, the randomizer is instantiated with
//! `k_eff = max(1, min(k, L))` where `L = d/2^h`: a sequence of length `L`
//! cannot contain more than `L` non-zeros, and Section 5.4's
//! bounded-support argument gives the same privacy guarantee with the
//! smaller (better-utility) parameter.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod accumulator;
pub mod annulus;
pub mod bounds;
pub mod calibrate;
pub mod client;
pub mod composed;
pub mod gap;
pub mod params;
pub mod protocol;
pub mod queries;
pub mod randomizer;
pub mod server;
pub mod snapshot;

pub use accumulator::{
    Accumulator, AccumulatorError, AccumulatorKind, AnyAccumulator, DenseAccumulator,
    FixedPointAccumulator, SoaAccumulator, SparseAccumulator,
};
pub use annulus::Annulus;
pub use calibrate::{calibrate, Calibration};
pub use client::Client;
pub use composed::ComposedRandomizer;
pub use gap::WeightClassLaw;
pub use params::{ParamsError, ProtocolParams};
pub use protocol::{run_in_memory, ProtocolOutcome};
pub use queries::EstimateStore;
pub use randomizer::{FutureRand, IndependentRand, LocalRandomizer, SpanRandomizers};
pub use server::Server;
pub use snapshot::{SnapReader, SnapWriter, SnapshotError, SNAPSHOT_VERSION};
