//! The snapshot wire format — a versioned, self-describing, checksummed
//! byte encoding for durable server/service state.
//!
//! The longitudinal protocol only has a production story if the
//! aggregator process can stop and resume mid-horizon with **exact**
//! recovery, so the serialization layer is deliberately boring and
//! fully validated:
//!
//! * an 8-byte magic (`RTFSNAP\0`), a `u32` format version, and (from
//!   version 2) a one-byte seed schema up front — foreign bytes are
//!   [`SnapshotError::BadMagic`], bytes from a future format are
//!   [`SnapshotError::UnsupportedVersion`], never a misparse;
//! * little-endian fixed-width primitives with `f64` stored as raw IEEE
//!   bits, so a restore is bit-identical, not merely close;
//! * a trailing FNV-1a 64 checksum over everything before it. Most
//!   single-byte corruptions inside an `f64` lane would still parse as a
//!   *valid, different* value — the checksum is what turns silent
//!   misparse into [`SnapshotError::ChecksumMismatch`];
//! * every length and discriminant is validated on read; malformed input
//!   is a typed [`SnapshotError`], **never** a panic.
//!
//! **Version policy:** [`SNAPSHOT_VERSION`] is bumped on any encoding
//! change; readers accept exactly the versions they know how to decode
//! (currently: 1 and 2) and reject the rest loudly. Version 2 embeds
//! the client randomness schema ([`SeedSchema`]) in the header; version
//! 1 bytes read back as implicitly [`SeedSchema::V1Std`] — the only
//! schema that existed when they were written. There is no other
//! cross-version migration — a horizon lasts days, not years, so
//! "re-run from the start of the horizon" is an acceptable upgrade
//! story and silent misreads are not. In particular, a v1-schema
//! snapshot must never silently resume under the v2 schema: resume
//! paths check [`SnapReader::expect_schema`] and surface the typed
//! [`SnapshotError::SchemaMismatch`].
//!
//! The field-by-field encodings of the domain types live next to their
//! private fields (`Server`, `AnyAccumulator`, the runtime's batches and
//! journals); this module only supplies the primitives: [`SnapWriter`],
//! [`SnapReader`], and [`SnapshotError`].

use rtf_primitives::fastseed::SeedSchema;

/// The current snapshot format version. Bump on any encoding change.
///
/// * **1** — magic + version header; predates the seed schema axis.
/// * **2** — adds the one-byte [`SeedSchema`] to the header.
pub const SNAPSHOT_VERSION: u32 = 2;

/// The 8-byte magic prefix of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RTFSNAP\0";

/// Why snapshot bytes were rejected. Every malformed input maps to one
/// of these — restoring never panics and never silently misparses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes end before the encoding says they should.
    Truncated,
    /// The magic prefix is absent — these are not snapshot bytes.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The trailing FNV-1a 64 checksum does not match the content.
    ChecksumMismatch,
    /// The snapshot was taken under a different client randomness
    /// schema than the process resuming from it — replaying one
    /// schema's state under another would silently change every report
    /// bit, so resume paths refuse instead.
    SchemaMismatch {
        /// The schema recorded in the snapshot header.
        found: SeedSchema,
        /// The schema the resuming process runs under.
        expected: SeedSchema,
    },
    /// A field failed its validity check; the message names it.
    Corrupt(&'static str),
    /// Well-formed content followed by unconsumed bytes.
    TrailingBytes,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (supported: 1..={SNAPSHOT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::SchemaMismatch { found, expected } => write!(
                f,
                "snapshot recorded seed schema {found}, process runs schema {expected} — \
                 refusing to resume across schemas"
            ),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::TrailingBytes => write!(f, "snapshot has trailing bytes"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64 over `bytes` — small, dependency-free, and plenty to catch
/// the random corruption the checksum exists for (it is not, and need
/// not be, cryptographic).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends little-endian primitives to a growing snapshot buffer;
/// [`finish`](Self::finish) seals it with the trailing checksum.
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
    schema: SeedSchema,
}

impl SnapWriter {
    /// A writer primed with the magic, current format version, and the
    /// process-wide seed schema (`RTF_SEED_SCHEMA`). Callers that know
    /// their schema explicitly — a service snapshotting its own server —
    /// should prefer [`for_schema`](Self::for_schema).
    pub fn new() -> Self {
        Self::for_schema(SeedSchema::from_env())
    }

    /// A writer primed with the magic, current format version, and an
    /// explicit seed schema stamped into the header.
    pub fn for_schema(schema: SeedSchema) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.push(schema.as_u8());
        SnapWriter { buf, schema }
    }

    /// The seed schema stamped into this writer's header.
    pub fn schema(&self) -> SeedSchema {
        self.schema
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i8`.
    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Writes a `usize` as `u64` (lossless on every supported platform).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its raw IEEE-754 bits — restores are
    /// bit-identical, NaN payloads and signed zeros included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte (`0`/`1`).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Seals the snapshot: appends the FNV-1a 64 checksum of everything
    /// written so far and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

impl Default for SnapWriter {
    fn default() -> Self {
        SnapWriter::new()
    }
}

/// Validates the header + checksum of snapshot bytes up front, then
/// yields primitives; every read is bounds-checked.
#[derive(Debug)]
pub struct SnapReader<'a> {
    /// The payload between the header and the checksum.
    buf: &'a [u8],
    pos: usize,
    schema: SeedSchema,
}

impl<'a> SnapReader<'a> {
    /// Verifies magic, version, trailing checksum, and (version ≥ 2) the
    /// header seed schema, and positions the reader at the first payload
    /// byte. Version 1 bytes are accepted and read as implicitly
    /// [`SeedSchema::V1Std`] — the only schema that existed then.
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] if the bytes cannot even hold the
    /// envelope, [`BadMagic`](SnapshotError::BadMagic) /
    /// [`UnsupportedVersion`](SnapshotError::UnsupportedVersion) /
    /// [`ChecksumMismatch`](SnapshotError::ChecksumMismatch) for the
    /// respective header failures, [`Corrupt`](SnapshotError::Corrupt)
    /// for an unknown schema byte.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let version_header = SNAPSHOT_MAGIC.len() + 4;
        if bytes.len() < version_header + 8 {
            // Too short for magic + version + checksum. If even the
            // magic is absent or wrong, say that instead — "not a
            // snapshot" beats "truncated snapshot" for a foreign file.
            if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..8] != SNAPSHOT_MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        // Version 1: no schema byte. Version 2: one schema byte.
        let header = match version {
            1 => version_header,
            SNAPSHOT_VERSION => version_header + 1,
            _ => return Err(SnapshotError::UnsupportedVersion { found: version }),
        };
        let (content, sum_bytes) = bytes.split_at(bytes.len() - 8);
        if content.len() < header {
            return Err(SnapshotError::Truncated);
        }
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if fnv1a64(content) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let schema = if version == 1 {
            SeedSchema::V1Std
        } else {
            SeedSchema::from_u8(content[version_header])
                .ok_or(SnapshotError::Corrupt("unknown seed schema byte"))?
        };
        Ok(SnapReader {
            buf: &content[header..],
            pos: 0,
            schema,
        })
    }

    /// The seed schema the snapshot was taken under (version 1 bytes:
    /// implicitly [`SeedSchema::V1Std`]).
    pub fn schema(&self) -> SeedSchema {
        self.schema
    }

    /// Guards a resume path: errors unless the snapshot's schema is
    /// `expected`.
    ///
    /// # Errors
    /// [`SnapshotError::SchemaMismatch`] naming both schemas.
    pub fn expect_schema(&self, expected: SeedSchema) -> Result<(), SnapshotError> {
        if self.schema != expected {
            return Err(SnapshotError::SchemaMismatch {
                found: self.schema,
                expected,
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `i8`.
    pub fn i8(&mut self) -> Result<i8, SnapshotError> {
        Ok(self.take(1)?[0] as i8)
    }

    /// Reads a `usize` written by [`SnapWriter::usize`], rejecting
    /// values that do not fit the platform.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Corrupt("usize overflows platform"))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting anything but `0`/`1`.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool byte not 0/1")),
        }
    }

    /// Reads a length prefix that is about to drive `len` reads of
    /// `min_elem_bytes`-sized elements, rejecting lengths the remaining
    /// payload cannot possibly hold — an allocation guard for
    /// hand-crafted input.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if len.checked_mul(min_elem_bytes.max(1)).is_none()
            || len * min_elem_bytes.max(1) > remaining
        {
            return Err(SnapshotError::Truncated);
        }
        Ok(len)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    /// [`SnapshotError::TrailingBytes`] if content remains.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::TrailingBytes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_primitive() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.i8(-1);
        w.usize(12345);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.bool(false);
        let bytes = w.finish();

        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.i8().unwrap(), -1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn foreign_bytes_are_bad_magic() {
        assert_eq!(SnapReader::new(b"").unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(
            SnapReader::new(b"not a snapshot at all").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn short_but_valid_magic_is_truncated() {
        let bytes = SnapWriter::new().finish();
        assert_eq!(
            SnapReader::new(&bytes[..bytes.len() - 1]).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn future_version_rejected_by_name() {
        let mut bytes = SnapWriter::new().finish();
        bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
        assert_eq!(
            SnapReader::new(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 999 }
        );
    }

    /// Rewrites version-2 bytes into the version-1 layout (no schema
    /// byte in the header) with a valid checksum — what a pre-schema
    /// release would have written for the same payload.
    fn downgrade_to_v1(bytes: &[u8]) -> Vec<u8> {
        let content = &bytes[..bytes.len() - 8];
        let mut v1 = Vec::with_capacity(bytes.len() - 1);
        v1.extend_from_slice(&SNAPSHOT_MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&content[13..]); // payload after the schema byte
        let sum = fnv1a64(&v1);
        v1.extend_from_slice(&sum.to_le_bytes());
        v1
    }

    #[test]
    fn header_records_the_schema_both_ways() {
        for schema in [SeedSchema::V1Std, SeedSchema::V2Fast] {
            let mut w = SnapWriter::for_schema(schema);
            assert_eq!(w.schema(), schema);
            w.u64(77);
            let bytes = w.finish();
            let mut r = SnapReader::new(&bytes).unwrap();
            assert_eq!(r.schema(), schema);
            assert_eq!(r.u64().unwrap(), 77);
            r.finish().unwrap();
        }
    }

    #[test]
    fn v1_bytes_read_back_as_implicit_std_schema() {
        let mut w = SnapWriter::for_schema(SeedSchema::V2Fast);
        w.u64(123);
        w.f64(0.25);
        let v1 = downgrade_to_v1(&w.finish());
        let mut r = SnapReader::new(&v1).unwrap();
        assert_eq!(r.schema(), SeedSchema::V1Std, "v1 is implicitly std");
        assert_eq!(r.u64().unwrap(), 123);
        assert_eq!(r.f64().unwrap(), 0.25);
        r.finish().unwrap();
    }

    #[test]
    fn expect_schema_guards_both_directions() {
        // A v1-schema snapshot must never silently resume under v2 —
        // and vice versa.
        let v2_bytes = SnapWriter::for_schema(SeedSchema::V2Fast).finish();
        let v1_bytes = downgrade_to_v1(&SnapWriter::for_schema(SeedSchema::V1Std).finish());
        let r2 = SnapReader::new(&v2_bytes).unwrap();
        let r1 = SnapReader::new(&v1_bytes).unwrap();
        r2.expect_schema(SeedSchema::V2Fast).unwrap();
        r1.expect_schema(SeedSchema::V1Std).unwrap();
        assert_eq!(
            r1.expect_schema(SeedSchema::V2Fast).unwrap_err(),
            SnapshotError::SchemaMismatch {
                found: SeedSchema::V1Std,
                expected: SeedSchema::V2Fast,
            }
        );
        assert_eq!(
            r2.expect_schema(SeedSchema::V1Std).unwrap_err(),
            SnapshotError::SchemaMismatch {
                found: SeedSchema::V2Fast,
                expected: SeedSchema::V1Std,
            }
        );
        let msg = format!("{}", r1.expect_schema(SeedSchema::V2Fast).unwrap_err());
        assert!(msg.contains("v1") && msg.contains("v2"), "{msg}");
    }

    #[test]
    fn unknown_schema_byte_rejected_as_corrupt() {
        let mut bytes = SnapWriter::for_schema(SeedSchema::V1Std).finish();
        let end = bytes.len() - 8;
        bytes[12] = 9; // not a known schema
        let sum = fnv1a64(&bytes[..end]);
        bytes[end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SnapReader::new(&bytes).unwrap_err(),
            SnapshotError::Corrupt("unknown seed schema byte")
        );
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let mut w = SnapWriter::new();
        w.f64(1.5);
        w.u64(99);
        let bytes = w.finish();
        // Header flips hit magic/version checks; payload and checksum
        // flips hit the checksum. No flip may parse cleanly.
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                assert!(
                    SnapReader::new(&evil).is_err(),
                    "flip at byte {i} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn reads_past_the_end_are_truncated() {
        let bytes = SnapWriter::new().finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.u8().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn unconsumed_payload_is_trailing_bytes() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let bytes = w.finish();
        let r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.finish().unwrap_err(), SnapshotError::TrailingBytes);
    }

    #[test]
    fn absurd_length_prefixes_rejected_without_allocating() {
        let mut w = SnapWriter::new();
        w.usize(usize::MAX / 2);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.len(8).unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn non_boolean_byte_rejected() {
        let mut w = SnapWriter::new();
        w.u8(2);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(
            r.bool().unwrap_err(),
            SnapshotError::Corrupt("bool byte not 0/1")
        );
    }
}
