//! The Hamming-weight annulus of the composed randomizer (Definition 5.1,
//! Equation 15).
//!
//! For input `b ∈ {−1,1}^k`, `Ann(b)` is the set of strings whose Hamming
//! distance to `b` lies in `[LB..UB]` with
//!
//! ```text
//! LB = k·p − 2√k            UB = (k/ε̃) · ln( 2e^{ε̃} / (e^{ε̃}+1) )
//! ```
//!
//! where `p = 1/(e^{ε̃}+1)`. The choices are engineered so that
//! `g(LB) = e^{2ε̃√k}·p_avg` and `g(UB) = 2^{−k}` (Section 5.5). The paper
//! treats the bounds as reals; we round *inward* (`⌈LB⌉`, `⌊UB⌋`), which
//! preserves every inequality in the privacy and utility proofs — see the
//! faithfulness notes in the crate docs and DESIGN.md.

/// Integer Hamming-weight annulus `[lb..ub] ⊆ [0..k]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annulus {
    k: usize,
    lb: usize,
    ub: usize,
}

impl Annulus {
    /// Computes the annulus for sparsity `k` and per-coordinate budget
    /// `ε̃ > 0` per Equation (15).
    ///
    /// # Panics
    /// Panics if `k == 0` or `ε̃` is not a positive finite number.
    pub fn for_parameters(k: usize, eps_tilde: f64) -> Self {
        assert!(k >= 1, "annulus needs k ≥ 1");
        assert!(
            eps_tilde.is_finite() && eps_tilde > 0.0,
            "ε̃ must be positive and finite, got {eps_tilde}"
        );
        let kf = k as f64;
        let p = 1.0 / (eps_tilde.exp() + 1.0);
        let lb_real = kf * p - 2.0 * kf.sqrt();
        // UB = (k/ε̃)·ln(2e^ε̃/(e^ε̃+1)); the argument of ln is 2(1−p).
        let ub_real = (kf / eps_tilde) * (2.0 * (1.0 - p)).ln();
        let lb = lb_real.ceil().max(0.0) as usize;
        let ub = (ub_real.floor() as i64).clamp(lb as i64, k as i64 - 1) as usize;
        // ub < k always: g(k) = p^k < 2^{-k} = g(UB_real) and g decreasing
        // force UB_real < k; the clamp just encodes that the complement
        // must stay non-empty even under adversarial rounding.
        debug_assert!(lb <= ub);
        Annulus { k, lb, ub }
    }

    /// Constructs an annulus from explicit integer bounds (used by the
    /// Bun et al. baseline which sets different bounds).
    ///
    /// # Panics
    /// Panics unless `lb ≤ ub < k` (the complement `{w > ub}` must be
    /// non-empty for the resampling branch to be well-defined).
    pub fn from_bounds(k: usize, lb: usize, ub: usize) -> Self {
        assert!(lb <= ub, "annulus bounds inverted: [{lb}..{ub}]");
        assert!(
            ub < k,
            "annulus [{lb}..{ub}] must leave a non-empty complement below k = {k}"
        );
        Annulus { k, lb, ub }
    }

    /// The sparsity `k` (strings live in `{−1,1}^k`).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Inclusive lower bound `LB` on Hamming distance.
    #[inline]
    pub fn lb(&self) -> usize {
        self.lb
    }

    /// Inclusive upper bound `UB` on Hamming distance.
    #[inline]
    pub fn ub(&self) -> usize {
        self.ub
    }

    /// Whether Hamming weight `w` lies inside the annulus.
    #[inline]
    pub fn contains(&self, w: usize) -> bool {
        (self.lb..=self.ub).contains(&w)
    }

    /// The weight classes inside the annulus.
    pub fn inside(&self) -> impl Iterator<Item = usize> {
        self.lb..=self.ub
    }

    /// The weight classes outside the annulus
    /// (`[0..LB−1] ∪ [UB+1..k]`, the paper's `[LB..UB]` complement).
    pub fn outside(&self) -> impl Iterator<Item = usize> {
        let low = 0..self.lb;
        let high = (self.ub + 1)..=self.k;
        low.chain(high)
    }

    /// Number of weight classes outside the annulus.
    pub fn outside_len(&self) -> usize {
        self.lb + (self.k - self.ub)
    }
}

impl std::fmt::Display for Annulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ann(k={}) = [{}..{}]", self.k, self.lb, self.ub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ε̃ as the protocol sets it: ε/(5√k).
    fn protocol_eps_tilde(k: usize, eps: f64) -> f64 {
        eps / (5.0 * (k as f64).sqrt())
    }

    #[test]
    fn bounds_bracket_expected_noise_weight() {
        // For large k, [LB..UB] must contain kp (Section 5.5 proves
        // UB ∈ [kp, k/2], LB < kp).
        for k in [16usize, 64, 256, 1024, 4096] {
            for eps in [0.25, 0.5, 1.0] {
                let et = protocol_eps_tilde(k, eps);
                let ann = Annulus::for_parameters(k, et);
                let kp = k as f64 / (et.exp() + 1.0);
                assert!(
                    (ann.lb() as f64) <= kp,
                    "k={k} ε={eps}: LB {} above kp {kp}",
                    ann.lb()
                );
                assert!(
                    (ann.ub() as f64) >= kp.floor(),
                    "k={k} ε={eps}: UB {} below kp {kp}",
                    ann.ub()
                );
                assert!(
                    ann.ub() as f64 <= k as f64 / 2.0,
                    "k={k} ε={eps}: UB {} above k/2",
                    ann.ub()
                );
            }
        }
    }

    #[test]
    fn complement_always_non_empty() {
        for k in 1..200usize {
            let ann = Annulus::for_parameters(k, protocol_eps_tilde(k, 1.0));
            assert!(ann.ub() < k, "k={k}");
            assert!(ann.outside_len() >= 1);
        }
    }

    #[test]
    fn tiny_k_degenerates_gracefully() {
        // k = 1, ε = 1: ε̃ = 0.2; LB = 0, UB = 0, outside = {1}.
        let ann = Annulus::for_parameters(1, 0.2);
        assert_eq!((ann.lb(), ann.ub()), (0, 0));
        let outside: Vec<usize> = ann.outside().collect();
        assert_eq!(outside, vec![1]);
    }

    #[test]
    fn inside_outside_partition() {
        for k in [1usize, 2, 7, 33, 500] {
            let ann = Annulus::for_parameters(k, protocol_eps_tilde(k, 0.7));
            let mut all: Vec<usize> = ann.inside().chain(ann.outside()).collect();
            all.sort_unstable();
            let expect: Vec<usize> = (0..=k).collect();
            assert_eq!(all, expect, "k={k}");
            assert_eq!(ann.outside_len(), ann.outside().count());
            for w in 0..=k {
                assert_eq!(ann.contains(w), (ann.lb()..=ann.ub()).contains(&w));
            }
        }
    }

    #[test]
    fn lb_hits_zero_for_small_k() {
        // kp − 2√k < 0 whenever k p² < 4, i.e. all small k.
        for k in 1..=16usize {
            let ann = Annulus::for_parameters(k, protocol_eps_tilde(k, 1.0));
            assert_eq!(ann.lb(), 0, "k={k}");
        }
    }

    #[test]
    fn g_at_bounds_matches_design_targets() {
        // The real-valued bounds satisfy g(UB) = 2^{-k}; integer flooring
        // makes g(ub) ≥ 2^{-k} ≥ g(ub+1). Verify via ln g(w) = k ln p + ε̃(k−w).
        for k in [32usize, 128, 1024] {
            let et = protocol_eps_tilde(k, 1.0);
            let ann = Annulus::for_parameters(k, et);
            let p = 1.0 / (et.exp() + 1.0);
            let ln_g = |w: f64| (k as f64) * p.ln() + et * (k as f64 - w);
            let target = -(k as f64) * 2f64.ln();
            assert!(ln_g(ann.ub() as f64) >= target - 1e-9, "k={k}");
            assert!(ln_g(ann.ub() as f64 + 1.0) <= target + 1e-9, "k={k}");
        }
    }

    #[test]
    fn from_bounds_validates() {
        let a = Annulus::from_bounds(10, 2, 5);
        assert_eq!((a.lb(), a.ub()), (2, 5));
        assert!(std::panic::catch_unwind(|| Annulus::from_bounds(10, 6, 5)).is_err());
        assert!(std::panic::catch_unwind(|| Annulus::from_bounds(10, 0, 10)).is_err());
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_rejected() {
        let _ = Annulus::for_parameters(0, 0.1);
    }
}
