//! Validated protocol parameters and derived per-order quantities.

use rtf_dyadic::interval::Horizon;

/// Why a parameter set was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// `n` must be at least 1.
    NoUsers,
    /// `d` must be a power of two, at least 1.
    BadHorizon(u64),
    /// `k` must satisfy `1 ≤ k ≤ d`.
    BadChangeBound {
        /// The offending `k`.
        k: usize,
        /// The horizon `d`.
        d: u64,
    },
    /// `ε` must satisfy `0 < ε ≤ 1` (Theorem 4.1 assumes `ε ≤ 1`).
    BadEpsilon(f64),
    /// `β` must satisfy `0 < β < 1`.
    BadBeta(f64),
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::NoUsers => write!(f, "protocol needs at least one user"),
            ParamsError::BadHorizon(d) => {
                write!(f, "horizon d = {d} must be a power of two ≥ 1")
            }
            ParamsError::BadChangeBound { k, d } => {
                write!(f, "change bound k = {k} must satisfy 1 ≤ k ≤ d = {d}")
            }
            ParamsError::BadEpsilon(e) => {
                write!(f, "privacy budget ε = {e} must satisfy 0 < ε ≤ 1")
            }
            ParamsError::BadBeta(b) => {
                write!(f, "failure probability β = {b} must be in (0, 1)")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// The protocol's public parameters: `n` users, `d` time periods, at most
/// `k` changes per user, privacy budget `ε`, failure probability `β`
/// (Problem 2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolParams {
    n: usize,
    d: u64,
    k: usize,
    epsilon: f64,
    beta: f64,
}

impl ProtocolParams {
    /// Starts a builder.
    pub fn builder() -> ProtocolParamsBuilder {
        ProtocolParamsBuilder::default()
    }

    /// Validates and constructs a parameter set.
    pub fn new(n: usize, d: u64, k: usize, epsilon: f64, beta: f64) -> Result<Self, ParamsError> {
        if n == 0 {
            return Err(ParamsError::NoUsers);
        }
        if d == 0 || !d.is_power_of_two() {
            return Err(ParamsError::BadHorizon(d));
        }
        if k == 0 || k as u64 > d {
            return Err(ParamsError::BadChangeBound { k, d });
        }
        if !(epsilon > 0.0 && epsilon <= 1.0 && epsilon.is_finite()) {
            return Err(ParamsError::BadEpsilon(epsilon));
        }
        if !(beta > 0.0 && beta < 1.0) {
            return Err(ParamsError::BadBeta(beta));
        }
        Ok(ProtocolParams {
            n,
            d,
            k,
            epsilon,
            beta,
        })
    }

    /// Number of users `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of time periods `d` (a power of two).
    #[inline]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// Per-user change bound `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Privacy budget `ε ∈ (0, 1]`.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Failure probability `β ∈ (0, 1)`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The time horizon `[1..d]`.
    pub fn horizon(&self) -> Horizon {
        Horizon::new(self.d)
    }

    /// `1 + log₂ d` — the number of orders a client samples from
    /// (Algorithm 1, line 1).
    pub fn num_orders(&self) -> u32 {
        self.horizon().num_orders()
    }

    /// The report-sequence length at order `h`: `L = d / 2^h`.
    pub fn sequence_len(&self, h: u32) -> usize {
        self.horizon().intervals_at_order(h) as usize
    }

    /// The sparsity parameter the randomizer is instantiated with at order
    /// `h`: `k_eff = max(1, min(k, L))`. A length-`L` sequence has at most
    /// `L` non-zeros, so by the bounded-support argument of Section 5.4 the
    /// smaller parameter gives the same privacy with better utility.
    pub fn k_for_order(&self, h: u32) -> usize {
        self.k.min(self.sequence_len(h)).max(1)
    }

    /// The composed randomizer's per-coordinate budget at order `h`:
    /// `ε̃ = ε / (5·√k_eff)` (Lemma 5.2).
    pub fn eps_tilde_for_order(&self, h: u32) -> f64 {
        self.epsilon / (5.0 * (self.k_for_order(h) as f64).sqrt())
    }

    /// Theorem 4.1's non-triviality assumption
    /// `ε^{-1}·(log d)·√(k·ln(d/β)) ≤ √n`. The protocol runs either way;
    /// callers can check this to know whether the error bound is
    /// meaningful.
    pub fn satisfies_theorem_4_1_assumption(&self) -> bool {
        let lhs = (1.0 / self.epsilon)
            * (self.log_d() as f64)
            * ((self.k as f64) * (self.d as f64 / self.beta).ln()).sqrt();
        lhs <= (self.n as f64).sqrt()
    }

    /// `log₂ d`.
    pub fn log_d(&self) -> u32 {
        self.horizon().log_d()
    }

    /// Theorem 4.1's error bound (the function inside the `O(·)`):
    /// `(log d / ε) · √(k · n · ln(d/β))`.
    pub fn error_bound_theorem_4_1(&self) -> f64 {
        crate::bounds::future_rand_bound(self.n, self.d, self.k, self.epsilon, self.beta)
    }
}

impl std::fmt::Display for ProtocolParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} d={} k={} ε={} β={}",
            self.n, self.d, self.k, self.epsilon, self.beta
        )
    }
}

/// Builder for [`ProtocolParams`].
#[derive(Debug, Clone, Default)]
pub struct ProtocolParamsBuilder {
    n: Option<usize>,
    d: Option<u64>,
    k: Option<usize>,
    epsilon: Option<f64>,
    beta: Option<f64>,
}

impl ProtocolParamsBuilder {
    /// Sets the number of users.
    pub fn n(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the number of time periods (must be a power of two).
    pub fn d(mut self, d: u64) -> Self {
        self.d = Some(d);
        self
    }

    /// Sets the per-user change bound.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Sets the privacy budget.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Sets the failure probability.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = Some(beta);
        self
    }

    /// Validates and builds.
    ///
    /// Missing fields default to nothing — all five must be provided.
    pub fn build(self) -> Result<ProtocolParams, ParamsError> {
        let n = self.n.ok_or(ParamsError::NoUsers)?;
        let d = self.d.ok_or(ParamsError::BadHorizon(0))?;
        let k = self.k.ok_or(ParamsError::BadChangeBound { k: 0, d })?;
        let epsilon = self.epsilon.ok_or(ParamsError::BadEpsilon(f64::NAN))?;
        let beta = self.beta.ok_or(ParamsError::BadBeta(f64::NAN))?;
        ProtocolParams::new(n, d, k, epsilon, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good() -> ProtocolParams {
        ProtocolParams::new(10_000, 256, 8, 1.0, 0.05).unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let p = ProtocolParams::builder()
            .n(10_000)
            .d(256)
            .k(8)
            .epsilon(1.0)
            .beta(0.05)
            .build()
            .unwrap();
        assert_eq!(p, good());
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert_eq!(
            ProtocolParams::new(0, 256, 8, 1.0, 0.05).unwrap_err(),
            ParamsError::NoUsers
        );
        assert!(matches!(
            ProtocolParams::new(10, 100, 8, 1.0, 0.05).unwrap_err(),
            ParamsError::BadHorizon(100)
        ));
        assert!(matches!(
            ProtocolParams::new(10, 256, 0, 1.0, 0.05).unwrap_err(),
            ParamsError::BadChangeBound { .. }
        ));
        assert!(matches!(
            ProtocolParams::new(10, 256, 300, 1.0, 0.05).unwrap_err(),
            ParamsError::BadChangeBound { .. }
        ));
        assert!(matches!(
            ProtocolParams::new(10, 256, 8, 0.0, 0.05).unwrap_err(),
            ParamsError::BadEpsilon(_)
        ));
        assert!(matches!(
            ProtocolParams::new(10, 256, 8, 1.5, 0.05).unwrap_err(),
            ParamsError::BadEpsilon(_)
        ));
        assert!(matches!(
            ProtocolParams::new(10, 256, 8, 1.0, 0.0).unwrap_err(),
            ParamsError::BadBeta(_)
        ));
        assert!(matches!(
            ProtocolParams::new(10, 256, 8, 1.0, 1.0).unwrap_err(),
            ParamsError::BadBeta(_)
        ));
    }

    #[test]
    fn derived_quantities() {
        let p = good();
        assert_eq!(p.log_d(), 8);
        assert_eq!(p.num_orders(), 9);
        assert_eq!(p.sequence_len(0), 256);
        assert_eq!(p.sequence_len(8), 1);
        // k_eff = min(k, L), at least 1.
        assert_eq!(p.k_for_order(0), 8);
        assert_eq!(p.k_for_order(5), 8); // L = 8
        assert_eq!(p.k_for_order(6), 4); // L = 4
        assert_eq!(p.k_for_order(8), 1); // L = 1
    }

    #[test]
    fn eps_tilde_formula() {
        let p = good();
        let expect = 1.0 / (5.0 * (8f64).sqrt());
        assert!((p.eps_tilde_for_order(0) - expect).abs() < 1e-15);
        // At order 8 k_eff = 1 so ε̃ = ε/5.
        assert!((p.eps_tilde_for_order(8) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn assumption_check_scales_with_n() {
        // Tiny n fails, huge n passes.
        let small = ProtocolParams::new(10, 256, 8, 1.0, 0.05).unwrap();
        assert!(!small.satisfies_theorem_4_1_assumption());
        let big = ProtocolParams::new(10_000_000, 256, 8, 1.0, 0.05).unwrap();
        assert!(big.satisfies_theorem_4_1_assumption());
    }

    #[test]
    fn error_bound_monotonicity() {
        let base = good();
        let more_changes = ProtocolParams::new(10_000, 256, 32, 1.0, 0.05).unwrap();
        let more_users = ProtocolParams::new(40_000, 256, 8, 1.0, 0.05).unwrap();
        let less_privacy = ProtocolParams::new(10_000, 256, 8, 0.5, 0.05).unwrap();
        assert!(more_changes.error_bound_theorem_4_1() > base.error_bound_theorem_4_1());
        assert!(more_users.error_bound_theorem_4_1() > base.error_bound_theorem_4_1());
        assert!(less_privacy.error_bound_theorem_4_1() > base.error_bound_theorem_4_1());
        // √k and √n scaling, 1/ε scaling — exact ratios.
        let r_k = more_changes.error_bound_theorem_4_1() / base.error_bound_theorem_4_1();
        assert!((r_k - 2.0).abs() < 1e-12, "√(32/8) = 2, got {r_k}");
        let r_n = more_users.error_bound_theorem_4_1() / base.error_bound_theorem_4_1();
        assert!((r_n - 2.0).abs() < 1e-12);
        let r_e = less_privacy.error_bound_theorem_4_1() / base.error_bound_theorem_4_1();
        assert!((r_e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_all_fields() {
        let s = format!("{}", good());
        for needle in ["10000", "256", "8", "1", "0.05"] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn missing_builder_fields_error() {
        assert!(ProtocolParams::builder().build().is_err());
        assert!(ProtocolParams::builder().n(5).d(8).k(2).build().is_err());
    }
}
