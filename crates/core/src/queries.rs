//! Derived queries over the server's interval estimates.
//!
//! Algorithm 2 answers prefix queries (`â[t]`). But the same per-interval
//! estimates `Ŝ(I_{h,j})` support more: any *window change*
//! `a[r] − a[l−1]` decomposes over `decompose_range(l, r)` into at most
//! `2·⌈log(r−l+1)⌉` dyadic intervals (the remark after Fact 3.8), each of
//! which the server has already estimated. Because every `Ŝ` is unbiased,
//! so is every such combination — and no extra privacy budget is spent:
//! this is pure post-processing of the already-released values.
//!
//! [`EstimateStore`] retains the full dyadic tree of finalized `Ŝ`
//! values (`2d − 1` floats) and answers:
//!
//! * `prefix(t)` — the standard `â[t]` (identical to the streaming
//!   frontier's answer);
//! * `window_change(l, r)` — unbiased estimate of `a[r] − a[l−1]` with
//!   error `O(√(log(r−l+1)))·noise-scale`, independent of `t` — much
//!   sharper than the difference of two prefixes when the window is
//!   short;
//! * `interval_sum(I)` — the raw `Ŝ(I)` for custom post-processing.

use crate::params::ProtocolParams;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use rtf_dyadic::decompose::{decompose_prefix, decompose_range};
use rtf_dyadic::interval::DyadicInterval;
use rtf_dyadic::tree::DyadicTree;

/// Dense storage of every finalized interval estimate `Ŝ(I_{h,j})`.
#[derive(Debug, Clone)]
pub struct EstimateStore {
    tree: DyadicTree<f64>,
    finalized_through: u64,
}

impl EstimateStore {
    /// An empty store for the given parameters.
    pub fn new(params: &ProtocolParams) -> Self {
        EstimateStore {
            tree: DyadicTree::new(params.horizon()),
            finalized_through: 0,
        }
    }

    /// Records the finalized estimate of one interval. Must be called for
    /// every interval ending at `t`, for `t = 1, 2, …` in order (the
    /// server does this as periods close).
    ///
    /// # Panics
    /// Panics if the interval ends after the last closed period + 1.
    pub fn record(&mut self, interval: DyadicInterval, s_hat: f64) {
        assert!(
            interval.end() <= self.finalized_through + 1,
            "interval {interval} recorded before its completion period"
        );
        *self.tree.get_mut(interval) = s_hat;
        self.finalized_through = self.finalized_through.max(interval.end());
    }

    /// The last period through which all intervals are finalized.
    pub fn finalized_through(&self) -> u64 {
        self.finalized_through
    }

    /// The raw interval estimate `Ŝ(I)`.
    ///
    /// # Panics
    /// Panics if the interval has not completed yet.
    pub fn interval_sum(&self, interval: DyadicInterval) -> f64 {
        assert!(
            interval.end() <= self.finalized_through,
            "interval {interval} not finalized yet (through {})",
            self.finalized_through
        );
        *self.tree.get(interval)
    }

    /// The prefix estimate `â[t] = Σ_{I ∈ C(t)} Ŝ(I)` (Algorithm 2,
    /// line 6).
    pub fn prefix(&self, t: u64) -> f64 {
        assert!(
            t >= 1 && t <= self.finalized_through,
            "prefix query at t={t} outside finalized range [1..{}]",
            self.finalized_through
        );
        decompose_prefix(t)
            .into_iter()
            .map(|i| self.interval_sum(i))
            .sum()
    }

    /// Unbiased estimate of the *window change* `a[r] − a[l−1]`
    /// (`= Σ_{t ∈ [l..r]} Σ_u X_u[t]`), via the minimal dyadic cover of
    /// `[l..r]`.
    ///
    /// Uses at most `2⌈log(r−l+1)⌉ + 2` interval estimates, so its noise
    /// is governed by the window length, not the absolute time — for
    /// short windows this is much sharper than `prefix(r) − prefix(l−1)`.
    pub fn window_change(&self, l: u64, r: u64) -> f64 {
        assert!(l >= 1 && l <= r, "bad window [{l}..{r}]");
        assert!(
            r <= self.finalized_through,
            "window end {r} not finalized yet (through {})",
            self.finalized_through
        );
        decompose_range(l, r)
            .into_iter()
            .map(|i| self.interval_sum(i))
            .sum()
    }

    /// Number of interval estimates a window query combines — the error
    /// of [`window_change`](Self::window_change) scales with the square
    /// root of this.
    pub fn window_cost(l: u64, r: u64) -> usize {
        decompose_range(l, r).len()
    }

    /// Serializes the store: `finalized_through`, then every interval
    /// value in canonical tree order (order-major, index-ascending — the
    /// shape is fully determined by the horizon, so no lengths needed).
    pub fn write_state(&self, w: &mut SnapWriter) {
        w.u64(self.finalized_through);
        for (_, v) in self.tree.iter() {
            w.f64(*v);
        }
    }

    /// Rebuilds a store for `params` from bytes written by
    /// [`write_state`](Self::write_state).
    ///
    /// # Errors
    /// Typed [`SnapshotError`] on truncation or a `finalized_through`
    /// beyond the horizon.
    pub fn read_state(
        params: &ProtocolParams,
        r: &mut SnapReader<'_>,
    ) -> Result<Self, SnapshotError> {
        let finalized_through = r.u64()?;
        if finalized_through > params.d() {
            return Err(SnapshotError::Corrupt(
                "estimate store finalized beyond the horizon",
            ));
        }
        let hz = params.horizon();
        let mut tree = DyadicTree::new(hz);
        for h in 0..hz.num_orders() {
            for j in 1..=hz.intervals_at_order(h) {
                *tree.get_mut(DyadicInterval::new(h, j)) = r.f64()?;
            }
        }
        Ok(EstimateStore {
            tree,
            finalized_through,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_dyadic::interval::Horizon;

    /// Fills a store with the *exact* interval sums of a known series, so
    /// every query must be exact.
    fn exact_store(d: u64, leaves: &[f64]) -> EstimateStore {
        let params = ProtocolParams::new(10, d, 1, 1.0, 0.05).unwrap();
        let mut store = EstimateStore::new(&params);
        let hz = Horizon::new(d);
        for t in 1..=d {
            for h in 0..=t.trailing_zeros().min(hz.log_d()) {
                let i = DyadicInterval::new(h, t >> h);
                let sum: f64 = i.times().map(|x| leaves[(x - 1) as usize]).sum();
                store.record(i, sum);
            }
        }
        store
    }

    #[test]
    fn prefix_matches_direct_sum() {
        let d = 32u64;
        let leaves: Vec<f64> = (0..d).map(|i| ((i % 7) as f64) - 3.0).collect();
        let store = exact_store(d, &leaves);
        let mut acc = 0.0;
        for t in 1..=d {
            acc += leaves[(t - 1) as usize];
            assert_eq!(store.prefix(t), acc, "t={t}");
        }
    }

    #[test]
    fn window_change_matches_direct_sum() {
        let d = 64u64;
        let leaves: Vec<f64> = (0..d).map(|i| (i as f64).sin()).collect();
        let store = exact_store(d, &leaves);
        for l in 1..=d {
            for r in l..=d {
                let direct: f64 = (l..=r).map(|t| leaves[(t - 1) as usize]).sum();
                let got = store.window_change(l, r);
                assert!((got - direct).abs() < 1e-9, "[{l}..{r}]: {got} vs {direct}");
            }
        }
    }

    #[test]
    fn window_cost_is_logarithmic() {
        for (l, r) in [(1u64, 64u64), (3, 60), (17, 18), (5, 5)] {
            let len = r - l + 1;
            let bound = 2 * (64 - len.leading_zeros()) as usize + 2;
            assert!(EstimateStore::window_cost(l, r) <= bound, "[{l}..{r}]");
        }
    }

    #[test]
    fn queries_on_unfinalized_data_panic() {
        let params = ProtocolParams::new(10, 8, 1, 1.0, 0.05).unwrap();
        let mut store = EstimateStore::new(&params);
        store.record(DyadicInterval::new(0, 1), 1.0);
        assert!(std::panic::catch_unwind(|| store.prefix(2)).is_err());
        assert!(std::panic::catch_unwind(|| store.window_change(1, 3)).is_err());
        // But finalized data answers.
        assert_eq!(store.prefix(1), 1.0);
    }

    #[test]
    fn premature_record_rejected() {
        let params = ProtocolParams::new(10, 8, 1, 1.0, 0.05).unwrap();
        let mut store = EstimateStore::new(&params);
        // I_{1,1} ends at 2 but nothing is finalized yet.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.record(DyadicInterval::new(1, 1), 0.0)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn store_state_roundtrips_bit_identically() {
        let d = 16u64;
        let leaves: Vec<f64> = (0..d).map(|i| (i as f64 * 0.3).sin()).collect();
        let store = exact_store(d, &leaves);
        let params = ProtocolParams::new(10, d, 1, 1.0, 0.05).unwrap();
        let mut w = crate::snapshot::SnapWriter::new();
        store.write_state(&mut w);
        let bytes = w.finish();
        let mut r = crate::snapshot::SnapReader::new(&bytes).unwrap();
        let back = EstimateStore::read_state(&params, &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.finalized_through(), store.finalized_through());
        for t in 1..=d {
            assert_eq!(back.prefix(t).to_bits(), store.prefix(t).to_bits(), "t={t}");
        }
    }

    #[test]
    fn window_vs_prefix_difference_identity() {
        // With exact (noise-free) values the two query styles coincide;
        // with noise they differ in variance, not in expectation.
        let d = 32u64;
        let leaves: Vec<f64> = (0..d).map(|i| (i as f64 * 0.7).cos()).collect();
        let store = exact_store(d, &leaves);
        for l in 2..=d {
            for r in l..=d {
                let a = store.window_change(l, r);
                let b = store.prefix(r) - store.prefix(l - 1);
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
