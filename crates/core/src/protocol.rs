//! An in-memory end-to-end driver for the full protocol.
//!
//! Wires `n` [`Client`]s (Algorithm 1) to one [`Server`] (Algorithm 2) over
//! direct function calls, preserving the online schedule: at each period
//! `t` every client whose order divides `t` reports, then the server
//! closes the period and emits `â[t]`. The message-level (serialised,
//! byte-counted) version of the same loop lives in `rtf-sim`; this one is
//! the fast path used by tests and error-measurement experiments.
//!
//! Determinism: all randomness derives from a single `seed` via
//! `SeedSequence` — `trial → user` for client randomness — so outcomes are
//! reproducible across runs and thread counts.

use crate::client::Client;
use crate::composed::ComposedRandomizer;
use crate::params::ProtocolParams;
use crate::randomizer::FutureRand;
use crate::server::Server;
use rtf_primitives::fastseed::{self, SeedSchema};
use rtf_primitives::seeding::SeedSequence;
use rtf_streams::population::Population;

/// The result of one end-to-end protocol execution.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome {
    estimates: Vec<f64>,
    group_sizes: Vec<usize>,
    reports_sent: u64,
}

impl ProtocolOutcome {
    /// Assembles an outcome from its parts — used by the baseline
    /// protocols in `rtf-baselines`, which share this result type.
    pub fn from_parts(estimates: Vec<f64>, group_sizes: Vec<usize>, reports_sent: u64) -> Self {
        ProtocolOutcome {
            estimates,
            group_sizes,
            reports_sent,
        }
    }

    /// The online estimates `â[t]` (`estimates()[t−1] = â[t]`).
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// `|U_h|` per order — how the population split across the hierarchy.
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// Total report bits sent by all clients over the whole horizon.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }
}

/// Runs the full FutureRand protocol in memory over a concrete population.
///
/// # Panics
/// Panics if the population does not match `params` (`n`, `d`) or violates
/// the `k`-sparsity bound.
pub fn run_in_memory(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ProtocolOutcome {
    run_in_memory_impl(params, population, seed, false, SeedSchema::from_env()).0
}

/// [`run_in_memory`] under an explicit client randomness schema
/// (instead of `RTF_SEED_SCHEMA`).
pub fn run_in_memory_schema(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    schema: SeedSchema,
) -> ProtocolOutcome {
    run_in_memory_impl(params, population, seed, false, schema).0
}

/// Like [`run_in_memory`], but additionally retains the full tree of
/// interval estimates so the caller can answer window-change queries
/// (pure post-processing — no extra privacy cost).
pub fn run_in_memory_with_store(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> (ProtocolOutcome, crate::queries::EstimateStore) {
    let (outcome, store) =
        run_in_memory_impl(params, population, seed, true, SeedSchema::from_env());
    (outcome, store.expect("store was requested"))
}

fn run_in_memory_impl(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    with_store: bool,
    schema: SeedSchema,
) -> (ProtocolOutcome, Option<crate::queries::EstimateStore>) {
    assert_eq!(
        population.n(),
        params.n(),
        "population has {} users, params say {}",
        population.n(),
        params.n()
    );
    assert_eq!(
        population.d(),
        params.d(),
        "population horizon {} ≠ params d = {}",
        population.d(),
        params.d()
    );
    population.assert_k_sparse(params.k());

    // Shared composed-randomizer tables, one per order (k_eff varies).
    let composed: Vec<ComposedRandomizer> = (0..params.num_orders())
        .map(|h| ComposedRandomizer::for_protocol(params.k_for_order(h), params.epsilon()))
        .collect();

    let mut server = Server::for_future_rand_schema(
        *params,
        crate::accumulator::AccumulatorKind::from_env(),
        schema,
    );
    if with_store {
        server.enable_store();
    }
    let root = SeedSequence::new(seed);

    // Per-user state: client machine + RNG, grouped by order for the round
    // loop.
    let mut groups: Vec<Vec<(usize, Client<FutureRand>, rand::rngs::StdRng)>> =
        (0..params.num_orders()).map(|_| Vec::new()).collect();
    for u in 0..params.n() {
        let node = root.child(u as u64);
        let mut rng = node.rng();
        let h = Client::<FutureRand>::sample_order(params, &mut rng);
        server.register_user(h);
        let m = FutureRand::init_with_schema(
            params.sequence_len(h),
            &composed[h as usize],
            &mut rng,
            schema,
            fastseed::client_key(&node),
        );
        let client = Client::new(params, h, m);
        groups[h as usize].push((u, client, rng));
    }

    // Online round loop. Each client only *needs* its derivative at its
    // own reporting boundaries; feeding every period keeps the client
    // state machine honest (it checks in-order delivery and derivative
    // validity). To keep the loop O(Σ_u d/2^{h_u}) rather than O(n·d), we
    // feed each client only the periods of its own stride but compute the
    // interval partial sum directly from the stream (Observation 3.7) —
    // the two are equivalent, and the equivalence is covered by the
    // client's own unit tests plus `rtf-sim`'s event-driven engine, which
    // does feed every period.
    let mut reports_sent = 0u64;
    for t in 1..=params.d() {
        let max_h = t.trailing_zeros().min(params.log_d());
        for h in 0..=max_h {
            let stride = 1u64 << h;
            for (u, client, rng) in groups[h as usize].iter_mut() {
                let x = population.stream(*u).derivative();
                // Drive the client through the periods of this interval.
                let start = t - stride + 1;
                let mut report = None;
                for tt in start..=t {
                    report = client.observe(tt, x.at(tt), rng);
                }
                let r = report.expect("interval boundary must produce a report");
                server.ingest(h, r.bit);
                reports_sent += 1;
            }
        }
        let _ = server.end_of_period(t);
    }

    let outcome = ProtocolOutcome {
        estimates: server.estimates().to_vec(),
        group_sizes: server.group_sizes().to_vec(),
        reports_sent,
    };
    let store = server.store().cloned();
    (outcome, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_streams::generator::{StaticPopulation, UniformChanges};

    fn linf(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    /// The rigorous high-probability envelope from the proof of Lemma 4.6
    /// (Equation 13 + union bound over d periods), with the *exact*
    /// per-order c_gap the implementation uses:
    /// `(1 + log d) · max_h c_gap(h)^{-1} · √(2 n ln(2d/β))`.
    fn exact_envelope(params: &ProtocolParams) -> f64 {
        let worst_scale = (0..params.num_orders())
            .map(|h| {
                let gap = crate::gap::WeightClassLaw::for_protocol(
                    params.k_for_order(h),
                    params.epsilon(),
                )
                .c_gap();
                (1.0 + f64::from(params.log_d())) / gap
            })
            .fold(0.0, f64::max);
        worst_scale
            * (2.0 * params.n() as f64 * (2.0 * params.d() as f64 / params.beta()).ln()).sqrt()
    }

    #[test]
    fn outcome_shape_and_determinism() {
        let params = ProtocolParams::new(500, 32, 4, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(9).rng();
        let pop = Population::generate(&UniformChanges::new(32, 4, 0.7), 500, &mut rng);
        let o1 = run_in_memory(&params, &pop, 1234);
        let o2 = run_in_memory(&params, &pop, 1234);
        assert_eq!(o1.estimates(), o2.estimates(), "same seed ⇒ same run");
        assert_eq!(o1.estimates().len(), 32);
        assert_eq!(o1.group_sizes().iter().sum::<usize>(), 500);
        assert!(o1.reports_sent() > 0);
        let o3 = run_in_memory(&params, &pop, 9999);
        assert_ne!(
            o1.estimates(),
            o3.estimates(),
            "different seed ⇒ different noise"
        );
    }

    #[test]
    fn error_within_theoretical_envelope() {
        // A mid-size instance: the measured ℓ∞ error must sit inside the
        // rigorous Hoeffding envelope (holds w.p. ≥ 1−β; the seed is
        // fixed, and Hoeffding is loose, so this is stable).
        let params = ProtocolParams::new(4_000, 64, 4, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(10).rng();
        let pop = Population::generate(&UniformChanges::new(64, 4, 0.8), 4_000, &mut rng);
        let outcome = run_in_memory(&params, &pop, 77);
        let err = linf(outcome.estimates(), pop.true_counts());
        let envelope = exact_envelope(&params);
        assert!(err < envelope, "ℓ∞ error {err} vs envelope {envelope}");
        // And the error is genuinely driven by the noise scale, not by a
        // systematic bias: it should be well above 0 but below the
        // envelope by some margin on typical seeds.
        assert!(err > 0.0);
    }

    #[test]
    fn estimates_track_a_static_population() {
        // Static population: truth is constant ≈ 0.3·n at all times; the
        // protocol's estimates stay inside the rigorous envelope.
        let n = 8_000usize;
        let params = ProtocolParams::new(n, 64, 1, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(11).rng();
        let pop = Population::generate(&StaticPopulation::new(64, 0.3), n, &mut rng);
        let outcome = run_in_memory(&params, &pop, 3);
        let truth = pop.true_counts();
        let err = linf(outcome.estimates(), truth);
        let envelope = exact_envelope(&params);
        assert!(err < envelope, "err {err} vs envelope {envelope}");
    }

    #[test]
    fn reports_sent_matches_group_structure() {
        // Each user at order h sends d/2^h reports.
        let params = ProtocolParams::new(300, 16, 2, 0.5, 0.1).unwrap();
        let mut rng = SeedSequence::new(12).rng();
        let pop = Population::generate(&UniformChanges::new(16, 2, 0.5), 300, &mut rng);
        let outcome = run_in_memory(&params, &pop, 5);
        let expect: u64 = outcome
            .group_sizes()
            .iter()
            .enumerate()
            .map(|(h, &sz)| (sz as u64) * (16 >> h))
            .sum();
        assert_eq!(outcome.reports_sent(), expect);
    }

    #[test]
    #[should_panic(expected = "population has")]
    fn population_size_mismatch_rejected() {
        let params = ProtocolParams::new(10, 16, 2, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(13).rng();
        let pop = Population::generate(&UniformChanges::new(16, 2, 0.5), 5, &mut rng);
        let _ = run_in_memory(&params, &pop, 1);
    }

    #[test]
    fn store_variant_supports_window_queries() {
        let params = ProtocolParams::new(2_000, 64, 4, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(14).rng();
        let pop = Population::generate(&UniformChanges::new(64, 4, 0.8), 2_000, &mut rng);
        let (outcome, store) = run_in_memory_with_store(&params, &pop, 21);
        // Prefix queries through the store agree with the streaming
        // estimates exactly.
        for t in 1..=64u64 {
            let a = store.prefix(t);
            let b = outcome.estimates()[(t - 1) as usize];
            assert!((a - b).abs() < 1e-9, "t={t}: {a} vs {b}");
        }
        // Window change estimates are the prefix difference (same linear
        // combination of interval estimates when windows start at 1).
        let w = store.window_change(1, 32);
        assert!((w - store.prefix(32)).abs() < 1e-9);
        // Short-window queries use few intervals.
        assert!(crate::queries::EstimateStore::window_cost(17, 20) <= 4);
    }

    #[test]
    #[should_panic(expected = "exceeding k")]
    fn sparsity_violation_rejected() {
        let params = ProtocolParams::new(5, 16, 1, 1.0, 0.05).unwrap();
        let streams = (0..5)
            .map(|_| rtf_streams::stream::BoolStream::from_change_times(16, vec![1, 2]))
            .collect();
        let pop = Population::from_streams(streams);
        let _ = run_in_memory(&params, &pop, 1);
    }
}
