//! Mergeable accumulation state — the parallelism seam of Algorithm 2.
//!
//! The server's only per-report state is, per order `h`, the running sum
//! of ±1 report bits of the currently open order-`h` dyadic interval.
//! That is a commutative monoid: accumulating a shard of users on its own
//! [`Accumulator`] and [`merge`](Accumulator::merge)-ing the shards gives
//! exactly the sum the sequential server would have built — report bits
//! are ±1 and batch totals are integer-valued, so every intermediate sum
//! is an integer far below 2⁵³ and `f64` addition over them is exact,
//! associative, and commutative. This is what makes user-partitioned
//! parallel execution value-for-value identical to sequential execution
//! for any worker count.
//!
//! [`Server`](crate::server::Server) owns one [`DenseAccumulator`] and is
//! a thin checked-ingestion/finalisation facade over it; the parallel
//! runtime builds one shard accumulator per worker and merges them in
//! shard-index order.

use rtf_primitives::sign::Sign;

/// Mergeable per-order report accumulation.
///
/// Implementations must form a commutative monoid under
/// [`merge`](Self::merge) for integer-valued contents: `merge` is how
/// worker shards combine, and the runtime relies on
/// `a ⊕ (b ⊕ c) = (a ⊕ b) ⊕ c` and `a ⊕ b = b ⊕ a` to make results
/// independent of the worker count and partition.
pub trait Accumulator: Send {
    /// Number of orders (`1 + log d`) this accumulator tracks.
    fn orders(&self) -> usize;

    /// Records one ±1 report bit for the currently open order-`h`
    /// interval.
    fn record(&mut self, h: u32, bit: Sign);

    /// Records a pre-summed batch of `count` report bits totalling `sum`
    /// (integer-valued for ±1 bits).
    fn record_batch(&mut self, h: u32, sum: f64, count: u64);

    /// Adds another shard of the same shape into `self`.
    ///
    /// # Panics
    /// Panics if the shapes (order counts) differ.
    fn merge(&mut self, other: &Self);

    /// The running sum of the currently open order-`h` interval.
    fn order_sum(&self, h: u32) -> f64;

    /// Returns the order-`h` sum and resets it to zero — called by the
    /// server when the order-`h` interval completes.
    fn take_order(&mut self, h: u32) -> f64;

    /// Total number of report bits recorded (including merged shards).
    fn reports(&self) -> u64;
}

/// The dense per-order shard implementation: one running `f64` sum per
/// order plus a report counter. This is the accumulation state formerly
/// embedded in `Server` (`open_sums` + `reports_ingested`), extracted so
/// shards of users can accumulate independently and merge.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseAccumulator {
    sums: Vec<f64>,
    reports: u64,
}

impl DenseAccumulator {
    /// An empty accumulator for `orders` orders (`1 + log d`).
    pub fn new(orders: usize) -> Self {
        DenseAccumulator {
            sums: vec![0.0; orders],
            reports: 0,
        }
    }

    /// The per-order running sums.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Whether nothing has been recorded (all sums zero, zero reports).
    pub fn is_empty(&self) -> bool {
        self.reports == 0 && self.sums.iter().all(|&s| s == 0.0)
    }
}

impl Accumulator for DenseAccumulator {
    fn orders(&self) -> usize {
        self.sums.len()
    }

    #[inline]
    fn record(&mut self, h: u32, bit: Sign) {
        self.sums[h as usize] += bit.as_f64();
        self.reports += 1;
    }

    #[inline]
    fn record_batch(&mut self, h: u32, sum: f64, count: u64) {
        self.sums[h as usize] += sum;
        self.reports += count;
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.sums.len(),
            other.sums.len(),
            "cannot merge accumulators of different shapes: {} vs {} orders",
            self.sums.len(),
            other.sums.len()
        );
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        self.reports += other.reports;
    }

    #[inline]
    fn order_sum(&self, h: u32) -> f64 {
        self.sums[h as usize]
    }

    #[inline]
    fn take_order(&mut self, h: u32) -> f64 {
        std::mem::take(&mut self.sums[h as usize])
    }

    fn reports(&self) -> u64 {
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rtf_primitives::seeding::SeedSequence;

    fn random_acc(rng: &mut impl Rng, orders: usize, events: usize) -> DenseAccumulator {
        let mut acc = DenseAccumulator::new(orders);
        for _ in 0..events {
            let h = rng.random_range(0..orders) as u32;
            if rng.random_bool(0.5) {
                let bit = if rng.random_bool(0.5) {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                acc.record(h, bit);
            } else {
                // Integer-valued batch totals, like ingest_aggregate sees.
                let count = rng.random_range(0..50u64);
                let sum = if count == 0 {
                    0.0
                } else {
                    rng.random_range(-(count as i64)..=count as i64) as f64
                };
                acc.record_batch(h, sum, count);
            }
        }
        acc
    }

    fn merged(parts: &[&DenseAccumulator]) -> DenseAccumulator {
        let mut out = DenseAccumulator::new(parts[0].orders());
        for p in parts {
            out.merge(p);
        }
        out
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // The monoid laws the parallel runtime depends on, over randomly
        // built integer-valued accumulators: every grouping and every
        // ordering of shard merges produces the identical accumulator.
        let mut rng = SeedSequence::new(4242).rng();
        for _ in 0..50 {
            let orders = rng.random_range(1..8usize);
            let a = random_acc(&mut rng, orders, 40);
            let b = random_acc(&mut rng, orders, 40);
            let c = random_acc(&mut rng, orders, 40);

            // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc);

            // Commutativity: every permutation of {a, b, c} agrees.
            let abc = merged(&[&a, &b, &c]);
            for perm in [
                [&a, &c, &b],
                [&b, &a, &c],
                [&b, &c, &a],
                [&c, &a, &b],
                [&c, &b, &a],
            ] {
                assert_eq!(merged(&perm), abc);
            }

            // Identity: merging an empty accumulator changes nothing.
            let mut with_unit = abc.clone();
            with_unit.merge(&DenseAccumulator::new(orders));
            assert_eq!(with_unit, abc);
        }
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        // Splitting one event stream across shards and merging gives the
        // same state as recording everything on one accumulator.
        let mut rng = SeedSequence::new(77).rng();
        let orders = 5usize;
        let events: Vec<(u32, Sign)> = (0..500)
            .map(|_| {
                let h = rng.random_range(0..orders) as u32;
                let bit = if rng.random_bool(0.5) {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                (h, bit)
            })
            .collect();
        let mut whole = DenseAccumulator::new(orders);
        for &(h, bit) in &events {
            whole.record(h, bit);
        }
        for shards in [1usize, 2, 3, 8] {
            let chunk = events.len().div_ceil(shards);
            let mut out = DenseAccumulator::new(orders);
            for part in events.chunks(chunk) {
                let mut acc = DenseAccumulator::new(orders);
                for &(h, bit) in part {
                    acc.record(h, bit);
                }
                out.merge(&acc);
            }
            assert_eq!(out, whole, "{shards} shards");
        }
        assert_eq!(whole.reports(), 500);
    }

    #[test]
    fn take_order_drains_one_slot() {
        let mut acc = DenseAccumulator::new(3);
        acc.record(1, Sign::Plus);
        acc.record(1, Sign::Plus);
        acc.record(2, Sign::Minus);
        assert_eq!(acc.order_sum(1), 2.0);
        assert_eq!(acc.take_order(1), 2.0);
        assert_eq!(acc.order_sum(1), 0.0);
        assert_eq!(acc.order_sum(2), -1.0);
        assert_eq!(acc.reports(), 3);
        assert!(!acc.is_empty());
        assert!(DenseAccumulator::new(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn shape_mismatch_rejected() {
        let mut a = DenseAccumulator::new(3);
        a.merge(&DenseAccumulator::new(4));
    }
}
