//! Mergeable accumulation state — the storage-engine layer of Algorithm 2.
//!
//! The server's only per-report state is, per order `h`, the running sum
//! of ±1 report bits of the currently open order-`h` dyadic interval.
//! That is a commutative monoid: accumulating a shard of users on its own
//! [`Accumulator`] and [`merge`](Accumulator::merge)-ing the shards gives
//! exactly the sum the sequential server would have built — report bits
//! are ±1 and batch totals are integer-valued, so every intermediate sum
//! is an integer far below 2⁵³ and `f64` addition over them is exact,
//! associative, and commutative. This is what makes user-partitioned
//! parallel execution value-for-value identical to sequential execution
//! for any worker count.
//!
//! The *storage layout* of those per-order sums is a free design axis the
//! paper never pins down, so this module treats it as a pluggable
//! backend. Four layouts live behind the one trait, selected by
//! [`AccumulatorKind`] (env var `RTF_BACKEND`):
//!
//! * [`DenseAccumulator`] — one `f64` per order; the reference layout.
//! * [`FixedPointAccumulator`] — one `i64` per order. Report sums are
//!   integers, so integer storage is exact, bit-identical across
//!   platforms/FPUs/worker counts, and saturating-checked against the
//!   `n·k` bound derived from [`ProtocolParams`].
//! * [`SparseAccumulator`] — a compressed order→sum map holding only
//!   *touched* orders. At period `t` only orders with `2ʰ | t` receive
//!   reports, so per-period shard accumulators in the batched pipeline
//!   hold ~2 entries on average instead of `1 + log d` lanes — the
//!   memory win grows with `log d`.
//! * [`SoaAccumulator`] — two contiguous unsigned count lanes per order
//!   (`+1` count, `−1` count) in one allocation: the hot `record` path
//!   is a single integer increment with no floating-point op, and the
//!   sum is reconstructed exactly on demand.
//!
//! All four are **exact** for integer-valued contents, so every backend
//! produces identical frequency estimates — asserted value-for-value by
//! the differential oracle (`rtf_scenarios::oracle::
//! assert_backend_agreement`).
//!
//! [`Server`](crate::server::Server) owns one [`AnyAccumulator`] and is
//! a thin checked-ingestion/finalisation facade over it; the parallel
//! runtime builds one shard accumulator per worker (same backend) and
//! merges them in shard-index order. Mixing backends or shapes across a
//! merge is a typed [`AccumulatorError`], never UB or a silent wrong
//! answer.

use crate::params::ProtocolParams;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use rtf_primitives::sign::Sign;

/// Why two accumulators refused to merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumulatorError {
    /// The order counts differ — the shards track different horizons.
    ShapeMismatch {
        /// Orders of the accumulator being merged into.
        expected: usize,
        /// Orders of the offending shard.
        got: usize,
    },
    /// The storage backends differ — a shard built for one layout was
    /// handed to a server running another.
    BackendMismatch {
        /// Backend of the accumulator being merged into.
        expected: AccumulatorKind,
        /// Backend of the offending shard.
        got: AccumulatorKind,
    },
}

impl std::fmt::Display for AccumulatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccumulatorError::ShapeMismatch { expected, got } => write!(
                f,
                "cannot merge accumulators of different shapes: {expected} vs {got} orders"
            ),
            AccumulatorError::BackendMismatch { expected, got } => write!(
                f,
                "cannot merge accumulators of different backends: {expected} vs {got}"
            ),
        }
    }
}

impl std::error::Error for AccumulatorError {}

/// Mergeable per-order report accumulation.
///
/// Implementations must form a commutative monoid under
/// [`merge`](Self::merge) for integer-valued contents: `merge` is how
/// worker shards combine, and the runtime relies on
/// `a ⊕ (b ⊕ c) = (a ⊕ b) ⊕ c` and `a ⊕ b = b ⊕ a` to make results
/// independent of the worker count and partition.
pub trait Accumulator: Send {
    /// Number of orders (`1 + log d`) this accumulator tracks.
    fn orders(&self) -> usize;

    /// Records one ±1 report bit for the currently open order-`h`
    /// interval.
    fn record(&mut self, h: u32, bit: Sign);

    /// Records a pre-summed batch of `count` report bits totalling `sum`
    /// (integer-valued for ±1 bits).
    fn record_batch(&mut self, h: u32, sum: f64, count: u64);

    /// Records a batch given as separate `+1`/`−1` counts — the shape the
    /// packed sign lanes produce from masked popcounts. Equivalent by
    /// definition to `record_batch(h, (plus − minus) as f64,
    /// plus + minus)`; backends override it to take the word-at-a-time
    /// path (pure integer arithmetic, no `f64` round-trip).
    #[inline]
    fn record_counts(&mut self, h: u32, plus: u64, minus: u64) {
        self.record_batch(h, (plus as i64 - minus as i64) as f64, plus + minus);
    }

    /// Adds another shard of the same shape into `self`, rejecting
    /// mismatched shapes with a typed error.
    fn try_merge(&mut self, other: &Self) -> Result<(), AccumulatorError>;

    /// Adds another shard of the same shape into `self`.
    ///
    /// # Panics
    /// Panics if the shapes (order counts) or backends differ; use
    /// [`try_merge`](Self::try_merge) where a recoverable error is
    /// wanted.
    fn merge(&mut self, other: &Self) {
        if let Err(e) = self.try_merge(other) {
            panic!("{e}");
        }
    }

    /// The running sum of the currently open order-`h` interval.
    fn order_sum(&self, h: u32) -> f64;

    /// Returns the order-`h` sum and resets it to zero — called by the
    /// server when the order-`h` interval completes.
    fn take_order(&mut self, h: u32) -> f64;

    /// Total number of report bits recorded (including merged shards).
    fn reports(&self) -> u64;

    /// Bytes of heap memory this accumulator's storage currently holds —
    /// the quantity `exp_backends` compares across layouts.
    fn heap_bytes(&self) -> usize;
}

/// Converts an integer-valued batch total to `i64`, rejecting fractional
/// or out-of-range values (±1 report bits can never produce them).
#[inline]
fn integral(sum: f64) -> i64 {
    assert!(
        sum.fract() == 0.0 && sum.abs() < 2f64.powi(53),
        "batch sum {sum} is not an exactly-representable integer"
    );
    sum as i64
}

/// The dense per-order shard implementation: one running `f64` sum per
/// order plus a report counter. This is the accumulation state formerly
/// embedded in `Server` (`open_sums` + `reports_ingested`), extracted so
/// shards of users can accumulate independently and merge.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseAccumulator {
    sums: Vec<f64>,
    reports: u64,
}

impl DenseAccumulator {
    /// An empty accumulator for `orders` orders (`1 + log d`).
    pub fn new(orders: usize) -> Self {
        DenseAccumulator {
            sums: vec![0.0; orders],
            reports: 0,
        }
    }

    /// The per-order running sums.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Whether nothing has been recorded (all sums zero, zero reports).
    pub fn is_empty(&self) -> bool {
        self.reports == 0 && self.sums.iter().all(|&s| s == 0.0)
    }
}

impl Accumulator for DenseAccumulator {
    fn orders(&self) -> usize {
        self.sums.len()
    }

    #[inline]
    fn record(&mut self, h: u32, bit: Sign) {
        self.sums[h as usize] += bit.as_f64();
        self.reports += 1;
    }

    #[inline]
    fn record_batch(&mut self, h: u32, sum: f64, count: u64) {
        self.sums[h as usize] += sum;
        self.reports += count;
    }

    #[inline]
    fn record_counts(&mut self, h: u32, plus: u64, minus: u64) {
        // Integer difference first, one exact f64 add after — identical
        // value to record_batch (the difference is integral and small).
        self.sums[h as usize] += (plus as i64 - minus as i64) as f64;
        self.reports += plus + minus;
    }

    fn try_merge(&mut self, other: &Self) -> Result<(), AccumulatorError> {
        if self.sums.len() != other.sums.len() {
            return Err(AccumulatorError::ShapeMismatch {
                expected: self.sums.len(),
                got: other.sums.len(),
            });
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    #[inline]
    fn order_sum(&self, h: u32) -> f64 {
        self.sums[h as usize]
    }

    #[inline]
    fn take_order(&mut self, h: u32) -> f64 {
        std::mem::take(&mut self.sums[h as usize])
    }

    fn reports(&self) -> u64 {
        self.reports
    }

    fn heap_bytes(&self) -> usize {
        self.sums.capacity() * std::mem::size_of::<f64>()
    }
}

/// Integer (`i64`) per-order sums: bit-exact across platforms, FPUs, and
/// worker counts, with saturating arithmetic checked against a
/// protocol-derived bound.
///
/// Honest traffic can never saturate: between two closings of an order-`h`
/// interval the server accepts at most one report per registered user, so
/// `|sum| ≤ n ≤ n·k` — the bound installed by
/// [`AccumulatorKind::accumulator_for`]. A set
/// [`saturated`](FixedPointAccumulator::saturated) flag therefore indicates a
/// protocol violation (or a mis-sized bound), and the sums are clamped
/// rather than wrapped so the failure is loud and deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPointAccumulator {
    sums: Vec<i64>,
    reports: u64,
    bound: i64,
    saturated: bool,
}

impl FixedPointAccumulator {
    /// An empty accumulator for `orders` orders with an effectively
    /// unlimited bound.
    pub fn new(orders: usize) -> Self {
        FixedPointAccumulator::with_bound(orders, i64::MAX)
    }

    /// An empty accumulator whose per-order sums saturate at `±bound`.
    ///
    /// # Panics
    /// Panics if `bound <= 0`.
    pub fn with_bound(orders: usize, bound: i64) -> Self {
        assert!(bound > 0, "saturation bound must be positive, got {bound}");
        FixedPointAccumulator {
            sums: vec![0; orders],
            reports: 0,
            bound,
            saturated: false,
        }
    }

    /// The per-order running sums.
    pub fn sums(&self) -> &[i64] {
        &self.sums
    }

    /// The saturation bound.
    pub fn bound(&self) -> i64 {
        self.bound
    }

    /// Whether any sum ever hit the bound (a protocol violation — honest
    /// traffic stays below `n ≤ n·k`).
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    #[inline]
    fn add(&mut self, h: usize, delta: i64) {
        let next = self.sums[h].saturating_add(delta);
        if next > self.bound {
            self.sums[h] = self.bound;
            self.saturated = true;
        } else if next < -self.bound {
            self.sums[h] = -self.bound;
            self.saturated = true;
        } else {
            self.sums[h] = next;
        }
    }
}

impl Accumulator for FixedPointAccumulator {
    fn orders(&self) -> usize {
        self.sums.len()
    }

    #[inline]
    fn record(&mut self, h: u32, bit: Sign) {
        self.add(h as usize, i64::from(bit.value()));
        self.reports += 1;
    }

    #[inline]
    fn record_batch(&mut self, h: u32, sum: f64, count: u64) {
        self.add(h as usize, integral(sum));
        self.reports += count;
    }

    #[inline]
    fn record_counts(&mut self, h: u32, plus: u64, minus: u64) {
        // Already integer: skip the f64 round-trip and its exactness
        // assertion entirely.
        self.add(h as usize, plus as i64 - minus as i64);
        self.reports += plus + minus;
    }

    fn try_merge(&mut self, other: &Self) -> Result<(), AccumulatorError> {
        if self.sums.len() != other.sums.len() {
            return Err(AccumulatorError::ShapeMismatch {
                expected: self.sums.len(),
                got: other.sums.len(),
            });
        }
        for h in 0..other.sums.len() {
            let delta = other.sums[h];
            self.add(h, delta);
        }
        self.reports += other.reports;
        self.saturated |= other.saturated;
        Ok(())
    }

    #[inline]
    fn order_sum(&self, h: u32) -> f64 {
        self.sums[h as usize] as f64
    }

    #[inline]
    fn take_order(&mut self, h: u32) -> f64 {
        std::mem::take(&mut self.sums[h as usize]) as f64
    }

    fn reports(&self) -> u64 {
        self.reports
    }

    fn heap_bytes(&self) -> usize {
        self.sums.capacity() * std::mem::size_of::<i64>()
    }
}

/// A compressed order→sum map holding only *touched* orders, kept sorted
/// by order for `O(log touched)` lookup and `O(touched)` merge.
///
/// At period `t` only the orders with `2ʰ | t` receive reports, and
/// [`take_order`](Accumulator::take_order) removes the entry once the
/// interval closes — so a per-period shard accumulator in the batched
/// pipeline holds on average ~2 entries regardless of `log d`, where the
/// dense layout always holds `1 + log d` lanes. The memory advantage
/// grows with the horizon (the Bassily–Smith succinct-histogram regime).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseAccumulator {
    /// `(order, sum)` entries, sorted by order; absent ⇒ sum is zero.
    entries: Vec<(u32, f64)>,
    orders: usize,
    reports: u64,
}

impl SparseAccumulator {
    /// An empty accumulator for `orders` orders.
    pub fn new(orders: usize) -> Self {
        SparseAccumulator {
            entries: Vec::new(),
            orders,
            reports: 0,
        }
    }

    /// Number of orders currently holding an entry.
    pub fn touched(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn add(&mut self, h: u32, delta: f64) {
        match self.entries.binary_search_by_key(&h, |&(o, _)| o) {
            Ok(i) => self.entries[i].1 += delta,
            Err(i) => {
                // Exact-fit growth: a per-period accumulator holds ~2
                // entries, so Vec's amortised-doubling minimum (4 slots)
                // would double the footprint for nothing — and footprint
                // is this backend's whole reason to exist.
                if self.entries.len() == self.entries.capacity() {
                    self.entries.reserve_exact(1);
                }
                self.entries.insert(i, (h, delta));
            }
        }
    }
}

impl Accumulator for SparseAccumulator {
    fn orders(&self) -> usize {
        self.orders
    }

    #[inline]
    fn record(&mut self, h: u32, bit: Sign) {
        debug_assert!((h as usize) < self.orders, "order {h} out of range");
        self.add(h, bit.as_f64());
        self.reports += 1;
    }

    #[inline]
    fn record_batch(&mut self, h: u32, sum: f64, count: u64) {
        debug_assert!((h as usize) < self.orders, "order {h} out of range");
        self.add(h, sum);
        self.reports += count;
    }

    fn try_merge(&mut self, other: &Self) -> Result<(), AccumulatorError> {
        if self.orders != other.orders {
            return Err(AccumulatorError::ShapeMismatch {
                expected: self.orders,
                got: other.orders,
            });
        }
        for &(h, sum) in &other.entries {
            self.add(h, sum);
        }
        self.reports += other.reports;
        Ok(())
    }

    #[inline]
    fn order_sum(&self, h: u32) -> f64 {
        match self.entries.binary_search_by_key(&h, |&(o, _)| o) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    #[inline]
    fn take_order(&mut self, h: u32) -> f64 {
        match self.entries.binary_search_by_key(&h, |&(o, _)| o) {
            Ok(i) => self.entries.remove(i).1,
            Err(_) => 0.0,
        }
    }

    fn reports(&self) -> u64 {
        self.reports
    }

    fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u32, f64)>()
    }
}

/// Structure-of-arrays count lanes: per order, a `+1` count and a `−1`
/// count in one contiguous `Vec<u64>` (`lanes[2h]` = pluses,
/// `lanes[2h+1]` = minuses).
///
/// The hot `record` path is a single integer increment — no
/// floating-point op, no sign multiply — and the per-order sum is
/// reconstructed exactly on demand as `pluses − minuses`. The lanes for
/// all orders share one allocation sized for the L1 line, which is the
/// layout the single-core bench box rewards.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaAccumulator {
    /// `lanes[2h]` counts +1 bits of order `h`; `lanes[2h+1]` counts −1s.
    lanes: Vec<u64>,
    reports: u64,
}

impl SoaAccumulator {
    /// An empty accumulator for `orders` orders.
    pub fn new(orders: usize) -> Self {
        SoaAccumulator {
            lanes: vec![0; 2 * orders],
            reports: 0,
        }
    }

    /// The `(+1 count, −1 count)` lanes of order `h`.
    pub fn lanes(&self, h: u32) -> (u64, u64) {
        let i = 2 * h as usize;
        (self.lanes[i], self.lanes[i + 1])
    }
}

impl Accumulator for SoaAccumulator {
    fn orders(&self) -> usize {
        self.lanes.len() / 2
    }

    #[inline]
    fn record(&mut self, h: u32, bit: Sign) {
        let lane = 2 * h as usize + usize::from(bit == Sign::Minus);
        self.lanes[lane] += 1;
        self.reports += 1;
    }

    #[inline]
    fn record_batch(&mut self, h: u32, sum: f64, count: u64) {
        let s = integral(sum);
        let c = i64::try_from(count).expect("batch count fits i64");
        assert!(
            s.abs() <= c && (c + s) % 2 == 0,
            "batch sum {s} is not a possible total of {count} ±1 reports"
        );
        let plus = ((c + s) / 2) as u64;
        let i = 2 * h as usize;
        self.lanes[i] += plus;
        self.lanes[i + 1] += count - plus;
        self.reports += count;
    }

    #[inline]
    fn record_counts(&mut self, h: u32, plus: u64, minus: u64) {
        // The popcount totals ARE the lanes — two adds, no sum/count
        // reconstruction round-trip.
        let i = 2 * h as usize;
        self.lanes[i] += plus;
        self.lanes[i + 1] += minus;
        self.reports += plus + minus;
    }

    fn try_merge(&mut self, other: &Self) -> Result<(), AccumulatorError> {
        if self.lanes.len() != other.lanes.len() {
            return Err(AccumulatorError::ShapeMismatch {
                expected: self.lanes.len() / 2,
                got: other.lanes.len() / 2,
            });
        }
        for (a, b) in self.lanes.iter_mut().zip(&other.lanes) {
            *a += b;
        }
        self.reports += other.reports;
        Ok(())
    }

    #[inline]
    fn order_sum(&self, h: u32) -> f64 {
        let i = 2 * h as usize;
        (self.lanes[i] as i64 - self.lanes[i + 1] as i64) as f64
    }

    #[inline]
    fn take_order(&mut self, h: u32) -> f64 {
        let i = 2 * h as usize;
        let sum = (self.lanes[i] as i64 - self.lanes[i + 1] as i64) as f64;
        self.lanes[i] = 0;
        self.lanes[i + 1] = 0;
        sum
    }

    fn reports(&self) -> u64 {
        self.reports
    }

    fn heap_bytes(&self) -> usize {
        self.lanes.capacity() * std::mem::size_of::<u64>()
    }
}

/// The selectable storage backends, in the order of [`Self::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccumulatorKind {
    /// [`DenseAccumulator`] — one `f64` per order (the default).
    Dense,
    /// [`FixedPointAccumulator`] — `i64` sums, bit-exact cross-platform.
    Fixed,
    /// [`SparseAccumulator`] — compressed order→sum map for huge `log d`.
    Sparse,
    /// [`SoaAccumulator`] — contiguous ±1 count lanes per order.
    Soa,
}

impl AccumulatorKind {
    /// Every backend, in a fixed order — the iteration set of the
    /// cross-backend differential checks.
    pub const ALL: [AccumulatorKind; 4] = [
        AccumulatorKind::Dense,
        AccumulatorKind::Fixed,
        AccumulatorKind::Sparse,
        AccumulatorKind::Soa,
    ];

    /// The backend's canonical lowercase name (the `RTF_BACKEND` value).
    pub fn name(self) -> &'static str {
        match self {
            AccumulatorKind::Dense => "dense",
            AccumulatorKind::Fixed => "fixed",
            AccumulatorKind::Sparse => "sparse",
            AccumulatorKind::Soa => "soa",
        }
    }

    /// Parses a backend name (case-insensitive).
    pub fn parse(name: &str) -> Option<AccumulatorKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "dense" => Some(AccumulatorKind::Dense),
            "fixed" => Some(AccumulatorKind::Fixed),
            "sparse" => Some(AccumulatorKind::Sparse),
            "soa" => Some(AccumulatorKind::Soa),
            _ => None,
        }
    }

    /// Reads the backend from the `RTF_BACKEND` environment variable:
    /// unset or empty means [`AccumulatorKind::Dense`]. The CI backend
    /// matrix sets `RTF_BACKEND=fixed`/`sparse` to replay the whole test
    /// pyramid through an alternative backend, so a typo must fail loudly
    /// rather than silently fall back to dense.
    ///
    /// # Panics
    /// Panics on an unrecognised non-empty value.
    pub fn from_env() -> Self {
        match std::env::var("RTF_BACKEND") {
            Err(_) => AccumulatorKind::Dense,
            Ok(v) if v.trim().is_empty() => AccumulatorKind::Dense,
            Ok(v) => AccumulatorKind::parse(&v).unwrap_or_else(|| {
                panic!("unknown RTF_BACKEND {v:?}; valid values: dense, fixed, sparse, soa")
            }),
        }
    }

    /// An empty accumulator of this backend for `orders` orders, with no
    /// saturation bound (worker shards; the server's own accumulator
    /// carries the protocol bound via [`Self::accumulator_for`]).
    pub fn new_accumulator(self, orders: usize) -> AnyAccumulator {
        match self {
            AccumulatorKind::Dense => AnyAccumulator::Dense(DenseAccumulator::new(orders)),
            AccumulatorKind::Fixed => AnyAccumulator::Fixed(FixedPointAccumulator::new(orders)),
            AccumulatorKind::Sparse => AnyAccumulator::Sparse(SparseAccumulator::new(orders)),
            AccumulatorKind::Soa => AnyAccumulator::Soa(SoaAccumulator::new(orders)),
        }
    }

    /// An empty accumulator of this backend sized for `params`: the
    /// fixed-point backend saturates at the `n·k` bound (an order sum can
    /// never legitimately exceed `n`, and `k ≥ 1`, so `n·k` is a safe
    /// ceiling that still catches runaway merges).
    pub fn accumulator_for(self, params: &ProtocolParams) -> AnyAccumulator {
        let orders = params.num_orders() as usize;
        match self {
            AccumulatorKind::Fixed => {
                let bound = (params.n() as i64).saturating_mul(params.k() as i64);
                AnyAccumulator::Fixed(FixedPointAccumulator::with_bound(orders, bound))
            }
            _ => self.new_accumulator(orders),
        }
    }
}

impl std::fmt::Display for AccumulatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A backend-erased accumulator: enum dispatch over the four layouts, so
/// `Server` and the engines can hold "some backend" without generics
/// bleeding through every signature.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyAccumulator {
    /// Dense `f64` lanes.
    Dense(DenseAccumulator),
    /// Fixed-point `i64` lanes.
    Fixed(FixedPointAccumulator),
    /// Compressed order→sum map.
    Sparse(SparseAccumulator),
    /// ±1 count lanes.
    Soa(SoaAccumulator),
}

macro_rules! dispatch {
    ($self:expr, $acc:ident => $body:expr) => {
        match $self {
            AnyAccumulator::Dense($acc) => $body,
            AnyAccumulator::Fixed($acc) => $body,
            AnyAccumulator::Sparse($acc) => $body,
            AnyAccumulator::Soa($acc) => $body,
        }
    };
}

impl AnyAccumulator {
    /// Which backend this accumulator uses.
    pub fn kind(&self) -> AccumulatorKind {
        match self {
            AnyAccumulator::Dense(_) => AccumulatorKind::Dense,
            AnyAccumulator::Fixed(_) => AccumulatorKind::Fixed,
            AnyAccumulator::Sparse(_) => AccumulatorKind::Sparse,
            AnyAccumulator::Soa(_) => AccumulatorKind::Soa,
        }
    }

    /// An empty accumulator of the same backend, shape, and (for
    /// fixed-point) saturation bound — what `Server::new_shard` hands to
    /// workers.
    pub fn fresh_like(&self) -> AnyAccumulator {
        match self {
            AnyAccumulator::Dense(a) => AnyAccumulator::Dense(DenseAccumulator::new(a.orders())),
            AnyAccumulator::Fixed(a) => {
                AnyAccumulator::Fixed(FixedPointAccumulator::with_bound(a.orders(), a.bound()))
            }
            AnyAccumulator::Sparse(a) => AnyAccumulator::Sparse(SparseAccumulator::new(a.orders())),
            AnyAccumulator::Soa(a) => AnyAccumulator::Soa(SoaAccumulator::new(a.orders())),
        }
    }

    /// Whether the backend detected saturation (fixed-point only; other
    /// backends cannot saturate and always return `false`).
    pub fn is_saturated(&self) -> bool {
        match self {
            AnyAccumulator::Fixed(a) => a.saturated(),
            _ => false,
        }
    }

    /// Serializes the full accumulator state — backend tag, lanes,
    /// report counter, and (fixed-point) bound + saturation flag — so a
    /// restore is bit-identical on every backend.
    pub fn write_state(&self, w: &mut SnapWriter) {
        match self {
            AnyAccumulator::Dense(a) => {
                w.u8(0);
                w.usize(a.sums.len());
                for &s in &a.sums {
                    w.f64(s);
                }
                w.u64(a.reports);
            }
            AnyAccumulator::Fixed(a) => {
                w.u8(1);
                w.usize(a.sums.len());
                for &s in &a.sums {
                    w.i64(s);
                }
                w.u64(a.reports);
                w.i64(a.bound);
                w.bool(a.saturated);
            }
            AnyAccumulator::Sparse(a) => {
                w.u8(2);
                w.usize(a.orders);
                w.usize(a.entries.len());
                for &(h, s) in &a.entries {
                    w.u32(h);
                    w.f64(s);
                }
                w.u64(a.reports);
            }
            AnyAccumulator::Soa(a) => {
                w.u8(3);
                w.usize(a.lanes.len());
                for &c in &a.lanes {
                    w.u64(c);
                }
                w.u64(a.reports);
            }
        }
    }

    /// Rebuilds an accumulator from bytes written by
    /// [`write_state`](Self::write_state), validating every structural
    /// invariant (sorted sparse entries, in-range orders, positive
    /// fixed-point bound, even SoA lane count).
    ///
    /// # Errors
    /// A typed [`SnapshotError`] for truncation or any violated
    /// invariant — never a panic.
    pub fn read_state(r: &mut SnapReader<'_>) -> Result<AnyAccumulator, SnapshotError> {
        match r.u8()? {
            0 => {
                let n = r.len(8)?;
                let mut sums = Vec::with_capacity(n);
                for _ in 0..n {
                    sums.push(r.f64()?);
                }
                let reports = r.u64()?;
                Ok(AnyAccumulator::Dense(DenseAccumulator { sums, reports }))
            }
            1 => {
                let n = r.len(8)?;
                let mut sums = Vec::with_capacity(n);
                for _ in 0..n {
                    sums.push(r.i64()?);
                }
                let reports = r.u64()?;
                let bound = r.i64()?;
                if bound <= 0 {
                    return Err(SnapshotError::Corrupt("fixed-point bound not positive"));
                }
                let saturated = r.bool()?;
                Ok(AnyAccumulator::Fixed(FixedPointAccumulator {
                    sums,
                    reports,
                    bound,
                    saturated,
                }))
            }
            2 => {
                let orders = r.usize()?;
                let n = r.len(12)?;
                let mut entries: Vec<(u32, f64)> = Vec::with_capacity(n);
                for _ in 0..n {
                    let h = r.u32()?;
                    if (h as usize) >= orders {
                        return Err(SnapshotError::Corrupt("sparse entry order out of range"));
                    }
                    if let Some(&(prev, _)) = entries.last() {
                        if h <= prev {
                            return Err(SnapshotError::Corrupt("sparse entries not sorted"));
                        }
                    }
                    entries.push((h, r.f64()?));
                }
                let reports = r.u64()?;
                Ok(AnyAccumulator::Sparse(SparseAccumulator {
                    entries,
                    orders,
                    reports,
                }))
            }
            3 => {
                let n = r.len(8)?;
                if n % 2 != 0 {
                    return Err(SnapshotError::Corrupt("soa lane count not even"));
                }
                let mut lanes = Vec::with_capacity(n);
                for _ in 0..n {
                    lanes.push(r.u64()?);
                }
                let reports = r.u64()?;
                Ok(AnyAccumulator::Soa(SoaAccumulator { lanes, reports }))
            }
            _ => Err(SnapshotError::Corrupt("unknown accumulator backend tag")),
        }
    }
}

impl Accumulator for AnyAccumulator {
    fn orders(&self) -> usize {
        dispatch!(self, a => a.orders())
    }

    #[inline]
    fn record(&mut self, h: u32, bit: Sign) {
        dispatch!(self, a => a.record(h, bit))
    }

    #[inline]
    fn record_batch(&mut self, h: u32, sum: f64, count: u64) {
        dispatch!(self, a => a.record_batch(h, sum, count))
    }

    #[inline]
    fn record_counts(&mut self, h: u32, plus: u64, minus: u64) {
        dispatch!(self, a => a.record_counts(h, plus, minus))
    }

    fn try_merge(&mut self, other: &Self) -> Result<(), AccumulatorError> {
        match (self, other) {
            (AnyAccumulator::Dense(a), AnyAccumulator::Dense(b)) => a.try_merge(b),
            (AnyAccumulator::Fixed(a), AnyAccumulator::Fixed(b)) => a.try_merge(b),
            (AnyAccumulator::Sparse(a), AnyAccumulator::Sparse(b)) => a.try_merge(b),
            (AnyAccumulator::Soa(a), AnyAccumulator::Soa(b)) => a.try_merge(b),
            (a, b) => Err(AccumulatorError::BackendMismatch {
                expected: a.kind(),
                got: b.kind(),
            }),
        }
    }

    #[inline]
    fn order_sum(&self, h: u32) -> f64 {
        dispatch!(self, a => a.order_sum(h))
    }

    #[inline]
    fn take_order(&mut self, h: u32) -> f64 {
        dispatch!(self, a => a.take_order(h))
    }

    fn reports(&self) -> u64 {
        dispatch!(self, a => a.reports())
    }

    fn heap_bytes(&self) -> usize {
        dispatch!(self, a => a.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rtf_primitives::seeding::SeedSequence;

    fn random_acc(rng: &mut impl Rng, orders: usize, events: usize) -> DenseAccumulator {
        let mut acc = DenseAccumulator::new(orders);
        for _ in 0..events {
            let h = rng.random_range(0..orders) as u32;
            if rng.random_bool(0.5) {
                let bit = if rng.random_bool(0.5) {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                acc.record(h, bit);
            } else {
                // Integer-valued batch totals, like ingest_aggregate sees.
                let count = rng.random_range(0..50u64);
                let sum = if count == 0 {
                    0.0
                } else {
                    rng.random_range(-(count as i64)..=count as i64) as f64
                };
                acc.record_batch(h, sum, count);
            }
        }
        acc
    }

    fn merged(parts: &[&DenseAccumulator]) -> DenseAccumulator {
        let mut out = DenseAccumulator::new(parts[0].orders());
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// A parity-consistent random event stream (`(h, Sign)` pairs), valid
    /// for every backend including the SoA count lanes.
    fn random_events(rng: &mut impl Rng, orders: usize, events: usize) -> Vec<(u32, Sign)> {
        (0..events)
            .map(|_| {
                let h = rng.random_range(0..orders) as u32;
                let bit = if rng.random_bool(0.5) {
                    Sign::Plus
                } else {
                    Sign::Minus
                };
                (h, bit)
            })
            .collect()
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // The monoid laws the parallel runtime depends on, over randomly
        // built integer-valued accumulators: every grouping and every
        // ordering of shard merges produces the identical accumulator.
        let mut rng = SeedSequence::new(4242).rng();
        for _ in 0..50 {
            let orders = rng.random_range(1..8usize);
            let a = random_acc(&mut rng, orders, 40);
            let b = random_acc(&mut rng, orders, 40);
            let c = random_acc(&mut rng, orders, 40);

            // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc);

            // Commutativity: every permutation of {a, b, c} agrees.
            let abc = merged(&[&a, &b, &c]);
            for perm in [
                [&a, &c, &b],
                [&b, &a, &c],
                [&b, &c, &a],
                [&c, &a, &b],
                [&c, &b, &a],
            ] {
                assert_eq!(merged(&perm), abc);
            }

            // Identity: merging an empty accumulator changes nothing.
            let mut with_unit = abc.clone();
            with_unit.merge(&DenseAccumulator::new(orders));
            assert_eq!(with_unit, abc);
        }
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        // Splitting one event stream across shards and merging gives the
        // same state as recording everything on one accumulator.
        let mut rng = SeedSequence::new(77).rng();
        let orders = 5usize;
        let events = random_events(&mut rng, orders, 500);
        let mut whole = DenseAccumulator::new(orders);
        for &(h, bit) in &events {
            whole.record(h, bit);
        }
        for shards in [1usize, 2, 3, 8] {
            let chunk = events.len().div_ceil(shards);
            let mut out = DenseAccumulator::new(orders);
            for part in events.chunks(chunk) {
                let mut acc = DenseAccumulator::new(orders);
                for &(h, bit) in part {
                    acc.record(h, bit);
                }
                out.merge(&acc);
            }
            assert_eq!(out, whole, "{shards} shards");
        }
        assert_eq!(whole.reports(), 500);
    }

    #[test]
    fn take_order_drains_one_slot() {
        let mut acc = DenseAccumulator::new(3);
        acc.record(1, Sign::Plus);
        acc.record(1, Sign::Plus);
        acc.record(2, Sign::Minus);
        assert_eq!(acc.order_sum(1), 2.0);
        assert_eq!(acc.take_order(1), 2.0);
        assert_eq!(acc.order_sum(1), 0.0);
        assert_eq!(acc.order_sum(2), -1.0);
        assert_eq!(acc.reports(), 3);
        assert!(!acc.is_empty());
        assert!(DenseAccumulator::new(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn shape_mismatch_rejected() {
        let mut a = DenseAccumulator::new(3);
        a.merge(&DenseAccumulator::new(4));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let mut a = DenseAccumulator::new(3);
        assert_eq!(
            a.try_merge(&DenseAccumulator::new(4)),
            Err(AccumulatorError::ShapeMismatch {
                expected: 3,
                got: 4
            })
        );
        let mut any = AccumulatorKind::Sparse.new_accumulator(5);
        assert_eq!(
            any.try_merge(&AccumulatorKind::Sparse.new_accumulator(2)),
            Err(AccumulatorError::ShapeMismatch {
                expected: 5,
                got: 2
            })
        );
    }

    #[test]
    fn backend_mismatch_is_a_typed_error() {
        let mut dense = AccumulatorKind::Dense.new_accumulator(4);
        let fixed = AccumulatorKind::Fixed.new_accumulator(4);
        let err = dense.try_merge(&fixed).unwrap_err();
        assert_eq!(
            err,
            AccumulatorError::BackendMismatch {
                expected: AccumulatorKind::Dense,
                got: AccumulatorKind::Fixed
            }
        );
        assert!(err.to_string().contains("different backends"));
    }

    #[test]
    fn every_backend_matches_dense_on_random_streams() {
        // The storage-engine contract: identical record/record_batch/
        // take_order sequences produce identical observable values on all
        // four layouts — exactly, not within tolerance.
        let mut rng = SeedSequence::new(2024).rng();
        for _ in 0..30 {
            let orders = rng.random_range(1..10usize);
            let events = random_events(&mut rng, orders, 300);
            // Parity-consistent batches: sum of `count` actual ±1 draws.
            let batches: Vec<(u32, f64, u64)> = (0..20)
                .map(|_| {
                    let h = rng.random_range(0..orders) as u32;
                    let count = rng.random_range(0..40u64);
                    let sum: i64 = (0..count)
                        .map(|_| if rng.random_bool(0.5) { 1i64 } else { -1 })
                        .sum();
                    (h, sum as f64, count)
                })
                .collect();

            let mut accs: Vec<AnyAccumulator> = AccumulatorKind::ALL
                .iter()
                .map(|k| k.new_accumulator(orders))
                .collect();
            for acc in &mut accs {
                for &(h, bit) in &events {
                    acc.record(h, bit);
                }
                for &(h, sum, count) in &batches {
                    acc.record_batch(h, sum, count);
                }
            }
            let reference: Vec<f64> = (0..orders as u32).map(|h| accs[0].order_sum(h)).collect();
            for acc in &mut accs {
                assert_eq!(acc.orders(), orders);
                for h in 0..orders as u32 {
                    assert_eq!(
                        acc.order_sum(h),
                        reference[h as usize],
                        "{} order {h}",
                        acc.kind()
                    );
                }
                assert_eq!(acc.reports(), accs_reports(&events, &batches));
                // Draining and re-reading is identical across backends too.
                for h in 0..orders as u32 {
                    assert_eq!(acc.take_order(h), reference[h as usize], "{}", acc.kind());
                    assert_eq!(acc.order_sum(h), 0.0);
                }
            }
        }

        fn accs_reports(events: &[(u32, Sign)], batches: &[(u32, f64, u64)]) -> u64 {
            events.len() as u64 + batches.iter().map(|&(_, _, c)| c).sum::<u64>()
        }
    }

    #[test]
    fn record_counts_equals_record_batch_on_every_backend() {
        // The packed-lane entry point must be value-identical to the
        // sum/count form it restates, on every backend (three of which
        // override the default for the integer fast path).
        let mut rng = SeedSequence::new(777).rng();
        let orders = 6usize;
        let batches: Vec<(u32, u64, u64)> = (0..60)
            .map(|_| {
                let h = rng.random_range(0..orders) as u32;
                let plus = rng.random_range(0..100u64);
                let minus = rng.random_range(0..100u64);
                (h, plus, minus)
            })
            .collect();
        for kind in AccumulatorKind::ALL {
            let mut via_counts = kind.new_accumulator(orders);
            let mut via_batch = kind.new_accumulator(orders);
            for &(h, plus, minus) in &batches {
                via_counts.record_counts(h, plus, minus);
                via_batch.record_batch(h, (plus as i64 - minus as i64) as f64, plus + minus);
            }
            for h in 0..orders as u32 {
                assert_eq!(
                    via_counts.order_sum(h),
                    via_batch.order_sum(h),
                    "{kind} order {h}"
                );
            }
            assert_eq!(via_counts.reports(), via_batch.reports(), "{kind}");
        }
    }

    #[test]
    fn every_backend_merges_like_dense() {
        // Sharded accumulation + merge agrees with direct accumulation on
        // every backend, for several shard counts.
        let mut rng = SeedSequence::new(31337).rng();
        let orders = 7usize;
        let events = random_events(&mut rng, orders, 400);
        for kind in AccumulatorKind::ALL {
            let mut direct = kind.new_accumulator(orders);
            for &(h, bit) in &events {
                direct.record(h, bit);
            }
            for shards in [1usize, 2, 5, 8] {
                let chunk = events.len().div_ceil(shards);
                let mut out = kind.new_accumulator(orders);
                for part in events.chunks(chunk) {
                    let mut acc = kind.new_accumulator(orders);
                    for &(h, bit) in part {
                        acc.record(h, bit);
                    }
                    out.try_merge(&acc).unwrap();
                }
                for h in 0..orders as u32 {
                    assert_eq!(
                        out.order_sum(h),
                        direct.order_sum(h),
                        "{kind}, {shards} shards, order {h}"
                    );
                }
                assert_eq!(out.reports(), direct.reports(), "{kind}");
            }
        }
    }

    #[test]
    fn fixed_point_saturates_at_the_bound() {
        let mut acc = FixedPointAccumulator::with_bound(2, 2);
        acc.record(0, Sign::Plus);
        acc.record(0, Sign::Plus);
        assert!(!acc.saturated());
        assert_eq!(acc.order_sum(0), 2.0);
        // One past the bound clamps and flags, deterministically.
        acc.record(0, Sign::Plus);
        assert!(acc.saturated());
        assert_eq!(acc.order_sum(0), 2.0);
        // Negative direction too.
        let mut neg = FixedPointAccumulator::with_bound(1, 1);
        neg.record_batch(0, -5.0, 5);
        assert!(neg.saturated());
        assert_eq!(neg.order_sum(0), -1.0);
        // Merging a saturated shard taints the target.
        let mut clean = FixedPointAccumulator::with_bound(1, 1);
        clean.try_merge(&neg).unwrap();
        assert!(clean.saturated());
    }

    #[test]
    fn sparse_stays_compressed_under_take_order() {
        let mut acc = SparseAccumulator::new(64);
        assert_eq!(acc.heap_bytes(), 0, "empty map holds no heap");
        acc.record(7, Sign::Plus);
        acc.record(63, Sign::Minus);
        acc.record(7, Sign::Plus);
        assert_eq!(acc.touched(), 2);
        assert_eq!(acc.order_sum(7), 2.0);
        assert_eq!(acc.order_sum(0), 0.0, "untouched order reads zero");
        // Closing the interval removes the entry — the map never grows
        // past the touched set.
        assert_eq!(acc.take_order(7), 2.0);
        assert_eq!(acc.touched(), 1);
        assert_eq!(acc.take_order(7), 0.0, "re-draining an absent order");
        assert_eq!(acc.reports(), 3);
    }

    #[test]
    fn soa_lanes_count_signs_exactly() {
        let mut acc = SoaAccumulator::new(3);
        acc.record(1, Sign::Plus);
        acc.record(1, Sign::Plus);
        acc.record(1, Sign::Minus);
        assert_eq!(acc.lanes(1), (2, 1));
        assert_eq!(acc.order_sum(1), 1.0);
        // Batch decomposition: sum −2 over 4 reports = 1 plus, 3 minus.
        acc.record_batch(2, -2.0, 4);
        assert_eq!(acc.lanes(2), (1, 3));
        assert_eq!(acc.order_sum(2), -2.0);
        assert_eq!(acc.take_order(2), -2.0);
        assert_eq!(acc.lanes(2), (0, 0));
        assert_eq!(acc.reports(), 7);
    }

    #[test]
    #[should_panic(expected = "not a possible total")]
    fn soa_rejects_parity_inconsistent_batches() {
        // 3 ±1 reports can never sum to 2 — the count lanes catch what a
        // float adder would silently absorb.
        SoaAccumulator::new(1).record_batch(0, 2.0, 3);
    }

    #[test]
    fn kind_parsing_and_construction() {
        for kind in AccumulatorKind::ALL {
            assert_eq!(AccumulatorKind::parse(kind.name()), Some(kind));
            assert_eq!(
                AccumulatorKind::parse(&kind.name().to_uppercase()),
                Some(kind)
            );
            let acc = kind.new_accumulator(5);
            assert_eq!(acc.kind(), kind);
            assert_eq!(acc.orders(), 5);
            assert_eq!(acc.reports(), 0);
            let fresh = acc.fresh_like();
            assert_eq!(fresh.kind(), kind);
            assert_eq!(fresh.orders(), 5);
        }
        assert_eq!(AccumulatorKind::parse("colfam"), None);
        assert_eq!(AccumulatorKind::Dense.to_string(), "dense");
    }

    #[test]
    fn accumulator_for_installs_the_nk_bound() {
        let params = ProtocolParams::new(100, 8, 2, 1.0, 0.05).unwrap();
        let acc = AccumulatorKind::Fixed.accumulator_for(&params);
        let AnyAccumulator::Fixed(fixed) = &acc else {
            panic!("expected the fixed backend");
        };
        assert_eq!(fixed.bound(), 200); // n·k = 100·2
        assert!(!acc.is_saturated());
        // fresh_like preserves the bound for worker shards.
        let AnyAccumulator::Fixed(shard) = acc.fresh_like() else {
            panic!("expected the fixed backend");
        };
        assert_eq!(shard.bound(), 200);
        // The other backends are bound-free and never saturate.
        for kind in [
            AccumulatorKind::Dense,
            AccumulatorKind::Sparse,
            AccumulatorKind::Soa,
        ] {
            assert!(!kind.accumulator_for(&params).is_saturated());
        }
    }

    #[test]
    fn any_accumulator_state_roundtrips_on_every_backend() {
        let params = ProtocolParams::new(100, 8, 2, 1.0, 0.05).unwrap();
        for kind in AccumulatorKind::ALL {
            let mut acc = kind.accumulator_for(&params);
            acc.record(0, Sign::Plus);
            acc.record(0, Sign::Plus);
            acc.record(2, Sign::Minus);
            acc.record_batch(1, 3.0, 5);
            let mut w = crate::snapshot::SnapWriter::new();
            acc.write_state(&mut w);
            let bytes = w.finish();
            let mut r = crate::snapshot::SnapReader::new(&bytes).unwrap();
            let back = AnyAccumulator::read_state(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, acc, "{kind}");
            // The restored value must serialize to the same bytes again.
            let mut w2 = crate::snapshot::SnapWriter::new();
            back.write_state(&mut w2);
            assert_eq!(w2.finish(), bytes, "{kind}");
        }
    }

    #[test]
    fn accumulator_read_state_rejects_malformed_payloads() {
        use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
        let bad = |build: &dyn Fn(&mut SnapWriter)| {
            let mut w = SnapWriter::new();
            build(&mut w);
            let bytes = w.finish();
            let mut r = SnapReader::new(&bytes).unwrap();
            AnyAccumulator::read_state(&mut r).unwrap_err()
        };
        // Unknown backend tag.
        assert!(matches!(
            bad(&|w| w.u8(42)),
            SnapshotError::Corrupt("unknown accumulator backend tag")
        ));
        // Fixed-point with a non-positive bound.
        assert!(matches!(
            bad(&|w| {
                w.u8(1);
                w.usize(0);
                w.u64(0);
                w.i64(0);
                w.bool(false);
            }),
            SnapshotError::Corrupt("fixed-point bound not positive")
        ));
        // Sparse entries out of order.
        assert!(matches!(
            bad(&|w| {
                w.u8(2);
                w.usize(4);
                w.usize(2);
                w.u32(3);
                w.f64(1.0);
                w.u32(1);
                w.f64(1.0);
                w.u64(2);
            }),
            SnapshotError::Corrupt("sparse entries not sorted")
        ));
        // Sparse entry order beyond the declared shape.
        assert!(matches!(
            bad(&|w| {
                w.u8(2);
                w.usize(2);
                w.usize(1);
                w.u32(7);
                w.f64(1.0);
                w.u64(1);
            }),
            SnapshotError::Corrupt("sparse entry order out of range")
        ));
        // Odd SoA lane count.
        assert!(matches!(
            bad(&|w| {
                w.u8(3);
                w.usize(3);
                w.u64(0);
                w.u64(0);
                w.u64(0);
                w.u64(0);
            }),
            SnapshotError::Corrupt("soa lane count not even")
        ));
        // A dense payload that simply runs out of bytes.
        assert!(matches!(
            bad(&|w| {
                w.u8(0);
                w.usize(1);
            }),
            SnapshotError::Truncated
        ));
    }
}
