//! The composed randomizer `R̃ : {−1,1}^k → {−1,1}^k` (Algorithm 3,
//! lines 3–7).
//!
//! Two distribution-identical sampling paths are provided:
//!
//! * [`randomize`](ComposedRandomizer::randomize) — the literal pseudo-code:
//!   apply the basic randomizer independently to every coordinate; if the
//!   resulting noise weight leaves the annulus, replace the output with a
//!   uniform sample from `{−1,1}^k \ Ann(b)`;
//! * [`randomize_weight_class`](ComposedRandomizer::randomize_weight_class)
//!   — sample the *final* noise weight first (exact `Binomial(k, p)`
//!   through an alias table, redirected through the outside-class
//!   distribution when it leaves the annulus) and then flip a uniform
//!   subset of that size. Conditioned on the weight, both paths produce a
//!   uniform string of that distance, so the laws coincide; the tests
//!   cross-validate them.
//!
//! The weight-class path is what `FutureRand::init` uses: its cost is
//! `O(k)` with *no* retry loop and it reuses the per-`(k, ε̃)` tables across
//! all users.

use crate::annulus::Annulus;
use crate::gap::WeightClassLaw;
use rand::Rng;
use rtf_primitives::alias::AliasTable;
use rtf_primitives::binomial::BinomialSampler;
use rtf_primitives::logspace::ln_binomial;
use rtf_primitives::rr::BasicRandomizer;
use rtf_primitives::sign::Sign;
use rtf_primitives::subset::flip_random_subset;

/// The composed randomizer `R̃`, reusable across users for one `(k, ε̃)`.
#[derive(Debug, Clone)]
pub struct ComposedRandomizer {
    k: usize,
    basic: BasicRandomizer,
    annulus: Annulus,
    law: WeightClassLaw,
    /// Exact `Binomial(k, p)` over the raw noise weight.
    noise_weight: BinomialSampler,
    /// Outside weight classes, and the alias table over them with weights
    /// `∝ C(k, w)` (uniform over outside *strings*).
    outside_classes: Vec<usize>,
    outside_alias: AliasTable,
}

impl ComposedRandomizer {
    /// Builds `R̃` for sparsity `k` and per-coordinate budget `ε̃`, with
    /// the protocol's annulus (Equation 15).
    pub fn new(k: usize, eps_tilde: f64) -> Self {
        Self::with_annulus(k, eps_tilde, Annulus::for_parameters(k, eps_tilde))
    }

    /// Builds `R̃` with the protocol's parameterisation `ε̃ = ε/(5√k)`
    /// (Lemma 5.2), the configuration `FutureRand` uses.
    pub fn for_protocol(k: usize, epsilon: f64) -> Self {
        let eps_tilde = epsilon / (5.0 * (k as f64).sqrt());
        Self::new(k, eps_tilde)
    }

    /// Builds `R̃` with the **audit-calibrated** `ε̃` (see
    /// [`mod@crate::calibrate`]): the largest per-coordinate budget whose
    /// exact realized privacy loss still fits `ε`. Roughly doubles
    /// `c_gap` versus [`for_protocol`](Self::for_protocol) at the same
    /// certified privacy.
    pub fn calibrated(k: usize, epsilon: f64) -> Self {
        let cal = crate::calibrate::calibrate(k, epsilon);
        Self::new(k, cal.eps_tilde)
    }

    /// Builds `R̃` over an explicit annulus (the Bun et al. baseline path).
    pub fn with_annulus(k: usize, eps_tilde: f64, annulus: Annulus) -> Self {
        let law = WeightClassLaw::with_annulus(k, eps_tilde, annulus);
        let basic = BasicRandomizer::new(eps_tilde);
        let noise_weight = BinomialSampler::new(k as u64, basic.p_flip());
        let outside_classes: Vec<usize> = annulus.outside().collect();
        let log_weights: Vec<f64> = outside_classes
            .iter()
            .map(|&w| ln_binomial(k as u64, w as u64))
            .collect();
        let outside_alias = AliasTable::from_log_weights(&log_weights);
        ComposedRandomizer {
            k,
            basic,
            annulus,
            law,
            noise_weight,
            outside_classes,
            outside_alias,
        }
    }

    /// The sparsity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-coordinate budget `ε̃`.
    #[inline]
    pub fn eps_tilde(&self) -> f64 {
        self.basic.eps_tilde()
    }

    /// The annulus `[LB..UB]`.
    #[inline]
    pub fn annulus(&self) -> &Annulus {
        &self.annulus
    }

    /// The exact output law (per-string probabilities, `c_gap`,
    /// realized ε).
    #[inline]
    pub fn law(&self) -> &WeightClassLaw {
        &self.law
    }

    /// The exact preservation gap `c_gap` (Lemma 5.3).
    #[inline]
    pub fn c_gap(&self) -> f64 {
        self.law.c_gap()
    }

    /// Literal Algorithm 3: per-coordinate basic randomization, then
    /// annulus conditioning.
    pub fn randomize<R: Rng + ?Sized>(&self, b: &[Sign], rng: &mut R) -> Vec<Sign> {
        assert_eq!(b.len(), self.k, "input length {} ≠ k = {}", b.len(), self.k);
        let mut out = self.basic.randomize_vec(b, rng);
        let dist = b.iter().zip(&out).filter(|(x, y)| x != y).count();
        if !self.annulus.contains(dist) {
            // Resample uniformly from {−1,1}^k \ Ann(b): weight class
            // ∝ C(k,w) over outside classes, then a uniform string at that
            // distance.
            let w = self.sample_outside_class(rng);
            out.copy_from_slice(b);
            flip_random_subset(&mut out, w, rng);
        }
        out
    }

    /// Weight-class path: sample the final output distance, then flip a
    /// uniform subset of that size. Identical in distribution to
    /// [`randomize`](Self::randomize).
    pub fn randomize_weight_class<R: Rng + ?Sized>(&self, b: &[Sign], rng: &mut R) -> Vec<Sign> {
        assert_eq!(b.len(), self.k, "input length {} ≠ k = {}", b.len(), self.k);
        let w = self.sample_output_distance(rng);
        let mut out = b.to_vec();
        flip_random_subset(&mut out, w, rng);
        out
    }

    /// Samples the distance `‖R̃(b) − b‖₀` of the final output: a raw
    /// `Binomial(k, p)` draw, redirected through the outside-class law when
    /// it leaves the annulus.
    pub fn sample_output_distance<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let raw = self.noise_weight.sample(rng) as usize;
        if self.annulus.contains(raw) {
            raw
        } else {
            self.sample_outside_class(rng)
        }
    }

    /// Samples a weight class outside the annulus, `∝ C(k, w)`.
    fn sample_outside_class<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.outside_classes[self.outside_alias.sample(rng)]
    }

    /// `b̃ = R̃(1^k)` — the pre-computation of `M.init` (Algorithm 3,
    /// line 10), via the weight-class path.
    pub fn sample_for_all_ones<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Sign> {
        let w = self.sample_output_distance(rng);
        let mut out = vec![Sign::Plus; self.k];
        flip_random_subset(&mut out, w, rng);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hamming(a: &[Sign], b: &[Sign]) -> usize {
        a.iter().zip(b).filter(|(x, y)| x != y).count()
    }

    #[test]
    fn outputs_have_annulus_or_outside_distances() {
        let r = ComposedRandomizer::for_protocol(16, 1.0);
        let b = vec![Sign::Plus; 16];
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let out = r.randomize(&b, &mut rng);
            assert_eq!(out.len(), 16);
            let d = hamming(&b, &out);
            assert!(d <= 16);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // w indexes counts against the law
    fn distance_distribution_matches_exact_law() {
        // Empirical weight-class frequencies of the literal path vs the
        // exact law, via a chi-square-style bound per class.
        let k = 10usize;
        let r = ComposedRandomizer::for_protocol(k, 1.0);
        let b: Vec<Sign> = (0..k)
            .map(|i| if i % 3 == 0 { Sign::Minus } else { Sign::Plus })
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let draws = 120_000;
        let mut counts = vec![0usize; k + 1];
        for _ in 0..draws {
            counts[hamming(&b, &r.randomize(&b, &mut rng))] += 1;
        }
        for w in 0..=k {
            let expect = r.law().class_prob(w) * draws as f64;
            let sd = (expect.max(1.0)).sqrt();
            assert!(
                (counts[w] as f64 - expect).abs() < 6.0 * sd + 3.0,
                "w={w}: observed {} expected {expect}",
                counts[w]
            );
        }
    }

    #[test]
    fn both_paths_agree_in_distribution() {
        // Compare weight-class histograms of the two sampling paths.
        let k = 12usize;
        let r = ComposedRandomizer::for_protocol(k, 0.7);
        let b = vec![Sign::Minus; k];
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 60_000;
        let mut h1 = vec![0f64; k + 1];
        let mut h2 = vec![0f64; k + 1];
        for _ in 0..draws {
            h1[hamming(&b, &r.randomize(&b, &mut rng))] += 1.0;
            h2[hamming(&b, &r.randomize_weight_class(&b, &mut rng))] += 1.0;
        }
        for w in 0..=k {
            let diff = (h1[w] - h2[w]).abs() / draws as f64;
            assert!(diff < 0.012, "w={w}: |{} − {}|/n = {diff}", h1[w], h2[w]);
        }
    }

    #[test]
    fn conditional_uniformity_within_class() {
        // Conditioned on distance w, each position should be flipped
        // equally often (w/k of the time).
        let k = 8usize;
        let r = ComposedRandomizer::for_protocol(k, 1.0);
        let b = vec![Sign::Plus; k];
        let mut rng = StdRng::seed_from_u64(4);
        let draws = 80_000;
        let mut flips = vec![0f64; k];
        let mut total_flips = 0f64;
        for _ in 0..draws {
            let out = r.randomize(&b, &mut rng);
            for (i, (&x, &y)) in b.iter().zip(&out).enumerate() {
                if x != y {
                    flips[i] += 1.0;
                    total_flips += 1.0;
                }
            }
        }
        let expect = total_flips / k as f64;
        for (i, &f) in flips.iter().enumerate() {
            assert!(
                (f - expect).abs() / expect < 0.05,
                "position {i}: {f} vs {expect}"
            );
        }
    }

    #[test]
    fn empirical_gap_matches_exact_c_gap() {
        let k = 6usize;
        let r = ComposedRandomizer::for_protocol(k, 1.0);
        let b = vec![Sign::Plus; k];
        let mut rng = StdRng::seed_from_u64(5);
        let draws = 400_000;
        let mut keep_minus_flip = 0i64;
        for _ in 0..draws {
            let out = r.randomize(&b, &mut rng);
            // Coordinate 0 preserved or flipped.
            if out[0] == b[0] {
                keep_minus_flip += 1;
            } else {
                keep_minus_flip -= 1;
            }
        }
        let emp = keep_minus_flip as f64 / draws as f64;
        let exact = r.c_gap();
        // Standard error of a ±1 mean is ≤ 1/√draws.
        let tol = 6.0 / (draws as f64).sqrt();
        assert!(
            (emp - exact).abs() < tol,
            "empirical {emp} vs exact {exact} (tol {tol})"
        );
    }

    #[test]
    fn all_ones_helper_matches_explicit_input() {
        let k = 9usize;
        let r = ComposedRandomizer::for_protocol(k, 0.9);
        let ones = vec![Sign::Plus; k];
        let mut rng = StdRng::seed_from_u64(6);
        let draws = 50_000;
        let mut h1 = vec![0f64; k + 1];
        let mut h2 = vec![0f64; k + 1];
        for _ in 0..draws {
            h1[hamming(&ones, &r.sample_for_all_ones(&mut rng))] += 1.0;
            h2[hamming(&ones, &r.randomize(&ones, &mut rng))] += 1.0;
        }
        for w in 0..=k {
            let diff = (h1[w] - h2[w]).abs() / draws as f64;
            assert!(diff < 0.012, "w={w}: {} vs {}", h1[w], h2[w]);
        }
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_length_rejected() {
        let r = ComposedRandomizer::for_protocol(4, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = r.randomize(&[Sign::Plus; 3], &mut rng);
    }

    #[test]
    fn k_equals_one_is_plain_conditioned_rr() {
        // k=1, ε=1: annulus = {0}, outside = {1}. Output keeps the input
        // w.p. 1−p and flips w.p. p where p = 1/(e^{0.2}+1).
        let r = ComposedRandomizer::for_protocol(1, 1.0);
        let p = 1.0 / (0.2f64.exp() + 1.0);
        assert!((r.law().class_prob(1) - p).abs() < 1e-12);
        assert!((r.c_gap() - (1.0 - 2.0 * p)).abs() < 1e-12);
    }
}
