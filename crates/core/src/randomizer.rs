//! Online sequence randomizers: the paper's **FutureRand** (Algorithm 3)
//! and the naive independent randomizer of Example 4.2.
//!
//! Both implement [`LocalRandomizer`], the interface Algorithm 1 consumes:
//! a stateful perturbation of a `{−1,0,1}` sequence of length `L` with at
//! most `k` non-zeros, emitting one `{−1,+1}` bit per element, online.
//! Properties I–III of Section 4.2 are what make a type a valid
//! implementation; the tests and `rtf-analysis` audits verify them.

use crate::composed::ComposedRandomizer;
use rand::{Rng, RngCore};
use rtf_primitives::fastseed::{self, SeedSchema};
use rtf_primitives::rr::BasicRandomizer;
use rtf_primitives::sign::{Sign, Ternary};

/// Errors from feeding a randomizer an invalid sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RandomizerError {
    /// More non-zero inputs than the sparsity bound `k` the randomizer was
    /// initialised with — the protocol's precondition was violated
    /// upstream.
    TooManyNonZeros {
        /// The sparsity bound.
        k: usize,
    },
    /// More inputs than the declared sequence length `L`.
    SequenceExhausted {
        /// The declared length.
        l: usize,
    },
}

impl std::fmt::Display for RandomizerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RandomizerError::TooManyNonZeros { k } => {
                write!(f, "input sequence has more than k = {k} non-zero elements")
            }
            RandomizerError::SequenceExhausted { l } => {
                write!(f, "input sequence longer than declared L = {l}")
            }
        }
    }
}

impl std::error::Error for RandomizerError {}

/// A stateful online randomizer for one user's length-`L`, `k`-sparse
/// report sequence (the `M` of Section 4.2).
pub trait LocalRandomizer {
    /// The declared sequence length `L`.
    fn sequence_len(&self) -> usize;

    /// How many elements have been consumed so far.
    fn position(&self) -> usize;

    /// The preservation gap `c_gap` of Property II — the server divides by
    /// this to unbias estimates (Observation 4.3).
    fn c_gap(&self) -> f64;

    /// Perturbs the next element `v_j`, returning the report bit
    /// `M^{(j)}(v_j)`.
    fn try_next(&mut self, v: Ternary, rng: &mut dyn RngCore) -> Result<Sign, RandomizerError>;

    /// Like [`try_next`](Self::try_next) but panicking on protocol
    /// violations.
    fn next(&mut self, v: Ternary, rng: &mut dyn RngCore) -> Sign {
        self.try_next(v, rng)
            .unwrap_or_else(|e| panic!("randomizer protocol violation: {e}"))
    }
}

/// The **FutureRand** randomizer (Algorithm 3).
///
/// `init` pre-computes `b̃ = R̃(1^k)` — "randomizing the future": by the
/// symmetry of the input space, the correlated noise for all `k` potential
/// non-zero elements can be drawn before any input arrives. The online
/// step `M^{(j)}(v_j)` then emits
///
/// * a uniform `±1` when `v_j = 0` (Property III), and
/// * `v_j · b̃_nnz` when `v_j ≠ 0`, consuming the next pre-computed bit
///   (Section 5.3).
///
/// The *source* of the zero-report uniform signs is the versioned
/// [`SeedSchema`] axis: under [`SeedSchema::V1Std`] they come from the
/// caller's `StdRng` stream (bit-compatible with every committed
/// baseline), under [`SeedSchema::V2Fast`] from the stateless counter
/// generator [`fastseed::word`] keyed by the client's private fast key —
/// a pure function of `(key, position)`, so every execution mode derives
/// the identical stream without consuming the `StdRng` at all. Order
/// sampling and the `b̃` initialization draws are schema-invariant.
#[derive(Debug, Clone)]
pub struct FutureRand {
    l: usize,
    k: usize,
    b_tilde: Vec<Sign>,
    nnz: usize,
    position: usize,
    c_gap: f64,
    schema: SeedSchema,
    fast_key: u64,
}

impl FutureRand {
    /// `M.init(L, k, ε)`: draws the pre-computed vector from a shared
    /// [`ComposedRandomizer`] (one per `(k, ε̃)`, reused across users),
    /// under the frozen v1 schema.
    pub fn init<R: Rng + ?Sized>(l: usize, composed: &ComposedRandomizer, rng: &mut R) -> Self {
        Self::init_with_schema(l, composed, rng, SeedSchema::V1Std, 0)
    }

    /// [`init`](Self::init) under an explicit seed schema. `fast_key` is
    /// the client's private counter-generator key
    /// ([`fastseed::client_key`] of the user's seed node); it is ignored
    /// under [`SeedSchema::V1Std`]. The `b̃` draws consume `rng`
    /// identically for every schema, so group composition and the
    /// correlated non-zero noise never depend on the schema.
    pub fn init_with_schema<R: Rng + ?Sized>(
        l: usize,
        composed: &ComposedRandomizer,
        rng: &mut R,
        schema: SeedSchema,
        fast_key: u64,
    ) -> Self {
        FutureRand {
            l,
            k: composed.k(),
            b_tilde: composed.sample_for_all_ones(rng),
            nnz: 0,
            position: 0,
            c_gap: composed.c_gap(),
            schema,
            fast_key,
        }
    }

    /// Convenience: builds its own composed randomizer with the protocol
    /// parameterisation `ε̃ = ε/(5√k)`. Prefer sharing a
    /// [`ComposedRandomizer`] across users — its tables cost `O(k)` to
    /// build.
    pub fn init_standalone<R: Rng + ?Sized>(l: usize, k: usize, epsilon: f64, rng: &mut R) -> Self {
        let composed = ComposedRandomizer::for_protocol(k, epsilon);
        Self::init(l, &composed, rng)
    }

    /// The sparsity bound `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// How many non-zero elements have been consumed.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The pre-computed vector `b̃` (exposed for the online-vs-offline
    /// equivalence tests).
    #[inline]
    pub fn b_tilde(&self) -> &[Sign] {
        &self.b_tilde
    }

    /// The seed schema this randomizer draws its zero-report signs under.
    #[inline]
    pub fn schema(&self) -> SeedSchema {
        self.schema
    }

    /// The client's private counter-generator key (meaningful only under
    /// [`SeedSchema::V2Fast`]).
    #[inline]
    pub fn fast_key(&self) -> u64 {
        self.fast_key
    }
}

impl LocalRandomizer for FutureRand {
    fn sequence_len(&self) -> usize {
        self.l
    }

    fn position(&self) -> usize {
        self.position
    }

    fn c_gap(&self) -> f64 {
        self.c_gap
    }

    fn try_next(&mut self, v: Ternary, rng: &mut dyn RngCore) -> Result<Sign, RandomizerError> {
        if self.position >= self.l {
            return Err(RandomizerError::SequenceExhausted { l: self.l });
        }
        self.position += 1;
        match v {
            Ternary::Zero => Ok(match self.schema {
                SeedSchema::V1Std => Sign::uniform(rng),
                // Positional and rng-free: bit (position − 1) of the
                // client's private counter stream, so sequential,
                // batched, and live consumption cannot drift.
                SeedSchema::V2Fast => {
                    Sign::from_bool(fastseed::sign_at(self.fast_key, (self.position - 1) as u64))
                }
            }),
            nonzero => {
                if self.nnz >= self.k {
                    // Roll back the position so the state stays consistent
                    // if the caller recovers.
                    self.position -= 1;
                    return Err(RandomizerError::TooManyNonZeros { k: self.k });
                }
                let bit = nonzero.mul_sign(self.b_tilde[self.nnz]);
                self.nnz += 1;
                Ok(bit)
            }
        }
    }
}

/// A whole order group's [`FutureRand`] lanes in one contiguous arena —
/// the batched client-side randomizer of the hot pipelines.
///
/// Every client in an order group reports at the same boundaries, so
/// their randomizer positions advance in lockstep: one shared `position`
/// replaces a per-client counter, the pre-computed `b̃` vectors pack
/// into a single `lanes × k` arena (no per-client heap allocation or
/// pointer chase), and [`fill_span`](Self::fill_span) draws the group's
/// whole ±1 report vector for one span in a single monomorphized pass —
/// no per-report `dyn RngCore` dispatch.
///
/// **Bit-compatible with the sequential stream**: each lane consumes its
/// own RNG exactly as `FutureRand::next` would (one uniform draw per
/// zero partial sum, `b̃[nnz]` for non-zeros), so existing seeds
/// reproduce — the `span_lanes_match_per_report_draws` tests and the
/// `proptest_randomizer` suite pin it down bit-for-bit.
#[derive(Debug, Clone)]
pub struct SpanRandomizers {
    l: usize,
    k: usize,
    c_gap: f64,
    /// Shared position: every lane has consumed this many elements.
    position: usize,
    /// Per-lane non-zero count (`nnz < k` or the protocol was violated).
    nnz: Vec<u32>,
    /// Packed `b̃` arena: lane `i` owns `b_tilde[i*k .. (i+1)*k]`.
    b_tilde: Vec<Sign>,
    /// The zero-report sign source shared by every lane.
    schema: SeedSchema,
    /// Per-lane counter-generator keys (v2 schema only; empty bytes of
    /// zero under v1 would also work, but the keys are pushed either way
    /// to keep `push_lane` branch-free).
    keys: Vec<u64>,
    /// Per-lane cached counter words for `cached_block` (v2 fast path):
    /// one [`fastseed::word`] covers 64 consecutive spans per lane.
    words: Vec<u64>,
    /// Which 64-span counter block `words` currently holds, if any.
    cached_block: Option<u64>,
}

impl SpanRandomizers {
    /// An empty group of length-`l` lanes drawing from `composed`'s
    /// `(k, ε̃)` parameterisation, under the frozen v1 schema.
    pub fn new(l: usize, composed: &ComposedRandomizer) -> Self {
        Self::new_with_schema(l, composed, SeedSchema::V1Std)
    }

    /// [`new`](Self::new) under an explicit seed schema; every adopted
    /// lane must have been initialised under the same schema.
    pub fn new_with_schema(l: usize, composed: &ComposedRandomizer, schema: SeedSchema) -> Self {
        SpanRandomizers {
            l,
            k: composed.k(),
            c_gap: composed.c_gap(),
            position: 0,
            nnz: Vec::new(),
            b_tilde: Vec::new(),
            schema,
            keys: Vec::new(),
            words: Vec::new(),
            cached_block: None,
        }
    }

    /// Adopts one client's freshly initialised [`FutureRand`] as a lane,
    /// copying its `b̃` into the arena and its fast key into the key
    /// table. The randomizer must be unused (position 0), shaped like
    /// the group, and initialised under the group's schema.
    ///
    /// # Panics
    /// Panics on a length/sparsity/schema mismatch or a non-fresh
    /// randomizer.
    pub fn push_lane(&mut self, m: &FutureRand) {
        assert_eq!(m.sequence_len(), self.l, "lane length mismatch");
        assert_eq!(m.k(), self.k, "lane sparsity mismatch");
        assert_eq!(m.position(), 0, "lane must be unused");
        assert_eq!(m.nnz(), 0, "lane must be unused");
        assert_eq!(m.b_tilde().len(), self.k, "b̃ must hold k entries");
        assert_eq!(m.schema(), self.schema, "lane schema mismatch");
        self.nnz.push(0);
        self.b_tilde.extend_from_slice(m.b_tilde());
        self.keys.push(m.fast_key());
        self.cached_block = None;
    }

    /// The zero-report sign source shared by every lane.
    pub fn schema(&self) -> SeedSchema {
        self.schema
    }

    /// Number of lanes (clients) in the group.
    pub fn len(&self) -> usize {
        self.nnz.len()
    }

    /// Whether the group holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.nnz.is_empty()
    }

    /// The shared lane position — how many spans every lane has emitted.
    pub fn position(&self) -> usize {
        self.position
    }

    /// The declared per-lane sequence length `L`.
    pub fn sequence_len(&self) -> usize {
        self.l
    }

    /// The preservation gap shared by every lane.
    pub fn c_gap(&self) -> f64 {
        self.c_gap
    }

    /// Draws the group's whole ±1 report vector for the next span:
    /// `sums[i]` is lane `i`'s partial sum over the span, `rngs[i]` its
    /// own RNG stream, and `out` receives the report signs in lane
    /// order. Each lane's draw is bit-identical to what
    /// `FutureRand::next(sums[i], rng)` would produce under the group's
    /// schema — under v1 one uniform RNG draw per zero sum, under v2 the
    /// counter bit at the shared position (the RNGs are not consumed).
    ///
    /// # Panics
    /// Panics on exhausted lanes (`position ≥ L`), a lane exceeding its
    /// sparsity bound, or mismatched slice lengths — the same protocol
    /// violations [`LocalRandomizer::next`] panics on.
    pub fn fill_span<R, F>(&mut self, sums: &[Ternary], rngs: &mut [R], mut out: F)
    where
        R: Rng,
        F: FnMut(Sign),
    {
        assert_eq!(sums.len(), self.nnz.len(), "one sum per lane");
        assert_eq!(rngs.len(), self.nnz.len(), "one RNG per lane");
        if self.position >= self.l {
            panic!(
                "randomizer protocol violation: {}",
                RandomizerError::SequenceExhausted { l: self.l }
            );
        }
        self.position += 1;
        let j = (self.position - 1) as u64;
        let k = self.k;
        let schema = self.schema;
        for (i, (&s, rng)) in sums.iter().zip(rngs.iter_mut()).enumerate() {
            let bit = match s {
                Ternary::Zero => match schema {
                    SeedSchema::V1Std => Sign::uniform(rng),
                    SeedSchema::V2Fast => Sign::from_bool(fastseed::sign_at(self.keys[i], j)),
                },
                nonzero => {
                    let n = self.nnz[i] as usize;
                    if n >= k {
                        panic!(
                            "randomizer protocol violation: {}",
                            RandomizerError::TooManyNonZeros { k }
                        );
                    }
                    self.nnz[i] = (n + 1) as u32;
                    nonzero.mul_sign(self.b_tilde[i * k + n])
                }
            };
            out(bit);
        }
    }

    /// The v2 fast path: draws the group's whole ±1 report vector for
    /// the next span directly as packed sign words — `out` receives
    /// `(bits, count)` chunks of up to 64 lanes, bit `i` of `bits` being
    /// lane `chunk_start + i`'s sign (`1` ⇒ `+1`, the packed-lane
    /// convention), ready for a `SignLane` bulk append. No per-report
    /// `Sign` materialization, no RNG draws: zero sums read a cached
    /// [`fastseed::word`] per lane (refreshed once every 64 spans), and
    /// non-zero sums overlay their `b̃` bit. Value-identical to
    /// [`fill_span`](Self::fill_span) on a v2 group, lane for lane.
    ///
    /// # Panics
    /// Panics under a non-fast schema, and on the same protocol
    /// violations as [`fill_span`](Self::fill_span).
    pub fn fill_span_words<F>(&mut self, sums: &[Ternary], mut out: F)
    where
        F: FnMut(u64, usize),
    {
        assert_eq!(sums.len(), self.nnz.len(), "one sum per lane");
        assert!(
            self.schema.is_fast(),
            "fill_span_words requires the fast (v2) seed schema"
        );
        if self.position >= self.l {
            panic!(
                "randomizer protocol violation: {}",
                RandomizerError::SequenceExhausted { l: self.l }
            );
        }
        self.position += 1;
        let j = (self.position - 1) as u64;
        let (block, bit) = (j >> 6, (j & 63) as u32);
        if self.cached_block != Some(block) {
            self.words.clear();
            self.words.extend(
                self.keys
                    .iter()
                    .map(|&key| fastseed::word(key, fastseed::SIGN_LANE, block)),
            );
            self.cached_block = Some(block);
        }
        let k = self.k;
        let lanes = sums.len();
        let mut start = 0usize;
        while start < lanes {
            let chunk = (lanes - start).min(64);
            let mut w = 0u64;
            // Slice-zip iteration so the compiler drops the per-lane
            // bounds checks on the sum/word columns in this hottest of
            // loops; `nnz`/`b_tilde` are only touched on the (sparse)
            // non-zero lanes.
            let sums_chunk = &sums[start..start + chunk];
            let words_chunk = &self.words[start..start + chunk];
            for (off, (&s, &word)) in sums_chunk.iter().zip(words_chunk).enumerate() {
                let plus = match s {
                    Ternary::Zero => (word >> bit) & 1 == 1,
                    nonzero => {
                        let i = start + off;
                        let n = self.nnz[i] as usize;
                        if n >= k {
                            panic!(
                                "randomizer protocol violation: {}",
                                RandomizerError::TooManyNonZeros { k }
                            );
                        }
                        self.nnz[i] = (n + 1) as u32;
                        nonzero.mul_sign(self.b_tilde[i * k + n]) == Sign::Plus
                    }
                };
                w |= u64::from(plus) << off;
            }
            out(w, chunk);
            start += chunk;
        }
    }
}

/// The naive independent randomizer of Example 4.2: each non-zero element
/// gets an independent basic randomized response with budget `ε/k`; zeros
/// are uniform.
///
/// Satisfies Properties I–III with `c_gap = (e^{ε/k}−1)/(e^{ε/k}+1) ∈
/// Θ(ε/k)` — a factor `√k` worse than FutureRand, which is exactly the gap
/// the paper's Theorem 4.4 closes. Kept as the in-crate ablation baseline.
#[derive(Debug, Clone)]
pub struct IndependentRand {
    l: usize,
    k: usize,
    basic: BasicRandomizer,
    nnz: usize,
    position: usize,
}

impl IndependentRand {
    /// Builds the Example 4.2 randomizer for length `L`, sparsity `k`,
    /// budget `ε` (per-element budget `ε/k`).
    pub fn new(l: usize, k: usize, epsilon: f64) -> Self {
        assert!(k >= 1, "k must be ≥ 1");
        IndependentRand {
            l,
            k,
            basic: BasicRandomizer::new(epsilon / k as f64),
            nnz: 0,
            position: 0,
        }
    }
}

impl LocalRandomizer for IndependentRand {
    fn sequence_len(&self) -> usize {
        self.l
    }

    fn position(&self) -> usize {
        self.position
    }

    fn c_gap(&self) -> f64 {
        self.basic.gap()
    }

    fn try_next(&mut self, v: Ternary, rng: &mut dyn RngCore) -> Result<Sign, RandomizerError> {
        if self.position >= self.l {
            return Err(RandomizerError::SequenceExhausted { l: self.l });
        }
        self.position += 1;
        match v {
            Ternary::Zero => Ok(Sign::uniform(rng)),
            nonzero => {
                if self.nnz >= self.k {
                    self.position -= 1;
                    return Err(RandomizerError::TooManyNonZeros { k: self.k });
                }
                self.nnz += 1;
                let sign = nonzero.sign().expect("non-zero");
                Ok(self.basic.randomize(sign, rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn future_rand_consumes_b_tilde_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let composed = ComposedRandomizer::for_protocol(4, 1.0);
        let mut m = FutureRand::init(8, &composed, &mut rng);
        let b_tilde = m.b_tilde().to_vec();
        // Feed +1, 0, −1, 0, +1, +1: non-zeros use b̃ entries 0,1,2,3.
        let inputs = [
            Ternary::Plus,
            Ternary::Zero,
            Ternary::Minus,
            Ternary::Zero,
            Ternary::Plus,
            Ternary::Plus,
        ];
        let mut nz_seen = 0;
        for v in inputs {
            let out = m.next(v, &mut rng);
            if v.is_nonzero() {
                assert_eq!(out, v.mul_sign(b_tilde[nz_seen]));
                nz_seen += 1;
            }
        }
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.position(), 6);
    }

    #[test]
    fn property_iii_zeros_are_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let composed = ComposedRandomizer::for_protocol(2, 1.0);
        let trials = 40_000;
        let mut plus = 0usize;
        for _ in 0..trials {
            let mut m = FutureRand::init(1, &composed, &mut rng);
            if m.next(Ternary::Zero, &mut rng) == Sign::Plus {
                plus += 1;
            }
        }
        let f = plus as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.01, "zero-coordinate bias: {f}");
    }

    #[test]
    fn property_ii_empirical_gap_matches_exact() {
        // Pr[out = v] − Pr[out = −v] must equal c_gap for non-zero v of
        // either sign and any position among the non-zeros.
        let mut rng = StdRng::seed_from_u64(3);
        let composed = ComposedRandomizer::for_protocol(3, 1.0);
        let exact = composed.c_gap();
        for v in [Ternary::Plus, Ternary::Minus] {
            let trials = 300_000;
            let mut acc = 0i64;
            for _ in 0..trials {
                let mut m = FutureRand::init(4, &composed, &mut rng);
                // Consume one non-zero before the measured one to test a
                // non-first position as well.
                let _ = m.next(Ternary::Minus, &mut rng);
                let out = m.next(v, &mut rng);
                acc += if out == v.mul_sign(Sign::Plus) { 1 } else { -1 };
            }
            let emp = acc as f64 / trials as f64;
            let tol = 6.0 / (trials as f64).sqrt();
            assert!(
                (emp - exact).abs() < tol,
                "v={v:?}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn too_many_nonzeros_rejected_then_recoverable() {
        let mut rng = StdRng::seed_from_u64(4);
        let composed = ComposedRandomizer::for_protocol(2, 1.0);
        let mut m = FutureRand::init(8, &composed, &mut rng);
        let _ = m.next(Ternary::Plus, &mut rng);
        let _ = m.next(Ternary::Minus, &mut rng);
        let err = m.try_next(Ternary::Plus, &mut rng).unwrap_err();
        assert_eq!(err, RandomizerError::TooManyNonZeros { k: 2 });
        // Zeros still work after the rejected call.
        assert!(m.try_next(Ternary::Zero, &mut rng).is_ok());
    }

    #[test]
    fn sequence_exhaustion_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let composed = ComposedRandomizer::for_protocol(2, 1.0);
        let mut m = FutureRand::init(2, &composed, &mut rng);
        let _ = m.next(Ternary::Zero, &mut rng);
        let _ = m.next(Ternary::Zero, &mut rng);
        assert_eq!(
            m.try_next(Ternary::Zero, &mut rng).unwrap_err(),
            RandomizerError::SequenceExhausted { l: 2 }
        );
    }

    #[test]
    fn independent_rand_gap_is_theta_eps_over_k() {
        for k in [1usize, 4, 16, 64] {
            let m = IndependentRand::new(10, k, 1.0);
            let expect = (1.0f64 / k as f64 / 2.0).tanh();
            assert!((m.c_gap() - expect).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn future_rand_gap_beats_independent_by_sqrt_k() {
        // The whole point of the paper: c_gap ratio grows like √k.
        for k in [16usize, 64, 256] {
            let fr = ComposedRandomizer::for_protocol(k, 1.0).c_gap();
            let ind = IndependentRand::new(10, k, 1.0).c_gap();
            let ratio = fr / ind;
            let sqrt_k = (k as f64).sqrt();
            assert!(
                ratio > 0.1 * sqrt_k,
                "k={k}: ratio {ratio} not ≈ √k = {sqrt_k}"
            );
        }
    }

    #[test]
    fn independent_rand_zeros_uniform_and_errors_match() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = IndependentRand::new(2, 1, 1.0);
        let _ = m.next(Ternary::Zero, &mut rng);
        let _ = m.next(Ternary::Plus, &mut rng);
        assert_eq!(
            m.try_next(Ternary::Zero, &mut rng).unwrap_err(),
            RandomizerError::SequenceExhausted { l: 2 }
        );
        let mut m2 = IndependentRand::new(8, 1, 1.0);
        let _ = m2.next(Ternary::Plus, &mut rng);
        assert_eq!(
            m2.try_next(Ternary::Minus, &mut rng).unwrap_err(),
            RandomizerError::TooManyNonZeros { k: 1 }
        );
    }

    #[test]
    fn span_lanes_match_per_report_draws() {
        // The batched group randomizer must be bit-identical to driving
        // each lane's FutureRand per report — outputs AND RNG streams.
        let composed = ComposedRandomizer::for_protocol(3, 1.0);
        let l = 6;
        let lanes = 5;
        let mut init_rng = StdRng::seed_from_u64(7);
        let mut per_report: Vec<FutureRand> = (0..lanes)
            .map(|_| FutureRand::init(l, &composed, &mut init_rng))
            .collect();
        let mut group = SpanRandomizers::new(l, &composed);
        for m in &per_report {
            group.push_lane(m);
        }
        assert_eq!(group.len(), lanes);

        let mut rngs_a: Vec<StdRng> = (0..lanes)
            .map(|i| StdRng::seed_from_u64(100 + i as u64))
            .collect();
        let mut rngs_b = rngs_a.clone();

        // Deterministic sum pattern with ≤ k non-zeros per lane.
        let pattern = |lane: usize, t: usize| match (lane + t) % 3 {
            0 => Ternary::Zero,
            1 => {
                if t < 3 {
                    Ternary::Plus
                } else {
                    Ternary::Zero
                }
            }
            _ => {
                if t < 3 {
                    Ternary::Minus
                } else {
                    Ternary::Zero
                }
            }
        };

        for t in 0..l {
            let sums: Vec<Ternary> = (0..lanes).map(|i| pattern(i, t)).collect();
            let mut batched = Vec::new();
            group.fill_span(&sums, &mut rngs_a, |s| batched.push(s));
            let scalar: Vec<Sign> = sums
                .iter()
                .zip(per_report.iter_mut().zip(rngs_b.iter_mut()))
                .map(|(&s, (m, rng))| m.next(s, rng))
                .collect();
            assert_eq!(batched, scalar, "span {t} diverged");
        }
        assert_eq!(group.position(), l);
        for (m, (a, b)) in per_report
            .iter()
            .zip(rngs_a.iter_mut().zip(rngs_b.iter_mut()))
        {
            assert_eq!(m.position(), l);
            // Identical residual RNG state: same number of draws consumed.
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn span_lanes_reject_exhaustion_and_excess_nonzeros() {
        let composed = ComposedRandomizer::for_protocol(1, 1.0);
        let mut group = SpanRandomizers::new(1, &composed);
        let mut init_rng = StdRng::seed_from_u64(8);
        group.push_lane(&FutureRand::init(1, &composed, &mut init_rng));
        let mut rngs = vec![StdRng::seed_from_u64(9)];
        group.fill_span(&[Ternary::Plus], &mut rngs, |_| {});
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            group.fill_span(&[Ternary::Zero], &mut rngs, |_| {});
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("longer than declared L"), "{msg}");

        let mut group = SpanRandomizers::new(4, &composed);
        let mut init_rng = StdRng::seed_from_u64(10);
        group.push_lane(&FutureRand::init(4, &composed, &mut init_rng));
        let mut rngs = vec![StdRng::seed_from_u64(11)];
        group.fill_span(&[Ternary::Plus], &mut rngs, |_| {});
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            group.fill_span(&[Ternary::Minus], &mut rngs, |_| {});
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("more than k"), "{msg}");
    }

    #[test]
    fn fast_schema_init_consumes_rng_exactly_like_v1() {
        // Group composition and b̃ must be schema-invariant: the same
        // rng yields the same b̃ and the same residual stream.
        let composed = ComposedRandomizer::for_protocol(3, 1.0);
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let v1 = FutureRand::init(6, &composed, &mut rng_a);
        let v2 = FutureRand::init_with_schema(6, &composed, &mut rng_b, SeedSchema::V2Fast, 0xBEEF);
        assert_eq!(v1.b_tilde(), v2.b_tilde());
        assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>());
        assert_eq!(v2.schema(), SeedSchema::V2Fast);
        assert_eq!(v2.fast_key(), 0xBEEF);
    }

    #[test]
    fn fast_schema_zeros_come_from_the_counter_stream_without_rng_draws() {
        let composed = ComposedRandomizer::for_protocol(2, 1.0);
        let mut init_rng = StdRng::seed_from_u64(22);
        let key = 0x1234_5678_9ABC_DEF0u64;
        let mut m =
            FutureRand::init_with_schema(8, &composed, &mut init_rng, SeedSchema::V2Fast, key);
        let b_tilde = m.b_tilde().to_vec();
        let mut rng = StdRng::seed_from_u64(23);
        let mut untouched = rng.clone();
        let inputs = [
            Ternary::Zero,
            Ternary::Plus,
            Ternary::Zero,
            Ternary::Minus,
            Ternary::Zero,
        ];
        let mut nz = 0usize;
        for (j, &v) in inputs.iter().enumerate() {
            let out = m.next(v, &mut rng);
            if v.is_nonzero() {
                assert_eq!(out, v.mul_sign(b_tilde[nz]));
                nz += 1;
            } else {
                let expect = Sign::from_bool(rtf_primitives::fastseed::sign_at(key, j as u64));
                assert_eq!(out, expect, "zero at position {j}");
            }
        }
        // The v2 schema never touches the per-report RNG.
        assert_eq!(rng.random::<u64>(), untouched.random::<u64>());
    }

    #[test]
    fn fast_span_words_match_scalar_and_per_report_draws() {
        // Three representations of the same v2 group — per-report
        // FutureRand, scalar fill_span, packed fill_span_words — must
        // agree bit for bit, across counter-block boundaries (l > 64)
        // and for > 64 lanes (multi-word output chunks).
        let composed = ComposedRandomizer::for_protocol(3, 1.0);
        let l = 130; // spans two 64-counter blocks
        let lanes = 70; // two output words per span
        let root = rtf_primitives::seeding::SeedSequence::new(31);
        let mut init_rng = StdRng::seed_from_u64(30);
        let mut per_report: Vec<FutureRand> = (0..lanes)
            .map(|i| {
                let key = rtf_primitives::fastseed::client_key(&root.child(i as u64));
                FutureRand::init_with_schema(l, &composed, &mut init_rng, SeedSchema::V2Fast, key)
            })
            .collect();
        let mut group_a = SpanRandomizers::new_with_schema(l, &composed, SeedSchema::V2Fast);
        let mut group_b = group_a.clone();
        for m in &per_report {
            group_a.push_lane(m);
            group_b.push_lane(m);
        }

        let mut rngs: Vec<StdRng> = (0..lanes)
            .map(|i| StdRng::seed_from_u64(200 + i as u64))
            .collect();
        let mut scalar_rng = StdRng::seed_from_u64(999);
        // At most two non-zeros per lane (k = 3), spread across both
        // counter blocks.
        let pattern = |lane: usize, t: usize| {
            if t == lane % l {
                Ternary::Plus
            } else if t == (lane * 7 + 91) % l {
                Ternary::Minus
            } else {
                Ternary::Zero
            }
        };
        for t in 0..l {
            let sums: Vec<Ternary> = (0..lanes).map(|i| pattern(i, t)).collect();
            let mut scalar = Vec::new();
            group_a.fill_span(&sums, &mut rngs, |s| scalar.push(s));
            let mut packed: Vec<Sign> = Vec::new();
            group_b.fill_span_words(&sums, |w, count| {
                for off in 0..count {
                    packed.push(Sign::from_bool((w >> off) & 1 == 1));
                }
            });
            let direct: Vec<Sign> = sums
                .iter()
                .zip(per_report.iter_mut())
                .map(|(&s, m)| m.next(s, &mut scalar_rng))
                .collect();
            assert_eq!(scalar, direct, "span {t}: fill_span vs per-report");
            assert_eq!(packed, direct, "span {t}: fill_span_words vs per-report");
        }
        assert_eq!(group_a.position(), l);
        assert_eq!(group_b.position(), l);
        // No RNG was consumed anywhere on the v2 path.
        let mut fresh = StdRng::seed_from_u64(999);
        assert_eq!(scalar_rng.random::<u64>(), fresh.random::<u64>());
    }

    #[test]
    fn fast_span_words_reject_protocol_violations_and_v1_groups() {
        let composed = ComposedRandomizer::for_protocol(1, 1.0);
        let mut init_rng = StdRng::seed_from_u64(33);
        let mut group = SpanRandomizers::new_with_schema(1, &composed, SeedSchema::V2Fast);
        group.push_lane(&FutureRand::init_with_schema(
            1,
            &composed,
            &mut init_rng,
            SeedSchema::V2Fast,
            5,
        ));
        group.fill_span_words(&[Ternary::Zero], |_, _| {});
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            group.fill_span_words(&[Ternary::Zero], |_, _| {});
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("longer than declared L"), "{msg}");

        let mut v1_group = SpanRandomizers::new(4, &composed);
        let mut init_rng = StdRng::seed_from_u64(34);
        v1_group.push_lane(&FutureRand::init(4, &composed, &mut init_rng));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            v1_group.fill_span_words(&[Ternary::Zero], |_, _| {});
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().unwrap();
        assert!(msg.contains("fast (v2) seed schema"), "{msg}");
    }

    #[test]
    fn push_lane_rejects_schema_mismatch() {
        let composed = ComposedRandomizer::for_protocol(1, 1.0);
        let mut init_rng = StdRng::seed_from_u64(35);
        let mut group = SpanRandomizers::new_with_schema(4, &composed, SeedSchema::V2Fast);
        let v1_lane = FutureRand::init(4, &composed, &mut init_rng);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            group.push_lane(&v1_lane);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("lane schema mismatch"), "{msg}");
    }

    #[test]
    fn error_display_messages() {
        let e1 = RandomizerError::TooManyNonZeros { k: 3 };
        let e2 = RandomizerError::SequenceExhausted { l: 7 };
        assert!(format!("{e1}").contains("k = 3"));
        assert!(format!("{e2}").contains("L = 7"));
    }
}
