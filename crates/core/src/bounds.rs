//! Closed-form error bounds quoted by the paper, used by the benches to
//! print theory next to measurement.
//!
//! Each function returns the expression inside the `O(·)`/`Ω(·)` with
//! constant 1; the benches report measured-to-bound ratios, so only the
//! *shape* matters (see EXPERIMENTS.md).

/// Theorem 4.1 — this paper's protocol:
/// `(log d / ε) · √(k · n · ln(d/β))`.
pub fn future_rand_bound(n: usize, d: u64, k: usize, epsilon: f64, beta: f64) -> f64 {
    let log_d = (d as f64).log2();
    (log_d / epsilon) * ((k as f64) * (n as f64) * (d as f64 / beta).ln()).sqrt()
}

/// Erlingsson et al. (2020), as restated in Section 1:
/// `(1/ε) · (log d)^{3/2} · k · √(n · log(d/β))`.
pub fn erlingsson_bound(n: usize, d: u64, k: usize, epsilon: f64, beta: f64) -> f64 {
    let log_d = (d as f64).log2();
    (1.0 / epsilon) * log_d.powf(1.5) * (k as f64) * ((n as f64) * (d as f64 / beta).ln()).sqrt()
}

/// The lower bound of Zhou et al. quoted in Section 1:
/// `(1/ε) · √(k · n · log(d/k))`.
pub fn lower_bound(n: usize, d: u64, k: usize, epsilon: f64) -> f64 {
    let ratio = (d as f64 / k as f64).max(2.0);
    (1.0 / epsilon) * ((k as f64) * (n as f64) * ratio.ln()).sqrt()
}

/// The central-model binary-tree mechanism (Dwork et al. 2010, Chan et al.
/// 2011), per-time error `O((1/ε)·(log d)^{1.5})` — independent of `n`,
/// which is the whole local-vs-central gap.
pub fn central_tree_bound(d: u64, epsilon: f64) -> f64 {
    let log_d = (d as f64).log2().max(1.0);
    (1.0 / epsilon) * log_d.powf(1.5)
}

/// Naive repeated randomized response with the budget split `ε/d` per
/// period: per-time error `O((d/ε)·√(n·ln(d/β)))`.
pub fn naive_split_bound(n: usize, d: u64, epsilon: f64, beta: f64) -> f64 {
    (d as f64 / epsilon) * ((n as f64) * (d as f64 / beta).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_improvement_factor_is_sqrt_k_times_polylog() {
        // Erlingsson / FutureRand = √k · √log d (exactly, with constant 1).
        for k in [1usize, 4, 16, 64] {
            let ours = future_rand_bound(10_000, 256, k, 1.0, 0.05);
            let theirs = erlingsson_bound(10_000, 256, k, 1.0, 0.05);
            let expect = (k as f64).sqrt() * (256f64).log2().sqrt();
            let ratio = theirs / ours;
            assert!(
                (ratio - expect).abs() < 1e-9,
                "k={k}: ratio {ratio} vs {expect}"
            );
        }
    }

    #[test]
    fn upper_bound_dominates_lower_bound_shape() {
        // Our bound exceeds the lower bound by at most log factors: their
        // ratio must grow slower than log²(d).
        for d in [16u64, 256, 4096, 65_536] {
            let up = future_rand_bound(1_000_000, d, 8, 0.5, 0.05);
            let low = lower_bound(1_000_000, d, 8, 0.5);
            let ratio = up / low;
            let log_d = (d as f64).log2();
            assert!(ratio >= 1.0, "upper below lower at d={d}");
            assert!(ratio <= log_d * log_d, "gap {ratio} exceeds log²d at d={d}");
        }
    }

    #[test]
    fn central_bound_is_n_free() {
        assert_eq!(central_tree_bound(256, 1.0), central_tree_bound(256, 1.0));
        // And tiny compared to any local bound at realistic n.
        assert!(central_tree_bound(256, 1.0) < future_rand_bound(10_000, 256, 1, 1.0, 0.05));
    }

    #[test]
    fn naive_split_is_much_worse_in_d() {
        // naive/ours grows like d/(√k·polylog) — check it exceeds 10× by
        // d = 256.
        let ours = future_rand_bound(10_000, 256, 8, 1.0, 0.05);
        let naive = naive_split_bound(10_000, 256, 1.0, 0.05);
        assert!(naive > 10.0 * ours, "naive {naive} vs ours {ours}");
    }
}
