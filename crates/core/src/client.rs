//! Algorithm 1 — the client `Aclt`.
//!
//! The client samples an order `h_u` uniformly from `[0..log d]`, announces
//! it, and then observes its own derivative value `X_u[t]` at each period.
//! Whenever `2^{h_u} | t`, the order-`h_u` dyadic interval ending at `t`
//! has completed; the client computes its partial sum (the running total of
//! derivative values since the previous boundary, always in `{−1,0,1}` by
//! Observation 3.7), perturbs it with the sequence randomizer `M`, and
//! reports the single resulting bit.

use crate::params::ProtocolParams;
use crate::randomizer::LocalRandomizer;
use rand::{Rng, RngCore};
use rtf_primitives::sign::{Sign, Ternary};

/// One report bit, produced when an order-`h_u` interval completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientReport {
    /// The period at which the report was emitted (`t = j · 2^{h_u}`).
    pub t: u64,
    /// The 1-based index `j` of the completed interval at the client's
    /// order.
    pub j: u64,
    /// The perturbed partial sum `ω_u[j] = M^{(j)}(S_u(I_{h,j}))`.
    pub bit: Sign,
}

/// The client-side state machine of Algorithm 1, generic over the sequence
/// randomizer `M`.
#[derive(Debug, Clone)]
pub struct Client<M: LocalRandomizer> {
    h: u32,
    stride: u64,
    d: u64,
    randomizer: M,
    /// Running partial sum of the currently open interval. Always in
    /// `[−1, 1]` for valid Boolean-derivative inputs.
    running: i32,
    /// The last period observed (for in-order delivery checking).
    last_t: u64,
}

impl<M: LocalRandomizer> Client<M> {
    /// Creates a client that sampled order `h` and owns randomizer `m`
    /// (already initialised for `L = d/2^h`).
    ///
    /// # Panics
    /// Panics if the randomizer's declared length disagrees with
    /// `d / 2^h`, or `h > log d`.
    pub fn new(params: &ProtocolParams, h: u32, randomizer: M) -> Self {
        assert!(
            h <= params.log_d(),
            "order {h} exceeds log d = {}",
            params.log_d()
        );
        let expected_l = params.sequence_len(h);
        assert_eq!(
            randomizer.sequence_len(),
            expected_l,
            "randomizer initialised for L = {} but order {h} needs L = {expected_l}",
            randomizer.sequence_len()
        );
        Client {
            h,
            stride: 1u64 << h,
            d: params.d(),
            randomizer,
            running: 0,
            last_t: 0,
        }
    }

    /// Samples the order `h_u` uniformly from `[0..log d]` (Algorithm 1,
    /// line 1).
    pub fn sample_order<R: Rng + ?Sized>(params: &ProtocolParams, rng: &mut R) -> u32 {
        rng.random_range(0..params.num_orders())
    }

    /// The announced order `h_u`.
    #[inline]
    pub fn order(&self) -> u32 {
        self.h
    }

    /// The sequence randomizer (e.g. to inspect `c_gap`).
    #[inline]
    pub fn randomizer(&self) -> &M {
        &self.randomizer
    }

    /// Observes the derivative value `X_u[t]` for period `t`; returns a
    /// report iff an order-`h_u` interval completes at `t`.
    ///
    /// # Panics
    /// Panics if periods are delivered out of order, beyond the horizon, or
    /// if the running partial sum leaves `{−1,0,1}` (which means the input
    /// is not the derivative of a Boolean stream).
    pub fn observe<R: RngCore>(&mut self, t: u64, x: Ternary, rng: &mut R) -> Option<ClientReport> {
        assert_eq!(
            t,
            self.last_t + 1,
            "periods must arrive in order: expected {}, got {t}",
            self.last_t + 1
        );
        assert!(t <= self.d, "period {t} beyond horizon d = {}", self.d);
        self.last_t = t;
        self.running += i32::from(x.value());
        assert!(
            (-1..=1).contains(&self.running),
            "running partial sum {} escaped {{−1,0,1}}: input is not a Boolean derivative",
            self.running
        );
        if t % self.stride != 0 {
            return None;
        }
        let j = t / self.stride;
        let s = Ternary::from_i8(self.running as i8);
        self.running = 0;
        // Upcast to `&mut dyn RngCore` for the object-safe randomizer API.
        let bit = self.randomizer.next(s, rng);
        Some(ClientReport { t, j, bit })
    }

    /// Total number of reports this client will send over the horizon,
    /// `L = d / 2^{h_u}` — the communication cost in bits.
    pub fn total_reports(&self) -> u64 {
        self.d / self.stride
    }

    /// Advances the state machine over one whole order-`h_u` interval in
    /// a single step: `s` must be the interval's partial sum
    /// `S_u(I_{h,j})` (always in `{−1, 0, 1}` by Observation 3.7; the
    /// `Ternary` type enforces it) and `t` the interval's ending
    /// boundary. Equivalent to calling [`observe`](Self::observe) for
    /// every period of the interval with the matching derivative values —
    /// the randomizer is consulted exactly once, at the boundary, so RNG
    /// consumption is identical. This is the batched pipeline's stepping
    /// mode: `O(1)` per *report* instead of `O(1)` per *period*.
    ///
    /// # Panics
    /// Panics if `t` is not the next boundary of this client's order or
    /// is off-horizon.
    pub fn observe_span<R: RngCore>(&mut self, t: u64, s: Ternary, rng: &mut R) -> ClientReport {
        assert_eq!(
            t,
            self.last_t + self.stride,
            "boundaries must arrive in order: expected {}, got {t}",
            self.last_t + self.stride
        );
        assert!(t <= self.d, "period {t} beyond horizon d = {}", self.d);
        debug_assert_eq!(t % self.stride, 0, "not a boundary of order {}", self.h);
        self.last_t = t;
        self.running = 0;
        let j = t / self.stride;
        let bit = self.randomizer.next(s, rng);
        ClientReport { t, j, bit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composed::ComposedRandomizer;
    use crate::randomizer::FutureRand;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtf_streams::stream::BoolStream;

    fn params() -> ProtocolParams {
        ProtocolParams::new(100, 16, 3, 1.0, 0.05).unwrap()
    }

    fn make_client(p: &ProtocolParams, h: u32, seed: u64) -> (Client<FutureRand>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k_eff = p.k_for_order(h);
        let composed = ComposedRandomizer::for_protocol(k_eff, p.epsilon());
        let m = FutureRand::init(p.sequence_len(h), &composed, &mut rng);
        (Client::new(p, h, m), rng)
    }

    #[test]
    fn reports_exactly_at_multiples_of_stride() {
        let p = params();
        for h in 0..=p.log_d() {
            let (mut c, mut rng) = make_client(&p, h, 42 + h as u64);
            let mut report_times = Vec::new();
            for t in 1..=p.d() {
                if let Some(r) = c.observe(t, Ternary::Zero, &mut rng) {
                    assert_eq!(r.t, t);
                    assert_eq!(r.j, t >> h);
                    report_times.push(t);
                }
            }
            let expect: Vec<u64> = (1..=p.d()).filter(|t| t % (1 << h) == 0).collect();
            assert_eq!(report_times, expect, "h = {h}");
            assert_eq!(c.total_reports(), expect.len() as u64);
        }
    }

    #[test]
    fn partial_sums_match_derivative_partial_sums() {
        // Drive the client with a real stream's derivative and check the
        // perturbed value is s·b̃ entries / uniform in the right slots by
        // verifying against the direct partial-sum computation: with k_eff
        // non-zero slots the FutureRand output for a non-zero s at the
        // nnz-th non-zero is s·b̃[nnz]; we reconstruct that here.
        let p = params();
        let h = 1u32;
        let stream = BoolStream::from_change_times(16, vec![3, 7, 12]);
        let x = stream.derivative();
        let (mut c, mut rng) = make_client(&p, h, 7);
        let b_tilde = c.randomizer().b_tilde().to_vec();
        let mut nnz = 0usize;
        for t in 1..=16u64 {
            if let Some(r) = c.observe(t, x.at(t), &mut rng) {
                let interval = rtf_dyadic::interval::DyadicInterval::new(h, r.j);
                let s = x.partial_sum(interval);
                if s.is_nonzero() {
                    assert_eq!(r.bit, s.mul_sign(b_tilde[nnz]), "t={t}");
                    nnz += 1;
                }
            }
        }
        assert!(nnz > 0, "test stream must produce non-zero partial sums");
    }

    #[test]
    fn span_stepping_matches_per_period_stepping_exactly() {
        // Same stream, same seed: observe_span at every boundary must
        // yield the identical report sequence as observe at every period
        // — including identical RNG consumption (the randomizer is the
        // only consumer, once per boundary).
        let p = params();
        let stream = BoolStream::from_change_times(16, vec![2, 9, 14]);
        let x = stream.derivative();
        for h in 0..=p.log_d() {
            let (mut per_period, mut rng_a) = make_client(&p, h, 900 + u64::from(h));
            let (mut per_span, mut rng_b) = make_client(&p, h, 900 + u64::from(h));
            let stride = 1u64 << h;
            let mut cursor = x.cursor();
            for t in 1..=p.d() {
                let report = per_period.observe(t, x.at(t), &mut rng_a);
                if t % stride == 0 {
                    let s = cursor.sum_to(t);
                    let span_report = per_span.observe_span(t, s, &mut rng_b);
                    assert_eq!(report, Some(span_report), "h={h}, t={t}");
                } else {
                    assert_eq!(report, None);
                }
            }
            // Both RNGs consumed the same number of draws.
            use rand::Rng;
            assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>(), "h={h}");
        }
    }

    #[test]
    fn order_sampling_is_uniform() {
        let p = params(); // log d = 4 ⇒ 5 orders
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 50_000;
        let mut counts = vec![0usize; p.num_orders() as usize];
        for _ in 0..trials {
            counts[Client::<FutureRand>::sample_order(&p, &mut rng) as usize] += 1;
        }
        let expect = trials as f64 / p.num_orders() as f64;
        for (h, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "order {h}: {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "periods must arrive in order")]
    fn out_of_order_periods_rejected() {
        let p = params();
        let (mut c, mut rng) = make_client(&p, 0, 4);
        let _ = c.observe(1, Ternary::Zero, &mut rng);
        let _ = c.observe(3, Ternary::Zero, &mut rng);
    }

    #[test]
    #[should_panic(expected = "not a Boolean derivative")]
    fn invalid_derivative_rejected() {
        let p = params();
        let (mut c, mut rng) = make_client(&p, 2, 5);
        // Two +1s without a −1 in between: running sum would hit 2.
        let _ = c.observe(1, Ternary::Plus, &mut rng);
        let _ = c.observe(2, Ternary::Plus, &mut rng);
    }

    #[test]
    #[should_panic(expected = "randomizer initialised for L")]
    fn mismatched_randomizer_length_rejected() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(6);
        let composed = ComposedRandomizer::for_protocol(3, 1.0);
        let m = FutureRand::init(4, &composed, &mut rng); // wrong L for h=0
        let _ = Client::new(&p, 0, m);
    }
}
