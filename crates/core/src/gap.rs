//! Exact weight-class output law of the composed randomizer.
//!
//! For input `b ∈ {−1,1}^k`, the probability that `R̃(b)` equals a
//! particular string `s` depends on `b` and `s` only through the Hamming
//! distance `w = ‖b − s‖₀` (Section 5.5):
//!
//! * `w` inside the annulus: the independent randomized-response
//!   probability `g(w) = p^w (1−p)^{k−w} = p^k · e^{ε̃(k−w)}`;
//! * `w` outside: the common resampling probability `P*_out` of
//!   Equation (24).
//!
//! This module computes that law *exactly* in `O(k)` log-domain
//! arithmetic. Three consumers rely on it:
//!
//! * the **server**, which needs the exact preservation gap `c_gap`
//!   (Lemma 5.3) so its estimator is exactly unbiased (Algorithm 2, line 5);
//! * the **privacy audit**, since the realized privacy loss of `R̃` is
//!   exactly `max_w ln q(w) − min_w ln q(w)` over per-string probabilities
//!   `q` (Lemma 5.2 promises this is at most `ε = 5·ε̃·√k`);
//! * the **analysis/bench crates**, which tabulate the law against the
//!   paper's bounds.

use crate::annulus::Annulus;
use rtf_primitives::logspace::{ln_binomial, LogSumExp};

/// The exact output law of `R̃` over Hamming-weight classes, for one
/// `(k, ε̃)` pair.
#[derive(Debug, Clone)]
pub struct WeightClassLaw {
    k: usize,
    eps_tilde: f64,
    annulus: Annulus,
    /// `ln p` with `p = 1/(e^{ε̃}+1)`.
    ln_p: f64,
    /// `ln P*_out` — per-string probability outside the annulus
    /// (Equation 24).
    ln_p_star_out: f64,
    /// Exact `c_gap` (Lemma 5.3).
    c_gap: f64,
}

impl WeightClassLaw {
    /// Builds the law for sparsity `k` and per-coordinate budget `ε̃`,
    /// using the protocol's annulus (Equation 15).
    pub fn new(k: usize, eps_tilde: f64) -> Self {
        Self::with_annulus(k, eps_tilde, Annulus::for_parameters(k, eps_tilde))
    }

    /// Builds the law with the protocol's parameterisation
    /// `ε̃ = ε/(5√k)` (Lemma 5.2).
    pub fn for_protocol(k: usize, epsilon: f64) -> Self {
        let eps_tilde = epsilon / (5.0 * (k as f64).sqrt());
        Self::new(k, eps_tilde)
    }

    /// Builds the law for an explicit annulus (used by the Bun et al.
    /// baseline, whose bounds differ).
    ///
    /// # Panics
    /// Panics if the annulus was built for a different `k`.
    pub fn with_annulus(k: usize, eps_tilde: f64, annulus: Annulus) -> Self {
        assert_eq!(annulus.k(), k, "annulus built for different k");
        assert!(
            eps_tilde.is_finite() && eps_tilde > 0.0,
            "ε̃ must be positive and finite"
        );
        let p = 1.0 / (eps_tilde.exp() + 1.0);
        let ln_p = p.ln();

        // P*_out = Σ_out C(k,w) g(w) / Σ_out C(k,w)   (Equation 24).
        let mut num = LogSumExp::new();
        let mut den = LogSumExp::new();
        for w in annulus.outside() {
            let ln_c = ln_binomial(k as u64, w as u64);
            num.add(ln_c + Self::ln_g_raw(k, ln_p, eps_tilde, w));
            den.add(ln_c);
        }
        // The complement is never empty (UB < k by construction).
        let ln_p_star_out = num.value() - den.value();

        let mut law = WeightClassLaw {
            k,
            eps_tilde,
            annulus,
            ln_p,
            ln_p_star_out,
            c_gap: f64::NAN,
        };
        law.c_gap = law.compute_c_gap();
        law
    }

    #[inline]
    fn ln_g_raw(k: usize, ln_p: f64, eps_tilde: f64, w: usize) -> f64 {
        // g(w) = p^k · e^{ε̃ (k − w)}.
        k as f64 * ln_p + eps_tilde * (k - w) as f64
    }

    /// `ln g(w)` — log-probability that independent randomized response
    /// lands on one particular string at distance `w`.
    pub fn ln_g(&self, w: usize) -> f64 {
        assert!(w <= self.k, "weight {w} exceeds k = {}", self.k);
        Self::ln_g_raw(self.k, self.ln_p, self.eps_tilde, w)
    }

    /// `ln Pr[R̃(b) = s]` for any string `s` at distance `w` from the
    /// input: `ln g(w)` inside the annulus, `ln P*_out` outside.
    pub fn ln_per_string_prob(&self, w: usize) -> f64 {
        assert!(w <= self.k, "weight {w} exceeds k = {}", self.k);
        if self.annulus.contains(w) {
            self.ln_g(w)
        } else {
            self.ln_p_star_out
        }
    }

    /// `Pr[‖R̃(b) − b‖₀ = w]` — the probability the output lands in weight
    /// class `w` (there are `C(k,w)` strings in the class).
    pub fn class_prob(&self, w: usize) -> f64 {
        (ln_binomial(self.k as u64, w as u64) + self.ln_per_string_prob(w)).exp()
    }

    /// The full weight-class pmf (`result[w] = Pr[distance = w]`).
    pub fn class_pmf(&self) -> Vec<f64> {
        (0..=self.k).map(|w| self.class_prob(w)).collect()
    }

    /// Exact Kahan-summed total probability — equals 1 up to rounding; the
    /// tests assert this, and callers can use it as a numerical health
    /// check.
    pub fn total_probability(&self) -> f64 {
        let mut sum = 0.0;
        let mut comp = 0.0;
        for w in 0..=self.k {
            let y = self.class_prob(w) - comp;
            let t = sum + y;
            comp = (t - sum) - y;
            sum = t;
        }
        sum
    }

    fn compute_c_gap(&self) -> f64 {
        // c_gap = Σ_w Pr[distance = w] · (k − 2w)/k   (proof of Lemma 5.3):
        // conditioned on distance w, a fixed coordinate is flipped with
        // probability w/k, so it contributes (k−w)/k − w/k to the gap.
        let kf = self.k as f64;
        let mut sum = 0.0;
        let mut comp = 0.0;
        for w in 0..=self.k {
            let term = self.class_prob(w) * (kf - 2.0 * w as f64) / kf;
            let y = term - comp;
            let t = sum + y;
            comp = (t - sum) - y;
            sum = t;
        }
        sum
    }

    /// The exact preservation gap
    /// `c_gap = Pr[b̃_i = b_i] − Pr[b̃_i = −b_i]` (Lemma 5.3). The server
    /// divides by this to unbias its estimates.
    #[inline]
    pub fn c_gap(&self) -> f64 {
        self.c_gap
    }

    /// The realized privacy loss of `R̃`:
    /// `max_{w,w'} ln( q(w) / q(w') )` over per-string probabilities.
    ///
    /// Any pair of weights `(w, w')` is attainable by some `(b, b', s)`
    /// triple, so this *is* the exact LDP parameter of the composed
    /// randomizer; Lemma 5.2 guarantees it is at most `5·ε̃·√k`.
    pub fn realized_epsilon(&self) -> f64 {
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        // Inside the annulus, ln g is linear decreasing in w, so only the
        // endpoints matter; include P*_out for the outside branch.
        for lnq in [
            self.ln_g(self.annulus.lb()),
            self.ln_g(self.annulus.ub()),
            self.ln_p_star_out,
        ] {
            max = max.max(lnq);
            min = min.min(lnq);
        }
        max - min
    }

    /// `ln P*_out` (Equation 24).
    #[inline]
    pub fn ln_p_star_out(&self) -> f64 {
        self.ln_p_star_out
    }

    /// The annulus this law was built with.
    #[inline]
    pub fn annulus(&self) -> &Annulus {
        &self.annulus
    }

    /// The sparsity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-coordinate budget `ε̃`.
    #[inline]
    pub fn eps_tilde(&self) -> f64 {
        self.eps_tilde
    }

    /// The flip probability `p = 1/(e^{ε̃}+1)` of the underlying basic
    /// randomizer.
    pub fn p_flip(&self) -> f64 {
        self.ln_p.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protocol_law(k: usize, eps: f64) -> WeightClassLaw {
        WeightClassLaw::for_protocol(k, eps)
    }

    #[test]
    fn total_probability_is_one() {
        for k in [1usize, 2, 3, 10, 64, 257, 1024, 10_000] {
            for eps in [0.1, 0.5, 1.0] {
                let law = protocol_law(k, eps);
                let total = law.total_probability();
                assert!((total - 1.0).abs() < 1e-9, "k={k} ε={eps}: total {total}");
            }
        }
    }

    #[test]
    fn matches_brute_force_enumeration() {
        // For small k, enumerate all 2^k strings: apply the definition of
        // R̃ analytically (per-string probability by distance) and also
        // rebuild P*_out and c_gap from first principles in linear space.
        for k in 1..=12usize {
            let eps = 0.8;
            let law = protocol_law(k, eps);
            let ann = *law.annulus();
            let et = law.eps_tilde();
            let p = 1.0 / (et.exp() + 1.0);
            let g = |w: usize| p.powi(w as i32) * (1.0 - p).powi((k - w) as i32);
            let binom = |n: usize, r: usize| -> f64 {
                let mut v = 1.0;
                for i in 0..r {
                    v = v * (n - i) as f64 / (i + 1) as f64;
                }
                v
            };
            // Linear-space P*_out.
            let mut num = 0.0;
            let mut den = 0.0;
            for w in (0..=k).filter(|&w| !ann.contains(w)) {
                num += binom(k, w) * g(w);
                den += binom(k, w);
            }
            let p_star = num / den;
            assert!(
                ((law.ln_p_star_out().exp() - p_star) / p_star).abs() < 1e-10,
                "k={k}: P*_out"
            );
            // Linear-space c_gap.
            let mut gap = 0.0;
            for w in 0..=k {
                let per = if ann.contains(w) { g(w) } else { p_star };
                gap += binom(k, w) * per * (k as f64 - 2.0 * w as f64) / k as f64;
            }
            assert!(
                (law.c_gap() - gap).abs() < 1e-12,
                "k={k}: c_gap {} vs {gap}",
                law.c_gap()
            );
        }
    }

    #[test]
    fn lemma_5_2_privacy_bound_holds() {
        // realized ε ≤ 5·ε̃·√k = ε for the protocol parameterisation.
        for k in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096] {
            for eps in [0.125, 0.25, 0.5, 1.0] {
                let law = protocol_law(k, eps);
                let realized = law.realized_epsilon();
                assert!(realized <= eps + 1e-9, "k={k} ε={eps}: realized {realized}");
                assert!(realized > 0.0, "law must not be trivially flat");
            }
        }
    }

    #[test]
    fn lemma_5_3_gap_scaling() {
        // c_gap ∈ Ω(ε/√k): ratio c_gap/(ε/√k) bounded away from 0 and
        // from above across three orders of magnitude of k.
        let eps = 1.0;
        for k in [4usize, 16, 64, 256, 1024, 4096] {
            let law = protocol_law(k, eps);
            let normalized = law.c_gap() / (eps / (k as f64).sqrt());
            assert!(
                (0.02..=1.0).contains(&normalized),
                "k={k}: c_gap/(ε/√k) = {normalized}"
            );
        }
    }

    #[test]
    fn gap_is_positive_and_below_basic_rr() {
        // 0 < c_gap < tanh(ε̃/2): conditioning can only shrink the plain
        // RR gap (it mixes mass toward uniform outside the annulus)… in
        // fact it can slightly exceed it because outside classes above UB
        // flip *more* than average; just check sane bounds.
        for k in [1usize, 5, 50, 500] {
            let law = protocol_law(k, 0.9);
            assert!(law.c_gap() > 0.0, "k={k}");
            assert!(law.c_gap() < 1.0, "k={k}");
        }
    }

    #[test]
    fn per_string_probs_monotone_inside_annulus() {
        // g is strictly decreasing in w.
        let law = protocol_law(100, 1.0);
        let ann = *law.annulus();
        let mut prev = f64::INFINITY;
        for w in ann.inside() {
            let lnq = law.ln_per_string_prob(w);
            assert!(lnq < prev);
            prev = lnq;
        }
    }

    #[test]
    fn p_star_out_below_2_to_minus_k() {
        // Inequality (20): P*_out ≤ 2^{-k}.
        for k in [2usize, 8, 32, 128, 512] {
            let law = protocol_law(k, 1.0);
            let bound = -(k as f64) * 2f64.ln();
            assert!(
                law.ln_p_star_out() <= bound + 1e-9,
                "k={k}: ln P*_out = {} > −k ln 2 = {bound}",
                law.ln_p_star_out()
            );
        }
    }

    #[test]
    fn g_at_ub_at_least_2_to_minus_k() {
        // Inequality (22) with integer flooring: g(UB) ≥ 2^{-k}.
        for k in [2usize, 8, 32, 128, 512] {
            let law = protocol_law(k, 1.0);
            let bound = -(k as f64) * 2f64.ln();
            assert!(law.ln_g(law.annulus().ub()) >= bound - 1e-9, "k={k}");
        }
    }

    #[test]
    fn large_k_numerically_stable() {
        // k = 10^6: probabilities like 2^{-k} are astronomically small in
        // linear space; the log-space law must stay finite and consistent.
        let law = protocol_law(1_000_000, 1.0);
        assert!(law.realized_epsilon().is_finite());
        assert!(law.realized_epsilon() <= 1.0 + 1e-6);
        assert!(law.c_gap() > 0.0);
        assert!((law.total_probability() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn class_pmf_has_right_length_and_support() {
        let law = protocol_law(40, 0.5);
        let pmf = law.class_pmf();
        assert_eq!(pmf.len(), 41);
        assert!(pmf.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
