//! Algorithm 2 — the server `Asvr`.
//!
//! The server partitions users by announced order, accumulates the ±1
//! report bits of each currently open dyadic interval per order, and when
//! the order-`h` interval ending at `t` completes, finalises the estimate
//!
//! ```text
//! Ŝ(I_{h,j}) = Σ_{u ∈ U_h} (1 + log d) · c_gap(h)^{-1} · ω_u[j]
//! ```
//!
//! (line 5). At every period it answers the prefix query
//! `â[t] = Σ_{I ∈ C(t)} Ŝ(I)` (line 6) from the `O(log d)` streaming
//! frontier — the order-`h` member of `C(t)` is always the most recently
//! completed order-`h` interval.
//!
//! The per-report accumulation state lives in a mergeable, pluggable
//! storage backend ([`AnyAccumulator`], selected by [`AccumulatorKind`] /
//! the `RTF_BACKEND` env var — see [`crate::accumulator`]); the server
//! itself is a thin checked-ingestion/finalisation facade over it. Worker
//! shards built by the parallel runtime accumulate independently on the
//! same backend and are folded in via [`Server::absorb_shard`] —
//! value-for-value identical to sequential ingestion because report sums
//! are integer-valued and every backend stores them exactly.

use crate::accumulator::{Accumulator, AccumulatorError, AccumulatorKind, AnyAccumulator};
use crate::params::ProtocolParams;
use crate::queries::EstimateStore;
use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
use rtf_dyadic::frontier::Frontier;
use rtf_dyadic::interval::DyadicInterval;
use rtf_primitives::fastseed::SeedSchema;
use rtf_primitives::sign::Sign;
use std::collections::HashMap;

/// The fate of one report submitted through the checked ingestion path
/// ([`Server::ingest_checked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// On time for the sender's currently open interval; counted.
    Accepted,
    /// A resend of the sender's most recently accepted report; dropped.
    Duplicate,
    /// The target interval already closed (straggler or stale resend);
    /// dropped.
    Late,
    /// The sender never announced an order; dropped.
    UnknownUser,
    /// `t` is not a reporting boundary of the sender's order (zero, past
    /// the horizon, or not a multiple of `2^h`); dropped.
    InvalidPeriod,
    /// `t` is a boundary beyond the period currently being drained —
    /// honest clients cannot produce this; dropped.
    Premature,
}

/// Per-period delivery accounting for the checked ingestion path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeriodDelivery {
    /// The period this row describes.
    pub t: u64,
    /// Reports due this period: `Σ |U_h|` over orders with `2^h | t`.
    pub due: u64,
    /// On-time reports counted into the estimates.
    pub accepted: u64,
    /// Resends of already-accepted reports, dropped by dedupe.
    pub duplicate: u64,
    /// Reports for already-closed intervals.
    pub late: u64,
    /// Reports from senders that never announced an order.
    pub unknown_user: u64,
    /// Reports for periods that are not reporting boundaries of the
    /// sender's order (zero, off-horizon, or not a multiple of `2^h`).
    pub invalid_period: u64,
    /// Reports for boundaries beyond the period being drained — forged
    /// traffic that honest clients cannot produce.
    pub premature: u64,
}

impl PeriodDelivery {
    /// Reports due this period that never arrived on time — the quantity
    /// that drives estimator bias under dropout and churn.
    pub fn missing(&self) -> u64 {
        self.due.saturating_sub(self.accepted)
    }

    /// All hard rejections: unknown senders, invalid periods, premature
    /// boundaries. (Duplicates and stragglers are tracked separately —
    /// they are expected client behaviour, not protocol violations.)
    pub fn rejected(&self) -> u64 {
        self.unknown_user + self.invalid_period + self.premature
    }
}

/// Per-user state of the checked ingestion path.
#[derive(Debug, Clone, Copy)]
struct RosterEntry {
    order: u32,
    /// Boundary of the most recently accepted report (0 = none yet).
    last_accepted: u64,
}

/// The streaming server of Algorithm 2.
#[derive(Debug, Clone)]
pub struct Server {
    params: ProtocolParams,
    /// Per-order scale `(1 + log d) / c_gap(h)`.
    scale: Vec<f64>,
    /// Per-order count of registered users (`|U_h|`, diagnostic only).
    group_sizes: Vec<usize>,
    /// Mergeable accumulation state: per-order running sums of report
    /// bits for the currently open intervals, plus the report counter.
    /// The storage layout is the pluggable backend axis.
    acc: AnyAccumulator,
    frontier: Frontier<f64>,
    estimates: Vec<f64>,
    current_t: u64,
    /// Optional full-tree retention of every `Ŝ(I)` for window queries.
    store: Option<EstimateStore>,
    /// Announced users, keyed by wire id — populated only by
    /// [`register_client`](Self::register_client) (the checked path).
    roster: HashMap<u32, RosterEntry>,
    /// Accounting for the period currently being filled.
    current_delivery: PeriodDelivery,
    /// One finalised accounting row per closed period (checked path only).
    delivery_log: Vec<PeriodDelivery>,
    /// The client randomness schema of the run this server belongs to —
    /// provenance only (server math is schema-independent), stamped into
    /// snapshot headers so state never silently resumes under another
    /// schema.
    seed_schema: SeedSchema,
}

impl Server {
    /// Builds a server from explicit per-order preservation gaps
    /// `c_gap(h)` (index `h ∈ [0..log d]`), on the accumulator backend
    /// selected by `RTF_BACKEND` ([`AccumulatorKind::from_env`]; default
    /// dense). The gaps must match the clients' randomizers or estimates
    /// will be biased.
    ///
    /// # Panics
    /// Panics if the gap vector has the wrong length or a non-positive
    /// entry.
    pub fn new(params: ProtocolParams, c_gaps: &[f64]) -> Self {
        Self::with_backend(params, c_gaps, AccumulatorKind::from_env())
    }

    /// [`new`](Self::new) on an explicit storage backend.
    ///
    /// # Panics
    /// Panics if the gap vector has the wrong length or a non-positive
    /// entry.
    pub fn with_backend(params: ProtocolParams, c_gaps: &[f64], backend: AccumulatorKind) -> Self {
        let orders = params.num_orders() as usize;
        assert_eq!(
            c_gaps.len(),
            orders,
            "need one c_gap per order ({orders}), got {}",
            c_gaps.len()
        );
        let factor = 1.0 + f64::from(params.log_d());
        let scale: Vec<f64> = c_gaps
            .iter()
            .map(|&g| {
                assert!(g > 0.0 && g.is_finite(), "c_gap must be positive, got {g}");
                factor / g
            })
            .collect();
        Server {
            params,
            scale,
            group_sizes: vec![0; orders],
            acc: backend.accumulator_for(&params),
            frontier: Frontier::new(params.horizon()),
            estimates: Vec::with_capacity(params.d() as usize),
            current_t: 0,
            store: None,
            roster: HashMap::new(),
            current_delivery: PeriodDelivery::default(),
            delivery_log: Vec::new(),
            seed_schema: SeedSchema::from_env(),
        }
    }

    /// Enables full-tree retention of every interval estimate, unlocking
    /// [`store`](Self::store)-based window queries after the run. Costs
    /// `2d − 1` floats of memory; must be called before period 1.
    ///
    /// # Panics
    /// Panics if the protocol already started.
    pub fn enable_store(&mut self) {
        assert!(self.current_t == 0, "enable_store before period 1");
        self.store = Some(EstimateStore::new(&self.params));
    }

    /// The retained estimate store, if [`enable_store`](Self::enable_store)
    /// was called.
    pub fn store(&self) -> Option<&EstimateStore> {
        self.store.as_ref()
    }

    /// Builds a server whose per-order gaps are the exact `c_gap` of the
    /// protocol's FutureRand configuration (`k_eff = max(1, min(k, L))`,
    /// `ε̃ = ε/(5√k_eff)`), on the `RTF_BACKEND`-selected backend.
    pub fn for_future_rand(params: ProtocolParams) -> Self {
        Self::for_future_rand_with(params, AccumulatorKind::from_env())
    }

    /// [`for_future_rand`](Self::for_future_rand) on an explicit storage
    /// backend.
    pub fn for_future_rand_with(params: ProtocolParams, backend: AccumulatorKind) -> Self {
        let gaps: Vec<f64> = (0..params.num_orders())
            .map(|h| {
                crate::gap::WeightClassLaw::for_protocol(params.k_for_order(h), params.epsilon())
                    .c_gap()
            })
            .collect();
        Self::with_backend(params, &gaps, backend)
    }

    /// [`for_future_rand_with`](Self::for_future_rand_with) under an
    /// explicit client randomness schema (instead of `RTF_SEED_SCHEMA`).
    /// Server math is schema-independent; the schema is stamped into
    /// snapshot headers so state never resumes under another one.
    pub fn for_future_rand_schema(
        params: ProtocolParams,
        backend: AccumulatorKind,
        schema: SeedSchema,
    ) -> Self {
        let mut server = Self::for_future_rand_with(params, backend);
        server.seed_schema = schema;
        server
    }

    /// The client randomness schema of the run this server belongs to.
    pub fn seed_schema(&self) -> SeedSchema {
        self.seed_schema
    }

    /// Registers a user's announced order (Algorithm 2, line 1).
    ///
    /// # Panics
    /// Panics if `h > log d` or if the protocol already started.
    pub fn register_user(&mut self, h: u32) {
        assert!(
            self.current_t == 0,
            "all users must register before period 1"
        );
        assert!(
            h <= self.params.log_d(),
            "order {h} exceeds log d = {}",
            self.params.log_d()
        );
        self.group_sizes[h as usize] += 1;
    }

    /// `|U_h|` for each order.
    pub fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    /// Ingests one report bit from a user with announced order `h`, for
    /// the currently open order-`h` interval.
    pub fn ingest(&mut self, h: u32, bit: Sign) {
        assert!(
            h <= self.params.log_d(),
            "order {h} exceeds log d = {}",
            self.params.log_d()
        );
        self.acc.record(h, bit);
    }

    /// An empty accumulator of this server's shape **and backend**, for a
    /// worker shard to fill independently and hand back via
    /// [`absorb_shard`](Self::absorb_shard).
    pub fn new_shard(&self) -> AnyAccumulator {
        self.acc.fresh_like()
    }

    /// Merges a worker shard's accumulated reports into the live
    /// accumulation state — equivalent, report for report, to having
    /// called [`ingest`](Self::ingest) for each of the shard's bits
    /// (exactly: the sums are integer-valued, so addition order cannot
    /// matter on any backend).
    ///
    /// # Errors
    /// Returns [`AccumulatorError`] — not a debug assertion — when the
    /// shard's order count or storage backend differs from this server's,
    /// so a backend-mixing bug fails loudly in release builds too.
    pub fn absorb_shard(&mut self, shard: &AnyAccumulator) -> Result<(), AccumulatorError> {
        self.acc.try_merge(shard)
    }

    /// Ingests a pre-summed batch of `count` report bits whose ±1 values
    /// total `sum` — the entry point of the aggregate simulation path in
    /// `rtf-sim`, which samples the batch total directly instead of
    /// drawing each bit.
    ///
    /// # Panics
    /// Panics if `|sum| > count` (impossible for ±1 bits) or `h` is
    /// off-horizon.
    pub fn ingest_aggregate(&mut self, h: u32, sum: f64, count: u64) {
        assert!(
            h <= self.params.log_d(),
            "order {h} exceeds log d = {}",
            self.params.log_d()
        );
        assert!(
            sum.abs() <= count as f64 + 1e-9,
            "batch sum {sum} inconsistent with {count} ±1 reports"
        );
        self.acc.record_batch(h, sum, count);
    }

    /// Registers a user *by wire id* for the checked ingestion path.
    ///
    /// Unlike [`register_user`](Self::register_user) this never panics on
    /// adversarial input: it returns `false` (and registers nothing) for a
    /// duplicate id, an order beyond `log d`, or a registration after
    /// period 1 — the graceful behaviours an untrusted deployment needs.
    pub fn register_client(&mut self, user: u32, h: u32) -> bool {
        if self.current_t != 0 || h > self.params.log_d() || self.roster.contains_key(&user) {
            return false;
        }
        self.roster.insert(
            user,
            RosterEntry {
                order: h,
                last_accepted: 0,
            },
        );
        self.group_sizes[h as usize] += 1;
        true
    }

    /// Ingests one report through the *checked* path: the sender must be
    /// registered via [`register_client`](Self::register_client), `t` must
    /// be the boundary of the sender's currently open interval, and each
    /// `(user, period)` pair is counted at most once. Anything else is
    /// classified and dropped — never a panic, whatever a Byzantine client
    /// puts in a well-formed message.
    ///
    /// Per-period tallies are finalised by
    /// [`end_of_period`](Self::end_of_period) into
    /// [`delivery_log`](Self::delivery_log).
    pub fn ingest_checked(&mut self, user: u32, t: u64, bit: Sign) -> Delivery {
        self.ingest_checked_with_floor(user, t, bit, 0)
    }

    /// [`ingest_checked`](Self::ingest_checked) with an externally-known
    /// *acceptance floor*: the caller asserts that `user` already had a
    /// report accepted for boundary `floor` (`0` = no such claim) even
    /// though this server never saw the acceptance — the span-native
    /// scenario engine folds honest constant-order runs arithmetically
    /// ([`ingest_span_run`](Self::ingest_span_run)) without touching the
    /// roster, so the dedupe state of folded acceptances lives with the
    /// caller.
    ///
    /// Only the duplicate rung consults the floor: accepted boundaries
    /// are strictly increasing within a run (acceptance requires
    /// `t == current_t + 1`), so `max(last_accepted, floor)` is exactly
    /// the sender's most recent acceptance and every verdict matches the
    /// fully sequential classification bit-for-bit.
    pub fn ingest_checked_with_floor(
        &mut self,
        user: u32,
        t: u64,
        bit: Sign,
        floor: u64,
    ) -> Delivery {
        let Some(entry) = self.roster.get_mut(&user) else {
            self.current_delivery.unknown_user += 1;
            return Delivery::UnknownUser;
        };
        let h = entry.order;
        let stride = 1u64 << h;
        if t == 0 || t > self.params.d() || t % stride != 0 {
            self.current_delivery.invalid_period += 1;
            return Delivery::InvalidPeriod;
        }
        if t == entry.last_accepted.max(floor) {
            self.current_delivery.duplicate += 1;
            return Delivery::Duplicate;
        }
        if t <= self.current_t {
            self.current_delivery.late += 1;
            return Delivery::Late;
        }
        // On time means *this* period: honest clients emit at the
        // boundary period itself, so during the period current_t + 1 only
        // reports for exactly that boundary can be genuine. Any later
        // boundary is a fabrication arriving before its interval closed —
        // accepting it would also mis-attribute it to a delivery row
        // whose `due` excludes its order.
        if t != self.current_t + 1 {
            self.current_delivery.premature += 1;
            return Delivery::Premature;
        }
        entry.last_accepted = t;
        self.acc.record(h, bit);
        self.current_delivery.accepted += 1;
        Delivery::Accepted
    }

    /// Ingests a whole run of `count` *accepted* on-time reports of order
    /// `h`, of which `plus` carried `+1` — the span-native scenario
    /// engine's arithmetic replacement for `count` individual
    /// [`ingest_checked`](Self::ingest_checked) acceptances of one
    /// group's span. Report sums are integer-valued, so the accumulator
    /// state and the period's `accepted` tally are exactly what the
    /// per-report path would produce in any interleaving.
    ///
    /// Nothing here touches the roster — the caller owns per-user dedupe
    /// for folded runs (see
    /// [`ingest_checked_with_floor`](Self::ingest_checked_with_floor)) —
    /// so snapshot bytes are unaffected.
    ///
    /// # Panics
    /// Panics if `h` is off-horizon or `plus > count`.
    pub fn ingest_span_run(&mut self, h: u32, plus: u64, count: u64) {
        assert!(
            h <= self.params.log_d(),
            "order {h} exceeds log d = {}",
            self.params.log_d()
        );
        assert!(plus <= count, "{plus} +1 reports out of {count}");
        self.acc.record_counts(h, plus, count - plus);
        self.current_delivery.accepted += count;
    }

    /// Records a *pre-classified rejection* in the current period's
    /// delivery tally without re-walking the roster — the bookkeeping
    /// half of [`ingest_checked`](Self::ingest_checked) for callers that
    /// already know a frame's verdict (the duplicate-storm pre-filter:
    /// a repeat of a `(user, period)` pair this period resolves to a
    /// known rejection, and rejections mutate nothing but the tally).
    ///
    /// # Panics
    /// Panics on [`Delivery::Accepted`]: acceptance mutates roster and
    /// accumulator state and must go through `ingest_checked`.
    pub fn note_delivery(&mut self, outcome: Delivery) {
        match outcome {
            Delivery::Accepted => {
                panic!("note_delivery records rejections; acceptance must be ingested")
            }
            Delivery::UnknownUser => self.current_delivery.unknown_user += 1,
            Delivery::InvalidPeriod => self.current_delivery.invalid_period += 1,
            Delivery::Duplicate => self.current_delivery.duplicate += 1,
            Delivery::Late => self.current_delivery.late += 1,
            Delivery::Premature => self.current_delivery.premature += 1,
        }
    }

    /// One finalised [`PeriodDelivery`] row per closed period, in period
    /// order. Only populated when the checked path is in use (at least one
    /// [`register_client`](Self::register_client) call); the trusted
    /// `ingest`/`ingest_aggregate` paths keep it empty.
    pub fn delivery_log(&self) -> &[PeriodDelivery] {
        &self.delivery_log
    }

    /// Reports due at period `t`: `Σ |U_h|` over orders whose stride
    /// divides `t`.
    pub fn due_at(&self, t: u64) -> u64 {
        assert!(t >= 1 && t <= self.params.d(), "period {t} off the horizon");
        (0..=t.trailing_zeros().min(self.params.log_d()))
            .map(|h| self.group_sizes[h as usize] as u64)
            .sum()
    }

    /// Closes period `t`: finalises every interval completing at `t`,
    /// computes and stores `â[t]`, and returns it.
    ///
    /// Must be called once per period, in order, after all of that
    /// period's reports have been ingested.
    pub fn end_of_period(&mut self, t: u64) -> f64 {
        assert_eq!(
            t,
            self.current_t + 1,
            "periods must close in order: expected {}, got {t}",
            self.current_t + 1
        );
        assert!(
            t <= self.params.d(),
            "period {t} beyond horizon d = {}",
            self.params.d()
        );
        if !self.roster.is_empty() {
            let mut row = std::mem::take(&mut self.current_delivery);
            row.t = t;
            row.due = self.due_at(t);
            self.delivery_log.push(row);
        }
        self.current_t = t;
        // Orders whose interval completes at t: all h with 2^h | t.
        for h in 0..=t.trailing_zeros().min(self.params.log_d()) {
            let j = t >> h;
            let s_hat = self.scale[h as usize] * self.acc.take_order(h);
            let interval = DyadicInterval::new(h, j);
            self.frontier.record(interval, s_hat);
            if let Some(store) = &mut self.store {
                store.record(interval, s_hat);
            }
        }
        let estimate = self.frontier.prefix_sum(t, |&v| v);
        self.estimates.push(estimate);
        estimate
    }

    /// Period-close finalisation hook for streaming ingestion fronts:
    /// absorbs every worker shard flushed for period `t` (in the caller's
    /// iteration order — the deterministic merge order), then closes the
    /// period exactly like [`end_of_period`](Self::end_of_period) and
    /// returns `â[t]`.
    ///
    /// A failed shard merge aborts *before* any state change of the
    /// remaining shards or the period close, so the caller can surface a
    /// backend/shape mixing bug without the server advancing past it.
    ///
    /// # Errors
    /// Returns the first [`AccumulatorError`] of a mismatched shard.
    ///
    /// # Panics
    /// Panics like `end_of_period` if `t` is out of order or off-horizon.
    pub fn close_period_with_shards<'a, I>(
        &mut self,
        t: u64,
        shards: I,
    ) -> Result<f64, AccumulatorError>
    where
        I: IntoIterator<Item = &'a AnyAccumulator>,
    {
        for shard in shards {
            self.absorb_shard(shard)?;
        }
        Ok(self.end_of_period(t))
    }

    /// All estimates `â[1..t]` produced so far (`estimates()[t−1] = â[t]`).
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// Total number of report bits ingested — the server-side view of the
    /// communication cost.
    pub fn reports_ingested(&self) -> u64 {
        self.acc.reports()
    }

    /// The live accumulation state (diagnostic).
    pub fn accumulator(&self) -> &AnyAccumulator {
        &self.acc
    }

    /// The storage backend this server accumulates on.
    pub fn backend(&self) -> AccumulatorKind {
        self.acc.kind()
    }

    /// The protocol parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The per-order scale factors `(1 + log d)/c_gap(h)` (diagnostic).
    pub fn scales(&self) -> &[f64] {
        &self.scale
    }

    /// Checks that a worker shard could merge into this server — same
    /// backend, same shape — **without** mutating anything. The error
    /// order matches [`absorb_shard`](Self::absorb_shard): backend
    /// first, then shape.
    ///
    /// This is what lets a streaming front validate *every* shard of a
    /// period before committing *any* of them, keeping its close-path
    /// error handling transactional.
    ///
    /// # Errors
    /// The same [`AccumulatorError`] the merge would have returned.
    pub fn validate_shard(&self, shard: &AnyAccumulator) -> Result<(), AccumulatorError> {
        if shard.kind() != self.acc.kind() {
            return Err(AccumulatorError::BackendMismatch {
                expected: self.acc.kind(),
                got: shard.kind(),
            });
        }
        if shard.orders() != self.acc.orders() {
            return Err(AccumulatorError::ShapeMismatch {
                expected: self.acc.orders(),
                got: shard.orders(),
            });
        }
        Ok(())
    }

    /// Serializes the complete server state — parameters, scales, group
    /// sizes, accumulator lanes, frontier, estimates, retained store,
    /// roster (sorted by wire id so snapshots of equal state are
    /// byte-identical), and delivery accounting — into `w`.
    ///
    /// # Panics
    /// Panics if the writer's header schema differs from this server's —
    /// a mis-stamped header would let state resume under the wrong
    /// client randomness schema.
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        assert_eq!(
            w.schema(),
            self.seed_schema,
            "snapshot header schema must match the server's seed schema"
        );
        w.usize(self.params.n());
        w.u64(self.params.d());
        w.usize(self.params.k());
        w.f64(self.params.epsilon());
        w.f64(self.params.beta());
        for &s in &self.scale {
            w.f64(s);
        }
        for &g in &self.group_sizes {
            w.usize(g);
        }
        self.acc.write_state(w);
        for slot in self.frontier.slots() {
            match slot {
                None => w.bool(false),
                Some((j, v)) => {
                    w.bool(true);
                    w.u64(*j);
                    w.f64(*v);
                }
            }
        }
        w.u64(self.current_t);
        for &e in &self.estimates {
            w.f64(e);
        }
        match &self.store {
            None => w.bool(false),
            Some(store) => {
                w.bool(true);
                store.write_state(w);
            }
        }
        // HashMap iteration order is nondeterministic; sort by wire id so
        // equal servers always serialize to equal bytes.
        let mut users: Vec<u32> = self.roster.keys().copied().collect();
        users.sort_unstable();
        w.usize(users.len());
        for user in users {
            let entry = self.roster[&user];
            w.u32(user);
            w.u32(entry.order);
            w.u64(entry.last_accepted);
        }
        write_delivery(w, &self.current_delivery);
        w.usize(self.delivery_log.len());
        for row in &self.delivery_log {
            write_delivery(w, row);
        }
    }

    /// Rebuilds a server from bytes written by
    /// [`write_snapshot`](Self::write_snapshot). Every field is
    /// validated against the protocol invariants (parameter validity,
    /// per-order shape, frontier indices on the horizon, roster orders
    /// within `log d`, estimate count equal to the closed-period count).
    ///
    /// # Errors
    /// A typed [`SnapshotError`]; malformed bytes never panic and never
    /// produce a structurally invalid server.
    pub fn read_snapshot(r: &mut SnapReader<'_>) -> Result<Server, SnapshotError> {
        let n = r.usize()?;
        let d = r.u64()?;
        let k = r.usize()?;
        let epsilon = r.f64()?;
        let beta = r.f64()?;
        let params = ProtocolParams::new(n, d, k, epsilon, beta)
            .map_err(|_| SnapshotError::Corrupt("invalid protocol parameters"))?;
        let orders = params.num_orders() as usize;
        let mut scale = Vec::with_capacity(orders);
        for _ in 0..orders {
            let s = r.f64()?;
            if !(s > 0.0 && s.is_finite()) {
                return Err(SnapshotError::Corrupt("non-positive per-order scale"));
            }
            scale.push(s);
        }
        let mut group_sizes = Vec::with_capacity(orders);
        for _ in 0..orders {
            group_sizes.push(r.usize()?);
        }
        let acc = AnyAccumulator::read_state(r)?;
        if acc.orders() != orders {
            return Err(SnapshotError::Corrupt("accumulator shape off the horizon"));
        }
        let mut slots: Vec<Option<(u64, f64)>> = Vec::with_capacity(orders);
        for _ in 0..orders {
            slots.push(if r.bool()? {
                Some((r.u64()?, r.f64()?))
            } else {
                None
            });
        }
        let frontier =
            Frontier::from_slots(params.horizon(), slots).map_err(SnapshotError::Corrupt)?;
        let current_t = r.u64()?;
        if current_t > d {
            return Err(SnapshotError::Corrupt("current period beyond the horizon"));
        }
        let mut estimates = Vec::with_capacity(current_t as usize);
        for _ in 0..current_t {
            estimates.push(r.f64()?);
        }
        let store = if r.bool()? {
            Some(EstimateStore::read_state(&params, r)?)
        } else {
            None
        };
        let roster_len = r.len(16)?;
        let mut roster = HashMap::with_capacity(roster_len);
        let mut prev_user: Option<u32> = None;
        for _ in 0..roster_len {
            let user = r.u32()?;
            if prev_user.is_some_and(|p| user <= p) {
                return Err(SnapshotError::Corrupt("roster not sorted by wire id"));
            }
            prev_user = Some(user);
            let order = r.u32()?;
            if order > params.log_d() {
                return Err(SnapshotError::Corrupt("roster order beyond log d"));
            }
            let last_accepted = r.u64()?;
            if last_accepted > d {
                return Err(SnapshotError::Corrupt("roster acceptance beyond horizon"));
            }
            roster.insert(
                user,
                RosterEntry {
                    order,
                    last_accepted,
                },
            );
        }
        let current_delivery = read_delivery(r)?;
        let log_len = r.len(64)?;
        if log_len as u64 > current_t {
            return Err(SnapshotError::Corrupt("delivery log longer than horizon"));
        }
        let mut delivery_log = Vec::with_capacity(log_len);
        for _ in 0..log_len {
            delivery_log.push(read_delivery(r)?);
        }
        Ok(Server {
            params,
            scale,
            group_sizes,
            acc,
            frontier,
            estimates,
            current_t,
            store,
            roster,
            current_delivery,
            delivery_log,
            // The header is authoritative: a restored server belongs to
            // the schema its snapshot was taken under (v1 bytes:
            // implicitly V1Std).
            seed_schema: r.schema(),
        })
    }
}

fn write_delivery(w: &mut SnapWriter, row: &PeriodDelivery) {
    w.u64(row.t);
    w.u64(row.due);
    w.u64(row.accepted);
    w.u64(row.duplicate);
    w.u64(row.late);
    w.u64(row.unknown_user);
    w.u64(row.invalid_period);
    w.u64(row.premature);
}

fn read_delivery(r: &mut SnapReader<'_>) -> Result<PeriodDelivery, SnapshotError> {
    Ok(PeriodDelivery {
        t: r.u64()?,
        due: r.u64()?,
        accepted: r.u64()?,
        duplicate: r.u64()?,
        late: r.u64()?,
        unknown_user: r.u64()?,
        invalid_period: r.u64()?,
        premature: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ProtocolParams {
        ProtocolParams::new(100, 8, 2, 1.0, 0.05).unwrap()
    }

    #[test]
    fn scales_are_factor_over_gap() {
        let p = params();
        let gaps = vec![0.5, 0.25, 0.1, 0.05];
        let s = Server::new(p, &gaps);
        let factor = 1.0 + 3.0; // log d = 3
        for (i, &g) in gaps.iter().enumerate() {
            assert!((s.scales()[i] - factor / g).abs() < 1e-12);
        }
    }

    #[test]
    fn noiseless_reports_reconstruct_counts() {
        // Feed the server "perfect" reports: pretend c_gap = 1 (no noise)
        // and hand-craft one user at order 0 whose bits equal its partial
        // sums (+1 encodes +1, −1 encodes −1; zero partial sums
        // contribute the average of ±1 — emulate by two users cancelling).
        // Simpler exact check: a single order-0 user with derivative
        // (+1, 0, 0, −1, 0, 0, 0, 0), encoded as bits where zero slots are
        // sent as +1 and −1 by two mirrored users ⇒ their sum is
        // 2·S_u(I). With c_gap = 1 and (1+log d) compensated by dividing
        // the expectation at the end, we just verify the linear pipeline:
        // Ŝ = scale · Σ bits and â[t] = Σ_{C(t)} Ŝ.
        let p = params();
        let s_scale = 1.0 + 3.0;
        let mut server = Server::new(p, &[1.0; 4]);
        server.register_user(0);
        // Bits per period for the single user: +1, −1, +1, −1, ...
        let bits = [
            Sign::Plus,
            Sign::Minus,
            Sign::Plus,
            Sign::Minus,
            Sign::Plus,
            Sign::Minus,
            Sign::Plus,
            Sign::Minus,
        ];
        for t in 1..=8u64 {
            server.ingest(0, bits[(t - 1) as usize]);
            let est = server.end_of_period(t);
            // Order-0 interval of C(t) contributes scale·bit(t); higher
            // orders got no reports so their Ŝ is 0.
            // C(t) = set bits of t; only order-0 member has nonzero Ŝ.
            let expect = s_scale * bits[(t - 1) as usize].as_f64();
            if t % 2 == 1 {
                assert_eq!(est, expect, "t = {t}");
            }
        }
        assert_eq!(server.reports_ingested(), 8);
    }

    #[test]
    fn multi_order_aggregation() {
        // One user at order 1 sending +1 at every even period; check that
        // â[t] composes Ŝ across orders via C(t).
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        server.register_user(1);
        let scale = 4.0; // (1+log d)/1
        let mut estimates = Vec::new();
        for t in 1..=8u64 {
            if t % 2 == 0 {
                server.ingest(1, Sign::Plus);
            }
            estimates.push(server.end_of_period(t));
        }
        // C(2) = {I_{1,1}} ⇒ â[2] = scale·1 = 4.
        assert_eq!(estimates[1], scale);
        // C(6) = {I_{2,1}, I_{1,3}}: order-2 got no reports (Ŝ=0), order-1
        // member is the interval ending at 6 with one +1 report.
        assert_eq!(estimates[5], scale);
        // C(3) = {I_{1,1}, I_{0,3}}: order-0 slot has Ŝ = 0 ⇒ â[3] = 4.
        assert_eq!(estimates[2], scale);
    }

    #[test]
    fn for_future_rand_uses_per_order_gaps() {
        let p = ProtocolParams::new(100, 16, 8, 1.0, 0.05).unwrap();
        let s = Server::for_future_rand(p);
        // k_eff shrinks for high orders (L < k), so c_gap grows and scale
        // shrinks: scales must be non-increasing in h once L < k.
        let scales = s.scales();
        assert!(scales[3] <= scales[2], "{scales:?}"); // L=2 vs L=4
        assert!(scales[4] <= scales[3], "{scales:?}"); // L=1 vs L=2
    }

    #[test]
    #[should_panic(expected = "must register before")]
    fn late_registration_rejected() {
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        let _ = server.end_of_period(1);
        server.register_user(0);
    }

    #[test]
    #[should_panic(expected = "periods must close in order")]
    fn skipped_period_rejected() {
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        let _ = server.end_of_period(1);
        let _ = server.end_of_period(3);
    }

    #[test]
    fn checked_path_accepts_on_time_reports() {
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        assert!(server.register_client(7, 0));
        assert!(server.register_client(8, 1));
        for t in 1..=8u64 {
            assert_eq!(server.ingest_checked(7, t, Sign::Plus), Delivery::Accepted);
            if t % 2 == 0 {
                assert_eq!(server.ingest_checked(8, t, Sign::Minus), Delivery::Accepted);
            }
            let _ = server.end_of_period(t);
        }
        let log = server.delivery_log();
        assert_eq!(log.len(), 8);
        for row in log {
            assert_eq!(row.due, row.accepted, "t={}", row.t);
            assert_eq!(row.missing(), 0);
        }
        assert_eq!(server.reports_ingested(), 8 + 4);
    }

    #[test]
    fn span_run_ingest_matches_per_report_acceptance() {
        // Folding a whole accepted span arithmetically must leave the
        // accumulator, delivery tally, and estimates exactly where the
        // per-report checked path would.
        let p = params();
        let mut folded = Server::new(p, &[1.0; 4]);
        let mut perreport = Server::new(p, &[1.0; 4]);
        for u in 0..6u32 {
            assert!(folded.register_client(u, 0));
            assert!(perreport.register_client(u, 0));
        }
        for t in 1..=4u64 {
            // 4 of 6 bits are +1 every period.
            folded.ingest_span_run(0, 4, 6);
            for u in 0..6u32 {
                let bit = if u < 4 { Sign::Plus } else { Sign::Minus };
                assert_eq!(perreport.ingest_checked(u, t, bit), Delivery::Accepted);
            }
            assert_eq!(folded.end_of_period(t), perreport.end_of_period(t));
        }
        assert_eq!(folded.delivery_log(), perreport.delivery_log());
        assert_eq!(folded.reports_ingested(), perreport.reports_ingested());
    }

    #[test]
    fn floor_drives_only_the_duplicate_rung() {
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        assert!(server.register_client(3, 0));
        // Period 1's report was folded outside the roster; the caller
        // passes floor = 1 so a re-claim of t = 1 dedupes exactly as if
        // the acceptance had gone through ingest_checked.
        server.ingest_span_run(0, 1, 1);
        assert_eq!(
            server.ingest_checked_with_floor(3, 1, Sign::Plus, 1),
            Delivery::Duplicate
        );
        let _ = server.end_of_period(1);
        // Floor below the claimed boundary changes nothing: t = 2 is the
        // open boundary and is accepted, floor or not.
        assert_eq!(
            server.ingest_checked_with_floor(3, 2, Sign::Plus, 1),
            Delivery::Accepted
        );
        let _ = server.end_of_period(2);
        // A stale claim of the folded boundary is Late once the roster's
        // own acceptance (t = 2) is more recent than the floor.
        assert_eq!(
            server.ingest_checked_with_floor(3, 1, Sign::Plus, 1),
            Delivery::Late
        );
        // Unknown users stay unknown regardless of floor.
        assert_eq!(
            server.ingest_checked_with_floor(99, 3, Sign::Plus, 3),
            Delivery::UnknownUser
        );
        let log_row = server.delivery_log()[0];
        assert_eq!(log_row.accepted, 1, "the folded report");
        assert_eq!(log_row.duplicate, 1, "the floored re-claim");
    }

    #[test]
    fn checked_path_classifies_misbehaviour_without_panicking() {
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        assert!(server.register_client(0, 0));
        assert!(server.register_client(1, 2));
        // Duplicate id and off-horizon order are rejected, not panics.
        assert!(!server.register_client(0, 1));
        assert!(!server.register_client(9, 11));
        assert_eq!(server.group_sizes(), &[1, 0, 1, 0]);

        // Period 1: unknown sender, premature boundary, wrong stride.
        assert_eq!(
            server.ingest_checked(42, 1, Sign::Plus),
            Delivery::UnknownUser
        );
        assert_eq!(server.ingest_checked(0, 2, Sign::Plus), Delivery::Premature);
        // The order-2 user's own open boundary (t = 4) is still premature
        // before period 4 — a forgery must not pre-empt the honest report.
        assert_eq!(server.ingest_checked(1, 4, Sign::Plus), Delivery::Premature);
        assert_eq!(
            server.ingest_checked(1, 3, Sign::Plus),
            Delivery::InvalidPeriod
        );
        assert_eq!(
            server.ingest_checked(1, 0, Sign::Plus),
            Delivery::InvalidPeriod
        );
        assert_eq!(
            server.ingest_checked(1, 16, Sign::Plus),
            Delivery::InvalidPeriod
        );
        // On-time, then its resend.
        assert_eq!(server.ingest_checked(0, 1, Sign::Plus), Delivery::Accepted);
        assert_eq!(server.ingest_checked(0, 1, Sign::Plus), Delivery::Duplicate);
        let _ = server.end_of_period(1);

        // Period 2: resending the most recent accepted report is still a
        // duplicate; the user's (never-sent) report for t=2 goes missing.
        assert_eq!(server.ingest_checked(0, 1, Sign::Plus), Delivery::Duplicate);
        let _ = server.end_of_period(2);

        // Period 3: the report for the now-closed t=2 interval is late.
        assert_eq!(server.ingest_checked(0, 2, Sign::Plus), Delivery::Late);
        let _ = server.end_of_period(3);

        let log = server.delivery_log();
        assert_eq!(log[0].t, 1);
        assert_eq!(log[0].due, 1);
        assert_eq!(log[0].accepted, 1);
        assert_eq!(log[0].duplicate, 1);
        // The six rejections split by class: one unknown sender, three
        // invalid periods (wrong stride, zero, off-horizon), two
        // premature boundaries.
        assert_eq!(log[0].unknown_user, 1);
        assert_eq!(log[0].invalid_period, 3);
        assert_eq!(log[0].premature, 2);
        assert_eq!(log[0].rejected(), 6);
        assert_eq!(log[1].duplicate, 1);
        assert_eq!(log[1].missing(), 1); // the order-0 user skipped t=2
        assert_eq!(log[2].late, 1);
        // Registration after period 1 is refused gracefully.
        assert!(!server.register_client(5, 0));
    }

    #[test]
    fn checked_path_closes_periods_with_missing_reports() {
        // A fully silent population: every period closes, every report is
        // missing, and the estimates are all zero (no bits, no noise).
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        for u in 0..4u32 {
            assert!(server.register_client(u, 0));
        }
        for t in 1..=8u64 {
            assert_eq!(server.end_of_period(t), 0.0);
        }
        assert!(server.delivery_log().iter().all(|r| r.missing() == 4));
    }

    #[test]
    fn due_at_sums_divisible_orders() {
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        for _ in 0..3 {
            server.register_user(0);
        }
        for _ in 0..2 {
            server.register_user(1);
        }
        server.register_user(3);
        assert_eq!(server.due_at(1), 3);
        assert_eq!(server.due_at(2), 5);
        assert_eq!(server.due_at(8), 6);
    }

    #[test]
    fn absorbed_shards_match_direct_ingestion() {
        // Two servers over the same report stream: one ingests directly,
        // one through worker-shard accumulators merged in shard order.
        // Estimates must agree exactly at every period.
        use crate::accumulator::Accumulator;
        let p = params();
        let mut direct = Server::new(p, &[1.0; 4]);
        let mut sharded = Server::new(p, &[1.0; 4]);
        for _ in 0..6 {
            direct.register_user(0);
            sharded.register_user(0);
        }
        let bits = [
            Sign::Plus,
            Sign::Plus,
            Sign::Minus,
            Sign::Plus,
            Sign::Minus,
            Sign::Minus,
        ];
        for t in 1..=8u64 {
            for &bit in &bits {
                direct.ingest(0, bit);
            }
            // Shard split 6 users as 4 + 2.
            let mut s1 = sharded.new_shard();
            let mut s2 = sharded.new_shard();
            for &bit in &bits[..4] {
                s1.record(0, bit);
            }
            for &bit in &bits[4..] {
                s2.record(0, bit);
            }
            sharded.absorb_shard(&s1).unwrap();
            sharded.absorb_shard(&s2).unwrap();
            assert_eq!(direct.end_of_period(t), sharded.end_of_period(t));
        }
        assert_eq!(direct.reports_ingested(), sharded.reports_ingested());
    }

    #[test]
    fn close_period_with_shards_equals_absorb_then_close() {
        use crate::accumulator::Accumulator;
        let p = params();
        let mut split = Server::new(p, &[1.0; 4]);
        let mut hooked = Server::new(p, &[1.0; 4]);
        for _ in 0..4 {
            split.register_user(0);
            hooked.register_user(0);
        }
        for t in 1..=8u64 {
            let mut s1 = split.new_shard();
            let mut s2 = split.new_shard();
            s1.record(0, Sign::Plus);
            s1.record(0, Sign::Minus);
            s2.record(0, Sign::Plus);
            s2.record(0, Sign::Plus);
            split.absorb_shard(&s1).unwrap();
            split.absorb_shard(&s2).unwrap();
            let direct = split.end_of_period(t);
            let via_hook = hooked
                .close_period_with_shards(t, [&s1, &s2])
                .expect("matching shards merge");
            assert_eq!(via_hook, direct, "t = {t}");
        }
        assert_eq!(split.reports_ingested(), hooked.reports_ingested());

        // A mismatched shard aborts before the period close: the horizon
        // position is unchanged and the period can still be closed. The
        // server backend is pinned so the mismatch holds under any
        // RTF_BACKEND (the CI backend matrix replays this test).
        let foreign = AccumulatorKind::Fixed.new_accumulator(4);
        let mut fresh = Server::with_backend(p, &[1.0; 4], AccumulatorKind::Dense);
        assert!(fresh.close_period_with_shards(1, [&foreign]).is_err());
        assert_eq!(fresh.estimates().len(), 0, "no period closed on error");
        assert!(fresh.close_period_with_shards(1, []).is_ok());
    }

    #[test]
    fn every_backend_reproduces_the_dense_estimates() {
        // Identical report streams through servers on all four storage
        // backends: the estimates must agree exactly, per period.
        use crate::accumulator::AccumulatorKind;
        let p = params();
        let mut servers: Vec<Server> = AccumulatorKind::ALL
            .iter()
            .map(|&k| Server::for_future_rand_with(p, k))
            .collect();
        for s in &mut servers {
            s.register_user(0);
            s.register_user(1);
        }
        let bits = [Sign::Plus, Sign::Minus, Sign::Minus, Sign::Plus];
        for t in 1..=8u64 {
            let mut row = Vec::new();
            for s in &mut servers {
                s.ingest(0, bits[(t % 4) as usize]);
                if t % 2 == 0 {
                    s.ingest(1, bits[(t % 3) as usize]);
                }
                row.push(s.end_of_period(t));
            }
            assert!(
                row.iter().all(|&e| e == row[0]),
                "t={t}: backends diverge: {row:?}"
            );
        }
        for (s, kind) in servers.iter().zip(AccumulatorKind::ALL) {
            assert_eq!(s.backend(), kind);
            assert_eq!(s.reports_ingested(), 8 + 4);
        }
    }

    #[test]
    fn absorb_shard_rejects_mismatches_with_typed_errors() {
        use crate::accumulator::{AccumulatorError, AccumulatorKind};
        let p = params();
        let mut server = Server::for_future_rand_with(p, AccumulatorKind::Dense);
        // Wrong backend: a fixed-point shard against a dense server.
        let foreign = AccumulatorKind::Fixed.new_accumulator(4);
        assert_eq!(
            server.absorb_shard(&foreign),
            Err(AccumulatorError::BackendMismatch {
                expected: AccumulatorKind::Dense,
                got: AccumulatorKind::Fixed
            })
        );
        // Wrong shape: a shard sized for a different horizon.
        let misshapen = AccumulatorKind::Dense.new_accumulator(9);
        assert_eq!(
            server.absorb_shard(&misshapen),
            Err(AccumulatorError::ShapeMismatch {
                expected: 4,
                got: 9
            })
        );
        // Neither failed merge touched the live state.
        assert_eq!(server.reports_ingested(), 0);
        // A well-formed shard still merges.
        let mut ok = server.new_shard();
        ok.record(0, Sign::Plus);
        assert!(server.absorb_shard(&ok).is_ok());
        assert_eq!(server.reports_ingested(), 1);
    }

    #[test]
    fn trusted_paths_keep_delivery_log_empty() {
        let p = params();
        let mut server = Server::new(p, &[1.0; 4]);
        server.register_user(0);
        for t in 1..=8u64 {
            server.ingest(0, Sign::Plus);
            let _ = server.end_of_period(t);
        }
        assert!(server.delivery_log().is_empty());
    }

    #[test]
    fn validate_shard_mirrors_absorb_without_mutating() {
        use crate::accumulator::{AccumulatorError, AccumulatorKind};
        let server = Server::for_future_rand_with(params(), AccumulatorKind::Dense);
        assert_eq!(
            server.validate_shard(&AccumulatorKind::Fixed.new_accumulator(4)),
            Err(AccumulatorError::BackendMismatch {
                expected: AccumulatorKind::Dense,
                got: AccumulatorKind::Fixed
            })
        );
        assert_eq!(
            server.validate_shard(&AccumulatorKind::Dense.new_accumulator(9)),
            Err(AccumulatorError::ShapeMismatch {
                expected: 4,
                got: 9
            })
        );
        assert!(server.validate_shard(&server.new_shard()).is_ok());
    }

    /// Drives a server mid-horizon through the checked path (roster,
    /// delivery accounting, retained store, a partially filled period),
    /// snapshots it, restores, and demands byte-identical re-snapshots
    /// plus field-level equality of everything observable.
    #[test]
    fn server_snapshot_roundtrips_mid_horizon_on_every_backend() {
        use crate::accumulator::AccumulatorKind;
        use crate::snapshot::{SnapReader, SnapWriter};
        for backend in AccumulatorKind::ALL {
            let mut server = Server::for_future_rand_with(params(), backend);
            server.enable_store();
            for u in 0..12u32 {
                assert!(server.register_client(u, u % 3));
            }
            for t in 1..=5u64 {
                for u in 0..12u32 {
                    let h = u % 3;
                    if t % (1 << h) == 0 {
                        let bit = if (u + t as u32) % 3 == 0 {
                            Sign::Minus
                        } else {
                            Sign::Plus
                        };
                        server.ingest_checked(u, t, bit);
                    }
                }
                let _ = server.end_of_period(t);
            }
            // Half-fill period 6 so open-interval state is live too.
            for u in 0..6u32 {
                if u % 3 == 0 {
                    server.ingest_checked(u, 6, Sign::Plus);
                }
            }
            let mut w = SnapWriter::new();
            server.write_snapshot(&mut w);
            let bytes = w.finish();
            let mut r = SnapReader::new(&bytes).unwrap();
            let back = Server::read_snapshot(&mut r).unwrap();
            r.finish().unwrap();
            let mut w2 = SnapWriter::new();
            back.write_snapshot(&mut w2);
            assert_eq!(w2.finish(), bytes, "{backend}: re-snapshot differs");
            assert_eq!(back.estimates(), server.estimates(), "{backend}");
            assert_eq!(back.delivery_log(), server.delivery_log(), "{backend}");
            assert_eq!(back.group_sizes(), server.group_sizes(), "{backend}");
            assert_eq!(back.reports_ingested(), server.reports_ingested());
            assert_eq!(back.backend(), backend);
            // Both copies must close the remaining horizon identically.
            let mut live = server.clone();
            let mut restored = back;
            for t in 6..=8u64 {
                assert_eq!(
                    live.end_of_period(t).to_bits(),
                    restored.end_of_period(t).to_bits(),
                    "{backend}: t={t}"
                );
            }
            assert_eq!(live.delivery_log(), restored.delivery_log(), "{backend}");
        }
    }

    #[test]
    fn server_snapshot_rejects_inconsistent_fields() {
        use crate::snapshot::{SnapReader, SnapWriter, SnapshotError};
        let server = Server::for_future_rand(params());
        // A wrong parameter quintuple (d not a power of two) is Corrupt.
        let mut w = SnapWriter::new();
        w.usize(100);
        w.u64(7);
        w.usize(2);
        w.f64(1.0);
        w.f64(0.05);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(
            Server::read_snapshot(&mut r).unwrap_err(),
            SnapshotError::Corrupt("invalid protocol parameters")
        );
        // Truncating a valid snapshot anywhere is caught by the checksum.
        let mut w = SnapWriter::new();
        server.write_snapshot(&mut w);
        let bytes = w.finish();
        assert!(SnapReader::new(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    #[should_panic(expected = "need one c_gap per order")]
    fn wrong_gap_count_rejected() {
        let _ = Server::new(params(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "c_gap must be positive")]
    fn non_positive_gap_rejected() {
        let _ = Server::new(params(), &[1.0, 0.0, 1.0, 1.0]);
    }
}
