//! Property-based tests for the core randomizer mathematics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtf_core::annulus::Annulus;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::gap::WeightClassLaw;
use rtf_core::params::ProtocolParams;
use rtf_core::randomizer::{FutureRand, IndependentRand, LocalRandomizer};
use rtf_primitives::sign::{Sign, Ternary};

proptest! {
    /// The annulus always satisfies 0 ≤ LB ≤ UB < k, and inside/outside
    /// partition [0..k].
    #[test]
    fn annulus_invariants(k in 1usize..5_000, eps in 0.01f64..1.0) {
        let et = eps / (5.0 * (k as f64).sqrt());
        let ann = Annulus::for_parameters(k, et);
        prop_assert!(ann.lb() <= ann.ub());
        prop_assert!(ann.ub() < k);
        let total = ann.inside().count() + ann.outside().count();
        prop_assert_eq!(total, k + 1);
        prop_assert_eq!(ann.outside_len(), ann.outside().count());
    }

    /// Lemma 5.2 as a property: realized ε ≤ ε over arbitrary (k, ε).
    #[test]
    fn lemma_5_2_privacy(k in 1usize..3_000, eps in 0.01f64..=1.0) {
        let law = WeightClassLaw::for_protocol(k, eps);
        prop_assert!(law.realized_epsilon() <= eps + 1e-9,
            "k={} eps={}: realized {}", k, eps, law.realized_epsilon());
    }

    /// The law is a probability distribution and its gap is in (0, 1).
    #[test]
    fn law_is_distribution(k in 1usize..2_000, eps in 0.01f64..=1.0) {
        let law = WeightClassLaw::for_protocol(k, eps);
        prop_assert!((law.total_probability() - 1.0).abs() < 1e-8);
        prop_assert!(law.c_gap() > 0.0 && law.c_gap() < 1.0);
    }

    /// Lemma 5.3's scaling as a property: c_gap·√k/ε stays in a fixed
    /// band across all (k, ε).
    #[test]
    fn lemma_5_3_gap_band(k in 1usize..3_000, eps in 0.05f64..=1.0) {
        let law = WeightClassLaw::for_protocol(k, eps);
        let normalized = law.c_gap() * (k as f64).sqrt() / eps;
        prop_assert!((0.05..=0.12).contains(&normalized),
            "k={} eps={}: normalized gap {}", k, eps, normalized);
    }

    /// P*_out ≤ 2^{-k} ≤ g(UB) (Inequalities 20/22), with integer bounds.
    #[test]
    fn p_star_out_inequalities(k in 1usize..2_000, eps in 0.05f64..=1.0) {
        let law = WeightClassLaw::for_protocol(k, eps);
        let neg_k_ln2 = -(k as f64) * 2f64.ln();
        prop_assert!(law.ln_p_star_out() <= neg_k_ln2 + 1e-9);
        prop_assert!(law.ln_g(law.annulus().ub()) >= neg_k_ln2 - 1e-9);
    }

    /// The composed randomizer emits ±1 vectors of the right length whose
    /// Hamming distance matches a legal weight class.
    #[test]
    fn composed_output_wellformed(k in 1usize..64, seed in 0u64..200, input_bits in 0u64..u64::MAX) {
        let r = ComposedRandomizer::for_protocol(k, 1.0);
        let b: Vec<Sign> = (0..k)
            .map(|i| if (input_bits >> (i % 64)) & 1 == 1 { Sign::Plus } else { Sign::Minus })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = r.randomize(&b, &mut rng);
        prop_assert_eq!(out.len(), k);
        let w = b.iter().zip(&out).filter(|(x, y)| x != y).count();
        prop_assert!(w <= k);
    }

    /// FutureRand accounting: positions advance, nnz counts non-zeros,
    /// and outputs on zero inputs never consume b̃.
    #[test]
    fn futurerand_accounting(
        k in 1usize..8,
        inputs in prop::collection::vec(-1i8..=1, 1..24),
        seed in 0u64..200,
    ) {
        let l = inputs.len();
        let composed = ComposedRandomizer::for_protocol(k, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = FutureRand::init(l, &composed, &mut rng);
        let mut fed_nonzero = 0usize;
        let mut accepted = 0usize;
        for &v in &inputs {
            let t = Ternary::from_i8(v);
            match m.try_next(t, &mut rng) {
                Ok(_) => {
                    accepted += 1;
                    if t.is_nonzero() { fed_nonzero += 1; }
                    prop_assert_eq!(m.position(), accepted);
                    prop_assert_eq!(m.nnz(), fed_nonzero);
                }
                Err(e) => {
                    // Only the sparsity violation can occur mid-sequence
                    // (l matches the input length, so exhaustion cannot).
                    prop_assert!(t.is_nonzero());
                    prop_assert_eq!(
                        e,
                        rtf_core::randomizer::RandomizerError::TooManyNonZeros { k }
                    );
                    prop_assert_eq!(m.nnz(), k);
                }
            }
        }
    }

    /// IndependentRand's gap formula.
    #[test]
    fn independent_gap(k in 1usize..500, eps in 0.01f64..=1.0) {
        let m = IndependentRand::new(10, k, eps);
        let expect = (eps / k as f64 / 2.0).tanh();
        prop_assert!((m.c_gap() - expect).abs() < 1e-12);
    }

    /// Parameter validation never accepts garbage, and always accepts
    /// well-formed inputs.
    #[test]
    fn params_validation(
        n in 1usize..1_000_000,
        log_d in 0u32..20,
        k_frac in 0.0f64..=1.0,
        eps in 0.001f64..=1.0,
        beta in 0.0001f64..0.9999,
    ) {
        let d = 1u64 << log_d;
        let k = ((d as f64 * k_frac) as usize).max(1);
        let p = ProtocolParams::new(n, d, k, eps, beta);
        prop_assert!(p.is_ok(), "rejected valid params n={n} d={d} k={k}");
        let p = p.unwrap();
        // Derived quantities are internally consistent.
        prop_assert_eq!(p.num_orders(), log_d + 1);
        for h in 0..=log_d {
            prop_assert!(p.k_for_order(h) >= 1);
            prop_assert!(p.k_for_order(h) <= k.max(1));
            prop_assert_eq!(p.sequence_len(h) as u64, d >> h);
        }
        // Invalid mutations are rejected.
        prop_assert!(ProtocolParams::new(n, d + 1, k, eps, beta).is_err() || (d + 1).is_power_of_two());
        prop_assert!(ProtocolParams::new(n, d, k, eps + 1.0, beta).is_err());
    }

    /// Estimator unbiasedness within the paper's variance bound, across
    /// randomly drawn valid parameter sets: over repeated protocol runs
    /// the mean of `â[t]` stays within a `z·√(Var_bound/T)` confidence
    /// band of the truth at every period, where
    /// `Var[â[t]] ≤ n·Σ_{h ∈ C(t)} scale(h)²/(1 + log d)` with
    /// `scale(h) = (1 + log d)/c_gap(h)` — the exact second-moment bound
    /// behind Lemma 4.6.
    #[test]
    fn estimator_unbiased_within_variance_bound(
        n in 60usize..220,
        log_d in 3u32..=4,
        k in 1usize..=4,
        eps in 0.4f64..=1.0,
        pop_seed in 0u64..1_000,
        run_seed in 0u64..1_000,
    ) {
        use rtf_core::protocol::run_in_memory;
        use rtf_primitives::seeding::SeedSequence;
        use rtf_streams::generator::UniformChanges;
        use rtf_streams::population::Population;

        let d = 1u64 << log_d;
        let params = ProtocolParams::new(n, d, k, eps, 0.05).unwrap();
        let mut rng = SeedSequence::new(pop_seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);

        // Per-period variance bound from the per-order scales.
        let orders_f = 1.0 + f64::from(params.log_d());
        let scales: Vec<f64> = (0..params.num_orders())
            .map(|h| orders_f / WeightClassLaw::for_protocol(params.k_for_order(h), eps).c_gap())
            .collect();
        let var_bound: Vec<f64> = (1..=d)
            .map(|t| {
                let sum: f64 = scales
                    .iter()
                    .enumerate()
                    .filter(|(h, _)| t & (1u64 << h) != 0)
                    .map(|(_, s)| s * s)
                    .sum();
                n as f64 * sum / orders_f
            })
            .collect();

        let trials = 40u64;
        let mut mean = vec![0.0f64; d as usize];
        for s in 0..trials {
            let o = run_in_memory(&params, &pop, 100_000 + run_seed * trials + s);
            for (slot, e) in mean.iter_mut().zip(o.estimates()) {
                *slot += e / trials as f64;
            }
        }
        for (t, ((m, truth), vb)) in mean
            .iter()
            .zip(pop.true_counts())
            .zip(&var_bound)
            .enumerate()
        {
            let band = 5.0 * (vb / trials as f64).sqrt();
            prop_assert!(
                (m - truth).abs() <= band,
                "t={}: mean {} vs truth {} escapes ±{} ({})",
                t + 1, m, truth, band, params
            );
        }
    }

    /// The batched span randomizer is bit-for-bit the per-report
    /// randomizer: over random lane counts, sequence lengths, sparsity
    /// budgets, privacy levels and k-sparse ternary inputs, every
    /// emitted sign matches `FutureRand::next` draw for draw — and the
    /// per-lane RNGs land in the identical state afterwards.
    #[test]
    fn span_randomizers_match_future_rand_bit_for_bit(
        lanes in 1usize..8,
        l in 1usize..24,
        k in 1usize..6,
        eps in 0.05f64..=1.0,
        seed in 0u64..1_000_000,
        data in proptest::collection::vec(0u8..3, 0..256),
    ) {
        use rand::Rng;
        use rtf_core::randomizer::SpanRandomizers;

        let composed = ComposedRandomizer::for_protocol(k, eps);
        let mut spans = SpanRandomizers::new(l, &composed);
        let mut ms = Vec::with_capacity(lanes);
        let mut rngs = Vec::with_capacity(lanes);
        let mut ref_rngs = Vec::with_capacity(lanes);
        for i in 0..lanes {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let m = FutureRand::init(l, &composed, &mut rng);
            spans.push_lane(&m);
            ms.push(m);
            ref_rngs.push(rng.clone());
            rngs.push(rng);
        }

        // k-sparse ternary inputs per lane, shaped by the raw data vec.
        let mut nnz = vec![0usize; lanes];
        let mut inputs: Vec<Vec<Ternary>> = vec![Vec::with_capacity(l); lanes];
        for t in 0..l {
            for (i, lane_nnz) in nnz.iter_mut().enumerate() {
                let raw = data.get(i * l + t).copied().unwrap_or(0);
                let x = if raw == 0 || *lane_nnz >= k {
                    Ternary::Zero
                } else {
                    *lane_nnz += 1;
                    if raw == 1 { Ternary::Plus } else { Ternary::Minus }
                };
                inputs[i].push(x);
            }
        }

        // t-major / lane-minor: the exact emission order of the span
        // drivers, so index loops are the honest spelling here.
        let mut expect = Vec::with_capacity(lanes * l);
        #[allow(clippy::needless_range_loop)]
        for t in 0..l {
            for i in 0..lanes {
                expect.push(ms[i].next(inputs[i][t], &mut ref_rngs[i]));
            }
        }
        let mut got = Vec::with_capacity(lanes * l);
        #[allow(clippy::needless_range_loop)]
        for t in 0..l {
            let sums: Vec<Ternary> = (0..lanes).map(|i| inputs[i][t]).collect();
            spans.fill_span(&sums, &mut rngs, |s| got.push(s));
        }
        prop_assert_eq!(got, expect);
        for (i, (rng, ref_rng)) in rngs.iter_mut().zip(ref_rngs.iter_mut()).enumerate() {
            prop_assert_eq!(
                rng.random::<u64>(), ref_rng.random::<u64>(),
                "lane {} RNG diverged", i
            );
        }
    }
}
