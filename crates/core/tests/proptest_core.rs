//! Property-based tests for the core randomizer mathematics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtf_core::annulus::Annulus;
use rtf_core::composed::ComposedRandomizer;
use rtf_core::gap::WeightClassLaw;
use rtf_core::params::ProtocolParams;
use rtf_core::randomizer::{FutureRand, IndependentRand, LocalRandomizer};
use rtf_primitives::sign::{Sign, Ternary};

proptest! {
    /// The annulus always satisfies 0 ≤ LB ≤ UB < k, and inside/outside
    /// partition [0..k].
    #[test]
    fn annulus_invariants(k in 1usize..5_000, eps in 0.01f64..1.0) {
        let et = eps / (5.0 * (k as f64).sqrt());
        let ann = Annulus::for_parameters(k, et);
        prop_assert!(ann.lb() <= ann.ub());
        prop_assert!(ann.ub() < k);
        let total = ann.inside().count() + ann.outside().count();
        prop_assert_eq!(total, k + 1);
        prop_assert_eq!(ann.outside_len(), ann.outside().count());
    }

    /// Lemma 5.2 as a property: realized ε ≤ ε over arbitrary (k, ε).
    #[test]
    fn lemma_5_2_privacy(k in 1usize..3_000, eps in 0.01f64..=1.0) {
        let law = WeightClassLaw::for_protocol(k, eps);
        prop_assert!(law.realized_epsilon() <= eps + 1e-9,
            "k={} eps={}: realized {}", k, eps, law.realized_epsilon());
    }

    /// The law is a probability distribution and its gap is in (0, 1).
    #[test]
    fn law_is_distribution(k in 1usize..2_000, eps in 0.01f64..=1.0) {
        let law = WeightClassLaw::for_protocol(k, eps);
        prop_assert!((law.total_probability() - 1.0).abs() < 1e-8);
        prop_assert!(law.c_gap() > 0.0 && law.c_gap() < 1.0);
    }

    /// Lemma 5.3's scaling as a property: c_gap·√k/ε stays in a fixed
    /// band across all (k, ε).
    #[test]
    fn lemma_5_3_gap_band(k in 1usize..3_000, eps in 0.05f64..=1.0) {
        let law = WeightClassLaw::for_protocol(k, eps);
        let normalized = law.c_gap() * (k as f64).sqrt() / eps;
        prop_assert!((0.05..=0.12).contains(&normalized),
            "k={} eps={}: normalized gap {}", k, eps, normalized);
    }

    /// P*_out ≤ 2^{-k} ≤ g(UB) (Inequalities 20/22), with integer bounds.
    #[test]
    fn p_star_out_inequalities(k in 1usize..2_000, eps in 0.05f64..=1.0) {
        let law = WeightClassLaw::for_protocol(k, eps);
        let neg_k_ln2 = -(k as f64) * 2f64.ln();
        prop_assert!(law.ln_p_star_out() <= neg_k_ln2 + 1e-9);
        prop_assert!(law.ln_g(law.annulus().ub()) >= neg_k_ln2 - 1e-9);
    }

    /// The composed randomizer emits ±1 vectors of the right length whose
    /// Hamming distance matches a legal weight class.
    #[test]
    fn composed_output_wellformed(k in 1usize..64, seed in 0u64..200, input_bits in 0u64..u64::MAX) {
        let r = ComposedRandomizer::for_protocol(k, 1.0);
        let b: Vec<Sign> = (0..k)
            .map(|i| if (input_bits >> (i % 64)) & 1 == 1 { Sign::Plus } else { Sign::Minus })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = r.randomize(&b, &mut rng);
        prop_assert_eq!(out.len(), k);
        let w = b.iter().zip(&out).filter(|(x, y)| x != y).count();
        prop_assert!(w <= k);
    }

    /// FutureRand accounting: positions advance, nnz counts non-zeros,
    /// and outputs on zero inputs never consume b̃.
    #[test]
    fn futurerand_accounting(
        k in 1usize..8,
        inputs in prop::collection::vec(-1i8..=1, 1..24),
        seed in 0u64..200,
    ) {
        let l = inputs.len();
        let composed = ComposedRandomizer::for_protocol(k, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = FutureRand::init(l, &composed, &mut rng);
        let mut fed_nonzero = 0usize;
        let mut accepted = 0usize;
        for &v in &inputs {
            let t = Ternary::from_i8(v);
            match m.try_next(t, &mut rng) {
                Ok(_) => {
                    accepted += 1;
                    if t.is_nonzero() { fed_nonzero += 1; }
                    prop_assert_eq!(m.position(), accepted);
                    prop_assert_eq!(m.nnz(), fed_nonzero);
                }
                Err(e) => {
                    // Only the sparsity violation can occur mid-sequence
                    // (l matches the input length, so exhaustion cannot).
                    prop_assert!(t.is_nonzero());
                    prop_assert_eq!(
                        e,
                        rtf_core::randomizer::RandomizerError::TooManyNonZeros { k }
                    );
                    prop_assert_eq!(m.nnz(), k);
                }
            }
        }
    }

    /// IndependentRand's gap formula.
    #[test]
    fn independent_gap(k in 1usize..500, eps in 0.01f64..=1.0) {
        let m = IndependentRand::new(10, k, eps);
        let expect = (eps / k as f64 / 2.0).tanh();
        prop_assert!((m.c_gap() - expect).abs() < 1e-12);
    }

    /// Parameter validation never accepts garbage, and always accepts
    /// well-formed inputs.
    #[test]
    fn params_validation(
        n in 1usize..1_000_000,
        log_d in 0u32..20,
        k_frac in 0.0f64..=1.0,
        eps in 0.001f64..=1.0,
        beta in 0.0001f64..0.9999,
    ) {
        let d = 1u64 << log_d;
        let k = ((d as f64 * k_frac) as usize).max(1);
        let p = ProtocolParams::new(n, d, k, eps, beta);
        prop_assert!(p.is_ok(), "rejected valid params n={n} d={d} k={k}");
        let p = p.unwrap();
        // Derived quantities are internally consistent.
        prop_assert_eq!(p.num_orders(), log_d + 1);
        for h in 0..=log_d {
            prop_assert!(p.k_for_order(h) >= 1);
            prop_assert!(p.k_for_order(h) <= k.max(1));
            prop_assert_eq!(p.sequence_len(h) as u64, d >> h);
        }
        // Invalid mutations are rejected.
        prop_assert!(ProtocolParams::new(n, d + 1, k, eps, beta).is_err() || (d + 1).is_power_of_two());
        prop_assert!(ProtocolParams::new(n, d, k, eps + 1.0, beta).is_err());
    }

    /// Estimator unbiasedness within the paper's variance bound, across
    /// randomly drawn valid parameter sets: over repeated protocol runs
    /// the mean of `â[t]` stays within a `z·√(Var_bound/T)` confidence
    /// band of the truth at every period, where
    /// `Var[â[t]] ≤ n·Σ_{h ∈ C(t)} scale(h)²/(1 + log d)` with
    /// `scale(h) = (1 + log d)/c_gap(h)` — the exact second-moment bound
    /// behind Lemma 4.6.
    #[test]
    fn estimator_unbiased_within_variance_bound(
        n in 60usize..220,
        log_d in 3u32..=4,
        k in 1usize..=4,
        eps in 0.4f64..=1.0,
        pop_seed in 0u64..1_000,
        run_seed in 0u64..1_000,
    ) {
        use rtf_core::protocol::run_in_memory;
        use rtf_primitives::seeding::SeedSequence;
        use rtf_streams::generator::UniformChanges;
        use rtf_streams::population::Population;

        let d = 1u64 << log_d;
        let params = ProtocolParams::new(n, d, k, eps, 0.05).unwrap();
        let mut rng = SeedSequence::new(pop_seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);

        // Per-period variance bound from the per-order scales.
        let orders_f = 1.0 + f64::from(params.log_d());
        let scales: Vec<f64> = (0..params.num_orders())
            .map(|h| orders_f / WeightClassLaw::for_protocol(params.k_for_order(h), eps).c_gap())
            .collect();
        let var_bound: Vec<f64> = (1..=d)
            .map(|t| {
                let sum: f64 = scales
                    .iter()
                    .enumerate()
                    .filter(|(h, _)| t & (1u64 << h) != 0)
                    .map(|(_, s)| s * s)
                    .sum();
                n as f64 * sum / orders_f
            })
            .collect();

        let trials = 40u64;
        let mut mean = vec![0.0f64; d as usize];
        for s in 0..trials {
            let o = run_in_memory(&params, &pop, 100_000 + run_seed * trials + s);
            for (slot, e) in mean.iter_mut().zip(o.estimates()) {
                *slot += e / trials as f64;
            }
        }
        for (t, ((m, truth), vb)) in mean
            .iter()
            .zip(pop.true_counts())
            .zip(&var_bound)
            .enumerate()
        {
            let band = 5.0 * (vb / trials as f64).sqrt();
            prop_assert!(
                (m - truth).abs() <= band,
                "t={}: mean {} vs truth {} escapes ±{} ({})",
                t + 1, m, truth, band, params
            );
        }
    }
}
