//! A population of categorical users and its per-element ground truth.

use crate::stream::CategoricalStream;

/// `n` categorical streams plus the dense true counts
/// `a_e[t] = |{u : item_u(t) = e}|`.
#[derive(Debug, Clone)]
pub struct CategoricalPopulation {
    d: u64,
    domain: u32,
    streams: Vec<CategoricalStream>,
    /// `true_counts[e][t−1] = a_e[t]`.
    true_counts: Vec<Vec<f64>>,
}

impl CategoricalPopulation {
    /// Builds a population from explicit streams.
    ///
    /// # Panics
    /// Panics if the list is empty or streams disagree on `(d, domain)`.
    pub fn from_streams(streams: Vec<CategoricalStream>) -> Self {
        assert!(
            !streams.is_empty(),
            "population must have at least one user"
        );
        let d = streams[0].d();
        let domain = streams[0].domain();
        assert!(
            streams.iter().all(|s| s.d() == d && s.domain() == domain),
            "all streams must share (d, domain)"
        );
        // Difference arrays per element over transitions.
        let mut diff = vec![vec![0i64; d as usize + 1]; domain as usize];
        for s in &streams {
            let mut prev: Option<u32> = None;
            for &(t, item) in s.transitions() {
                if let Some(p) = prev {
                    diff[p as usize][t as usize] -= 1;
                }
                diff[item as usize][t as usize] += 1;
                prev = Some(item);
            }
        }
        let true_counts = diff
            .into_iter()
            .map(|de| {
                let mut acc = 0i64;
                (1..=d as usize)
                    .map(|t| {
                        acc += de[t];
                        debug_assert!(acc >= 0);
                        acc as f64
                    })
                    .collect()
            })
            .collect();
        CategoricalPopulation {
            d,
            domain,
            streams,
            true_counts,
        }
    }

    /// The horizon `d`.
    #[inline]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The domain size `D`.
    #[inline]
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// The number of users.
    #[inline]
    pub fn n(&self) -> usize {
        self.streams.len()
    }

    /// The user streams.
    #[inline]
    pub fn streams(&self) -> &[CategoricalStream] {
        &self.streams
    }

    /// `a_e[t]` for all elements (`[e][t−1]`).
    #[inline]
    pub fn true_counts(&self) -> &[Vec<f64>] {
        &self.true_counts
    }

    /// The largest transition count across users.
    pub fn max_transition_count(&self) -> usize {
        self.streams
            .iter()
            .map(CategoricalStream::transition_count)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_brute_force() {
        let streams = vec![
            CategoricalStream::from_transitions(8, 3, vec![(1, 0), (4, 2)]),
            CategoricalStream::from_transitions(8, 3, vec![(2, 2)]),
            CategoricalStream::from_transitions(8, 3, vec![]),
        ];
        let pop = CategoricalPopulation::from_streams(streams.clone());
        for e in 0..3u32 {
            for t in 1..=8u64 {
                let expect = streams.iter().filter(|s| s.item_at(t) == Some(e)).count() as f64;
                assert_eq!(
                    pop.true_counts()[e as usize][(t - 1) as usize],
                    expect,
                    "e={e} t={t}"
                );
            }
        }
    }

    #[test]
    fn per_period_counts_sum_to_holders() {
        // Σ_e a_e[t] = number of users currently holding anything.
        let streams = vec![
            CategoricalStream::from_transitions(8, 4, vec![(3, 1)]),
            CategoricalStream::from_transitions(8, 4, vec![(1, 0), (5, 3)]),
        ];
        let pop = CategoricalPopulation::from_streams(streams.clone());
        for t in 1..=8u64 {
            let total: f64 = (0..4).map(|e| pop.true_counts()[e][(t - 1) as usize]).sum();
            let holders = streams.iter().filter(|s| s.item_at(t).is_some()).count() as f64;
            assert_eq!(total, holders, "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "share (d, domain)")]
    fn mixed_domains_rejected() {
        let _ = CategoricalPopulation::from_streams(vec![
            CategoricalStream::from_transitions(8, 2, vec![]),
            CategoricalStream::from_transitions(8, 3, vec![]),
        ]);
    }
}
