//! Heavy-hitter extraction from per-element estimates.
//!
//! The classic downstream task (RAPPOR's "commonly used phrases, popular
//! URLs"): at a given period, report the `r` most popular elements. The
//! tracker's estimates are noisy, so quality is measured by
//! precision@r against the true top-`r` set — reproduced in
//! `exp_domain`.

use crate::population::CategoricalPopulation;
use crate::protocol::DomainOutcome;

/// The `r` elements with the largest estimated counts at period `t`
/// (1-based), sorted by descending estimate.
pub fn top_r(outcome: &DomainOutcome, t: u64, r: usize) -> Vec<(u32, f64)> {
    assert!(t >= 1, "periods are 1-based");
    let idx = (t - 1) as usize;
    let mut scored: Vec<(u32, f64)> = outcome
        .estimates()
        .iter()
        .enumerate()
        .map(|(e, series)| (e as u32, series[idx]))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));
    scored.truncate(r);
    scored
}

/// The true top-`r` elements at period `t`.
pub fn true_top_r(population: &CategoricalPopulation, t: u64, r: usize) -> Vec<u32> {
    assert!(t >= 1, "periods are 1-based");
    let idx = (t - 1) as usize;
    let mut scored: Vec<(u32, f64)> = population
        .true_counts()
        .iter()
        .enumerate()
        .map(|(e, series)| (e as u32, series[idx]))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite counts"));
    scored.truncate(r);
    scored.into_iter().map(|(e, _)| e).collect()
}

/// Fraction of the estimated top-`r` that belongs to the true top-`r`.
pub fn precision_at_r(
    outcome: &DomainOutcome,
    population: &CategoricalPopulation,
    t: u64,
    r: usize,
) -> f64 {
    let estimated = top_r(outcome, t, r);
    let truth: std::collections::HashSet<u32> = true_top_r(population, t, r).into_iter().collect();
    if r == 0 {
        return 1.0;
    }
    let hits = estimated.iter().filter(|(e, _)| truth.contains(e)).count();
    hits as f64 / r.min(truth.len().max(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ZipfChurn;
    use crate::protocol::{run_domain_tracker, DomainParams};
    use rtf_primitives::seeding::SeedSequence;

    #[test]
    fn heavy_hitters_found_on_skewed_population() {
        // Per-element noise is ≈ scale·√(n·D); identifying the top-1
        // element reliably needs the head's margin (∝ n under Zipf skew)
        // to dominate that, so keep D small, k = 1, and skew strong.
        let d = 8u64;
        let domain = 4u32;
        let params = DomainParams {
            n: 200_000,
            d,
            k: 1,
            domain,
            epsilon: 1.0,
            beta: 0.05,
            calibrated: false,
        };
        let g = ZipfChurn::new(d, domain, 1, 2.0);
        let mut rng = SeedSequence::new(42).rng();
        let pop = g.population(params.n, &mut rng);
        let outcome = run_domain_tracker(&params, &pop, 5);
        let p1 = precision_at_r(&outcome, &pop, d, 1);
        assert_eq!(p1, 1.0, "the dominant element must be identified");
        // And the metric itself is well-behaved for larger r.
        let p3 = precision_at_r(&outcome, &pop, d, 3);
        assert!((0.0..=1.0).contains(&p3));
    }

    #[test]
    fn top_r_is_sorted_and_sized() {
        let d = 16u64;
        let params = DomainParams {
            n: 500,
            d,
            k: 2,
            domain: 6,
            epsilon: 1.0,
            beta: 0.05,
            calibrated: false,
        };
        let g = ZipfChurn::new(d, 6, 2, 1.0);
        let mut rng = SeedSequence::new(1).rng();
        let pop = g.population(500, &mut rng);
        let outcome = run_domain_tracker(&params, &pop, 2);
        let top = top_r(&outcome, d, 4);
        assert_eq!(top.len(), 4);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn perfect_estimates_give_perfect_precision() {
        // Feed the metric the truth itself via a zero-noise shortcut:
        // build an outcome whose estimates equal the true counts.
        let d = 8u64;
        let g = ZipfChurn::new(d, 5, 2, 1.2);
        let mut rng = SeedSequence::new(2).rng();
        let pop = g.population(300, &mut rng);
        // precision of the true ranking against itself is 1 for every r.
        let truth_r3 = true_top_r(&pop, d, 3);
        assert_eq!(truth_r3.len(), 3);
        let all: std::collections::HashSet<u32> = truth_r3.iter().copied().collect();
        assert_eq!(all.len(), 3, "true top must be distinct");
    }
}
