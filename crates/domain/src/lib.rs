//! Categorical-domain longitudinal frequency estimation.
//!
//! Section 1 of the paper notes that the Boolean protocol "can be adapted
//! to solve frequency estimation and heavy hitter problems in richer
//! domains via existing techniques". This crate implements the simplest
//! such adaptation, **element sampling**: each user samples one domain
//! element uniformly, tracks the Boolean indicator "do I currently hold
//! this element?" with the full-budget FutureRand protocol, and the
//! server rescales each element's estimate by the domain size `D`.
//!
//! Privacy is inherited: a user's reports are an `ε`-LDP function of one
//! indicator stream, which is itself a function of the user's item
//! sequence — by post-processing/data-processing the whole client remains
//! `ε`-LDP with respect to the item sequence. Utility: each element is
//! estimated from `≈ n/D` users and rescaled by `D`, so per-element error
//! scales as `√(D·n)` (measured in `exp_domain`).
//!
//! Modules:
//! * [`stream`] — categorical user streams (`≤ k` item transitions) and
//!   their per-element Boolean indicators;
//! * [`population`] — `n` categorical users plus dense ground-truth
//!   per-element counts;
//! * [`generator`] — Zipf-churn and trending-item workloads (the
//!   "popular URLs" motivation);
//! * [`protocol`] — the element-sampled tracker returning per-element
//!   online estimates;
//! * [`heavy`] — heavy-hitter extraction and quality metrics.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod generator;
pub mod heavy;
pub mod population;
pub mod protocol;
pub mod stream;

pub use generator::{TrendingItem, ZipfChurn};
pub use heavy::{precision_at_r, top_r};
pub use population::CategoricalPopulation;
pub use protocol::{run_domain_tracker, DomainOutcome, DomainParams};
pub use stream::CategoricalStream;
