//! One user's categorical item sequence and its Boolean indicators.
//!
//! A categorical stream holds, at each period, exactly one item from
//! `[0..D)` — or nothing before its first acquisition, matching the
//! Boolean convention `st_u[0] = 0`. The stream is stored as its
//! *transitions* `(time, item)`: at most `k` of them, strictly increasing
//! in time. Each transition toggles at most two per-element indicators
//! (the old item off, the new item on), so every indicator stream is a
//! valid `≤ k`-sparse `BoolStream` and the Boolean protocol applies
//! unchanged.

use rtf_streams::stream::BoolStream;

/// A user's item history over `[1..d]`: holds nothing before the first
/// transition, then the item of the most recent transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalStream {
    d: u64,
    domain: u32,
    /// `(time, item)` pairs, strictly increasing times, items in
    /// `[0..domain)`, consecutive items distinct.
    transitions: Vec<(u64, u32)>,
}

impl CategoricalStream {
    /// Builds a stream from transitions.
    ///
    /// # Panics
    /// Panics if times are not strictly increasing / in `[1..d]`, an item
    /// is out of domain, or two consecutive transitions carry the same
    /// item (not a real transition).
    pub fn from_transitions(d: u64, domain: u32, transitions: Vec<(u64, u32)>) -> Self {
        assert!(d >= 1, "horizon must be non-empty");
        assert!(domain >= 1, "domain must be non-empty");
        let mut prev_t = 0u64;
        let mut prev_item: Option<u32> = None;
        for &(t, item) in &transitions {
            assert!(t >= 1 && t <= d, "transition time {t} outside [1..{d}]");
            assert!(t > prev_t, "transition times must strictly increase");
            assert!(item < domain, "item {item} outside domain [0..{domain})");
            assert!(
                prev_item != Some(item),
                "consecutive transitions must change the item"
            );
            prev_t = t;
            prev_item = Some(item);
        }
        CategoricalStream {
            d,
            domain,
            transitions,
        }
    }

    /// The horizon `d`.
    #[inline]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The domain size `D`.
    #[inline]
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// Number of transitions (the categorical `k`).
    #[inline]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The transitions.
    #[inline]
    pub fn transitions(&self) -> &[(u64, u32)] {
        &self.transitions
    }

    /// The item held at time `t` (`None` before the first acquisition).
    ///
    /// # Panics
    /// Panics if `t > d`.
    pub fn item_at(&self, t: u64) -> Option<u32> {
        assert!(t <= self.d, "time {t} beyond horizon {}", self.d);
        let idx = self.transitions.partition_point(|&(tt, _)| tt <= t);
        idx.checked_sub(1).map(|i| self.transitions[i].1)
    }

    /// The Boolean indicator stream for element `e`:
    /// `st^e_u[t] = 1[item_u(t) = e]`.
    ///
    /// The indicator's change count is at most the transition count, so
    /// any `k` bounding the categorical stream bounds the indicator too.
    pub fn indicator(&self, e: u32) -> BoolStream {
        assert!(e < self.domain, "element {e} outside domain");
        let mut change_times = Vec::new();
        let mut holding = false;
        for &(t, item) in &self.transitions {
            let now = item == e;
            if now != holding {
                change_times.push(t);
                holding = now;
            }
        }
        BoolStream::from_change_times(self.d, change_times)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CategoricalStream {
        // Holds nothing, then item 2 from t=3, item 0 from t=5, item 2
        // again from t=9.
        CategoricalStream::from_transitions(16, 3, vec![(3, 2), (5, 0), (9, 2)])
    }

    #[test]
    fn item_at_follows_transitions() {
        let s = sample();
        assert_eq!(s.item_at(0), None);
        assert_eq!(s.item_at(2), None);
        assert_eq!(s.item_at(3), Some(2));
        assert_eq!(s.item_at(4), Some(2));
        assert_eq!(s.item_at(5), Some(0));
        assert_eq!(s.item_at(8), Some(0));
        assert_eq!(s.item_at(9), Some(2));
        assert_eq!(s.item_at(16), Some(2));
    }

    #[test]
    fn indicators_match_item_at() {
        let s = sample();
        for e in 0..3u32 {
            let ind = s.indicator(e);
            for t in 1..=16u64 {
                assert_eq!(
                    ind.value_at(t),
                    s.item_at(t) == Some(e),
                    "element {e} at t={t}"
                );
            }
        }
    }

    #[test]
    fn indicator_change_count_bounded_by_transitions() {
        let s = sample();
        for e in 0..3u32 {
            assert!(s.indicator(e).change_count() <= s.transition_count());
        }
    }

    #[test]
    fn untouched_element_has_empty_indicator() {
        let s = sample();
        assert_eq!(s.indicator(1).change_count(), 0);
    }

    #[test]
    fn empty_stream_holds_nothing() {
        let s = CategoricalStream::from_transitions(8, 4, vec![]);
        assert_eq!(s.item_at(8), None);
        for e in 0..4 {
            assert_eq!(s.indicator(e).change_count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_times_rejected() {
        let _ = CategoricalStream::from_transitions(8, 2, vec![(3, 0), (3, 1)]);
    }

    #[test]
    #[should_panic(expected = "must change the item")]
    fn self_transition_rejected() {
        let _ = CategoricalStream::from_transitions(8, 2, vec![(2, 1), (5, 1)]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_item_rejected() {
        let _ = CategoricalStream::from_transitions(8, 2, vec![(2, 2)]);
    }
}
