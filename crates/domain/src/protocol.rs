//! The element-sampled categorical tracker.
//!
//! Each user samples one element `e_u ∈ [0..D)` uniformly (independently
//! of its data), then runs the Boolean FutureRand client on its
//! indicator stream for `e_u` with the **full** budget `ε`. The server
//! runs one Boolean aggregation per element over the users assigned to it
//! and multiplies by `D` (the inverse assignment probability), giving an
//! unbiased estimate of every `a_e[t]`.
//!
//! Privacy: conditioned on the (data-independent) element choice, the
//! report sequence is an `ε`-LDP function of one indicator stream, which
//! is a deterministic function of the item sequence — so the whole client
//! is `ε`-LDP for the item sequence by the data-processing inequality.

use crate::population::CategoricalPopulation;
use rand::Rng;
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_streams::population::Population;

/// Parameters of the categorical tracker.
#[derive(Debug, Clone, Copy)]
pub struct DomainParams {
    /// Number of users.
    pub n: usize,
    /// Number of periods (power of two).
    pub d: u64,
    /// Per-user transition bound `k` (bounds every indicator's changes).
    pub k: usize,
    /// Domain size `D`.
    pub domain: u32,
    /// Privacy budget `ε ∈ (0, 1]`.
    pub epsilon: f64,
    /// Failure probability `β`.
    pub beta: f64,
    /// Use the audit-calibrated `ε̃` (see `rtf_core::calibrate`) instead
    /// of the paper's `ε/(5√k)`: same certified privacy, ≈ 2× better
    /// accuracy.
    pub calibrated: bool,
}

/// Per-element online estimates.
#[derive(Debug, Clone)]
pub struct DomainOutcome {
    /// `estimates[e][t−1]` estimates `a_e[t]`.
    estimates: Vec<Vec<f64>>,
    /// How many users were assigned to each element.
    assigned: Vec<usize>,
}

impl DomainOutcome {
    /// `â_e[t]` for all elements (`[e][t−1]`).
    pub fn estimates(&self) -> &[Vec<f64>] {
        &self.estimates
    }

    /// The estimate series for one element.
    pub fn element(&self, e: u32) -> &[f64] {
        &self.estimates[e as usize]
    }

    /// Users assigned per element.
    pub fn assigned(&self) -> &[usize] {
        &self.assigned
    }
}

/// Runs the element-sampled categorical tracker.
///
/// # Panics
/// Panics on population/parameter mismatch or invalid parameters (the
/// Boolean sub-protocol validates `(d, k, ε, β)`).
pub fn run_domain_tracker(
    params: &DomainParams,
    population: &CategoricalPopulation,
    seed: u64,
) -> DomainOutcome {
    assert_eq!(population.n(), params.n, "population/params n mismatch");
    assert_eq!(population.d(), params.d, "population/params d mismatch");
    assert_eq!(
        population.domain(),
        params.domain,
        "population/params domain mismatch"
    );
    assert!(
        population.max_transition_count() <= params.k,
        "population exceeds the transition bound k = {}",
        params.k
    );

    let root = SeedSequence::new(seed);
    let d = params.d as usize;
    let dom = params.domain as usize;

    // 1. Element assignment (data-independent).
    let mut assign_rng = root.child(0xA551).rng();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); dom];
    for u in 0..params.n {
        let e = assign_rng.random_range(0..params.domain);
        groups[e as usize].push(u);
    }

    // 2. One Boolean sub-protocol per element over its assigned users.
    let mut estimates = vec![vec![0.0f64; d]; dom];
    let assigned: Vec<usize> = groups.iter().map(Vec::len).collect();
    for (e, users) in groups.iter().enumerate() {
        if users.is_empty() {
            continue; // estimate stays 0 — unbiased only in the D→∞ sense,
                      // but an empty group carries no information at all.
        }
        let streams = users
            .iter()
            .map(|&u| population.streams()[u].indicator(e as u32))
            .collect();
        let bool_pop = Population::from_streams(streams);
        let bool_params =
            ProtocolParams::new(users.len(), params.d, params.k, params.epsilon, params.beta)
                .expect("validated domain parameters");
        let sub_seed = root.child(1 + e as u64).seed();
        let outcome = if params.calibrated {
            rtf_sim::aggregate::run_calibrated_aggregate(&bool_params, &bool_pop, sub_seed)
        } else {
            run_future_rand_aggregate(&bool_params, &bool_pop, sub_seed)
        };
        for (t, &v) in outcome.estimates().iter().enumerate() {
            estimates[e][t] = v * params.domain as f64;
        }
    }

    DomainOutcome {
        estimates,
        assigned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ZipfChurn;

    fn setup(
        n: usize,
        d: u64,
        domain: u32,
        k: usize,
        seed: u64,
    ) -> (DomainParams, CategoricalPopulation) {
        let params = DomainParams {
            n,
            d,
            k,
            domain,
            epsilon: 1.0,
            beta: 0.05,
            calibrated: false,
        };
        let g = ZipfChurn::new(d, domain, k, 1.0);
        let mut rng = SeedSequence::new(seed).rng();
        (params, g.population(n, &mut rng))
    }

    #[test]
    fn outcome_shape_and_determinism() {
        let (params, pop) = setup(2_000, 32, 5, 3, 1);
        let a = run_domain_tracker(&params, &pop, 7);
        let b = run_domain_tracker(&params, &pop, 7);
        assert_eq!(a.estimates(), b.estimates());
        assert_eq!(a.estimates().len(), 5);
        assert_eq!(a.element(0).len(), 32);
        assert_eq!(a.assigned().iter().sum::<usize>(), 2_000);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (e, t) index truth and mean in parallel
    fn estimates_are_unbiased_over_trials() {
        // Average over assignment + noise: E[â_e[t]] = a_e[t].
        let (params, pop) = setup(600, 8, 3, 2, 2);
        let trials = 300u64;
        let mut mean = vec![vec![0.0f64; 8]; 3];
        for s in 0..trials {
            let o = run_domain_tracker(&params, &pop, 1_000 + s);
            for e in 0..3usize {
                for t in 0..8usize {
                    mean[e][t] += o.estimates()[e][t] / trials as f64;
                }
            }
        }
        // Noise per trial: Boolean scale × D; std-err shrinks with √trials.
        let gap = rtf_core::gap::WeightClassLaw::for_protocol(2, 1.0).c_gap();
        let per_trial_sd = 3.0 * (1.0 + 3.0) / gap * (600f64 / 3.0).sqrt();
        let tol = 6.0 * per_trial_sd / (trials as f64).sqrt();
        for e in 0..3usize {
            for t in 0..8usize {
                let bias = (mean[e][t] - pop.true_counts()[e][t]).abs();
                assert!(bias < tol, "e={e} t={t}: bias {bias} vs tol {tol}");
            }
        }
    }

    #[test]
    fn tracks_skew_at_scale() {
        // With a strongly skewed population and plenty of users, the
        // head element's final estimate should dominate the tail's.
        let (params, pop) = setup(60_000, 32, 8, 2, 3);
        let o = run_domain_tracker(&params, &pop, 11);
        let head_truth = pop.true_counts()[0][31];
        let tail_truth = pop.true_counts()[7][31];
        assert!(head_truth > 3.0 * tail_truth, "workload not skewed enough");
        let head_est = o.element(0)[31];
        let tail_est = o.element(7)[31];
        assert!(
            head_est > tail_est,
            "estimates lost the ranking: head {head_est} vs tail {tail_est}"
        );
    }

    #[test]
    #[should_panic(expected = "transition bound")]
    fn k_violation_rejected() {
        let (mut params, pop) = setup(100, 16, 3, 3, 4);
        params.k = 1;
        let _ = run_domain_tracker(&params, &pop, 1);
    }
}
