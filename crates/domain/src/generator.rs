//! Workload generators for categorical longitudinal data.

use crate::population::CategoricalPopulation;
use crate::stream::CategoricalStream;
use rand::Rng;
use rtf_primitives::alias::AliasTable;
use rtf_primitives::subset::sample_subset;

/// Users pick items from a Zipf(`s`) distribution and churn at uniformly
/// random times — the "list of frequently visited URLs changes little
/// every day" regime with a realistic popularity skew.
#[derive(Debug, Clone)]
pub struct ZipfChurn {
    d: u64,
    domain: u32,
    k: usize,
    item_law: AliasTable,
}

impl ZipfChurn {
    /// Creates the generator with Zipf exponent `s ≥ 0` (0 = uniform).
    ///
    /// # Panics
    /// Panics if `k` is zero or exceeds `d`, or the domain is empty.
    pub fn new(d: u64, domain: u32, k: usize, s: f64) -> Self {
        assert!(domain >= 1, "domain must be non-empty");
        assert!(k >= 1 && k as u64 <= d, "need 1 ≤ k ≤ d");
        assert!(s >= 0.0, "Zipf exponent must be ≥ 0");
        let weights: Vec<f64> = (1..=domain as usize)
            .map(|r| 1.0 / (r as f64).powf(s))
            .collect();
        ZipfChurn {
            d,
            domain,
            k,
            item_law: AliasTable::new(&weights),
        }
    }

    /// The horizon.
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The domain size.
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// The transition bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Draws one user stream: `c ∈ [1..k]` transitions at uniform times,
    /// each to a fresh Zipf-drawn item (resampled if equal to the current
    /// one and `D > 1`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CategoricalStream {
        let c = rng.random_range(1..=self.k);
        let times: Vec<u64> = sample_subset(self.d as usize, c, rng)
            .into_iter()
            .map(|i| (i + 1) as u64)
            .collect();
        let mut transitions = Vec::with_capacity(c);
        let mut current: Option<u32> = None;
        for t in times {
            let mut item = self.item_law.sample(rng) as u32;
            if self.domain > 1 {
                while Some(item) == current {
                    item = self.item_law.sample(rng) as u32;
                }
            } else if Some(item) == current {
                continue; // D = 1: no legal transition target
            }
            transitions.push((t, item));
            current = Some(item);
        }
        CategoricalStream::from_transitions(self.d, self.domain, transitions)
    }

    /// Draws a whole population.
    pub fn population<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> CategoricalPopulation {
        CategoricalPopulation::from_streams((0..n).map(|_| self.generate(rng)).collect())
    }
}

/// A background Zipf population in which one designated item surges
/// mid-horizon: users increasingly switch to it after `t₀` — the
/// heavy-hitter-emergence scenario.
#[derive(Debug, Clone)]
pub struct TrendingItem {
    base: ZipfChurn,
    hot_item: u32,
    surge_start: u64,
    adoption: f64,
}

impl TrendingItem {
    /// Creates the generator: after `surge_start`, each user's *last*
    /// transition switches to `hot_item` with probability `adoption`.
    ///
    /// # Panics
    /// Panics if the hot item is outside the domain or `adoption ∉ [0,1]`.
    pub fn new(base: ZipfChurn, hot_item: u32, surge_start: u64, adoption: f64) -> Self {
        assert!(hot_item < base.domain(), "hot item outside domain");
        assert!((0.0..=1.0).contains(&adoption), "adoption must be in [0,1]");
        TrendingItem {
            base,
            hot_item,
            surge_start,
            adoption,
        }
    }

    /// Draws one user stream.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> CategoricalStream {
        let s = self.base.generate(rng);
        let d = s.d();
        let domain = s.domain();
        let mut transitions = s.transitions().to_vec();
        // Post-surge adoption: append/replace the final move with the hot
        // item when the user is active after the surge starts.
        if rng.random::<f64>() < self.adoption {
            if let Some(&(last_t, last_item)) = transitions.last() {
                if last_t >= self.surge_start && last_item != self.hot_item {
                    transitions.pop();
                    // Re-validate: previous item must differ from hot.
                    if transitions.last().map(|&(_, i)| i) != Some(self.hot_item) {
                        transitions.push((last_t, self.hot_item));
                    } else {
                        transitions.push((last_t, last_item));
                    }
                }
            }
        }
        CategoricalStream::from_transitions(d, domain, transitions)
    }

    /// Draws a whole population.
    pub fn population<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> CategoricalPopulation {
        CategoricalPopulation::from_streams((0..n).map(|_| self.generate(rng)).collect())
    }

    /// The designated hot item.
    pub fn hot_item(&self) -> u32 {
        self.hot_item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_respects_bounds() {
        let g = ZipfChurn::new(64, 10, 5, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let s = g.generate(&mut rng);
            assert!(s.transition_count() <= 5);
            assert!(s.transition_count() >= 1 || s.transitions().is_empty());
            assert_eq!(s.d(), 64);
            assert_eq!(s.domain(), 10);
        }
    }

    #[test]
    fn zipf_skew_shows_in_popularity() {
        // With s = 1.5, element 0 should end up far more popular than the
        // tail element.
        let g = ZipfChurn::new(32, 20, 3, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let pop = g.population(3_000, &mut rng);
        let final_counts: Vec<f64> = (0..20).map(|e| pop.true_counts()[e][31]).collect();
        assert!(
            final_counts[0] > 5.0 * final_counts[19].max(1.0),
            "head {} vs tail {}",
            final_counts[0],
            final_counts[19]
        );
    }

    #[test]
    fn uniform_zipf_is_balanced() {
        let g = ZipfChurn::new(32, 8, 3, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let pop = g.population(4_000, &mut rng);
        let final_counts: Vec<f64> = (0..8).map(|e| pop.true_counts()[e][31]).collect();
        let mean: f64 = final_counts.iter().sum::<f64>() / 8.0;
        for (e, &c) in final_counts.iter().enumerate() {
            assert!(
                (c - mean).abs() < 0.25 * mean,
                "element {e}: {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn trending_item_surges() {
        let base = ZipfChurn::new(64, 12, 4, 1.0);
        let g = TrendingItem::new(base, 7, 32, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        let pop = g.population(2_000, &mut rng);
        let hot = &pop.true_counts()[7];
        // Popularity at the end should far exceed the pre-surge level.
        assert!(
            hot[63] > 3.0 * hot[15].max(1.0),
            "hot item did not surge: start {} end {}",
            hot[15],
            hot[63]
        );
        // Streams remain valid (validation would have panicked otherwise).
        assert!(pop.max_transition_count() <= 4);
    }

    #[test]
    fn single_element_domain_works() {
        let g = ZipfChurn::new(16, 1, 2, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let s = g.generate(&mut rng);
            assert!(s.transition_count() <= 1, "only the initial acquisition");
        }
    }
}
