//! Property-based tests for the categorical domain layer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtf_domain::generator::ZipfChurn;
use rtf_domain::population::CategoricalPopulation;
use rtf_domain::stream::CategoricalStream;

/// Strategy: a valid transition list on horizon `d` over `domain`
/// elements.
fn transitions(d: u64, domain: u32) -> impl Strategy<Value = Vec<(u64, u32)>> {
    prop::collection::btree_map(1..=d, 0..domain, 0..8).prop_map(|m| {
        // Strictly increasing times from the map keys; drop repeated
        // items so consecutive transitions always change the item.
        let mut out: Vec<(u64, u32)> = Vec::new();
        for (t, item) in m {
            if out.last().map(|&(_, i)| i) != Some(item) {
                out.push((t, item));
            }
        }
        out
    })
}

proptest! {
    /// Indicators partition the user's time: at every t, exactly one
    /// element's indicator is on (or none before the first acquisition).
    #[test]
    fn indicators_partition_time(trs in transitions(32, 5)) {
        let s = CategoricalStream::from_transitions(32, 5, trs);
        for t in 1..=32u64 {
            let on: Vec<u32> = (0..5).filter(|&e| s.indicator(e).value_at(t)).collect();
            match s.item_at(t) {
                Some(item) => prop_assert_eq!(on, vec![item]),
                None => prop_assert!(on.is_empty()),
            }
        }
    }

    /// Every indicator's change count is bounded by the transition count.
    #[test]
    fn indicator_sparsity(trs in transitions(64, 4)) {
        let s = CategoricalStream::from_transitions(64, 4, trs);
        for e in 0..4u32 {
            prop_assert!(s.indicator(e).change_count() <= s.transition_count());
        }
    }

    /// Population ground truth: per-period element counts sum to the
    /// number of active (holding) users, and match brute force.
    #[test]
    fn population_truth(seed in 0u64..300, n in 1usize..30) {
        let g = ZipfChurn::new(16, 4, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = g.population(n, &mut rng);
        for t in 1..=16u64 {
            let mut total = 0.0;
            for e in 0..4u32 {
                let expect = pop
                    .streams()
                    .iter()
                    .filter(|s| s.item_at(t) == Some(e))
                    .count() as f64;
                prop_assert_eq!(pop.true_counts()[e as usize][(t - 1) as usize], expect);
                total += expect;
            }
            let active = pop.streams().iter().filter(|s| s.item_at(t).is_some()).count() as f64;
            prop_assert_eq!(total, active);
        }
    }

    /// Round trip: a stream rebuilt from (d, domain, transitions) is
    /// identical.
    #[test]
    fn stream_round_trip(trs in transitions(32, 6)) {
        let s = CategoricalStream::from_transitions(32, 6, trs.clone());
        let s2 = CategoricalStream::from_transitions(s.d(), s.domain(), s.transitions().to_vec());
        prop_assert_eq!(s, s2);
        let _ = CategoricalPopulation::from_streams(vec![
            CategoricalStream::from_transitions(32, 6, trs),
        ]);
    }
}
