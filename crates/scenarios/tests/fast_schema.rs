//! Differential + statistical proof of the fast-seeds (v2) schema.
//!
//! The counter-based v2 generator replaces the per-report `StdRng` draw
//! on zero partial sums with a pure function of `(client key, report
//! index)`. Two things must hold for it to be a sound drop-in:
//!
//! 1. **Determinism across execution paths** — sequential ≡
//!    parallel{1,2,8} ≡ live (with kills and mid-period restarts), on
//!    every storage backend, honest and under a fault storm:
//!    [`assert_schema_agreement`] runs the whole matrix under an
//!    explicit [`SeedSchema::V2Fast`], pinning the packed word-at-a-time
//!    path against the scalar per-report path.
//! 2. **The statistics survive** — the estimator stays unbiased and its
//!    empirical variance matches `rtf_analysis`'s closed form to the
//!    same tolerances the v1 schema is held to. Per-bit uniformity of
//!    the raw generator is pinned in `rtf_primitives::fastseed`; here we
//!    check the end-to-end estimator.

use proptest::prelude::*;
use rtf_analysis::variance::predicted_variance;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::run_in_memory_schema;
use rtf_primitives::fastseed::SeedSchema;
use rtf_primitives::seeding::SeedSequence;
use rtf_scenarios::oracle::{assert_schema_agreement, tolerance_band};
use rtf_scenarios::Scenario;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

fn setup(n: usize, d: u64, k: usize, seed: u64) -> (ProtocolParams, Population) {
    let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
    let mut rng = SeedSequence::new(seed).rng();
    let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
    (params, pop)
}

fn storm() -> Scenario {
    Scenario::honest()
        .with_dropout(0.05)
        .with_stragglers(0.1, 3)
        .with_duplicates(0.05)
        .with_byzantine(0.1)
}

#[test]
fn fast_schema_agrees_across_all_paths_honest() {
    let (params, pop) = setup(110, 16, 2, 200);
    assert_schema_agreement(&params, &pop, 61, &Scenario::honest(), SeedSchema::V2Fast);
}

#[test]
fn fast_schema_agrees_across_all_paths_under_a_fault_storm() {
    let (params, pop) = setup(110, 16, 2, 201);
    assert_schema_agreement(&params, &pop, 62, &storm(), SeedSchema::V2Fast);
}

#[test]
fn v1_schema_still_agrees_through_the_same_oracle() {
    // The oracle itself must not be v2-only: the explicit-schema matrix
    // holds for the default schema too.
    let (params, pop) = setup(110, 16, 2, 202);
    assert_schema_agreement(&params, &pop, 63, &storm(), SeedSchema::V1Std);
}

#[test]
fn fast_schema_estimator_is_unbiased_within_variance() {
    // Repeated independent deployments (fresh seed ⇒ fresh client keys ⇒
    // fresh counter streams): the per-period mean error must sit inside a
    // z-band of the standard error, and the empirical variance must match
    // the closed form — the same tolerances the aggregate-vs-exact
    // distributional oracle holds the v1 schema to.
    let (params, pop) = setup(250, 16, 3, 203);
    let trials = 250u64;
    let d = params.d() as usize;
    let truth = pop.true_counts();
    let (mut sum, mut sq) = (vec![0.0f64; d], vec![0.0f64; d]);
    for s in 0..trials {
        let out = run_in_memory_schema(&params, &pop, 5_000 + s, SeedSchema::V2Fast);
        for (t, &e) in out.estimates().iter().enumerate() {
            sum[t] += e;
            sq[t] += e * e;
        }
    }
    let predicted = predicted_variance(&params, &pop);
    let n = trials as f64;
    for t in 0..d {
        let mean = sum[t] / n;
        let var = (sq[t] / n - mean * mean).max(0.0);
        let se = (var / n).sqrt().max(1e-12);
        let z = (mean - truth[t]).abs() / se;
        assert!(z <= 6.0, "period {}: mean error z-score {z}", t + 1);
        let rel = (var - predicted[t]).abs() / predicted[t];
        assert!(
            rel <= 0.35,
            "period {}: empirical variance {var} off the closed form {} by {rel}",
            t + 1,
            predicted[t]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random protocol shapes: a single honest fast-schema deployment
    /// stays inside the closed-form tolerance band around the truth —
    /// the same envelope the v1 schema is pinned to.
    #[test]
    fn fast_schema_runs_sit_inside_the_variance_band(
        n in 300usize..600,
        log_d in 3u32..=5,
        k in 1usize..=3,
        seed in 0u64..10_000,
    ) {
        let d = 1u64 << log_d;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        let out = run_in_memory_schema(&params, &pop, seed ^ 0xFA57, SeedSchema::V2Fast);
        let band = tolerance_band(&params, &pop, 5.5);
        let truth = pop.true_counts();
        for (t, ((e, a), b)) in out.estimates().iter().zip(truth).zip(&band).enumerate() {
            prop_assert!(
                (e - a).abs() <= *b,
                "period {}: |{} - {}| > {}", t + 1, e, a, b
            );
        }
    }
}
