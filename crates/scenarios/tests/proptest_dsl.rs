//! Property tests for the scenario-authoring DSL.
//!
//! Three claims, over random specs and random garbage:
//!
//! * **Roundtrip identity** — `from_toml(to_toml(spec)) == spec` for
//!   arbitrary specs (valid or not: the TOML layer is a faithful codec,
//!   validation is `compile`'s job), including strings that need every
//!   supported escape.
//! * **Totality** — `from_toml` never panics: arbitrary byte soup and
//!   randomly truncated valid documents produce `Ok` or a typed
//!   [`SpecError`], nothing else.
//! * **Spec-level differential agreement** — random *valid* compiled
//!   specs run value-identically through sequential ≡ batched ≡ live
//!   (the [`assert_spec_agreement`] oracle), so the DSL adds no
//!   execution path of its own.

use proptest::prelude::*;
use rtf_primitives::fastseed::SeedSchema;
use rtf_scenarios::config::DelayLaw;
use rtf_scenarios::dsl::{
    assert_spec_agreement, ExpectationSpec, FaultField, FaultKnob, PopulationSpec, ScenarioSpec,
    ShapeSpec, SpecErrorKind,
};
use rtf_scenarios::Scenario;

/// Deterministically builds an arbitrary (not necessarily valid) spec
/// from a bag of primitive draws. Probabilities are hundredths, so every
/// float in the spec roundtrips exactly through `{:?}` formatting.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    name_tag: u64,
    summary_sel: usize,
    n: usize,
    d: u64,
    k: usize,
    eps_h: u64,
    beta_h: u64,
    seed: u64,
    pop_sel: usize,
    pop_a: u64,
    rates_h: [u64; 6],
    max_delay: u64,
    law_sel: usize,
    alpha_tenths: u64,
    shape_draws: Vec<(usize, usize, u64, u64, u64)>,
    chaos_draws: (Vec<(usize, u64)>, Vec<u64>, Vec<u64>),
    expect_sel: usize,
    z_tenths: u64,
    require_mask: usize,
) -> ScenarioSpec {
    const SUMMARIES: [&str; 4] = [
        "",
        "a plain summary",
        "escapes: \"quoted\", back\\slash, tab\t, newline\n, cr\r done",
        "unicode: ε-差分プライバシー",
    ];
    let mut spec = ScenarioSpec::new(format!("spec-{name_tag}"))
        .with_summary(SUMMARIES[summary_sel % SUMMARIES.len()])
        .with_protocol(n, d, k, eps_h as f64 / 100.0, beta_h as f64 / 100.0)
        .with_seed(seed);

    spec = spec.with_population(match pop_sel % 5 {
        0 => PopulationSpec::Uniform {
            density: (pop_a % 101) as f64 / 100.0,
        },
        1 => PopulationSpec::Bursty {
            burst_len: 1 + pop_a % 16,
        },
        2 => PopulationSpec::Periodic {
            period: 1 + pop_a % 16,
        },
        3 => PopulationSpec::Static {
            p_one: (pop_a % 101) as f64 / 100.0,
        },
        _ => PopulationSpec::WaveTrend {
            low: (pop_a % 40) as f64 / 100.0,
            high: (50 + pop_a % 50) as f64 / 100.0,
            wave_period: 1 + pop_a % 16,
        },
    });

    let mut faults = Scenario::honest();
    faults.drop_prob = rates_h[0] as f64 / 100.0;
    faults.churn_prob = rates_h[1] as f64 / 100.0;
    faults.straggle_prob = rates_h[2] as f64 / 100.0;
    faults.duplicate_prob = rates_h[3] as f64 / 100.0;
    faults.byzantine_frac = rates_h[4] as f64 / 100.0;
    faults.malformed_prob = rates_h[5] as f64 / 100.0;
    faults.max_delay = max_delay;
    spec = spec.with_faults(faults).with_delay_law(match law_sel % 2 {
        0 => DelayLaw::Uniform,
        _ => DelayLaw::Zipf {
            alpha: alpha_tenths as f64 / 10.0,
        },
    });

    const KNOBS: [FaultKnob; 5] = FaultKnob::ALL;
    for (kind, knob, a, b, c) in shape_draws {
        let knob = KNOBS[knob % KNOBS.len()];
        spec = spec.with_shape(match kind % 3 {
            0 => ShapeSpec::Wave {
                knob,
                amplitude: (a % 101) as f64 / 100.0,
                period: 1 + b % 32,
                phase: (c % 64) as f64 / 2.0,
            },
            1 => ShapeSpec::Pulse {
                knob,
                from: 1 + a % 32,
                until: 1 + b % 32,
                scale: (c % 80) as f64 / 10.0,
            },
            _ => ShapeSpec::Ramp {
                knob,
                to: (a % 101) as f64 / 100.0,
            },
        });
    }

    let (kills, mids, betweens) = chaos_draws;
    for (w, p) in kills {
        spec = spec.with_chaos_kill(w % 8, 1 + p % 64);
    }
    for p in mids {
        spec = spec.with_chaos_mid_restart(1 + p % 64);
    }
    for p in betweens {
        spec = spec.with_chaos_between_restart(1 + p % 64);
    }

    let require: Vec<FaultField> = FaultField::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| require_mask & (1 << i) != 0)
        .map(|(_, f)| f)
        .collect();
    spec.with_expectation(match expect_sel % 4 {
        0 => ExpectationSpec::ExactHonest,
        1 => ExpectationSpec::Envelope {
            z: z_tenths as f64 / 10.0,
            require: require.clone(),
        },
        2 => ExpectationSpec::DuplicatesFree,
        _ => ExpectationSpec::ChaosRecovery {
            z: z_tenths as f64 / 10.0,
            require,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `from_toml ∘ to_toml` is the identity on arbitrary specs — the
    /// emitter and parser are exact inverses, field for field, including
    /// strings needing every supported escape and all enum variants.
    #[test]
    fn toml_roundtrip_is_identity(
        name_tag in 0u64..10_000,
        summary_sel in 0usize..4,
        n in 1usize..5_000,
        d in 1u64..256,
        k in 1usize..8,
        eps_h in 1u64..=150,
        beta_h in 1u64..99,
        seed in 0u64..u64::MAX,
        pop_sel in 0usize..5,
        pop_a in 0u64..1_000,
        rates_h in ((0u64..=100, 0u64..=100, 0u64..=100), (0u64..=100, 0u64..=100, 0u64..=100)),
        max_delay in 1u64..16,
        law_sel in 0usize..2,
        alpha_tenths in 1u64..40,
        shape_draws in prop::collection::vec(
            (0usize..3, 0usize..5, (0u64..1_000, 0u64..1_000, 0u64..1_000)), 0..4),
        kills in prop::collection::vec((0usize..8, 0u64..64), 0..3),
        mids in prop::collection::vec(0u64..64, 0..3),
        betweens in prop::collection::vec(0u64..64, 0..3),
        expect_sel in 0usize..4,
        z_tenths in 1u64..200,
        require_mask in 0usize..512,
    ) {
        let ((r0, r1, r2), (r3, r4, r5)) = rates_h;
        let shapes: Vec<(usize, usize, u64, u64, u64)> = shape_draws
            .into_iter()
            .map(|(kind, knob, (a, b, c))| (kind, knob, a, b, c))
            .collect();
        let spec = build_spec(
            name_tag, summary_sel, n, d, k, eps_h, beta_h, seed, pop_sel, pop_a,
            [r0, r1, r2, r3, r4, r5], max_delay, law_sel, alpha_tenths, shapes,
            (kills, mids, betweens), expect_sel, z_tenths, require_mask,
        );
        let text = spec.to_toml();
        let reparsed = ScenarioSpec::from_toml(&text)
            .unwrap_or_else(|e| panic!("emitted TOML failed to parse: {e}\n---\n{text}"));
        prop_assert_eq!(reparsed, spec);
    }

    /// `from_toml` is total: arbitrary bytes (lossily decoded) never
    /// panic the parser — they either parse or yield a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..600)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = ScenarioSpec::from_toml(&text);
    }

    /// Truncating a valid document anywhere never panics either — the
    /// error path is exercised at every prefix length.
    #[test]
    fn truncated_valid_spec_never_panics(cut_permille in 0usize..=1000, seed in 0u64..1000) {
        let spec = ScenarioSpec::new("truncate-me")
            .with_seed(seed)
            .with_shape(ShapeSpec::Pulse {
                knob: FaultKnob::Dropout, from: 2, until: 5, scale: 3.0,
            })
            .with_faults(Scenario::honest().with_dropout(0.1))
            .with_chaos_kill(1, 3)
            .with_expectation(ExpectationSpec::Envelope {
                z: 6.0,
                require: vec![FaultField::Dropped],
            });
        let text = spec.to_toml();
        let mut cut = text.len() * cut_permille / 1000;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = ScenarioSpec::from_toml(&text[..cut]);
    }

    /// Random *valid* specs — random population, random shaped fault
    /// mix — agree value-for-value across sequential ≡ batched ≡ live on
    /// every backend. The DSL compiles to the same engines it found.
    #[test]
    fn compiled_specs_agree_across_engines(
        n in 40usize..120,
        d_exp in 3u32..5,            // d ∈ {8, 16}
        k in 1usize..3,
        seed in 0u64..10_000,
        pop_sel in 0usize..5,
        pop_a in 0u64..1_000,
        drop_h in 20u64..=60,
        dup_h in 0u64..=40,
        wave in prop::bool::ANY,
        schema_sel in 0usize..2,
    ) {
        let d = 1u64 << d_exp;
        let mut spec = ScenarioSpec::new("prop-agreement")
            .with_protocol(n, d, k, 1.0, 0.05)
            .with_seed(seed)
            .with_population(match pop_sel % 5 {
                0 => PopulationSpec::Uniform { density: 0.8 },
                1 => PopulationSpec::Bursty { burst_len: (k as u64) + pop_a % (d - k as u64 + 1) },
                2 => PopulationSpec::Periodic { period: 1 + pop_a % d },
                3 => PopulationSpec::Static { p_one: (pop_a % 101) as f64 / 100.0 },
                _ => PopulationSpec::WaveTrend {
                    low: 0.2, high: 0.8, wave_period: 1 + pop_a % d,
                },
            })
            .with_faults(
                Scenario::honest()
                    .with_dropout(drop_h as f64 / 100.0)
                    .with_duplicates(dup_h as f64 / 100.0),
            )
            .with_expectation(ExpectationSpec::Envelope {
                z: 8.0,
                require: vec![FaultField::Dropped],
            });
        if wave {
            spec = spec.with_shape(ShapeSpec::Wave {
                knob: FaultKnob::Dropout, amplitude: 0.9, period: d / 2, phase: 0.0,
            });
        }
        let schema = [SeedSchema::V1Std, SeedSchema::V2Fast][schema_sel % 2];
        // Panics on any cross-engine or cross-backend divergence.
        assert_spec_agreement(&spec, schema);
    }
}

// ---------------------------------------------------------------------------
// Typed-error unit cases: each malformed class yields its kind, with
// line/field context pointing at the offending text.
// ---------------------------------------------------------------------------

fn minimal_valid() -> String {
    ScenarioSpec::new("minimal").to_toml()
}

#[test]
fn minimal_valid_spec_parses_and_compiles() {
    let spec = ScenarioSpec::from_toml(&minimal_valid()).unwrap();
    spec.compile().unwrap();
}

#[test]
fn missing_expectation_is_a_missing_field_at_parse() {
    let text = "name = \"x\"\n\n[protocol]\nn = 100\nd = 8\nk = 2\n";
    let err = ScenarioSpec::from_toml(text).unwrap_err();
    assert_eq!(err.kind, SpecErrorKind::MissingField);
    assert_eq!(err.context.field.as_deref(), Some("expectation"));
}

#[test]
fn unknown_key_is_rejected_with_its_line() {
    let text = minimal_valid().replace("[protocol]", "[protocol]\ndropuot = 0.5");
    let err = ScenarioSpec::from_toml(&text).unwrap_err();
    assert_eq!(err.kind, SpecErrorKind::UnknownField);
    assert_eq!(err.context.field.as_deref(), Some("protocol.dropuot"));
    let line = err.context.line.expect("line recorded") as usize;
    assert_eq!(text.lines().nth(line - 1).unwrap(), "dropuot = 0.5");
}

#[test]
fn wrong_type_is_a_typed_error() {
    let err = ScenarioSpec::from_toml("name = 42\n").unwrap_err();
    assert!(matches!(
        err.kind,
        SpecErrorKind::Type {
            expected: "string",
            ..
        }
    ));
    assert_eq!(err.context.line, Some(1));
}

#[test]
fn bad_syntax_reports_the_line() {
    let text = "name = \"x\"\nthis line has no equals sign\n";
    let err = ScenarioSpec::from_toml(text).unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Syntax(_)));
    assert_eq!(err.context.line, Some(2));
}

#[test]
fn unterminated_string_is_syntax_not_panic() {
    let err = ScenarioSpec::from_toml("name = \"oops\n").unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Syntax(_)));
}

#[test]
fn out_of_range_rate_is_a_range_error_from_compile() {
    let spec = ScenarioSpec::new("hot").with_faults(Scenario::honest().with_dropout(1.5));
    let err = spec.compile().unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Range(_)));
    assert_eq!(err.context.field.as_deref(), Some("faults.dropout"));
}

#[test]
fn non_power_of_two_horizon_is_a_params_error() {
    let spec = ScenarioSpec::new("odd").with_protocol(100, 24, 2, 1.0, 0.05);
    let err = spec.compile().unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Params(_)));
}

#[test]
fn vacuous_requirement_is_an_expectation_error() {
    // Requiring `dropped` with a zero dropout rate can never fire.
    let spec = ScenarioSpec::new("vacuous").with_expectation(ExpectationSpec::Envelope {
        z: 6.0,
        require: vec![FaultField::Dropped],
    });
    let err = spec.compile().unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Expectation(_)));
}

#[test]
fn empty_require_list_is_vacuous() {
    let spec = ScenarioSpec::new("empty")
        .with_faults(Scenario::honest().with_dropout(0.2))
        .with_expectation(ExpectationSpec::Envelope {
            z: 6.0,
            require: vec![],
        });
    let err = spec.compile().unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Expectation(_)));
}

#[test]
fn exact_honest_with_faults_is_rejected() {
    let spec = ScenarioSpec::new("lying").with_faults(Scenario::honest().with_dropout(0.1));
    let err = spec.compile().unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Expectation(_)));
}

#[test]
fn chaos_recovery_without_chaos_is_rejected() {
    let spec = ScenarioSpec::new("calm")
        .with_faults(Scenario::honest().with_dropout(0.2))
        .with_expectation(ExpectationSpec::ChaosRecovery {
            z: 6.0,
            require: vec![FaultField::Dropped],
        });
    let err = spec.compile().unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Expectation(_)));
}

#[test]
fn shape_on_a_zero_base_rate_is_rejected() {
    let spec = ScenarioSpec::new("dead-wave").with_shape(ShapeSpec::Wave {
        knob: FaultKnob::Dropout,
        amplitude: 0.5,
        period: 8,
        phase: 0.0,
    });
    let err = spec.compile().unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Expectation(_)));
    assert_eq!(err.context.field.as_deref(), Some("shape[0].knob"));
}

#[test]
fn chaos_outside_the_horizon_is_rejected() {
    let spec = ScenarioSpec::new("late-kill").with_chaos_kill(0, 99);
    let err = spec.compile().unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Range(_)));
    assert_eq!(err.context.field.as_deref(), Some("chaos.kill[0].period"));
}

#[test]
fn duplicate_key_is_rejected() {
    let text = minimal_valid().replace("n = 1000", "n = 1000\nn = 2000");
    let err = ScenarioSpec::from_toml(&text).unwrap_err();
    assert!(matches!(err.kind, SpecErrorKind::Syntax(_)));
}
