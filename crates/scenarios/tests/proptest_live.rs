//! Property tests for the streaming ingestion service.
//!
//! The tentpole claim — streaming execution is bit-identical to the
//! offline engines under arbitrary backpressure and across a mid-run
//! worker restart — checked over random protocol shapes `(n, d, k, ε)`,
//! random hostile service configurations (mailbox capacity down to a
//! single batch, chunk sizes down to a single row), worker counts
//! `{1, 2, 8}`, and a randomly placed worker kill.

use proptest::prelude::*;
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_runtime::ingest::LiveConfig;
use rtf_runtime::ExecMode;
use rtf_scenarios::config::Scenario;
use rtf_scenarios::engine::run_scenario_with;
use rtf_scenarios::live::run_scenario_live_with;
use rtf_sim::engine::run_event_driven_with;
use rtf_sim::live::run_event_driven_live_with;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bounded-mailbox ingest under random backpressure, with a mid-run
    /// worker restart, produces estimates (and wire accounting)
    /// bit-identical to `run_event_driven` — over random `(n, d, k, ε)`
    /// and workers {1, 2, 8}.
    #[test]
    fn live_ingest_is_bit_identical_to_event_driven(
        n in 40usize..160,
        d_exp in 3u32..6,            // d ∈ {8, 16, 32}
        k in 1usize..4,
        eps_hundredths in 30u64..=100,
        seed in 0u64..10_000,
        mailbox_cap in 1usize..5,    // down to a single-slot mailbox
        chunk_rows in 1usize..24,    // down to one row per batch
        kill_worker in 0usize..8,
        kill_frac in 0u64..100,
    ) {
        let d = 1u64 << d_exp;
        let eps = eps_hundredths as f64 / 100.0;
        let params = ProtocolParams::new(n, d, k, eps, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed ^ 0xC0FF_EE00).rng();
        let population = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);

        let seq = run_event_driven_with(&params, &population, seed, ExecMode::Sequential);
        let kill_at = 1 + kill_frac * (d - 1) / 100;
        for workers in [1usize, 2, 8] {
            for kill in [false, true] {
                let mut cfg = LiveConfig::new(workers)
                    .with_mailbox_cap(mailbox_cap)
                    .with_chunk_rows(chunk_rows);
                if kill {
                    cfg = cfg.with_kill(kill_worker % workers, kill_at);
                }
                let (live, stats) = run_event_driven_live_with(
                    &params,
                    &population,
                    seed,
                    &cfg,
                    AccumulatorKind::Dense,
                );
                prop_assert_eq!(
                    &live.estimates, &seq.estimates,
                    "w={} cap={} chunk={} kill={}", workers, mailbox_cap, chunk_rows, kill
                );
                prop_assert_eq!(&live.group_sizes, &seq.group_sizes);
                prop_assert_eq!(&live.wire, &seq.wire);
                prop_assert_eq!(stats.recoveries, u64::from(kill));
                prop_assert_eq!(stats.rows, seq.wire.payload_bits);
            }
        }
    }

    /// The same claim for the fault-injected engine: a streaming run
    /// through per-emitter mailboxes reproduces the sequential scenario
    /// outcome field-for-field, with and without a worker restart.
    #[test]
    fn live_scenario_is_bit_identical_to_sequential(
        n in 40usize..140,
        d_exp in 3u32..6,
        k in 1usize..3,
        seed in 0u64..10_000,
        mailbox_cap in 1usize..4,
        chunk_rows in 1usize..16,
        kill_frac in 0u64..100,
    ) {
        let d = 1u64 << d_exp;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed ^ 0xBAD_F00D).rng();
        let population = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        let storm = Scenario::honest()
            .with_dropout(0.05)
            .with_stragglers(0.1, 3)
            .with_duplicates(0.05)
            .with_byzantine(0.1);

        let seq = run_scenario_with(&params, &population, seed, &storm, ExecMode::Sequential);
        let kill_at = 1 + kill_frac * (d - 1) / 100;
        for workers in [1usize, 2, 8] {
            for kill in [false, true] {
                let mut cfg = LiveConfig::new(workers)
                    .with_mailbox_cap(mailbox_cap)
                    .with_chunk_rows(chunk_rows);
                if kill {
                    cfg = cfg.with_kill(workers - 1, kill_at);
                }
                let (live, stats) = run_scenario_live_with(
                    &params,
                    &population,
                    seed,
                    &storm,
                    &cfg,
                    AccumulatorKind::Dense,
                );
                prop_assert_eq!(&live.estimates, &seq.estimates,
                    "w={} cap={} chunk={} kill={}", workers, mailbox_cap, chunk_rows, kill);
                prop_assert_eq!(&live.delivery, &seq.delivery);
                prop_assert_eq!(&live.wire, &seq.wire);
                prop_assert_eq!(&live.faults, &seq.faults);
                prop_assert_eq!(
                    &live.byzantine_accepted_by_period,
                    &seq.byzantine_accepted_by_period
                );
                prop_assert_eq!(stats.recoveries, u64::from(kill));
            }
        }
    }
}
