//! Duplicate-storm value-identity property tests.
//!
//! The period-close pre-dedupe filter
//! (`rtf_runtime::replay_frames_checked`) engages only when a delivery
//! period's merged mailbox holds more frames than are due — which is
//! exactly what retransmission storms, straggler pile-ups, and Byzantine
//! spam produce. The sequential engine never uses the filter, so
//! sequential ≡ batched ≡ live agreement under a random storm *is* the
//! proof the filter changes no observable: estimates, every
//! `PeriodDelivery` row (accepted/duplicate/late/…), wire totals, and
//! fault counts, for every worker count.

use proptest::prelude::*;
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_runtime::ExecMode;
use rtf_scenarios::config::Scenario;
use rtf_scenarios::engine::run_scenario_with;
use rtf_scenarios::run_scenario_live;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

/// A deterministic heavy storm that provably oversubscribes periods, so
/// the pre-dedupe filter is known to engage on the batched/live paths —
/// and the paths still agree with the unfiltered sequential reference.
#[test]
fn heavy_storm_engages_the_filter_and_stays_identical() {
    let params = ProtocolParams::new(200, 32, 3, 1.0, 0.05).unwrap();
    let mut rng = SeedSequence::new(77).rng();
    let pop = Population::generate(&UniformChanges::new(32, 3, 0.8), 200, &mut rng);
    let scenario = Scenario::honest().with_duplicates(0.9).with_byzantine(0.2);
    let seq = run_scenario_with(&params, &pop, 177, &scenario, ExecMode::Sequential);
    let oversubscribed = seq.delivery.iter().any(|r| {
        r.accepted + r.duplicate + r.late + r.unknown_user + r.invalid_period + r.premature > r.due
    });
    assert!(oversubscribed, "the storm must oversubscribe some period");
    for w in [1usize, 4] {
        let par = run_scenario_with(&params, &pop, 177, &scenario, ExecMode::Parallel(w));
        assert_eq!(par.delivery, seq.delivery, "parallel({w})");
        assert_eq!(par.estimates, seq.estimates, "parallel({w})");
        assert_eq!(par.faults, seq.faults, "parallel({w})");
        let live = run_scenario_live(&params, &pop, 177, &scenario, w);
        assert_eq!(live.delivery, seq.delivery, "live({w})");
        assert_eq!(live.estimates, seq.estimates, "live({w})");
        assert_eq!(live.faults, seq.faults, "live({w})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random storm intensity (duplicates, stragglers, Byzantine spam,
    /// in-flight corruption) over random protocol shapes: the filtered
    /// batched and streaming paths agree with the unfiltered sequential
    /// reference on every outcome field.
    #[test]
    fn duplicate_storms_are_value_identical_across_paths(
        n in 60usize..160,
        log_d in 3u32..=5,
        k in 1usize..=3,
        dup in 0.2f64..=0.9,
        straggle in 0.0f64..=0.4,
        byz in 0.0f64..=0.25,
        malformed in 0.0f64..=0.2,
        seed in 0u64..10_000,
    ) {
        let d = 1u64 << log_d;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        let scenario = Scenario::honest()
            .with_duplicates(dup)
            .with_stragglers(straggle, 3)
            .with_byzantine(byz)
            .with_malformed(malformed);

        let seq = run_scenario_with(&params, &pop, seed ^ 0xD00F, &scenario, ExecMode::Sequential);

        for w in [1usize, 3, 8] {
            let par =
                run_scenario_with(&params, &pop, seed ^ 0xD00F, &scenario, ExecMode::Parallel(w));
            prop_assert_eq!(&par.estimates, &seq.estimates, "parallel({}) estimates", w);
            prop_assert_eq!(&par.delivery, &seq.delivery, "parallel({}) delivery", w);
            prop_assert_eq!(&par.wire, &seq.wire, "parallel({}) wire", w);
            prop_assert_eq!(&par.faults, &seq.faults, "parallel({}) faults", w);
        }
        for w in [1usize, 4] {
            let live = run_scenario_live(&params, &pop, seed ^ 0xD00F, &scenario, w);
            prop_assert_eq!(&live.estimates, &seq.estimates, "live({}) estimates", w);
            prop_assert_eq!(&live.delivery, &seq.delivery, "live({}) delivery", w);
            prop_assert_eq!(&live.wire, &seq.wire, "live({}) wire", w);
            prop_assert_eq!(&live.faults, &seq.faults, "live({}) faults", w);
        }
    }
}
