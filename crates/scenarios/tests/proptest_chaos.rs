//! Crash-recovery chaos property tests.
//!
//! Random protocol shapes × random fault plans — worker kills,
//! mid-period whole-service snapshot/restarts, between-period restarts,
//! and their compositions (restart-then-kill in the same period, double
//! restarts) — driven through [`rtf_scenarios::assert_chaos_recovery`]:
//! both live engines, worker counts {1, 2, 8}, every outcome field
//! value-identical to the sequential reference, and every configured
//! fault asserted to have actually fired. The storage backend is itself
//! a random axis, so all four accumulator layouts take turns under
//! fire.

use proptest::prelude::*;
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_primitives::seeding::SeedSequence;
use rtf_scenarios::chaos::{assert_chaos_recovery, ChaosPlan};
use rtf_scenarios::config::Scenario;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

fn storm() -> Scenario {
    Scenario::honest()
        .with_dropout(0.05)
        .with_stragglers(0.1, 3)
        .with_duplicates(0.05)
        .with_byzantine(0.1)
}

/// Maps a `0..100` fraction onto a valid fault period `1..=d`.
fn period_at(frac: u64, d: u64) -> u64 {
    1 + frac * (d - 1) / 100
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A single randomly placed fault of each kind — kill, mid-period
    /// restart, between-periods restart — recovers exactly on a random
    /// backend under a fault storm.
    #[test]
    fn single_faults_recover_exactly(
        n in 40usize..120,
        d_exp in 3u32..5,            // d ∈ {8, 16}
        k in 1usize..3,
        seed in 0u64..10_000,
        backend_idx in 0usize..4,
        victim in 0usize..8,
        frac in 0u64..100,
    ) {
        let d = 1u64 << d_exp;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed ^ 0x0DDB_A115).rng();
        let population = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        let backend = AccumulatorKind::ALL[backend_idx];
        let at = period_at(frac, d);

        for plan in [
            ChaosPlan::new(),
            ChaosPlan::new().with_kill(victim, at),
            ChaosPlan::new().with_mid_restart(at),
            ChaosPlan::new().with_between_restart(at),
        ] {
            assert_chaos_recovery(&params, &population, seed, &storm(), &plan, backend);
        }
    }

    /// Composed faults — restart-then-kill in the same period, double
    /// restarts (two mid-period restarts of the same period, i.e. the
    /// freshly restored service is immediately killed again), and a
    /// clean restart later — still recover exactly.
    #[test]
    fn composed_faults_recover_exactly(
        n in 40usize..120,
        d_exp in 3u32..5,
        k in 1usize..3,
        seed in 0u64..10_000,
        backend_idx in 0usize..4,
        victim in 0usize..8,
        frac_a in 0u64..100,
        frac_b in 0u64..100,
    ) {
        let d = 1u64 << d_exp;
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed ^ 0xCAFE_D00D).rng();
        let population = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        let backend = AccumulatorKind::ALL[backend_idx];
        let a = period_at(frac_a, d);
        let b = period_at(frac_b, d);

        for plan in [
            // Restart mid-period, then kill a worker in the same period:
            // the restored service must survive a second, partial loss.
            ChaosPlan::new().with_mid_restart(a).with_kill(victim, a),
            // Double restart: the freshly restored service is dropped
            // and restored again before the period closes.
            ChaosPlan::new().with_mid_restart(a).with_mid_restart(a),
            // Independent placements plus a clean between-close restart.
            ChaosPlan::new()
                .with_kill(victim, a)
                .with_mid_restart(b)
                .with_between_restart(a),
        ] {
            assert_chaos_recovery(&params, &population, seed, &storm(), &plan, backend);
        }
    }
}
