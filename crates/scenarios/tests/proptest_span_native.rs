//! Span-native fault-layer value-identity property tests.
//!
//! The batched scenario engine classifies each client's whole fault
//! horizon once, folds honest on-time spans arithmetically as packed
//! sign words, and replays only the faulted residue through the
//! floor-checked ingestion ladder. The sequential engine routes every
//! report individually. These properties pin the two against each other
//! over random protocol shapes × fault storms × worker counts × both
//! seed schemas — on every observable field **and** on the residual
//! fault-RNG digest, which proves the pre-walk consumed each client's
//! private fault stream draw-for-draw (outcome equality alone cannot
//! distinguish "same draws" from "different draws that happened to
//! cancel").

use proptest::prelude::*;
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_primitives::fastseed::SeedSchema;
use rtf_primitives::seeding::SeedSequence;
use rtf_runtime::ExecMode;
use rtf_scenarios::config::Scenario;
use rtf_scenarios::run_scenario_schema_digest;
use rtf_streams::generator::UniformChanges;
use rtf_streams::population::Population;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random `(n, d, k, ε)` × random fault storm (dropout, churn,
    /// stragglers, duplicates, Byzantine spam, in-flight corruption) ×
    /// workers {1, 2, 8} × both seed schemas: the span-native batched
    /// path equals the sequential reference on estimates, delivery log,
    /// wire stats, fault counts, per-period Byzantine acceptance — and
    /// leaves every client's fault stream at the identical residual
    /// position.
    #[test]
    fn span_native_path_is_value_identical_to_sequential(
        n in 60usize..160,
        log_d in 3u32..=5,
        k in 1usize..=3,
        epsilon in 0.3f64..=1.0,
        drop in 0.0f64..=0.2,
        churn in 0.0f64..=0.05,
        straggle in 0.0f64..=0.4,
        dup in 0.0f64..=0.3,
        byz in 0.0f64..=0.25,
        malformed in 0.0f64..=0.2,
        seed in 0u64..10_000,
    ) {
        let d = 1u64 << log_d;
        let params = ProtocolParams::new(n, d, k, epsilon, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        let scenario = Scenario::honest()
            .with_dropout(drop)
            .with_churn(churn)
            .with_stragglers(straggle, 3)
            .with_duplicates(dup)
            .with_byzantine(byz)
            .with_malformed(malformed);

        for schema in [SeedSchema::V1Std, SeedSchema::V2Fast] {
            let (seq, digest_seq) = run_scenario_schema_digest(
                &params,
                &pop,
                seed ^ 0x5BA7,
                &scenario,
                ExecMode::Sequential,
                AccumulatorKind::Dense,
                schema,
            );
            for w in [1usize, 2, 8] {
                let (par, digest) = run_scenario_schema_digest(
                    &params,
                    &pop,
                    seed ^ 0x5BA7,
                    &scenario,
                    ExecMode::Parallel(w),
                    AccumulatorKind::Dense,
                    schema,
                );
                prop_assert_eq!(
                    &par.estimates, &seq.estimates,
                    "{:?} parallel({}) estimates", schema, w
                );
                prop_assert_eq!(
                    &par.delivery, &seq.delivery,
                    "{:?} parallel({}) delivery", schema, w
                );
                prop_assert_eq!(&par.wire, &seq.wire, "{:?} parallel({}) wire", schema, w);
                prop_assert_eq!(
                    &par.faults, &seq.faults,
                    "{:?} parallel({}) faults", schema, w
                );
                prop_assert_eq!(
                    &par.group_sizes, &seq.group_sizes,
                    "{:?} parallel({}) groups", schema, w
                );
                prop_assert_eq!(
                    &par.byzantine_accepted_by_period,
                    &seq.byzantine_accepted_by_period,
                    "{:?} parallel({}) Byzantine acceptance", schema, w
                );
                prop_assert_eq!(
                    digest, digest_seq,
                    "{:?} parallel({}) residual fault-stream digest", schema, w
                );
            }
        }
    }
}
