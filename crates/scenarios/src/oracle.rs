//! The differential oracle over the execution paths.
//!
//! The repo has four ways to execute the same `(params, population,
//! seed)` triple:
//!
//! * `rtf_core::protocol::run_in_memory` — the fast exact path;
//! * `rtf_sim::engine::run_event_driven` — the serialised message loop;
//! * [`crate::engine::run_scenario`] — the fault-injected message loop
//!   (honest scenario = no faults);
//! * `rtf_sim::aggregate::run_future_rand_aggregate` — the batched
//!   sampler (identical per-user randomness, its own server noise
//!   stream).
//!
//! The first three consume identical randomness and must agree
//! **value-for-value**; the aggregate path is identical **in
//! distribution**, which the oracle checks with mean/variance tolerance
//! bands derived from `rtf_analysis::variance`. For faulty scenarios the
//! oracle supplies an *envelope*: the honest band plus an exact bias
//! allowance computed from the server's delivery log.
//!
//! Orthogonally to the choice of path, the engines carry an execution
//! *mode* (`rtf_runtime::ExecMode`): the sequential reference schedule
//! vs the batched multi-worker pipeline. [`assert_mode_agreement`]
//! proves `sequential ≡ parallel(w)` value-for-value for
//! `w ∈ {1, 2, 8}` on the honest schedule **and** on arbitrary faulty
//! scenarios (where mailbox order matters).
//!
//! A third axis is the accumulator *storage backend*
//! (`rtf_core::accumulator::AccumulatorKind`): dense `f64`, fixed-point
//! `i64`, compressed sparse, SoA count lanes. All report sums are
//! integer-valued, so every backend stores them exactly and
//! [`assert_backend_agreement`] proves
//! `dense ≡ fixed ≡ sparse ≡ soa` **exactly** (not within tolerance) on
//! honest and faulty schedules at every worker count.

use crate::config::Scenario;
use crate::engine::{
    run_scenario, run_scenario_schema, run_scenario_schema_digest, run_scenario_with,
    run_scenario_with_backend, ScenarioOutcome,
};
use crate::live::{run_scenario_live_schema, run_scenario_live_with};
use rtf_analysis::variance::{future_rand_scales, predicted_variance};
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_core::protocol::{run_in_memory, run_in_memory_schema};
use rtf_primitives::fastseed::SeedSchema;
use rtf_runtime::ingest::LiveConfig;
use rtf_runtime::{ExecMode, WorkerPool};
use rtf_sim::aggregate::run_future_rand_aggregate;
use rtf_sim::engine::{
    run_event_driven, run_event_driven_schema, run_event_driven_with, run_event_driven_with_backend,
};
use rtf_sim::live::{run_event_driven_live_schema, run_event_driven_live_with};
use rtf_streams::population::Population;

/// The worker counts the mode-agreement check proves equivalent to the
/// sequential schedule.
pub const MODE_AGREEMENT_WORKERS: [usize; 3] = [1, 2, 8];

/// The values all exact paths agreed on.
#[derive(Debug, Clone)]
pub struct ExactAgreement {
    /// The (shared) estimates `â[t]`.
    pub estimates: Vec<f64>,
    /// The (shared) per-order group sizes.
    pub group_sizes: Vec<usize>,
    /// The (shared) total report count.
    pub reports: u64,
}

/// Runs one seed through every execution path and asserts agreement:
/// value-for-value across `run_in_memory`, `run_event_driven`, and the
/// honest scenario engine; shared per-user randomness (group sizes,
/// report counts) also for the aggregate sampler.
///
/// # Examples
///
/// ```
/// use rtf_core::params::ProtocolParams;
/// use rtf_primitives::seeding::SeedSequence;
/// use rtf_scenarios::oracle::assert_exact_agreement;
/// use rtf_streams::generator::UniformChanges;
/// use rtf_streams::population::Population;
///
/// let params = ProtocolParams::new(40, 8, 2, 1.0, 0.05).unwrap();
/// let mut rng = SeedSequence::new(7).rng();
/// let population = Population::generate(&UniformChanges::new(8, 2, 0.8), 40, &mut rng);
/// let agreed = assert_exact_agreement(&params, &population, 7);
/// assert_eq!(agreed.estimates.len(), 8); // one estimate per period
/// ```
///
/// # Panics
/// Panics with the first diverging period/value if any path disagrees.
pub fn assert_exact_agreement(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
) -> ExactAgreement {
    let mem = run_in_memory(params, population, seed);
    let ev = run_event_driven(params, population, seed);
    let sc = run_scenario(params, population, seed, &Scenario::honest());
    let agg = run_future_rand_aggregate(params, population, seed);

    for (label, estimates) in [("event-driven", &ev.estimates), ("scenario", &sc.estimates)] {
        for (t, (a, b)) in mem.estimates().iter().zip(estimates).enumerate() {
            assert!(
                a == b,
                "{label} diverges from in-memory at t={} ({params}, seed {seed}): {a} vs {b}",
                t + 1
            );
        }
        assert_eq!(
            mem.estimates().len(),
            estimates.len(),
            "{label} produced a different horizon"
        );
    }
    for (label, sizes) in [
        ("event-driven", &ev.group_sizes),
        ("scenario", &sc.group_sizes),
        ("aggregate", &agg.group_sizes().to_vec()),
    ] {
        assert_eq!(
            mem.group_sizes(),
            &sizes[..],
            "{label} split the population differently (seed {seed})"
        );
    }
    assert_eq!(mem.reports_sent(), ev.wire.payload_bits);
    assert_eq!(mem.reports_sent(), sc.wire.payload_bits);
    assert_eq!(mem.reports_sent(), agg.reports_sent());

    // The runtime claim: the batched parallel pipeline is the sequential
    // schedule, value-for-value, for every worker count.
    assert_mode_agreement(params, population, seed, &Scenario::honest());

    ExactAgreement {
        estimates: mem.estimates().to_vec(),
        group_sizes: mem.group_sizes().to_vec(),
        reports: mem.reports_sent(),
    }
}

/// Asserts `sequential ≡ parallel(w)` **value-for-value** for every
/// `w ∈` [`MODE_AGREEMENT_WORKERS`], on both engines that carry an
/// execution mode:
///
/// * the honest event-driven engine (estimates, group sizes, wire
///   stats), and
/// * the fault-injected engine under `scenario` (estimates, delivery
///   log, wire stats, fault counts, per-period Byzantine acceptance).
///
/// Frame order matters under Byzantine impersonation, so passing a
/// faulty scenario here proves the shard merge reconstructs the
/// sequential mailbox order exactly — not merely that sums commute. The
/// scenario legs also compare the **residual fault-stream digest**
/// ([`run_scenario_schema_digest`]): the span-native fault layer must
/// leave every client's private fault RNG at the exact position the
/// sequential drain leaves it, which outcome equality alone cannot see.
///
/// # Panics
/// Panics naming the first diverging engine/worker count.
pub fn assert_mode_agreement(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
) {
    let backend = AccumulatorKind::from_env();
    let schema = SeedSchema::from_env();
    let ev_seq = run_event_driven_with(params, population, seed, ExecMode::Sequential);
    let (sc_seq, digest_seq) = run_scenario_schema_digest(
        params,
        population,
        seed,
        scenario,
        ExecMode::Sequential,
        backend,
        schema,
    );
    for w in MODE_AGREEMENT_WORKERS {
        let ev = run_event_driven_with(params, population, seed, ExecMode::Parallel(w));
        assert_eq!(
            ev.estimates, ev_seq.estimates,
            "event-driven parallel({w}) diverges from sequential (seed {seed})"
        );
        assert_eq!(ev.group_sizes, ev_seq.group_sizes, "parallel({w}) groups");
        assert_eq!(ev.wire, ev_seq.wire, "parallel({w}) wire stats");

        let (sc, digest) = run_scenario_schema_digest(
            params,
            population,
            seed,
            scenario,
            ExecMode::Parallel(w),
            backend,
            schema,
        );
        assert_eq!(
            sc.estimates, sc_seq.estimates,
            "scenario parallel({w}) diverges from sequential (seed {seed})"
        );
        assert_eq!(sc.delivery, sc_seq.delivery, "parallel({w}) delivery log");
        assert_eq!(sc.wire, sc_seq.wire, "parallel({w}) wire stats");
        assert_eq!(sc.faults, sc_seq.faults, "parallel({w}) fault counts");
        assert_eq!(
            sc.byzantine_accepted_by_period, sc_seq.byzantine_accepted_by_period,
            "parallel({w}) per-period Byzantine acceptance"
        );
        assert_eq!(
            digest, digest_seq,
            "parallel({w}) residual fault-stream digest (seed {seed}): \
             the span-native layer consumed fault draws differently"
        );
    }
}

/// Asserts **streaming ≡ batched ≡ sequential**, value-for-value, on
/// both engines:
///
/// * the honest schedule — sequential `run_event_driven` vs the batched
///   pipeline vs the streaming ingestion service
///   (`run_event_driven_live_with`): estimates, group sizes, wire
///   stats;
/// * the fault-injected schedule under `scenario` — sequential
///   `run_scenario` vs batched vs `run_scenario_live_with`: estimates,
///   delivery log, wire stats, fault counts, per-period Byzantine
///   acceptance.
///
/// The streaming runs use a deliberately hostile service shape — a
/// 2-batch mailbox and a small chunk size, so producers stall on
/// backpressure and journals hold several entries — for every worker
/// count in [`MODE_AGREEMENT_WORKERS`], each under four fault plans:
///
/// 1. no faults;
/// 2. a worker killed mid-horizon and recovered from the journal;
/// 3. a whole-service snapshot/restart mid-period (journals full);
/// 4. the composition — a mid-period restart *and* a worker kill in the
///    same period, plus a clean between-periods restart later.
///
/// Every configured fault is asserted to have actually fired (via
/// `IngestStats::{recoveries, restarts}`), so none of these legs can
/// pass vacuously. The storage backend comes from `RTF_BACKEND`, so the
/// CI backend matrix replays this proof on every layout.
///
/// # Panics
/// Panics naming the first diverging engine/worker count/fault
/// injection.
pub fn assert_live_agreement(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
) {
    let backend = AccumulatorKind::from_env();
    let ev_seq = run_event_driven_with(params, population, seed, ExecMode::Sequential);
    let sc_seq = run_scenario_with(params, population, seed, scenario, ExecMode::Sequential);
    // Complete the three-way claim: the batched pipeline sits between
    // sequential and streaming.
    let ev_bat = run_event_driven_with(params, population, seed, ExecMode::Parallel(2));
    assert_eq!(
        ev_bat.estimates, ev_seq.estimates,
        "batched event-driven diverges from sequential (seed {seed})"
    );
    assert_eq!(ev_bat.wire, ev_seq.wire, "batched wire stats");
    let sc_bat = run_scenario_with(params, population, seed, scenario, ExecMode::Parallel(2));
    assert_eq!(
        sc_bat.estimates, sc_seq.estimates,
        "batched scenario diverges from sequential (seed {seed})"
    );
    assert_eq!(sc_bat.delivery, sc_seq.delivery, "batched delivery log");

    let fault_at = (params.d() / 2).max(1);
    let later = (params.d() * 3 / 4).max(1);
    for w in MODE_AGREEMENT_WORKERS {
        let base = || LiveConfig::new(w).with_mailbox_cap(2).with_chunk_rows(7);
        let victim = w.saturating_sub(1);
        // (config, label, expected kills fired, expected restarts fired)
        let plans: [(LiveConfig, String, u64, u64); 4] = [
            (base(), format!("live({w})"), 0, 0),
            (
                base().with_kill(victim, fault_at),
                format!("live({w}), worker {victim} killed at t={fault_at}"),
                1,
                0,
            ),
            (
                base().with_restart(fault_at),
                format!("live({w}), service restarted mid-period t={fault_at}"),
                0,
                1,
            ),
            (
                base()
                    .with_restart(fault_at)
                    .with_kill(victim, fault_at)
                    .with_restart_after(later),
                format!("live({w}), restart+kill at t={fault_at}, clean restart after t={later}"),
                1,
                2,
            ),
        ];
        for (cfg, label, kills, restarts) in plans {
            let (ev, ev_stats) =
                run_event_driven_live_with(params, population, seed, &cfg, backend);
            assert_eq!(
                ev.estimates, ev_seq.estimates,
                "{label}: event-driven estimates diverge from sequential (seed {seed})"
            );
            assert_eq!(ev.group_sizes, ev_seq.group_sizes, "{label}: groups");
            assert_eq!(ev.wire, ev_seq.wire, "{label}: wire stats");

            let (sc, sc_stats) =
                run_scenario_live_with(params, population, seed, scenario, &cfg, backend);
            assert_eq!(
                sc.estimates, sc_seq.estimates,
                "{label}: scenario estimates diverge from sequential (seed {seed})"
            );
            assert_eq!(sc.group_sizes, sc_seq.group_sizes, "{label}: groups");
            assert_eq!(sc.delivery, sc_seq.delivery, "{label}: delivery log");
            assert_eq!(sc.wire, sc_seq.wire, "{label}: wire stats");
            assert_eq!(sc.faults, sc_seq.faults, "{label}: fault counts");
            assert_eq!(
                sc.byzantine_accepted_by_period, sc_seq.byzantine_accepted_by_period,
                "{label}: per-period Byzantine acceptance"
            );
            // No vacuous passes: every configured fault must have fired.
            for stats in [&ev_stats, &sc_stats] {
                assert_eq!(stats.recoveries, kills, "{label}: kills fired");
                assert_eq!(stats.restarts, restarts, "{label}: restarts fired");
            }
        }
    }
}

/// Asserts **sequential ≡ parallel(w) ≡ live**, value-for-value, under
/// an *explicit* client randomness schema — the differential proof the
/// fast-seeds (v2) schema rides on:
///
/// * the in-memory reference (`run_in_memory_schema`) and the sequential
///   event-driven engine agree estimate-for-estimate;
/// * the honest event-driven engine and the fault-injected engine under
///   `scenario` agree across sequential, every worker count in
///   [`MODE_AGREEMENT_WORKERS`], and **all four** storage backends;
/// * the live streaming drivers agree too, honest and under the
///   scenario, for every worker count — both with no faults and with a
///   mid-period whole-service restart *plus* a worker kill in the same
///   period (the snapshot header now carries the schema, so this also
///   proves the schema survives snapshot/restore);
/// * every configured kill/restart is asserted to have fired.
///
/// Under [`SeedSchema::V2Fast`] the batched/live paths take the packed
/// word-at-a-time generator while the sequential paths draw per report —
/// so agreement here pins the two implementations of the counter-based
/// stream against each other.
///
/// # Panics
/// Panics naming the first diverging path/backend/worker count.
pub fn assert_schema_agreement(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
    schema: SeedSchema,
) {
    let mem = run_in_memory_schema(params, population, seed, schema);
    let ev_seq = run_event_driven_schema(
        params,
        population,
        seed,
        ExecMode::Sequential,
        AccumulatorKind::Dense,
        schema,
    );
    assert_eq!(
        mem.estimates(),
        &ev_seq.estimates[..],
        "event-driven sequential diverges from in-memory under {schema} (seed {seed})"
    );
    assert_eq!(
        mem.group_sizes(),
        &ev_seq.group_sizes[..],
        "{schema} groups"
    );
    let sc_seq = run_scenario_schema(
        params,
        population,
        seed,
        scenario,
        ExecMode::Sequential,
        AccumulatorKind::Dense,
        schema,
    );

    let fault_at = (params.d() / 2).max(1);
    for backend in AccumulatorKind::ALL {
        let modes = std::iter::once(ExecMode::Sequential)
            .chain(MODE_AGREEMENT_WORKERS.into_iter().map(ExecMode::Parallel));
        for mode in modes {
            let ev = run_event_driven_schema(params, population, seed, mode, backend, schema);
            assert_eq!(
                ev.estimates, ev_seq.estimates,
                "event-driven {backend}/{mode} diverges under {schema} (seed {seed})"
            );
            assert_eq!(ev.wire, ev_seq.wire, "{schema} {backend}/{mode} wire");
            let sc = run_scenario_schema(params, population, seed, scenario, mode, backend, schema);
            assert_eq!(
                sc.estimates, sc_seq.estimates,
                "scenario {backend}/{mode} diverges under {schema} (seed {seed})"
            );
            assert_eq!(sc.delivery, sc_seq.delivery, "{schema} {backend}/{mode}");
            assert_eq!(sc.faults, sc_seq.faults, "{schema} {backend}/{mode}");
            assert_eq!(
                sc.byzantine_accepted_by_period, sc_seq.byzantine_accepted_by_period,
                "{schema} {backend}/{mode} Byzantine acceptance"
            );
        }

        for w in MODE_AGREEMENT_WORKERS {
            let base = || LiveConfig::new(w).with_mailbox_cap(2).with_chunk_rows(7);
            let victim = w.saturating_sub(1);
            // (config, expected kills, expected restarts)
            let plans = [
                (base(), 0u64, 0u64),
                (
                    base().with_restart(fault_at).with_kill(victim, fault_at),
                    1,
                    1,
                ),
            ];
            for (cfg, kills, restarts) in plans {
                let label =
                    format!("{schema} {backend} live({w}), {kills} kill(s), {restarts} restart(s)");
                let (ev, ev_stats) =
                    run_event_driven_live_schema(params, population, seed, &cfg, backend, schema);
                assert_eq!(ev.estimates, ev_seq.estimates, "{label}: event-driven");
                assert_eq!(ev.wire, ev_seq.wire, "{label}: wire");
                let (sc, sc_stats) = run_scenario_live_schema(
                    params, population, seed, scenario, &cfg, backend, schema,
                );
                assert_eq!(sc.estimates, sc_seq.estimates, "{label}: scenario");
                assert_eq!(sc.delivery, sc_seq.delivery, "{label}: delivery");
                assert_eq!(sc.faults, sc_seq.faults, "{label}: faults");
                for stats in [&ev_stats, &sc_stats] {
                    assert_eq!(stats.recoveries, kills, "{label}: kills fired");
                    assert_eq!(stats.restarts, restarts, "{label}: restarts fired");
                }
            }
        }
    }
}

/// Asserts every accumulator storage backend (`dense`, `fixed`,
/// `sparse`, `soa`) produces **identical** results — exact equality, not
/// tolerance-based, since integer-valued sums are stored exactly by all
/// four layouts — on:
///
/// * the honest event-driven engine (estimates, group sizes, wire
///   stats), and
/// * the fault-injected engine under `scenario` (estimates, delivery
///   log, wire stats, fault counts, per-period Byzantine acceptance),
///
/// each in sequential mode **and** at every worker count in
/// [`MODE_AGREEMENT_WORKERS`]. The reference is the dense sequential
/// run — the storage layout the original protocol shipped with.
///
/// # Panics
/// Panics naming the first diverging backend/mode/engine.
pub fn assert_backend_agreement(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
) {
    let ev_ref = run_event_driven_with_backend(
        params,
        population,
        seed,
        ExecMode::Sequential,
        AccumulatorKind::Dense,
    );
    let sc_ref = run_scenario_with_backend(
        params,
        population,
        seed,
        scenario,
        ExecMode::Sequential,
        AccumulatorKind::Dense,
    );
    let modes = std::iter::once(ExecMode::Sequential)
        .chain(MODE_AGREEMENT_WORKERS.into_iter().map(ExecMode::Parallel));
    for mode in modes {
        for backend in AccumulatorKind::ALL {
            if mode == ExecMode::Sequential && backend == AccumulatorKind::Dense {
                continue; // that combination *is* the reference
            }
            let ev = run_event_driven_with_backend(params, population, seed, mode, backend);
            assert_eq!(
                ev.estimates, ev_ref.estimates,
                "event-driven {backend}/{mode} diverges from dense sequential (seed {seed})"
            );
            assert_eq!(
                ev.group_sizes, ev_ref.group_sizes,
                "{backend}/{mode} groups"
            );
            assert_eq!(ev.wire, ev_ref.wire, "{backend}/{mode} wire stats");

            let sc = run_scenario_with_backend(params, population, seed, scenario, mode, backend);
            assert_eq!(
                sc.estimates, sc_ref.estimates,
                "scenario {backend}/{mode} diverges from dense sequential (seed {seed})"
            );
            assert_eq!(sc.delivery, sc_ref.delivery, "{backend}/{mode} delivery");
            assert_eq!(sc.wire, sc_ref.wire, "{backend}/{mode} wire stats");
            assert_eq!(sc.faults, sc_ref.faults, "{backend}/{mode} fault counts");
            assert_eq!(
                sc.byzantine_accepted_by_period, sc_ref.byzantine_accepted_by_period,
                "{backend}/{mode} per-period Byzantine acceptance"
            );
        }
    }
}

/// Distributional distance between the aggregate sampler and the exact
/// path, measured over repeated seeds.
#[derive(Debug, Clone, Copy)]
pub struct DistributionalAgreement {
    /// Number of paired runs.
    pub trials: u64,
    /// Max over `t` of `|mean_agg − mean_exact| / SE` (z-score units).
    pub max_mean_z: f64,
    /// Max over `t` of the relative variance mismatch between paths.
    pub max_var_rel_diff: f64,
    /// Max over `t` and both paths of the relative error of the
    /// empirical variance against `rtf_analysis`'s closed form.
    pub max_pred_rel_err: f64,
}

impl DistributionalAgreement {
    /// Asserts every measured distance is inside its tolerance.
    ///
    /// # Panics
    /// Panics naming the offending statistic.
    pub fn assert_within(&self, mean_z: f64, var_rel: f64, pred_rel: f64) {
        assert!(
            self.max_mean_z <= mean_z,
            "aggregate/exact mean z-score {} exceeds {mean_z}",
            self.max_mean_z
        );
        assert!(
            self.max_var_rel_diff <= var_rel,
            "aggregate/exact variance mismatch {} exceeds {var_rel}",
            self.max_var_rel_diff
        );
        assert!(
            self.max_pred_rel_err <= pred_rel,
            "empirical variance off the closed form by {} (> {pred_rel})",
            self.max_pred_rel_err
        );
    }
}

/// Runs `trials` paired executions (seeds `base_seed..base_seed+trials`)
/// of the aggregate sampler and `run_in_memory` and measures their
/// distributional agreement per period. Trials fan out over the worker
/// pool selected by `RTF_WORKERS` ([`ExecMode::from_env`]).
pub fn measure_aggregate_agreement(
    params: &ProtocolParams,
    population: &Population,
    base_seed: u64,
    trials: u64,
) -> DistributionalAgreement {
    measure_aggregate_agreement_with(params, population, base_seed, trials, ExecMode::from_env())
}

/// [`measure_aggregate_agreement`] on an explicit [`ExecMode`]'s pool.
///
/// The paired runs are embarrassingly parallel (one seed each); the
/// moment sums are folded afterwards **in trial order**, so the measured
/// statistics are bit-identical to the sequential loop for any worker
/// count — floating-point accumulation order never depends on
/// scheduling.
pub fn measure_aggregate_agreement_with(
    params: &ProtocolParams,
    population: &Population,
    base_seed: u64,
    trials: u64,
    mode: ExecMode,
) -> DistributionalAgreement {
    assert!(trials >= 2, "need at least two trials");
    let d = params.d() as usize;
    let pool = WorkerPool::for_mode(mode);
    let per_trial: Vec<(Vec<f64>, Vec<f64>)> = pool.map_indexed(trials as usize, |s| {
        let seed = base_seed + s as u64;
        let a = run_future_rand_aggregate(params, population, seed);
        let e = run_in_memory(params, population, seed);
        (a.estimates().to_vec(), e.estimates().to_vec())
    });
    let (mut sum_a, mut sum_e) = (vec![0.0; d], vec![0.0; d]);
    let (mut sq_a, mut sq_e) = (vec![0.0; d], vec![0.0; d]);
    for (a, e) in &per_trial {
        for t in 0..d {
            sum_a[t] += a[t];
            sum_e[t] += e[t];
            sq_a[t] += a[t].powi(2);
            sq_e[t] += e[t].powi(2);
        }
    }
    let predicted = predicted_variance(params, population);
    let n = trials as f64;
    let (mut max_mean_z, mut max_var_rel, mut max_pred_rel) = (0.0f64, 0.0f64, 0.0f64);
    for t in 0..d {
        let (ma, me) = (sum_a[t] / n, sum_e[t] / n);
        let va = (sq_a[t] / n - ma * ma).max(0.0);
        let ve = (sq_e[t] / n - me * me).max(0.0);
        let se = ((va + ve) / n).sqrt().max(1e-12);
        max_mean_z = max_mean_z.max((ma - me).abs() / se);
        max_var_rel = max_var_rel.max((va - ve).abs() / va.max(ve).max(1e-12));
        for v in [va, ve] {
            max_pred_rel = max_pred_rel.max((v - predicted[t]).abs() / predicted[t]);
        }
    }
    DistributionalAgreement {
        trials,
        max_mean_z,
        max_var_rel_diff: max_var_rel,
        max_pred_rel_err: max_pred_rel,
    }
}

/// The largest per-order estimator scale `(1 + log d)/c_gap(h)` — the
/// worst-case impact of one perturbed report bit on any `â[t]`.
pub fn max_scale(params: &ProtocolParams) -> f64 {
    future_rand_scales(params).into_iter().fold(0.0, f64::max)
}

/// The honest tolerance band: `z·√Var[â[t]]` per period, from
/// `rtf_analysis`'s closed-form variance.
pub fn tolerance_band(params: &ProtocolParams, population: &Population, z: f64) -> Vec<f64> {
    predicted_variance(params, population)
        .into_iter()
        .map(|v| z * v.max(0.0).sqrt())
        .collect()
}

/// The faulty-scenario envelope: the honest band plus an exact bias
/// allowance. Every report missing by period `t` removes at most one
/// `±max_scale` contribution from `â[t]`; every accepted Byzantine
/// fabrication adds one *and* may displace the slot's honest report
/// (which then dedupes away as a duplicate without ever counting as
/// missing), so forgeries are charged double:
///
/// ```text
/// |â[t] − a[t]| ≤ z·σ[t] + max_scale·(missing≤t + 2·byz_accepted≤t)
/// ```
///
/// holds whenever the honest run sits inside its own `z·σ` band.
pub fn faulty_envelope(
    params: &ProtocolParams,
    population: &Population,
    outcome: &ScenarioOutcome,
    z: f64,
) -> Vec<f64> {
    let band = tolerance_band(params, population, z);
    let scale = max_scale(params);
    let cum_missing = outcome.cumulative_missing();
    let mut cum_byz = 0u64;
    band.iter()
        .zip(cum_missing.iter())
        .zip(outcome.byzantine_accepted_by_period.iter())
        .map(|((b, &m), &bz)| {
            cum_byz += bz;
            b + scale * (m + 2 * cum_byz) as f64
        })
        .collect()
}

/// One period whose error escaped its bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandViolation {
    /// The period (1-based).
    pub t: u64,
    /// `|â[t] − a[t]|`.
    pub error: f64,
    /// The bound it exceeded.
    pub bound: f64,
}

/// Every period whose estimate leaves `truth ± bound`.
pub fn band_violations(estimates: &[f64], truth: &[f64], bounds: &[f64]) -> Vec<BandViolation> {
    assert_eq!(estimates.len(), truth.len(), "length mismatch");
    assert_eq!(estimates.len(), bounds.len(), "length mismatch");
    estimates
        .iter()
        .zip(truth)
        .zip(bounds)
        .enumerate()
        .filter_map(|(t, ((e, a), b))| {
            let error = (e - a).abs();
            (error > *b).then_some(BandViolation {
                t: (t + 1) as u64,
                error,
                bound: *b,
            })
        })
        .collect()
}

/// Asserts a run stays inside its per-period bounds.
///
/// # Panics
/// Panics listing every violating period.
pub fn assert_within_band(estimates: &[f64], truth: &[f64], bounds: &[f64]) {
    let violations = band_violations(estimates, truth, bounds);
    assert!(
        violations.is_empty(),
        "{} period(s) escaped the tolerance band: {violations:?}",
        violations.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_primitives::seeding::SeedSequence;
    use rtf_streams::generator::UniformChanges;

    fn setup(n: usize, d: u64, k: usize, seed: u64) -> (ProtocolParams, Population) {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        (params, pop)
    }

    #[test]
    fn exact_agreement_holds_on_honest_runs() {
        let (params, pop) = setup(140, 32, 3, 80);
        let agreed = assert_exact_agreement(&params, &pop, 17);
        assert_eq!(agreed.estimates.len(), 32);
        assert_eq!(agreed.group_sizes.iter().sum::<usize>(), 140);
        assert!(agreed.reports > 0);
    }

    #[test]
    fn distributional_agreement_is_tight_for_true_pairs() {
        let (params, pop) = setup(250, 16, 3, 81);
        let m = measure_aggregate_agreement(&params, &pop, 4_000, 250);
        m.assert_within(6.0, 0.5, 0.35);
    }

    #[test]
    fn pooled_aggregate_sampling_matches_sequential_bitwise() {
        // The parallel fan-out folds moment sums in trial order, so the
        // measured statistics must be bit-identical for any pool size.
        let (params, pop) = setup(120, 16, 2, 85);
        let seq = measure_aggregate_agreement_with(&params, &pop, 9_000, 40, ExecMode::Sequential);
        for w in [1usize, 3, 8] {
            let par =
                measure_aggregate_agreement_with(&params, &pop, 9_000, 40, ExecMode::Parallel(w));
            assert_eq!(par.trials, seq.trials);
            assert_eq!(par.max_mean_z.to_bits(), seq.max_mean_z.to_bits(), "{w}");
            assert_eq!(
                par.max_var_rel_diff.to_bits(),
                seq.max_var_rel_diff.to_bits(),
                "{w}"
            );
            assert_eq!(
                par.max_pred_rel_err.to_bits(),
                seq.max_pred_rel_err.to_bits(),
                "{w}"
            );
        }
    }

    #[test]
    fn backend_agreement_holds_on_honest_and_faulty_schedules() {
        // The storage-engine claim: dense ≡ fixed ≡ sparse ≡ soa exactly,
        // sequential and at every proven worker count, with and without a
        // fault storm whose Byzantine acceptance races are order-
        // sensitive.
        let (params, pop) = setup(120, 16, 2, 87);
        assert_backend_agreement(&params, &pop, 41, &Scenario::honest());
        let storm = Scenario::honest()
            .with_dropout(0.05)
            .with_stragglers(0.1, 3)
            .with_duplicates(0.05)
            .with_byzantine(0.1);
        assert_backend_agreement(&params, &pop, 41, &storm);
    }

    #[test]
    fn live_agreement_holds_on_honest_and_faulty_schedules() {
        // The streaming tentpole claim at unit scale: streaming ≡
        // batched ≡ sequential on both engines, with backpressure,
        // mid-horizon worker kills, and whole-service restarts (and
        // their composition) in the mix.
        let (params, pop) = setup(110, 16, 2, 88);
        assert_live_agreement(&params, &pop, 51, &Scenario::honest());
        let storm = Scenario::honest()
            .with_dropout(0.05)
            .with_stragglers(0.1, 3)
            .with_duplicates(0.05)
            .with_byzantine(0.1);
        assert_live_agreement(&params, &pop, 51, &storm);
    }

    #[test]
    fn mode_agreement_holds_on_a_faulty_scenario() {
        // sequential ≡ parallel(w) even when faults make the mailbox
        // order load-bearing.
        let (params, pop) = setup(150, 16, 2, 86);
        let storm = Scenario::honest()
            .with_dropout(0.05)
            .with_stragglers(0.1, 3)
            .with_duplicates(0.05)
            .with_byzantine(0.1);
        assert_mode_agreement(&params, &pop, 31, &storm);
    }

    #[test]
    fn distributional_check_catches_a_wrong_scale() {
        // Sanity that the oracle has teeth: doubling every estimate of one
        // path must blow the variance tolerance.
        let (params, pop) = setup(250, 16, 3, 81);
        let m = measure_aggregate_agreement(&params, &pop, 4_000, 250);
        let broken = DistributionalAgreement {
            max_var_rel_diff: 3.0, // what a 2× scale bug produces (4× var)
            ..m
        };
        let caught = std::panic::catch_unwind(|| broken.assert_within(6.0, 0.5, 0.35));
        assert!(caught.is_err());
    }

    #[test]
    fn honest_runs_sit_inside_the_band() {
        let (params, pop) = setup(600, 32, 3, 82);
        let out = run_scenario(&params, &pop, 23, &Scenario::honest());
        let band = tolerance_band(&params, &pop, 4.5);
        assert_within_band(&out.estimates, pop.true_counts(), &band);
    }

    #[test]
    fn band_violations_detect_escapes() {
        let truth = [10.0, 10.0, 10.0];
        let est = [11.0, 15.0, 10.0];
        let band = [2.0, 2.0, 2.0];
        let v = band_violations(&est, &truth, &band);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].t, 2);
        assert!((v[0].error - 5.0).abs() < 1e-12);
    }

    #[test]
    fn faulty_envelope_grows_with_missing_traffic() {
        let (params, pop) = setup(400, 16, 2, 83);
        let honest = run_scenario(&params, &pop, 29, &Scenario::honest());
        let faulty = run_scenario(&params, &pop, 29, &Scenario::honest().with_dropout(0.3));
        let env_honest = faulty_envelope(&params, &pop, &honest, 4.0);
        let env_faulty = faulty_envelope(&params, &pop, &faulty, 4.0);
        // With no faults the envelope *is* the band.
        let band = tolerance_band(&params, &pop, 4.0);
        for (a, b) in env_honest.iter().zip(&band) {
            assert!((a - b).abs() < 1e-9);
        }
        // With dropout it is strictly wider at the end of the horizon.
        assert!(env_faulty.last().unwrap() > env_honest.last().unwrap());
        // And the faulty run still sits inside its envelope.
        assert_within_band(&faulty.estimates, pop.true_counts(), &env_faulty);
    }
}
