//! Fault-injected longitudinal workloads and the differential oracle.
//!
//! The paper's guarantee is for an online protocol in which every client
//! reports once per assigned boundary, losslessly. Real longitudinal
//! deployments are not like that: clients drop out, straggle, retransmit,
//! churn away for good, or lie. This crate makes those failure modes a
//! first-class, deterministic test surface:
//!
//! * [`config`] — declarative [`Scenario`] specs: per-report dropout,
//!   per-period permanent churn, straggler delays `Δ`, retransmitted
//!   duplicates, and a Byzantine client fraction;
//! * [`engine`] — [`run_scenario`]: the message-level round loop of
//!   `rtf_sim::engine` wrapped in a seeded fault layer. Client protocol
//!   randomness is never touched, so the honest scenario is value-for-
//!   value identical to `run_event_driven`, and honest clients' bits are
//!   identical across all scenarios of the same seed;
//! * [`live`] — [`run_scenario_live`]: the same fault-injected schedule
//!   served through the streaming ingestion service
//!   (`rtf_runtime::ingest`): per-emitter bounded mailboxes with
//!   blocking backpressure, period-close merge back into the exact
//!   sequential mailbox order, and exact journal-replay recovery of a
//!   killed worker;
//! * [`oracle`] — the differential oracle: asserts exact agreement of the
//!   exact paths under one seed (including
//!   [`oracle::assert_live_agreement`]: streaming ≡ batched ≡
//!   sequential), distributional agreement (tolerance bands from
//!   `rtf_analysis::variance`) for the aggregate sampler, and
//!   bias-aware envelopes for faulty runs;
//! * [`chaos`] — the crash-recovery harness: [`ChaosPlan`]s compose
//!   worker kills, mid-period whole-service snapshot/restarts, and
//!   between-period restarts; [`chaos::assert_chaos_recovery`] proves
//!   every plan recovers bit-identically on both engines and that every
//!   configured fault actually fired;
//! * [`dsl`] — the scenario-authoring layer: [`ScenarioSpec`], a fluent
//!   builder and TOML front end composing protocol, population, shaped
//!   fault timeline, chaos plan, and a registered (never vacuous)
//!   expectation; the named workload library under `workloads/*.toml`
//!   ([`dsl::resolve_workload`]); and the spec-level oracle
//!   [`dsl::verify_workload`] (sequential ≡ batched ≡ live on all four
//!   backends, expectation asserted to fire). See
//!   `docs/authoring-scenarios.md` and `docs/workload-catalog.md`.
//!
//! Entry points: [`run_scenario`] for one fault-injected execution,
//! [`oracle::assert_exact_agreement`] /
//! [`oracle::measure_aggregate_agreement`] for differential checks,
//! [`dsl::verify_workload`] for a declarative spec end to end.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod chaos;
pub mod config;
pub mod dsl;
pub mod engine;
pub mod live;
pub mod oracle;

pub use chaos::{assert_chaos_recovery, ChaosPlan};
pub use config::{DelayLaw, FaultTimeline, Scenario};
pub use dsl::{ExpectationSpec, ScenarioSpec, SpecError};
pub use engine::{
    run_scenario, run_scenario_batched_timed, run_scenario_schema, run_scenario_schema_digest,
    run_scenario_sequential_timed, run_scenario_timeline, run_scenario_timeline_digest,
    run_scenario_with, run_scenario_with_backend, FaultCounts, ScenarioOutcome,
    ScenarioStageTimings,
};
pub use live::{
    run_scenario_live, run_scenario_live_schema, run_scenario_live_timeline, run_scenario_live_with,
};
pub use oracle::{
    assert_backend_agreement, assert_exact_agreement, assert_live_agreement, assert_mode_agreement,
    assert_schema_agreement, faulty_envelope, measure_aggregate_agreement,
    measure_aggregate_agreement_with, tolerance_band,
};
