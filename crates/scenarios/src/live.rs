//! The live (streaming) runner for the fault-injected schedule.
//!
//! [`run_scenario`](crate::engine::run_scenario) simulates the
//! unreliable deployment offline. This module drives the identical
//! emission schedule — same clients, same fault streams, same routing —
//! but delivers each period's surviving frames through the **streaming
//! ingestion service** (`rtf_runtime::ingest`): frames are routed to the
//! mailbox of the worker owning their *emitting* client (bounded,
//! blocking — backpressure, never loss), buffered per worker, and at
//! period close merged back into the exact sequential mailbox order
//! (`FrameBatch::merge_ordered`) before the server's checked ingestion
//! classifies every frame.
//!
//! Frame order is load-bearing under Byzantine impersonation (an
//! accepted forgery displaces the honest report it races), so the merge
//! is what makes the streaming outcome **value-for-value identical** to
//! the sequential and batched engines — estimates, delivery log, wire
//! stats, fault counts — for every worker count, mailbox capacity,
//! chunk size, and across injected worker kills and whole-service
//! snapshot/restarts (journal replay restores the lost buffers
//! exactly). Proven by [`crate::oracle::assert_live_agreement`] and the
//! [`crate::chaos`] proptest suite.
//!
//! Unlike the batched engine's span-native layer, the live runner keeps
//! the per-frame route — every report crosses the ingestion service
//! individually because the service's contract (mailbox backpressure,
//! journaled recovery) is per-message by design. The span-native fold is
//! an offline-throughput optimisation; the live path is the fidelity
//! reference for deployment semantics, and both are pinned to the same
//! sequential oracle.

use crate::config::{FaultTimeline, Scenario};
use crate::engine::{
    composed_tables, dispatch_frame, fabricate_report, ClientSlot, FaultCounts, ScenarioOutcome,
    FAULT_STREAM,
};
use rand::Rng;
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::client::Client;
use rtf_core::params::ProtocolParams;
use rtf_core::randomizer::FutureRand;
use rtf_core::server::{Delivery, Server};
use rtf_primitives::fastseed::{self, SeedSchema};
use rtf_primitives::seeding::SeedSequence;
use rtf_primitives::sign::Sign;
use rtf_runtime::ingest::{IngestService, IngestStats, LiveConfig};
use rtf_runtime::{shard_of, FrameBatch};
use rtf_sim::message::{OrderAnnouncement, ReportMsg, WireStats};
use rtf_streams::population::Population;

/// Runs the fault-injected schedule through the streaming ingestion
/// service with `workers` ingestion workers, on the
/// `RTF_BACKEND`-selected backend and `RTF_MAILBOX_CAP`-selected mailbox
/// capacity. Every outcome field is value-for-value identical to
/// [`run_scenario`](crate::engine::run_scenario).
pub fn run_scenario_live(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
    workers: usize,
) -> ScenarioOutcome {
    run_scenario_live_with(
        params,
        population,
        seed,
        scenario,
        &LiveConfig::new(workers),
        AccumulatorKind::from_env(),
    )
    .0
}

/// [`run_scenario_live`] under an explicit [`LiveConfig`] and storage
/// backend, also returning the service's [`IngestStats`].
///
/// # Panics
/// Panics up front if any configured fault names a period outside
/// `1..=d` (see [`LiveConfig::validate_for_horizon`]).
pub fn run_scenario_live_with(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
    config: &LiveConfig,
    backend: AccumulatorKind,
) -> (ScenarioOutcome, IngestStats) {
    run_scenario_live_schema(
        params,
        population,
        seed,
        scenario,
        config,
        backend,
        SeedSchema::from_env(),
    )
}

/// [`run_scenario_live_with`] under an explicit client randomness schema
/// (instead of `RTF_SEED_SCHEMA`).
pub fn run_scenario_live_schema(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
    config: &LiveConfig,
    backend: AccumulatorKind,
    schema: SeedSchema,
) -> (ScenarioOutcome, IngestStats) {
    run_scenario_live_timeline(
        params,
        population,
        seed,
        &FaultTimeline::constant(*scenario),
        config,
        backend,
        schema,
    )
}

/// Runs a [`FaultTimeline`] — a possibly per-period fault schedule —
/// through the streaming ingestion service. The timeline generalisation
/// of [`run_scenario_live_schema`]: `FaultTimeline::constant(s)`
/// reproduces the scenario path bit for bit, while shaped timelines
/// apply a different effective scenario each period. Every outcome
/// field is value-for-value identical to
/// [`run_scenario_timeline`](crate::engine::run_scenario_timeline) on
/// the same timeline, for every worker count, mailbox capacity, chunk
/// size, and chaos plan.
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_live_timeline(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    timeline: &FaultTimeline,
    config: &LiveConfig,
    backend: AccumulatorKind,
    schema: SeedSchema,
) -> (ScenarioOutcome, IngestStats) {
    timeline.validate(params.d());
    assert_eq!(population.n(), params.n(), "population/params n mismatch");
    assert_eq!(population.d(), params.d(), "population/params d mismatch");
    population.assert_k_sparse(params.k());

    let composed = composed_tables(params);
    let root = SeedSequence::new(seed);
    let fault_root = root.child(FAULT_STREAM);
    let d = params.d();
    config.validate_for_horizon(d);
    let n = params.n();
    let workers = config.workers.max(1);
    let chunk = config.chunk_rows.max(1);

    // Announce + build clients exactly like the sequential engine (same
    // RNG order), so honest bits and fault decisions are identical.
    let mut server = Server::for_future_rand_schema(*params, backend, schema);
    let mut wire = WireStats::default();
    let mut faults = FaultCounts::default();
    let mut slots: Vec<ClientSlot> = Vec::with_capacity(n);
    let mut cursors: Vec<rtf_streams::stream::DerivativeCursor<'_>> = Vec::with_capacity(n);
    for u in 0..n {
        let node = root.child(u as u64);
        let mut rng = node.rng();
        let h = Client::<FutureRand>::sample_order(params, &mut rng);
        let ann = OrderAnnouncement {
            user: u as u32,
            order: h as u8,
        };
        let decoded = OrderAnnouncement::decode(ann.encode());
        let registered = server.register_client(decoded.user, u32::from(decoded.order));
        assert!(registered, "simulation user ids are unique");
        wire.record_announcement();
        let m = FutureRand::init_with_schema(
            params.sequence_len(h),
            &composed[h as usize],
            &mut rng,
            schema,
            fastseed::client_key(&node),
        );
        let mut frng = fault_root.child(u as u64).rng();
        let byzantine = frng.random_bool(timeline.byzantine_frac());
        let churn_at = timeline.sample_churn(&mut frng);
        if churn_at <= d {
            faults.churned_clients += 1;
        }
        slots.push(ClientSlot {
            client: Client::new(params, h, m),
            rng,
            frng,
            byzantine,
            churn_at,
        });
        cursors.push(population.stream(u).derivative().cursor());
    }

    // Registration is complete; the service runs the horizon online. The
    // driver plays the network: `pending[t]` holds the frames the
    // network will deliver during period `t`, appended in emission order
    // (ascending `(emitted, emitter)` by construction of the loop).
    let mut service = IngestService::new(server, workers, config.mailbox_cap);
    let mut pending: Vec<FrameBatch> = (0..=d as usize).map(|_| FrameBatch::new()).collect();
    let mut estimates = Vec::with_capacity(d as usize);
    let mut byz_accepted_by_period = vec![0u64; d as usize];

    for t in 1..=d {
        // Emission: identical to the sequential engine, frame for frame.
        for (u, slot) in slots.iter_mut().enumerate() {
            let x = cursors[u].next_at(t);
            let report = slot.client.observe(t, x, &mut slot.rng);
            if t >= slot.churn_at {
                if !slot.byzantine && report.is_some() {
                    faults.lost_to_churn += 1;
                }
                continue;
            }
            if slot.byzantine {
                faults.byzantine_messages += 1;
                let msg = fabricate_report(&mut slot.frng, params, u as u32);
                dispatch_frame(
                    msg,
                    t,
                    u as u32,
                    true,
                    &mut slot.frng,
                    timeline,
                    &mut faults,
                    &mut pending,
                    d,
                );
                continue;
            }
            let Some(r) = report else { continue };
            let msg = ReportMsg {
                user: u as u32,
                t: t as u32,
                bit: r.bit == Sign::Plus,
            };
            dispatch_frame(
                msg,
                t,
                u as u32,
                false,
                &mut slot.frng,
                timeline,
                &mut faults,
                &mut pending,
                d,
            );
        }

        // Intake: stream this period's deliveries to the mailbox of the
        // worker owning each frame's *emitter*, in chunks, in one pass.
        // Any split works — the period-close merge restores the total
        // order — but emitter affinity is the deployment shape: a worker
        // fronts its own clients.
        let delivered = std::mem::take(&mut pending[t as usize]);
        let mut pieces: Vec<FrameBatch> = (0..workers).map(|_| FrameBatch::new()).collect();
        for frame in delivered.iter() {
            let w = shard_of(n, workers, frame.emitter as usize);
            pieces[w].push(frame);
            if pieces[w].len() >= chunk {
                service.submit_frames(w, std::mem::take(&mut pieces[w]));
            }
        }
        for (w, piece) in pieces.into_iter().enumerate() {
            if !piece.is_empty() {
                service.submit_frames(w, piece);
            }
        }

        // Faults strike after this period's frames are in flight and
        // before the close — recovery must come from journals alone.
        service = config.apply_pre_close(service, t);
        let close = service
            .close_period(t)
            .expect("service shards share the server's backend and shape");
        wire.record_report_batch(close.frames.len() as u64);
        for (frame, outcome) in close.frames.iter().zip(&close.outcomes) {
            if frame.byzantine && *outcome == Delivery::Accepted {
                faults.byzantine_accepted += 1;
                byz_accepted_by_period[(t - 1) as usize] += 1;
            }
        }
        estimates.push(close.estimate);
        service = config.apply_post_close(service, t);
    }

    let (server, stats) = service.finish();
    (
        ScenarioOutcome {
            estimates,
            group_sizes: server.group_sizes().to_vec(),
            wire,
            delivery: server.delivery_log().to_vec(),
            faults,
            byzantine_accepted_by_period: byz_accepted_by_period,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_scenario_with;
    use rtf_runtime::ExecMode;
    use rtf_streams::generator::UniformChanges;

    fn setup(n: usize, d: u64, k: usize, seed: u64) -> (ProtocolParams, Population) {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        (params, pop)
    }

    fn storm() -> Scenario {
        Scenario::honest()
            .with_dropout(0.05)
            .with_churn(0.01)
            .with_stragglers(0.15, 3)
            .with_duplicates(0.1)
            .with_byzantine(0.15)
    }

    fn assert_outcomes_equal(a: &ScenarioOutcome, b: &ScenarioOutcome, label: &str) {
        assert_eq!(a.estimates, b.estimates, "{label}: estimates");
        assert_eq!(a.group_sizes, b.group_sizes, "{label}: group sizes");
        assert_eq!(a.wire, b.wire, "{label}: wire stats");
        assert_eq!(a.delivery, b.delivery, "{label}: delivery log");
        assert_eq!(a.faults, b.faults, "{label}: fault counts");
        assert_eq!(
            a.byzantine_accepted_by_period, b.byzantine_accepted_by_period,
            "{label}: per-period Byzantine acceptance"
        );
    }

    #[test]
    fn live_matches_sequential_under_a_fault_storm() {
        let (params, pop) = setup(130, 32, 3, 68);
        let seq = run_scenario_with(&params, &pop, 19, &storm(), ExecMode::Sequential);
        assert!(
            seq.faults.byzantine_accepted > 0,
            "the storm must exercise the order-sensitive acceptance race"
        );
        for workers in [1usize, 2, 3, 8] {
            let live = run_scenario_live(&params, &pop, 19, &storm(), workers);
            assert_outcomes_equal(&live, &seq, &format!("{workers} workers"));
        }
    }

    #[test]
    fn live_honest_scenario_matches_the_honest_engine() {
        let (params, pop) = setup(100, 16, 2, 69);
        let seq = run_scenario_with(&params, &pop, 7, &Scenario::honest(), ExecMode::Sequential);
        let live = run_scenario_live(&params, &pop, 7, &Scenario::honest(), 4);
        assert_outcomes_equal(&live, &seq, "honest");
        assert_eq!(live.faults, FaultCounts::default());
    }

    #[test]
    fn worker_kill_mid_storm_recovers_exactly() {
        let (params, pop) = setup(120, 32, 3, 70);
        let seq = run_scenario_with(&params, &pop, 11, &storm(), ExecMode::Sequential);
        for workers in [1usize, 2, 8] {
            let cfg = LiveConfig::new(workers)
                .with_mailbox_cap(1)
                .with_chunk_rows(4)
                .with_kill(0, 16);
            let (live, stats) =
                run_scenario_live_with(&params, &pop, 11, &storm(), &cfg, AccumulatorKind::Dense);
            assert_outcomes_equal(&live, &seq, &format!("kill at w={workers}"));
            assert_eq!(stats.recoveries, 1);
        }
    }

    #[test]
    fn service_restart_mid_storm_recovers_exactly() {
        // The hardest composition: restart the whole service mid-period
        // while the storm is raging (journals hold frames whose order is
        // load-bearing), then kill a worker in the same period later,
        // then restart again cleanly between periods.
        let (params, pop) = setup(120, 32, 3, 71);
        let seq = run_scenario_with(&params, &pop, 17, &storm(), ExecMode::Sequential);
        assert!(
            seq.faults.byzantine_accepted > 0,
            "the storm must exercise the order-sensitive acceptance race"
        );
        for workers in [1usize, 2, 8] {
            let cfg = LiveConfig::new(workers)
                .with_mailbox_cap(2)
                .with_chunk_rows(4)
                .with_restart(12)
                .with_kill(workers.saturating_sub(1), 12)
                .with_restart_after(20);
            let (live, stats) =
                run_scenario_live_with(&params, &pop, 17, &storm(), &cfg, AccumulatorKind::Dense);
            assert_outcomes_equal(&live, &seq, &format!("restart at w={workers}"));
            assert_eq!(stats.restarts, 2, "w={workers}: both restarts fired");
            assert_eq!(stats.recoveries, 1, "w={workers}: the kill fired");
        }
    }

    #[test]
    fn live_matches_sequential_on_a_shaped_timeline() {
        use crate::config::DelayLaw;
        use crate::engine::run_scenario_timeline;

        let (params, pop) = setup(120, 32, 3, 74);
        let base = Scenario::honest().with_byzantine(0.1);
        let rows: Vec<Scenario> = (1..=32u64)
            .map(|t| {
                let mut row = base;
                if (10..=18).contains(&t) {
                    row = row.with_dropout(0.25).with_duplicates(0.2);
                }
                row.with_stragglers(0.15, 5)
            })
            .collect();
        let timeline =
            FaultTimeline::shaped(base, rows).with_delay_law(DelayLaw::Zipf { alpha: 2.0 });
        let seq = run_scenario_timeline(
            &params,
            &pop,
            29,
            &timeline,
            rtf_runtime::ExecMode::Sequential,
            AccumulatorKind::Dense,
            SeedSchema::V1Std,
        );
        assert!(seq.faults.dropped > 0 && seq.faults.delayed > 0);
        for workers in [1usize, 2, 8] {
            let cfg = LiveConfig::new(workers)
                .with_mailbox_cap(2)
                .with_chunk_rows(7);
            let (live, _) = run_scenario_live_timeline(
                &params,
                &pop,
                29,
                &timeline,
                &cfg,
                AccumulatorKind::Dense,
                SeedSchema::V1Std,
            );
            assert_outcomes_equal(&live, &seq, &format!("shaped, {workers} workers"));
        }
    }
}
