//! Crash-recovery chaos harness: composable fault plans over the
//! streaming service, checked against the sequential oracle.
//!
//! The snapshot/restart machinery (`rtf_runtime::ingest`) claims that a
//! process can die at *any* point — mid-period with journals full,
//! between periods, repeatedly, composed with worker kills — and a
//! fresh process restored from the snapshot continues **bit-identically**.
//! This module turns that claim into a harness the proptest suite
//! (`tests/proptest_chaos.rs`) can drive with randomized fault
//! placements:
//!
//! * [`ChaosPlan`] — a declarative plan of worker kills, mid-period
//!   service restarts, and between-period service restarts, each pinned
//!   to a period;
//! * [`assert_chaos_recovery`] — runs the plan through **both** live
//!   engines (honest event-driven and fault-injected scenario) at every
//!   worker count in [`MODE_AGREEMENT_WORKERS`], asserting
//!   value-for-value agreement with the sequential reference *and* that
//!   every configured fault actually fired (`IngestStats::{recoveries,
//!   restarts}`) — a chaos test that can't fire its faults is vacuous,
//!   and that vacuity is itself a failure here.

use crate::config::Scenario;
use crate::engine::{run_scenario_with, ScenarioOutcome};
use crate::live::run_scenario_live_with;
use crate::oracle::MODE_AGREEMENT_WORKERS;
use rtf_core::accumulator::AccumulatorKind;
use rtf_core::params::ProtocolParams;
use rtf_runtime::ingest::LiveConfig;
use rtf_runtime::ExecMode;
use rtf_sim::engine::{run_event_driven_with, EventDrivenOutcome};
use rtf_sim::live::run_event_driven_live_with;
use rtf_streams::population::Population;

/// A declarative crash plan: which faults strike at which periods.
///
/// Worker indices are taken modulo the worker count (the plan is reused
/// across worker counts); periods must lie in `1..=d` — the live
/// drivers reject a fault that could never fire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// `(worker, period)` worker kills — the worker dies after the
    /// period's traffic is in flight, before the close.
    pub kills: Vec<(usize, u64)>,
    /// Periods at which the whole service is snapshot, dropped, and
    /// restored **mid-period** (journals full — the worst moment).
    pub mid_restarts: Vec<u64>,
    /// Periods after whose close the service is snapshot, dropped, and
    /// restored (journals empty — the clean moment).
    pub between_restarts: Vec<u64>,
}

impl ChaosPlan {
    /// The empty plan (no faults — the control leg).
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Adds a worker kill at `period`.
    pub fn with_kill(mut self, worker: usize, period: u64) -> Self {
        self.kills.push((worker, period));
        self
    }

    /// Adds a mid-period whole-service restart at `period`.
    pub fn with_mid_restart(mut self, period: u64) -> Self {
        self.mid_restarts.push(period);
        self
    }

    /// Adds a between-periods whole-service restart after `period`.
    pub fn with_between_restart(mut self, period: u64) -> Self {
        self.between_restarts.push(period);
        self
    }

    /// Total number of configured faults.
    pub fn fault_count(&self) -> usize {
        self.kills.len() + self.mid_restarts.len() + self.between_restarts.len()
    }

    /// Number of worker kills the plan will fire.
    pub fn expected_kills(&self) -> u64 {
        self.kills.len() as u64
    }

    /// Number of whole-service restarts the plan will fire.
    pub fn expected_restarts(&self) -> u64 {
        (self.mid_restarts.len() + self.between_restarts.len()) as u64
    }

    /// Materializes the plan onto a [`LiveConfig`] for `workers`.
    pub fn configure(&self, workers: usize) -> LiveConfig {
        let mut cfg = LiveConfig::new(workers);
        for &(worker, period) in &self.kills {
            cfg = cfg.with_kill(worker, period);
        }
        for &period in &self.mid_restarts {
            cfg = cfg.with_restart(period);
        }
        for &period in &self.between_restarts {
            cfg = cfg.with_restart_after(period);
        }
        cfg
    }

    /// A human-readable tag for assertion messages.
    pub fn label(&self) -> String {
        format!(
            "kills {:?}, mid-restarts {:?}, between-restarts {:?}",
            self.kills, self.mid_restarts, self.between_restarts
        )
    }
}

/// Runs `plan` through both live engines — the honest event-driven
/// schedule and the fault-injected `scenario` — at every worker count in
/// [`MODE_AGREEMENT_WORKERS`] on `backend`, with a deliberately hostile
/// service shape (2-batch mailboxes, 7-row chunks), and asserts:
///
/// * every outcome field is value-for-value identical to the sequential
///   reference (estimates, group sizes, wire stats, delivery log, fault
///   counts, per-period Byzantine acceptance);
/// * every configured fault fired: `recoveries == plan.expected_kills()`
///   and `restarts == plan.expected_restarts()` on both engines.
///
/// # Examples
///
/// A worker kill composed with a mid-period service restart; the
/// crashed-and-recovered live runs must match the never-crashed
/// sequential reference value-for-value:
///
/// ```
/// use rtf_core::accumulator::AccumulatorKind;
/// use rtf_core::params::ProtocolParams;
/// use rtf_primitives::seeding::SeedSequence;
/// use rtf_scenarios::chaos::{assert_chaos_recovery, ChaosPlan};
/// use rtf_scenarios::config::Scenario;
/// use rtf_streams::generator::UniformChanges;
/// use rtf_streams::population::Population;
///
/// let params = ProtocolParams::new(30, 8, 2, 1.0, 0.05).unwrap();
/// let mut rng = SeedSequence::new(11).rng();
/// let population = Population::generate(&UniformChanges::new(8, 2, 0.8), 30, &mut rng);
/// let plan = ChaosPlan::new().with_kill(0, 3).with_mid_restart(5);
/// assert_chaos_recovery(
///     &params,
///     &population,
///     11,
///     &Scenario::honest().with_dropout(0.1),
///     &plan,
///     AccumulatorKind::Dense,
/// );
/// ```
///
/// # Panics
/// Panics naming the plan, engine, and worker count of the first
/// divergence — or the fault that silently failed to fire.
pub fn assert_chaos_recovery(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
    plan: &ChaosPlan,
    backend: AccumulatorKind,
) {
    let ev_seq = run_event_driven_with(params, population, seed, ExecMode::Sequential);
    let sc_seq = run_scenario_with(params, population, seed, scenario, ExecMode::Sequential);
    for w in MODE_AGREEMENT_WORKERS {
        assert_chaos_recovery_at(
            params, population, seed, scenario, plan, backend, w, &ev_seq, &sc_seq,
        );
    }
}

/// One worker count's leg of [`assert_chaos_recovery`], against
/// precomputed sequential references.
#[allow(clippy::too_many_arguments)]
fn assert_chaos_recovery_at(
    params: &ProtocolParams,
    population: &Population,
    seed: u64,
    scenario: &Scenario,
    plan: &ChaosPlan,
    backend: AccumulatorKind,
    workers: usize,
    ev_seq: &EventDrivenOutcome,
    sc_seq: &ScenarioOutcome,
) {
    let cfg = plan
        .configure(workers)
        .with_mailbox_cap(2)
        .with_chunk_rows(7);
    let label = format!("chaos[{}] live({workers}) {backend}", plan.label());

    let (ev, ev_stats) = run_event_driven_live_with(params, population, seed, &cfg, backend);
    assert_eq!(
        ev.estimates, ev_seq.estimates,
        "{label}: event-driven estimates diverge from sequential (seed {seed})"
    );
    assert_eq!(ev.group_sizes, ev_seq.group_sizes, "{label}: groups");
    assert_eq!(ev.wire, ev_seq.wire, "{label}: wire stats");

    let (sc, sc_stats) = run_scenario_live_with(params, population, seed, scenario, &cfg, backend);
    assert_eq!(
        sc.estimates, sc_seq.estimates,
        "{label}: scenario estimates diverge from sequential (seed {seed})"
    );
    assert_eq!(sc.group_sizes, sc_seq.group_sizes, "{label}: groups");
    assert_eq!(sc.delivery, sc_seq.delivery, "{label}: delivery log");
    assert_eq!(sc.wire, sc_seq.wire, "{label}: wire stats");
    assert_eq!(sc.faults, sc_seq.faults, "{label}: fault counts");
    assert_eq!(
        sc.byzantine_accepted_by_period, sc_seq.byzantine_accepted_by_period,
        "{label}: per-period Byzantine acceptance"
    );

    // The anti-vacuity clause: every configured fault must have fired.
    for stats in [&ev_stats, &sc_stats] {
        assert_eq!(
            stats.recoveries,
            plan.expected_kills(),
            "{label}: a configured worker kill never fired"
        );
        assert_eq!(
            stats.restarts,
            plan.expected_restarts(),
            "{label}: a configured service restart never fired"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtf_primitives::seeding::SeedSequence;
    use rtf_streams::generator::UniformChanges;

    fn setup(n: usize, d: u64, k: usize, seed: u64) -> (ProtocolParams, Population) {
        let params = ProtocolParams::new(n, d, k, 1.0, 0.05).unwrap();
        let mut rng = SeedSequence::new(seed).rng();
        let pop = Population::generate(&UniformChanges::new(d, k, 0.8), n, &mut rng);
        (params, pop)
    }

    #[test]
    fn plan_builders_compose_and_count() {
        let plan = ChaosPlan::new()
            .with_kill(3, 4)
            .with_kill(0, 7)
            .with_mid_restart(4)
            .with_between_restart(6);
        assert_eq!(plan.fault_count(), 4);
        assert_eq!(plan.expected_kills(), 2);
        assert_eq!(plan.expected_restarts(), 2);
        let cfg = plan.configure(2);
        assert_eq!(cfg.kills.len(), 2);
        assert_eq!(cfg.restarts.len(), 2);
        assert_eq!(cfg.fault_count(), 4);
        assert!(plan.label().contains("mid-restarts [4]"));
    }

    #[test]
    fn double_restart_composed_with_kill_recovers_exactly() {
        // The hardest hand-written composition: restart mid-period,
        // kill a worker in the same period, restart again cleanly later
        // — on a storm whose frame order is load-bearing.
        let (params, pop) = setup(100, 16, 2, 96);
        let storm = Scenario::honest()
            .with_dropout(0.05)
            .with_stragglers(0.1, 3)
            .with_duplicates(0.05)
            .with_byzantine(0.1);
        let plan = ChaosPlan::new()
            .with_mid_restart(8)
            .with_kill(1, 8)
            .with_between_restart(12);
        assert_chaos_recovery(&params, &pop, 57, &storm, &plan, AccumulatorKind::Sparse);
    }

    #[test]
    fn vacuous_plans_are_caught() {
        // A fault at a period past the horizon can never fire; the
        // harness must fail loudly instead of passing vacuously.
        let (params, pop) = setup(60, 8, 2, 97);
        let plan = ChaosPlan::new().with_mid_restart(99);
        let caught = std::panic::catch_unwind(|| {
            assert_chaos_recovery(
                &params,
                &pop,
                3,
                &Scenario::honest(),
                &plan,
                AccumulatorKind::Dense,
            );
        });
        assert!(caught.is_err());
    }
}
